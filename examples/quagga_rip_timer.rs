//! Case study 2 (paper §4, Fig. 5): the Quagga 0.96.5 RIP timer-refresh bug.
//!
//! R1 reaches a destination via R2 (main) and R3 (backup). Quagga refreshes
//! a route's timeout on any announcement matching the *destination*,
//! ignoring the next hop, so after R2 dies the backup's announcements keep
//! the dead route alive — a black hole whose appearance depends on timing.
//! DEFINED makes the timing deterministic, reproduces it in a debugging
//! network where timers "don't go off unexpectedly while stepping", and
//! validates the fix.
//!
//! Run with: `cargo run --example quagga_rip_timer`

use defined::core::debugger::{Debugger, StepGranularity};
use defined::core::{DefinedConfig, LockstepNet, RbNetwork};
use defined::netsim::{NodeId, SimDuration, SimTime};
use defined::routing::rip::{RefreshMode, RipConfig, RipExt, RipProcess};
use defined::topology::canonical;

const DEST: u32 = 77;

fn build(_roles: &canonical::Fig5Roles, g: &defined::topology::Graph, mode: RefreshMode) -> Vec<RipProcess> {
    let cfg = RipConfig::emulation(mode);
    (0..4u32)
        .map(|i| {
            let id = NodeId(i);
            RipProcess::new(id, g.neighbors(id), cfg)
        })
        .collect()
}

fn main() {
    let (graph, roles) = canonical::fig5_rip(SimDuration::from_millis(10));
    println!("== Case study: Quagga 0.96.5 RIP timer-refresh bug (Fig. 5) ==\n");
    println!("after R2 dies, R1 should fail over to R3; the bug leaves a black hole\n");

    // --- Baseline: the outcome depends on announcement timing -----------
    println!("-- baseline (uninstrumented, buggy refresh): 10 seeds --");
    let mut blackholes = 0;
    for seed in 0..10u64 {
        let procs = build(&roles, &graph, RefreshMode::DestinationOnly);
        let mut sim = defined::core::harness::baseline_network(
            &graph,
            SimDuration::from_millis(250),
            seed,
            0.9,
            move |id| procs[id.index()].clone(),
        );
        sim.schedule_external(
            SimTime::from_millis(100),
            roles.dest,
            RipExt::Connect { prefix: DEST },
        );
        sim.schedule_node_admin(SimTime::from_secs(8), roles.r2, false);
        sim.run_until(SimTime::from_secs(26));
        let via = sim
            .process(roles.r1)
            .control_plane()
            .route(DEST)
            .and_then(|r| r.next_hop);
        if via == Some(roles.r2) {
            blackholes += 1;
        }
    }
    println!(
        "  {blackholes}/10 runs end with R1 still pointing at the dead R2 (black hole)"
    );
    println!("  (timing-dependent: troubleshooting with gdb chases a moving target)\n");

    // --- DEFINED-RB: deterministic outcome -------------------------------
    println!("-- DEFINED-RB instrumented production network --");
    let cfg = DefinedConfig::default();
    let run_rb = |seed: u64, mode: RefreshMode| {
        let procs = build(&roles, &graph, mode);
        let mut net = RbNetwork::new(&graph, cfg.clone(), seed, 0.9, move |id| {
            procs[id.index()].clone()
        });
        net.inject_external(
            SimTime::from_millis(100),
            roles.dest,
            RipExt::Connect { prefix: DEST },
        );
        net.schedule_node(SimTime::from_secs(8), roles.r2, false);
        net.run_until(SimTime::from_secs(26));
        net
    };
    let mut outcome = None;
    for seed in 0..5u64 {
        let net = run_rb(seed, RefreshMode::DestinationOnly);
        let via = net.control_plane(roles.r1).route(DEST).and_then(|r| r.next_hop);
        if let Some(prev) = outcome {
            assert_eq!(prev, via, "DEFINED-RB must make the timing bug deterministic");
        }
        outcome = Some(via);
    }
    println!("  R1's route after R2 dies = via {outcome:?} on EVERY seed (deterministic)\n");

    // --- Debugging session: step without timers going off unexpectedly --
    println!("-- DEFINED-LS debugging session --");
    let net = run_rb(0, RefreshMode::DestinationOnly);
    let (recording, _) = net.into_recording();
    println!(
        "  recording: {} externals, {} groups",
        recording.externals.len(),
        recording.last_group
    );
    let procs = build(&roles, &graph, RefreshMode::DestinationOnly);
    let ls = LockstepNet::new(&graph, cfg.clone(), recording.clone(), move |id| {
        procs[id.index()].clone()
    });
    let mut dbg = Debugger::new(ls);
    // Watch for the smoking gun: a timer refresh at R1 triggered while the
    // installed next hop is R2 but R2 is already gone (group > death time).
    let death_group = 8 * 4; // 8 s at 4 groups/s.
    dbg.add_breakpoint(move |ev, net| {
        ev.node == roles.r1
            && ev.group > death_group
            && net.control_plane(roles.r1).route(DEST).and_then(|r| r.next_hop)
                == Some(roles.r2)
            && net.control_plane(roles.r1).refresh_count(DEST) > 0
    });
    if let Some(hit) = dbg.run_until_break() {
        let cp = dbg.inspect(roles.r1);
        println!(
            "  breakpoint in group {}: R1 refreshed the route via dead R2 ({} refreshes so far)",
            hit.group,
            cp.refresh_count(DEST)
        );
        println!("  single-stepping two more events (timers stay quiescent between steps):");
        for _ in 0..2 {
            if let Some(r) = dbg.step(StepGranularity::Event) {
                let ev = &r.events[0];
                println!(
                    "    group {} chain {} event at {} (class {:?})",
                    ev.group, ev.chain, ev.node, ev.record.ann.class
                );
            }
        }
    } else {
        println!("  no refresh-after-death observed in this recording");
    }

    // --- Patch and validate ----------------------------------------------
    println!("\n-- patch: match on destination AND next hop, validated in LS --");
    let procs = build(&roles, &graph, RefreshMode::DestinationAndNextHop);
    let mut ls2 = LockstepNet::new(&graph, cfg.clone(), recording, move |id| {
        procs[id.index()].clone()
    });
    ls2.run_to_end();
    let via = ls2.control_plane(roles.r1).route(DEST).and_then(|r| r.next_hop);
    println!("  patched R1 route = via {via:?}");
    assert_eq!(via, Some(roles.r3), "patched RIP must fail over to the backup");
    println!("  patched RIP fails over to R3 — black hole gone ✓");

    // --- And the patch behaves identically in production -----------------
    let net = run_rb(0, RefreshMode::DestinationAndNextHop);
    let via_prod = net.control_plane(roles.r1).route(DEST).and_then(|r| r.next_hop);
    assert_eq!(via_prod, Some(roles.r3));
    println!("  same behaviour in the instrumented production network ✓");
}
