//! Quickstart: the full DEFINED workflow on a small OSPF network.
//!
//! 1. Run a *production* network instrumented with DEFINED-RB under two
//!    different nondeterminism seeds and observe that the committed
//!    executions are identical (determinism).
//! 2. Extract the partial recording (external events + losses only).
//! 3. Replay it in a DEFINED-LS *debugging* network and verify it reproduces
//!    the production execution exactly (Theorem 1).
//!
//! Run with: `cargo run --example quickstart`

use defined::core::ls::first_divergence;
use defined::core::recorder::trim_log;
use defined::core::{DefinedConfig, LockstepNet, RbNetwork};
use defined::netsim::{NodeId, SimDuration, SimTime};
use defined::routing::ospf::{OspfConfig, OspfProcess};
use defined::topology::canonical;

fn main() {
    // A 6-node ring running an OSPF-like control plane, with a link failure
    // half-way through the run.
    let graph = canonical::ring(6, SimDuration::from_millis(5));
    let cfg = DefinedConfig::default();
    let spawn_fn = OspfProcess::for_graph(&graph, OspfConfig::stress(6));
    let processes: Vec<OspfProcess> = (0..6).map(|i| spawn_fn(NodeId(i))).collect();

    println!("== DEFINED quickstart: 6-node OSPF ring ==\n");

    // --- Step 1: deterministic production runs -------------------------
    let run = |seed: u64| {
        let procs = processes.clone();
        let mut net = RbNetwork::new(&graph, cfg.clone(), seed, 0.6, move |id| {
            procs[id.index()].clone()
        });
        net.schedule_link(SimTime::from_secs(3), NodeId(0), NodeId(1), false);
        net.run_until(SimTime::from_secs(8));
        net
    };

    let net_a = run(42);
    let net_b = run(31337);
    let upto = net_a.completed_group(2).min(net_b.completed_group(2));
    let logs_a = net_a.commit_logs();
    let logs_b = net_b.commit_logs();
    let identical = logs_a
        .iter()
        .zip(logs_b.iter())
        .all(|(a, b)| trim_log(a, upto) == trim_log(b, upto));
    let events: usize = logs_a.iter().map(|l| trim_log(l, upto).len()).sum();
    println!("production run A (seed 42):    {} committed events", events);
    println!("production run B (seed 31337): same workload, different jitter");
    println!(
        "deterministic execution: committed logs identical across seeds = {identical}"
    );
    assert!(identical, "DEFINED-RB must mask network nondeterminism");

    let m = net_a.total_metrics();
    println!(
        "\nRB overhead (run A): {} app msgs, {} rollbacks, {} anti-messages, {} window violations",
        m.app_msgs_sent, m.rollbacks, m.unsend_msgs, m.window_violations
    );

    // --- Step 2: partial recording --------------------------------------
    let (recording, rb_logs) = net_a.into_recording();
    let bytes = recording.to_bytes();
    println!(
        "\npartial recording: {} external events, {} recorded losses, {} groups, {} bytes",
        recording.externals.len(),
        recording.drops.len(),
        recording.last_group,
        bytes.len()
    );

    // --- Step 3: lockstep replay (Theorem 1) ----------------------------
    let procs = processes.clone();
    let mut ls = LockstepNet::new(&graph, cfg, recording, move |id| procs[id.index()].clone());
    ls.run_to_end();
    match first_divergence(&rb_logs, ls.logs(), upto) {
        None => println!(
            "DEFINED-LS replay reproduces the production execution exactly (Theorem 1) ✓"
        ),
        Some((node, pos, a, b)) => {
            panic!("divergence at node {node} position {pos}: {a:?} vs {b:?}")
        }
    }

    // Show the converged routing state of one node.
    println!("\nnode 2 routing table after replay:");
    for (dst, hop) in ls.control_plane(NodeId(2)).routing_table().iter() {
        println!("  to {dst} via {hop}");
    }
    println!(
        "\nmean LS step response time: {:.3} ms over {} steps",
        ls.step_times().iter().sum::<f64>() / ls.step_times().len().max(1) as f64 * 1e3,
        ls.step_times().len()
    );
}
