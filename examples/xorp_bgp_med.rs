//! Case study 1 (paper §4, Fig. 4): the XORP 0.4 BGP MED ordering bug.
//!
//! Three paths with a non-transitive MED preference reach router R3. The
//! buggy decision process compares each incoming path only against the
//! current best, so the selected route depends on arrival order. Without
//! DEFINED the bug appears on some runs and not others; with DEFINED-RB the
//! outcome is deterministic, the bug is reproduced from a partial recording
//! in DEFINED-LS, located by stepping, patched, and the patch validated.
//!
//! Run with: `cargo run --example xorp_bgp_med`

use defined::core::debugger::{Debugger, StepGranularity};
use defined::core::{DefinedConfig, LockstepNet, RbNetwork};
use defined::netsim::{NodeId, SimDuration, SimTime};
use defined::routing::bgp::{
    fig4_paths, BgpExt, BgpProcess, DecisionMode, Role,
};
use defined::topology::canonical;

const PREFIX: u32 = 9;

fn build_processes(roles: &canonical::Fig4Roles, mode: DecisionMode) -> Vec<BgpProcess> {
    let internal = [roles.r1, roles.r2, roles.r3];
    (0..6u32)
        .map(|i| {
            let id = NodeId(i);
            if id == roles.er1 || id == roles.er2 {
                BgpProcess::new(id, Role::External { border: roles.r1 }, mode)
            } else if id == roles.er3 {
                BgpProcess::new(id, Role::External { border: roles.r2 }, mode)
            } else {
                let peers: Vec<NodeId> =
                    internal.iter().copied().filter(|&p| p != id).collect();
                BgpProcess::new(id, Role::Internal { ibgp_peers: peers }, mode)
            }
        })
        .collect()
}

fn announce_all(
    net: &mut RbNetwork<BgpProcess>,
    roles: &canonical::Fig4Roles,
) {
    let [p1, p2, p3] = fig4_paths();
    // The three external routers announce "at roughly the same time"; link
    // jitter decides the arrival order at R3.
    net.inject_external(
        SimTime::from_millis(700),
        roles.er1,
        BgpExt::Announce { prefix: PREFIX, attrs: p1 },
    );
    net.inject_external(
        SimTime::from_millis(700),
        roles.er2,
        BgpExt::Announce { prefix: PREFIX, attrs: p2 },
    );
    net.inject_external(
        SimTime::from_millis(700),
        roles.er3,
        BgpExt::Announce { prefix: PREFIX, attrs: p3 },
    );
}

fn main() {
    let (graph, roles) = canonical::fig4_bgp(
        SimDuration::from_millis(8),
        SimDuration::from_millis(12),
    );
    println!("== Case study: XORP 0.4 BGP MED ordering bug (Fig. 4) ==\n");
    println!("correct best path is p3 (route id 3); the bug selects p2 on some orders\n");

    // --- Without DEFINED: outcome varies across runs --------------------
    println!("-- baseline (uninstrumented): 12 runs with different jitter seeds --");
    let mut outcomes = std::collections::BTreeMap::new();
    for seed in 0..12u64 {
        let procs = build_processes(&roles, DecisionMode::BuggyIncremental);
        let mut sim = defined::core::harness::baseline_network(
            &graph,
            SimDuration::from_millis(250),
            seed,
            0.9,
            move |id| procs[id.index()].clone(),
        );
        sim.schedule_external(
            SimTime::from_millis(700),
            roles.er1,
            BgpExt::Announce { prefix: PREFIX, attrs: fig4_paths()[0] },
        );
        sim.schedule_external(
            SimTime::from_millis(700),
            roles.er2,
            BgpExt::Announce { prefix: PREFIX, attrs: fig4_paths()[1] },
        );
        sim.schedule_external(
            SimTime::from_millis(700),
            roles.er3,
            BgpExt::Announce { prefix: PREFIX, attrs: fig4_paths()[2] },
        );
        sim.run_until(SimTime::from_secs(5));
        let best = sim
            .process(roles.r3)
            .control_plane()
            .best_path(PREFIX)
            .map(|p| p.route_id);
        *outcomes.entry(best).or_insert(0u32) += 1;
    }
    for (best, count) in &outcomes {
        println!("  best path at R3 = {best:?} in {count} runs");
    }
    println!("  (nondeterministic: the bug hides on lucky orderings)\n");

    // --- With DEFINED-RB: deterministic ---------------------------------
    println!("-- DEFINED-RB instrumented production network --");
    let cfg = DefinedConfig::default();
    let run_rb = |seed: u64| {
        let procs = build_processes(&roles, DecisionMode::BuggyIncremental);
        let mut net = RbNetwork::new(&graph, cfg.clone(), seed, 0.9, move |id| {
            procs[id.index()].clone()
        });
        announce_all(&mut net, &roles);
        net.run_until(SimTime::from_secs(5));
        net
    };
    let mut fixed_outcome = None;
    for seed in 0..6u64 {
        let net = run_rb(seed);
        let best = net.control_plane(roles.r3).best_path(PREFIX).map(|p| p.route_id);
        if let Some(prev) = fixed_outcome {
            assert_eq!(prev, best, "DEFINED-RB must be deterministic");
        }
        fixed_outcome = Some(best);
    }
    println!("  best path at R3 = {fixed_outcome:?} on EVERY seed (deterministic)\n");

    // --- Reproduce in the debugging network and locate the bug ----------
    println!("-- DEFINED-LS debugging session from the partial recording --");
    let net = run_rb(0);
    let (recording, _) = net.into_recording();
    println!(
        "  recording: {} external events over {} groups",
        recording.externals.len(),
        recording.last_group
    );
    let procs = build_processes(&roles, DecisionMode::BuggyIncremental);
    let ls = LockstepNet::new(&graph, cfg.clone(), recording.clone(), move |id| {
        procs[id.index()].clone()
    });
    let mut dbg = Debugger::new(ls);
    // Break when R3's decision process runs with all three candidates known
    // but selects a suboptimal path.
    dbg.add_breakpoint(move |ev, net| {
        ev.node == roles.r3
            && net.control_plane(roles.r3).candidates(PREFIX).len() == 3
            && net.control_plane(roles.r3).best_path(PREFIX).map(|p| p.route_id) != Some(3)
    });
    if let Some(hit) = dbg.run_until_break() {
        let cp = dbg.inspect(roles.r3);
        println!(
            "  breakpoint: after event in group {} R3 knows {} candidates but best = p{}",
            hit.group,
            cp.candidates(PREFIX).len(),
            cp.best_path(PREFIX).unwrap().route_id
        );
        println!("  stepping shows the incremental compare skipped the MED group re-scan");
    } else {
        println!("  (bug did not manifest under the deterministic order — see §4's note");
        println!("   that DEFINED may mask orders; apply a different ordering function)");
    }

    // --- Patch and validate in the debugging network ---------------------
    println!("\n-- patch: full decision process, validated in the debugging network --");
    let procs = build_processes(&roles, DecisionMode::CorrectFull);
    let mut ls2 = LockstepNet::new(&graph, cfg, recording, move |id| {
        procs[id.index()].clone()
    });
    ls2.run_to_end();
    let best = ls2.control_plane(roles.r3).best_path(PREFIX).map(|p| p.route_id);
    println!("  patched best path at R3 = {best:?}");
    assert_eq!(best, Some(3), "patched decision must select p3");
    println!("  patched decision selects p3 — correct ✓");
    let _ = dbg.step(StepGranularity::Event);
}
