//! Tier-1 workload replay (paper §5.1–5.2): Rocketfuel-style topology, a
//! synthetic Tier-1 OSPF event trace, and the partial-recording size
//! argument that motivates DEFINED.
//!
//! Comprehensive record-and-replay systems must log *every* message; DEFINED
//! only logs external events (and losses) because the instrumented network
//! is deterministic. This example quantifies the difference on an ISP-scale
//! run and verifies the replay reproduces the execution.
//!
//! Run with: `cargo run --release --example tier1_replay`

use defined::core::ls::first_divergence;
use defined::core::{DefinedConfig, LockstepNet, RbNetwork};
use defined::netsim::{NodeId, SimDuration, SimTime};
use defined::routing::ospf::{OspfConfig, OspfProcess};
use defined::topology::rocketfuel::{self, Isp};
use defined::topology::trace::{EventKind, Tier1Spec};
use defined::topology::{trace, TopoMask};

fn main() {
    let graph = rocketfuel::build(Isp::Ebone);
    let n = graph.node_count();
    println!(
        "== Tier-1 replay on {} ({} PoPs, {} links) ==\n",
        Isp::Ebone.name(),
        n,
        graph.edge_count()
    );

    // Synthesise a Tier-1-like trace and keep a short connectivity-safe
    // link-event prefix for this demo run.
    let spec = Tier1Spec { events: 60, node_event_frac: 0.0, ..Tier1Spec::default() };
    let raw = trace::tier1_trace(&graph, spec, 7);
    let compressed = trace::compress(&raw, SimDuration::from_secs(20));
    let mut mask = TopoMask::default();
    let mut events = Vec::new();
    for e in compressed {
        match e.kind {
            EventKind::LinkDown(a, b) => {
                mask.link_down(a, b);
                if graph.is_connected(&mask) {
                    events.push(e);
                } else {
                    mask.link_up(a, b);
                }
            }
            EventKind::LinkUp(a, b)
                if mask.links_down.contains(&(a.min(b), a.max(b))) => {
                    mask.link_up(a, b);
                    events.push(e);
                }
            _ => {}
        }
    }
    println!("trace: {} link events over 20 s of compressed Tier-1 dynamics", events.len());

    // Production run under DEFINED-RB.
    let cfg = DefinedConfig::default();
    let f = OspfProcess::for_graph(&graph, OspfConfig::stress(n));
    let procs: Vec<OspfProcess> = (0..n).map(|i| f(NodeId(i as u32))).collect();
    let p2 = procs.clone();
    let mut net = RbNetwork::new(&graph, cfg.clone(), 11, 0.4, move |id| procs[id.index()].clone());
    let start = SimTime::from_secs(10);
    for e in &events {
        match e.kind {
            EventKind::LinkDown(a, b) => net.schedule_link(start + (e.at - SimTime::ZERO), a, b, false),
            EventKind::LinkUp(a, b) => net.schedule_link(start + (e.at - SimTime::ZERO), a, b, true),
            _ => {}
        }
    }
    net.run_until(SimTime::from_secs(35));

    let m = net.total_metrics();
    let upto = net.completed_group(2);
    let total_msgs = m.app_msgs_sent;
    println!("\nproduction run: {} protocol messages, {} rollbacks, {} anti-messages",
        total_msgs, m.rollbacks, m.unsend_msgs);

    let (recording, rb_logs) = net.into_recording();
    let rec_bytes = recording.to_bytes().len();
    // A comprehensive log would store every message event; estimate its size
    // at a conservative 64 bytes per message record.
    let comprehensive = total_msgs as usize * 64;
    println!("\n-- recording size comparison (the paper's motivation, §1) --");
    println!("  comprehensive message log (est. 64 B/msg): {:>10} bytes", comprehensive);
    println!("  DEFINED partial recording:                 {:>10} bytes", rec_bytes);
    println!(
        "  reduction: {:.0}x",
        comprehensive as f64 / rec_bytes.max(1) as f64
    );

    // Replay and verify.
    let mut ls = LockstepNet::new(&graph, cfg, recording, move |id| p2[id.index()].clone());
    ls.run_to_end();
    match first_divergence(&rb_logs, ls.logs(), upto) {
        None => println!("\nreplay reproduces the production execution exactly ✓"),
        Some(d) => panic!("divergence: {d:?}"),
    }
    let compared: usize = rb_logs
        .iter()
        .map(|l| defined::core::recorder::trim_log(l, upto).len())
        .sum();
    println!("({compared} committed events compared across {n} nodes)");
}
