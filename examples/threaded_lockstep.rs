//! The distributed semaphore made real: replays a recording with one OS
//! thread per debugging node, coordinated by a barrier (paper §2.3), and
//! shows the ordering function masking genuine thread-scheduling
//! nondeterminism.
//!
//! Run with: `cargo run --example threaded_lockstep`

use defined::core::ls::first_divergence;
use defined::core::threaded::run_threaded;
use defined::core::{DefinedConfig, LockstepNet, RbNetwork};
use defined::netsim::{NodeId, SimDuration, SimTime};
use defined::routing::ospf::{OspfConfig, OspfProcess};
use defined::topology::canonical;

fn main() {
    let graph = canonical::grid(2, 3, SimDuration::from_millis(5));
    let n = graph.node_count();
    println!("== Threaded lockstep replay on a 2x3 grid ({n} node threads) ==\n");

    let cfg = DefinedConfig::default();
    let f = OspfProcess::for_graph(&graph, OspfConfig::stress(n));
    let procs: Vec<OspfProcess> = (0..n).map(|i| f(NodeId(i as u32))).collect();

    // Produce a recording with a failure event.
    let p1 = procs.clone();
    let mut net = RbNetwork::new(&graph, cfg.clone(), 3, 0.5, move |id| p1[id.index()].clone());
    net.schedule_link(SimTime::from_secs(2), NodeId(0), NodeId(1), false);
    net.run_until(SimTime::from_secs(6));
    let upto = net.completed_group(2);
    let (recording, rb_logs) = net.into_recording();
    println!(
        "production recording: {} groups, {} externals",
        recording.last_group,
        recording.externals.len()
    );

    // Single-threaded reference replay.
    let p2 = procs.clone();
    let mut ls = LockstepNet::new(&graph, cfg.clone(), recording.clone(), move |id| {
        p2[id.index()].clone()
    });
    ls.run_to_end();

    // Threaded replays: mailbox arrival order differs every run, yet the
    // committed logs are identical.
    for round in 1..=3 {
        let p3 = procs.clone();
        let logs = run_threaded(&graph, cfg.clone(), recording.clone(), move |id| {
            p3[id.index()].clone()
        });
        assert!(
            first_divergence(ls.logs(), &logs, upto).is_none(),
            "threaded replay diverged on round {round}"
        );
        println!("threaded replay #{round}: identical to single-threaded reference ✓");
    }

    assert!(
        first_divergence(&rb_logs, ls.logs(), upto).is_none(),
        "replay must reproduce production"
    );
    println!("\nall replays reproduce the production execution (Theorem 1) ✓");
    let events: usize = ls.logs().iter().map(|l| l.len()).sum();
    println!("({events} events per replay, {} barrier-coordinated node threads)", n);
}
