//! An interactive debugging session over a recorded production run — the
//! workflow of paper §2.1, driven through the text-command surface.
//!
//! A Fig. 4 BGP network (the XORP 0.4 MED ordering bug) is instrumented
//! with DEFINED-RB, run until the bug's trigger messages have propagated,
//! and its partial recording loaded into a DEFINED-LS debugging network.
//! The session then steps, breaks, and inspects like a distributed gdb —
//! except every replay is deterministic, so breakpoints are repeatable.
//!
//! Run with:
//!   cargo run --example interactive_debug            # canned script
//!   cargo run --example interactive_debug -- -       # read from stdin

use defined::core::debugger::Debugger;
use defined::core::session::DebugSession;
use defined::core::{DefinedConfig, LockstepNet, RbNetwork};
use defined::netsim::{NodeId, SimDuration, SimTime};
use defined::routing::bgp::{fig4_paths, BgpExt, BgpProcess, DecisionMode, Role};
use defined::topology::canonical;
use std::io::Read as _;

const PREFIX: u32 = 9;

fn processes(roles: &canonical::Fig4Roles) -> Vec<BgpProcess> {
    let internal = [roles.r1, roles.r2, roles.r3];
    (0..6u32)
        .map(|i| {
            let id = NodeId(i);
            if id == roles.er1 || id == roles.er2 {
                BgpProcess::new(id, Role::External { border: roles.r1 }, DecisionMode::BuggyIncremental)
            } else if id == roles.er3 {
                BgpProcess::new(id, Role::External { border: roles.r2 }, DecisionMode::BuggyIncremental)
            } else {
                let peers = internal.iter().copied().filter(|&p| p != id).collect();
                BgpProcess::new(id, Role::Internal { ibgp_peers: peers }, DecisionMode::BuggyIncremental)
            }
        })
        .collect()
}

fn main() {
    let (graph, roles) =
        canonical::fig4_bgp(SimDuration::from_millis(8), SimDuration::from_millis(12));
    println!("== interactive debugging of the Fig. 4 BGP network ==\n");

    // Record a production run in which the three paths are announced.
    let cfg = DefinedConfig::default();
    let procs = processes(&roles);
    let mut net =
        RbNetwork::new(&graph, cfg.clone(), 42, 0.5, move |id| procs[id.index()].clone());
    let [p1, p2, p3] = fig4_paths();
    for (er, p) in [(roles.er1, p1), (roles.er2, p2), (roles.er3, p3)] {
        net.inject_external(
            SimTime::from_millis(700),
            er,
            BgpExt::Announce { prefix: PREFIX, attrs: p },
        );
    }
    net.run_until(SimTime::from_secs(4));
    let best = net.control_plane(roles.r3).best_path(PREFIX).map(|p| p.route_id);
    println!(
        "production: R3's best path for prefix {PREFIX} is p{} (p3 is correct)\n",
        best.unwrap_or(0),
    );
    let (recording, _) = net.into_recording();

    // Load the recording into a debugging network and open a session.
    let roles2 = roles;
    let ls = LockstepNet::new(&graph, cfg, recording, move |id| {
        processes(&roles2)[id.index()].clone()
    });
    let session = DebugSession::new(Debugger::new(ls), graph.node_count());

    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "-") {
        // Interactive: feed stdin straight to the session.
        let mut input = String::new();
        std::io::stdin().read_to_string(&mut input).expect("read stdin");
        let mut session = session;
        print!("{}", session.run_script(&input));
    } else {
        // Canned demo: the commands a troubleshooter would type.
        let script = format!(
            "help\n\
             where\n\
             stepg 2                 # replay the first two groups\n\
             break node n{r3}        # stop at the node with the wrong path\n\
             run\n\
             where\n\
             inspect {r3}            # look at R3's decision state\n\
             log {r3} 4\n\
             clear\n\
             watch {r3}              # now stop whenever R3's state changes\n\
             run\n\
             unwatch\n\
             step 5\n",
            r3 = roles.r3.0,
        );
        let mut session = session;
        print!("{}", session.run_script(&script));
    }

    println!("\n(the same commands replay identically every time — Theorem 1 at work)");
}
