//! Automated fault localisation over a recording — the mechanised version
//! of the case studies' final step ("find the exact point at which the
//! software begins behaving incorrectly", paper §4).
//!
//! The Quagga RIP black hole (Fig. 5) is recorded in production, then:
//!
//! 1. `bisect::first_bad_group` binary-searches the earliest group whose
//!    replay prefix already shows the stale route — O(log groups) complete
//!    replays, each deterministic by Theorem 1;
//! 2. `bisect::first_bad_event` steps through that group and names the
//!    exact delivery;
//! 3. the patch is validated by bisecting the fixed protocol: no bad group.
//!
//! Run with: `cargo run --example fault_localization`

use defined::core::bisect::{first_bad_event, first_bad_group};
use defined::core::{DefinedConfig, LockstepNet, RbNetwork};
use defined::netsim::{NodeId, SimDuration, SimTime};
use defined::routing::rip::{RefreshMode, RipConfig, RipExt, RipProcess};
use defined::topology::canonical;

const DEST: u32 = 77;

fn spawner(
    g: &defined::topology::Graph,
    mode: RefreshMode,
) -> impl Fn(NodeId) -> RipProcess + 'static {
    let g = g.clone();
    move |id: NodeId| RipProcess::new(id, g.neighbors(id), RipConfig::emulation(mode))
}

fn main() {
    let (g, roles) = canonical::fig5_rip(SimDuration::from_millis(10));
    println!("== automated localisation of the Quagga RIP black hole ==\n");

    // Record the production run: destination attached, main router dies.
    let cfg = DefinedConfig::default();
    let mut net = RbNetwork::new(&g, cfg.clone(), 2, 0.6, spawner(&g, RefreshMode::DestinationOnly));
    net.inject_external(SimTime::from_millis(100), roles.dest, RipExt::Connect { prefix: DEST });
    net.schedule_node(SimTime::from_secs(8), roles.r2, false);
    net.run_until(SimTime::from_secs(26));
    let via = net.control_plane(roles.r1).route(DEST).and_then(|r| r.next_hop);
    println!("production: R1 routes the prefix via {via:?} (R2 = {:?} is dead) — black hole\n", roles.r2);
    let (rec, _) = net.into_recording();
    println!(
        "partial recording: {} externals, {} ticks, {} groups, {} death cut(s)\n",
        rec.externals.len(),
        rec.ticks.len(),
        rec.last_group,
        rec.mutes.len(),
    );

    // Step 1: group-level bisection.
    let dead_at = rec
        .mutes
        .iter()
        .find(|m| m.node == roles.r2)
        .and_then(|m| m.allowed.iter().map(|k| k.group()).max())
        .expect("R2's death cut");
    let horizon = dead_at + 20;
    let (r1, r2) = (roles.r1, roles.r2);
    let bad = move |ls: &LockstepNet<RipProcess>| {
        ls.current_group() > horizon
            && ls.control_plane(r1).route(DEST).and_then(|r| r.next_hop) == Some(r2)
    };
    let report = first_bad_group(&g, &cfg, &rec, spawner(&g, RefreshMode::DestinationOnly), bad)
        .expect("black hole must reproduce in the debugging network");
    println!(
        "bisection: first bad group = {} (R2 died in group {}), using {} replays of ≤{} groups",
        report.first_bad_group, dead_at, report.replays, rec.last_group,
    );

    // Step 2: event-level localisation of the route install (how R1 came to
    // depend on R2 in the first place).
    let has_route =
        move |ls: &LockstepNet<RipProcess>| ls.control_plane(r1).route(DEST).is_some();
    let install = first_bad_group(&g, &cfg, &rec, spawner(&g, RefreshMode::DestinationOnly), has_route)
        .expect("route is installed at some group");
    let (ev, ls) = first_bad_event(
        &g,
        &cfg,
        &rec,
        spawner(&g, RefreshMode::DestinationOnly),
        install.first_bad_group,
        has_route,
    )
    .expect("exact install event");
    println!(
        "install event: group {} chain {} at {:?} (class {:?}) — R1 learned the route here",
        ev.group, ev.chain, ev.node, ev.record.ann.class,
    );
    println!(
        "  at that instant R1's table: via {:?}, metric {:?}\n",
        ls.control_plane(r1).route(DEST).and_then(|r| r.next_hop),
        ls.control_plane(r1).route(DEST).map(|r| r.metric),
    );

    // Step 3: validate the patch by bisecting the fixed protocol.
    let fixed = first_bad_group(
        &g,
        &cfg,
        &rec,
        spawner(&g, RefreshMode::DestinationAndNextHop),
        bad,
    );
    match fixed {
        None => println!("patched protocol (match destination AND next hop): no bad group ✓"),
        Some(r) => println!("patch FAILED: still bad at group {}", r.first_bad_group),
    }
}
