//! Profiles the Fig. 8 scaling workload (`fig8_size/rb_oo_2s`) with the
//! obs substrate: one RB production run per network size, top-3 span and
//! counter attribution from registry deltas (ROADMAP item 4's "profile"
//! half — the EXPERIMENTS.md fig8 row records what this prints).
//!
//! Run with: `cargo run --release --example obs_profile`
//!
//! Flags:
//!
//! * `--quick` — profile only n=20 (the CI-sized run);
//! * `--check <pct>` — scale-regression guard: exit non-zero if the
//!   `ckpt.capture` span's share of any profiled run exceeds `<pct>`
//!   percent. CI runs `--quick --check` with the checked-in threshold so a
//!   change that re-inflates the checkpoint hot path fails the build.

use defined::core::config::CapturePolicy;
use defined::core::{DefinedConfig, OrderingMode, RbNetwork};
use defined::netsim::{NodeId, SimDuration, SimTime};
use defined::obs;
use defined::routing::ospf::{OspfConfig, OspfProcess};
use defined::topology::brite;
use std::process::ExitCode;

/// The exact workload of `fig8_size/rb_oo_2s` in `crates/bench`, under the
/// production capture policy (churn-adaptive, page-diff checkpoints).
fn rb_run(n: usize) -> defined::core::RbMetrics {
    let g = brite::barabasi_albert(n, 2, 80 + n as u64);
    let f = OspfProcess::for_graph(&g, OspfConfig::stress(n));
    let spawn: Vec<OspfProcess> = (0..n).map(|i| f(NodeId(i as u32))).collect();
    let cfg = DefinedConfig {
        ordering: OrderingMode::Optimized,
        strategy: defined::checkpoint::Strategy::MemIntercept,
        capture: CapturePolicy::auto(),
        commit_horizon: Some(SimDuration::from_secs(2)),
        ..DefinedConfig::default()
    };
    let mut net = RbNetwork::new(&g, cfg, 5, 0.3, move |id| spawn[id.index()].clone());
    net.run_until(SimTime::from_secs(2));
    net.total_metrics()
}

fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns}ns"),
        10_000..=9_999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        10_000_000..=9_999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: obs_profile [--quick] [--check <max-capture-pct>]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut check: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--check" => match args.next().map(|v| v.parse::<u64>()) {
                Some(Ok(pct)) if pct <= 100 => check = Some(pct),
                _ => return usage(),
            },
            _ => return usage(),
        }
    }

    obs::set_enabled(true);
    println!("== Profiling fig8_size/rb_oo_2s (RB production, 2 sim-seconds) ==");

    let sizes: &[usize] = if quick { &[20] } else { &[20, 40] };
    let mut worst_capture_pct = 0u64;
    for &n in sizes {
        let before = obs::global().snapshot();
        let metrics = {
            let _run = obs::span!("profile.rb_run");
            rb_run(n)
        };
        let after = obs::global().snapshot();

        // Delta spans, attributed against the whole-run span.
        let total_ns = after
            .spans
            .get("profile.rb_run")
            .map_or(0, |s| s.total_ns)
            - before.spans.get("profile.rb_run").map_or(0, |s| s.total_ns);
        let mut spans: Vec<(String, u64, u64)> = after
            .spans
            .iter()
            .filter(|(name, _)| name.as_str() != "profile.rb_run")
            .map(|(name, s)| {
                let b = before.spans.get(name);
                (
                    name.clone(),
                    s.count - b.map_or(0, |b| b.count),
                    s.total_ns - b.map_or(0, |b| b.total_ns),
                )
            })
            .filter(|(_, count, _)| *count > 0)
            .collect();
        spans.sort_by_key(|(_, _, ns)| std::cmp::Reverse(*ns));

        let mut counters: Vec<(String, u64)> = after
            .counters
            .iter()
            .map(|(name, v)| (name.clone(), v - before.counter(name)))
            .filter(|(_, delta)| *delta > 0)
            .collect();
        counters.sort_by_key(|(_, delta)| std::cmp::Reverse(*delta));

        println!(
            "\nn={n}: {} wall, {} fast-path deliveries, {} rollback(s), \
             {} rolled entries ({} skipped by {} jumps)",
            fmt_ns(total_ns),
            metrics.fast_path,
            metrics.rollbacks,
            metrics.rolled_entries,
            metrics.jumped_entries,
            metrics.jumps
        );
        println!("  top spans (of {} run time):", fmt_ns(total_ns));
        for (name, count, ns) in spans.iter().take(3) {
            let pct = (ns * 100).checked_div(total_ns).unwrap_or(0);
            println!("    {name:<28} {:>8} total ({pct:>2}% of run), {count} call(s)", fmt_ns(*ns));
        }
        println!("  top counters:");
        for (name, delta) in counters.iter().take(3) {
            println!("    {name:<28} +{delta}");
        }

        // The guard metric: what share of the run the capture path took.
        let capture_ns = spans
            .iter()
            .find(|(name, _, _)| name == "ckpt.capture")
            .map_or(0, |(_, _, ns)| *ns);
        let capture_pct = (capture_ns * 100).checked_div(total_ns).unwrap_or(0);
        let stored = after.counter("ckpt.bytes_stored") - before.counter("ckpt.bytes_stored");
        println!("  ckpt.capture share: {capture_pct}%  ckpt.bytes_stored: +{stored}");
        worst_capture_pct = worst_capture_pct.max(capture_pct);
    }

    if let Some(max_pct) = check {
        if worst_capture_pct > max_pct {
            eprintln!(
                "FAIL: ckpt.capture took {worst_capture_pct}% of a profiled run \
                 (threshold {max_pct}%) — the checkpoint hot path regressed"
            );
            return ExitCode::FAILURE;
        }
        println!("\ncheck ok: ckpt.capture share {worst_capture_pct}% <= {max_pct}%");
    }
    ExitCode::SUCCESS
}
