//! `defined-dbg` — record a production scenario and debug its recording
//! interactively, the paper's full workflow as a command-line tool.
//!
//! ```text
//! defined-dbg record  <scenario> <recording-file> [--seed <u64>]
//! defined-dbg debug   <scenario> <recording-file> [script-file]
//! defined-dbg explore <scenario> [--salts <n>] [--jobs <n>]
//! defined-dbg bisect  <scenario> [--jobs <n>]
//! defined-dbg scenarios
//! ```
//!
//! `<scenario>` is either a name from the bundled registry (`defined-dbg
//! scenarios` lists them) or a path to a `.scn` scenario file (see the
//! `scenario::scn` module docs for the format). Scenarios bundle a
//! topology, a protocol, a workload of external events, a fault schedule,
//! and an outcome probe.
//!
//! `record` runs the DEFINED-RB-instrumented production network and writes
//! the partial recording (external events, losses, death cuts, beacon tick
//! schedule) to the file; `--seed` overrides the scenario's network-
//! nondeterminism seed — sweeping it must not change the committed
//! execution. `debug` rebuilds the debugging network from the same
//! scenario, loads the recording, and drives a `DebugSession` with commands
//! from the script file (or stdin when omitted) — `help` lists them.
//! Replays are deterministic, so sessions are exactly repeatable.
//!
//! Sessions are also *reversible*: `rstep [n]`, `rcont`, and `goto P` walk
//! execution backward over periodic whole-network checkpoints, so any
//! recorded scenario can be navigated in either direction; stepping
//! forward again reproduces the original transcript byte for byte.
//!
//! `explore` and `bisect` mechanise the troubleshooter: both record the
//! scenario in-process and compile its outcome probe into a search
//! predicate run on the parallel replay farm. `explore` sweeps salted
//! ordering functions for one that changes the outcome (the paper's §4
//! masked-bug discussion); `bisect` finds the earliest group — and the
//! exact delivery — at which the final outcome was established. `--jobs`
//! chooses the worker count and never changes the answer: the farm reports
//! the earliest divergent salt and a job-count-invariant bisection.

use defined::scenario::{self, Scenario};
use std::io::Read as _;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: defined-dbg record  <scenario> <recording-file> [--seed <u64>]\n\
         \x20      defined-dbg debug   <scenario> <recording-file> [script-file]\n\
         \x20      defined-dbg explore <scenario> [--salts <n>] [--jobs <n>]\n\
         \x20      defined-dbg bisect  <scenario> [--jobs <n>]\n\
         \x20      defined-dbg scenarios\n\
         \n\
         <scenario> is a registry name (see `defined-dbg scenarios`) or a .scn file path"
    );
    ExitCode::FAILURE
}

/// Resolves a scenario argument: a registry name, else a `.scn` file path
/// (anything that ends in `.scn` or names an existing file). Registry first,
/// so a stray file in the working directory cannot shadow a scenario name.
fn resolve(arg: &str) -> Result<Scenario, String> {
    if let Some(scn) = scenario::find(arg) {
        return Ok(scn);
    }
    if arg.ends_with(".scn") || std::path::Path::new(arg).exists() {
        let text = std::fs::read_to_string(arg).map_err(|e| format!("{arg}: {e}"))?;
        scenario::scn::parse(&text).map_err(|e| format!("{arg}: {e}"))
    } else {
        Err(format!("unknown scenario: {arg} (try `defined-dbg scenarios`)"))
    }
}

fn list_scenarios() -> ExitCode {
    let reg = scenario::registry();
    let width = reg.iter().map(|s| s.name.len()).max().unwrap_or(0);
    for s in &reg {
        println!("{:width$}  {}", s.name, s.description);
    }
    ExitCode::SUCCESS
}

fn record(scn: &Scenario, path: &str) -> Result<ExitCode, String> {
    let run = scn.record_run().map_err(|e| e.to_string())?;
    std::fs::write(path, &run.bytes).map_err(|e| format!("{path}: {e}"))?;
    println!("{} -> {path}", run.summary(&scn.name));
    if let Some(outcome) = &run.outcome {
        println!("production outcome: {outcome}");
    }
    Ok(ExitCode::SUCCESS)
}

fn read_script(arg: Option<&str>) -> Result<String, String> {
    match arg {
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}")),
        None => {
            let mut s = String::new();
            std::io::stdin().read_to_string(&mut s).map_err(|e| e.to_string())?;
            Ok(s)
        }
    }
}

fn debug(scn: &Scenario, rec_path: &str, script: Option<&str>) -> Result<ExitCode, String> {
    let bytes = std::fs::read(rec_path).map_err(|e| format!("{rec_path}: {e}"))?;
    let script = read_script(script)?;
    match scn.debug_transcript(&bytes, &script) {
        Ok(transcript) => {
            print!("{transcript}");
            Ok(ExitCode::SUCCESS)
        }
        Err(e) => {
            eprintln!("{rec_path}: {e}");
            Ok(ExitCode::FAILURE)
        }
    }
}

/// Default ordering-sweep width for `explore` when `--salts` is omitted.
const DEFAULT_SALTS: u64 = 32;

fn explore(scn: &Scenario, salts: u64, jobs: usize) -> Result<ExitCode, String> {
    let run = scn.record_run().map_err(|e| e.to_string())?;
    println!("{}", run.summary(&scn.name));
    let report = scn.explore_run(&run.bytes, salts, jobs).map_err(|e| e.to_string())?;
    print!("{}", report.render());
    Ok(ExitCode::SUCCESS)
}

fn bisect(scn: &Scenario, jobs: usize) -> Result<ExitCode, String> {
    let run = scn.record_run().map_err(|e| e.to_string())?;
    println!("{}", run.summary(&scn.name));
    match scn.bisect_run(&run.bytes, jobs).map_err(|e| e.to_string())? {
        Some(summary) => {
            print!("{}", summary.render());
            Ok(ExitCode::SUCCESS)
        }
        None => {
            eprintln!("{}: the recording has no groups to bisect", scn.name);
            Ok(ExitCode::FAILURE)
        }
    }
}

/// Pulls a `--<name> <u64>` pair out of the argument list.
fn take_flag(args: &mut Vec<String>, name: &str) -> Result<Option<u64>, String> {
    let flag = format!("--{name}");
    let Some(pos) = args.iter().position(|a| *a == flag) else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    let parsed = value.parse().map_err(|_| format!("{flag} {value}: not a u64"))?;
    Ok(Some(parsed))
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Flags belong to specific verbs; anywhere else they must be a usage
    // error, not a silently ignored argument.
    let verb = args.first().cloned().unwrap_or_default();
    type Flags = (Option<u64>, Option<u64>, Option<u64>);
    let flags: Result<Flags, String> = (|| {
        let seed = if verb == "record" { take_flag(&mut args, "seed")? } else { None };
        let salts = if verb == "explore" { take_flag(&mut args, "salts")? } else { None };
        let jobs = if verb == "explore" || verb == "bisect" {
            take_flag(&mut args, "jobs")?
        } else {
            None
        };
        Ok((seed, salts, jobs))
    })();
    let (seed, salts, jobs) = match flags {
        Ok(f) => f,
        Err(e) => {
            eprintln!("defined-dbg: {e}");
            return ExitCode::FAILURE;
        }
    };
    let jobs = jobs.unwrap_or(1).max(1) as usize;
    let result = match args.as_slice() {
        [cmd] if cmd == "scenarios" => return list_scenarios(),
        [cmd, scenario_arg, path] if cmd == "record" => resolve(scenario_arg).and_then(|mut scn| {
            if let Some(s) = seed {
                scn = scn.with_seed(s);
            }
            record(&scn, path)
        }),
        [cmd, scenario_arg, path, rest @ ..] if cmd == "debug" && rest.len() <= 1 => {
            let script = rest.first().map(|s| s.as_str());
            resolve(scenario_arg).and_then(|scn| debug(&scn, path, script))
        }
        [cmd, scenario_arg] if cmd == "explore" => resolve(scenario_arg)
            .and_then(|scn| explore(&scn, salts.unwrap_or(DEFAULT_SALTS), jobs)),
        [cmd, scenario_arg] if cmd == "bisect" => {
            resolve(scenario_arg).and_then(|scn| bisect(&scn, jobs))
        }
        _ => return usage(),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("defined-dbg: {e}");
            ExitCode::FAILURE
        }
    }
}
