//! `defined-dbg` — record a production scenario and debug its recording
//! interactively, the paper's full workflow as a command-line tool.
//!
//! ```text
//! defined-dbg record  <scenario> [recording-file] [--out <run.drec>] [--seed <u64>] [--shards <n>]
//! defined-dbg debug   <scenario> <recording-file> [script-file] [--shards <n>]
//! defined-dbg replay  <scenario> <recording-file> [--shards <n>]
//! defined-dbg explore <scenario> [recording-file] [--salts <n>] [--jobs <n>] [--shards <n>]
//! defined-dbg bisect  <scenario> [recording-file] [--jobs <n>] [--shards <n>]
//! defined-dbg verify  <run.drec> [--scenario <name>] [--shards <n>]
//! defined-dbg check-profile <profile.json>
//! defined-dbg scenarios
//! ```
//!
//! `record`, `debug`, `replay`, `explore`, and `bisect` additionally accept
//! `--ckpt-interval <n>|auto`, overriding the scenario's checkpoint-capture
//! policy: capture before every n-th delivery, or adapt the interval to the
//! observed rollback churn (DESIGN.md §13). Like `--seed`, the policy is
//! sweepable — the committed execution never depends on it — and the
//! effective policy is echoed in the `gvt:` line.
//!
//! Every run verb additionally accepts the observability flags (DESIGN.md
//! §11): `--profile` prints a human metric summary after the run,
//! `--profile-json <path>` writes the machine-readable dump, and
//! `--trace-out <path>` captures Chrome trace events (open in
//! `about:tracing` or Perfetto for a per-shard flamegraph). None of them
//! perturbs the run: commit logs, transcripts, and reports are
//! byte-identical with or without them (`tests/obs_determinism.rs`).
//! `check-profile` validates a `--profile-json` dump from a record+replay
//! run — the CI step that keeps the JSON schema honest.
//!
//! `<scenario>` is either a name from the bundled registry (`defined-dbg
//! scenarios` lists them) or a path to a `.scn` scenario file (see the
//! `scenario::scn` module docs for the format). Scenarios bundle a
//! topology, a protocol, a workload of external events, a fault schedule,
//! and an outcome probe.
//!
//! `record` runs the DEFINED-RB-instrumented production network and writes
//! the partial recording (external events, losses, death cuts, beacon tick
//! schedule) to the file; `--seed` overrides the scenario's network-
//! nondeterminism seed — sweeping it must not change the committed
//! execution. With `--out <run.drec>` the recording is additionally (or
//! instead) *streamed* into the append-only crash-safe store format
//! (DESIGN.md §12) as the run progresses: committed frames are fsynced at
//! every sync point, so killing the recorder mid-run leaves a recoverable
//! prefix rather than nothing. `debug` rebuilds the debugging network from
//! the same scenario, loads the recording, and drives a `DebugSession`
//! with commands from the script file (or stdin when omitted) — `help`
//! lists them. Replays are deterministic, so sessions are exactly
//! repeatable.
//!
//! Every verb that reads a recording file accepts both formats
//! transparently — the raw `record` output and a `.drec` store (sniffed by
//! magic). A store with a torn tail is recovered to its last sync point
//! with a warning on stderr; mid-file corruption is a typed error, never a
//! panic and never a silently wrong replay. `replay` re-executes a
//! recording in lockstep without an interactive session. `verify` is the
//! store's integrity gate: it checks every frame CRC and the writer's
//! self-check tallies, then replays the recording and compares the commit
//! logs entry-by-entry against the logs the production run stored,
//! exiting non-zero on any mismatch (the scenario defaults to the name in
//! the store's meta frame; `--scenario` overrides it).
//!
//! Sessions are also *reversible*: `rstep [n]`, `rcont`, and `goto P` walk
//! execution backward over periodic whole-network checkpoints, so any
//! recorded scenario can be navigated in either direction; stepping
//! forward again reproduces the original transcript byte for byte.
//!
//! `explore` and `bisect` mechanise the troubleshooter: both record the
//! scenario in-process and compile its outcome probe into a search
//! predicate run on the parallel replay farm. `explore` sweeps salted
//! ordering functions for one that changes the outcome (the paper's §4
//! masked-bug discussion); `bisect` finds the earliest group — and the
//! exact delivery — at which the final outcome was established. `--jobs`
//! chooses the farm worker count and never changes the answer: the farm
//! reports the earliest divergent salt and a job-count-invariant bisection.
//! When `--jobs` is omitted (or `0`), one worker per available core is
//! used.
//!
//! `--shards` splits each individual replay across worker shards
//! (`ShardedNet`): every lockstep wave is block-partitioned over the nodes
//! and the shards' outputs are re-merged in deterministic `OrderKey` order,
//! so commit logs, transcripts, and search reports are byte-identical for
//! every shard count. `--shards 0` means one shard per available core;
//! omitting the flag keeps the replay serial. On `record`, `--shards <n>`
//! additionally replays the fresh recording `n`-way sharded and verifies
//! the logs against the production commits before reporting success.

use defined::core::config::CapturePolicy;
use defined::scenario::{self, Scenario};
use std::io::Read as _;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: defined-dbg record  <scenario> [recording-file] [--out <run.drec>] [--seed <u64>] [--shards <n>]\n\
         \x20      defined-dbg debug   <scenario> <recording-file> [script-file] [--shards <n>]\n\
         \x20      defined-dbg replay  <scenario> <recording-file> [--shards <n>]\n\
         \x20      defined-dbg explore <scenario> [recording-file] [--salts <n>] [--jobs <n>] [--shards <n>]\n\
         \x20      defined-dbg bisect  <scenario> [recording-file] [--jobs <n>] [--shards <n>]\n\
         \x20      defined-dbg verify  <run.drec> [--scenario <name>] [--shards <n>]\n\
         \x20      defined-dbg check-profile <profile.json>\n\
         \x20      defined-dbg scenarios\n\
         \n\
         <scenario> is a registry name (see `defined-dbg scenarios`) or a .scn file path\n\
         recording files may be raw `record` output or a crash-safe .drec store (--out)\n\
         --jobs 0 / --shards 0 mean one worker per available core\n\
         run verbs (except verify) also accept --ckpt-interval <n>|auto\n\
         run verbs also accept --profile, --profile-json <path>, --trace-out <path>"
    );
    ExitCode::FAILURE
}

/// Resolves a scenario argument: a registry name, else a `.scn` file path
/// (anything that ends in `.scn` or names an existing file). Registry first,
/// so a stray file in the working directory cannot shadow a scenario name.
fn resolve(arg: &str) -> Result<Scenario, String> {
    if let Some(scn) = scenario::find(arg) {
        return Ok(scn);
    }
    if arg.ends_with(".scn") || std::path::Path::new(arg).exists() {
        let text = std::fs::read_to_string(arg).map_err(|e| format!("{arg}: {e}"))?;
        scenario::scn::parse(&text).map_err(|e| format!("{arg}: {e}"))
    } else {
        Err(format!("unknown scenario: {arg} (try `defined-dbg scenarios`)"))
    }
}

fn list_scenarios() -> ExitCode {
    let reg = scenario::registry();
    let width = reg.iter().map(|s| s.name.len()).max().unwrap_or(0);
    for s in &reg {
        println!("{:width$}  {}", s.name, s.description);
    }
    ExitCode::SUCCESS
}

/// Renders the production run's GVT progression from the obs counters —
/// one code path for every subcommand (`record_typed` publishes the bound
/// into the substrate; anything that recorded surfaces it here, and a
/// pure replay with no production half prints nothing).
fn print_gvt_line(capture: CapturePolicy) {
    let snap = defined::obs::global().snapshot();
    if snap.counter("gvt.samples") == 0 {
        return;
    }
    println!(
        "gvt: bound {} -> {} over {} samples ({}), floor {}, {} rollback(s), capture {}",
        snap.counter("gvt.bound_first"),
        snap.counter("gvt.bound"),
        snap.counter("gvt.samples"),
        if snap.counter("gvt.regressions") == 0 { "monotone" } else { "NOT monotone" },
        snap.counter("gvt.floor"),
        snap.counter("rb.rollbacks"),
        capture,
    );
}

fn record(
    scn: &Scenario,
    path: Option<&str>,
    out: Option<&str>,
    shards: Option<usize>,
) -> Result<ExitCode, String> {
    let run = match out {
        Some(store_path) => scn
            .record_run_to_store(std::path::Path::new(store_path))
            .map_err(|e| format!("{store_path}: {e}"))?,
        None => scn.record_run().map_err(|e| e.to_string())?,
    };
    if let Some(path) = path {
        std::fs::write(path, &run.bytes).map_err(|e| format!("{path}: {e}"))?;
    }
    let dest = out.or(path).expect("record has at least one output");
    println!("{} -> {dest}", run.summary(&scn.name));
    print_gvt_line(scn.capture);
    if let Some(outcome) = &run.outcome {
        println!("production outcome: {outcome}");
    }
    if let Some(shards) = shards {
        // Self-check: replay the fresh recording sharded and hold it to
        // Theorem 1 against the production commit logs.
        let shards = defined::core::resolve_workers(shards);
        let logs = scn.replay_logs_sharded(&run.bytes, shards).map_err(|e| e.to_string())?;
        if let Some(d) = defined::core::ls::first_divergence(&run.logs, &logs, run.upto) {
            eprintln!("{}: sharded replay diverged from production: {d:?}", scn.name);
            return Ok(ExitCode::FAILURE);
        }
        println!("sharded replay check: {shards} shard(s), identical to production");
    }
    Ok(ExitCode::SUCCESS)
}

fn read_script(arg: Option<&str>) -> Result<String, String> {
    match arg {
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}")),
        None => {
            let mut s = String::new();
            std::io::stdin().read_to_string(&mut s).map_err(|e| e.to_string())?;
            Ok(s)
        }
    }
}

/// Warns (stderr) when a store file needed torn-tail recovery, so a
/// replay of the durable prefix is never mistaken for the full run. A
/// structurally corrupt store stays silent here — the verb's own open
/// will surface the typed error.
fn warn_recovered(path: &str, bytes: &[u8]) {
    if !defined::store::is_store(bytes) {
        return;
    }
    if let Ok(info) = defined::store::scan(bytes) {
        if !info.finished {
            eprintln!(
                "{path}: torn tail recovered — replaying the durable prefix through \
                 group {} ({} byte(s) past the last sync point discarded)",
                info.synced_group, info.recovered_tail_bytes
            );
        }
    }
}

fn debug(
    scn: &Scenario,
    rec_path: &str,
    script: Option<&str>,
    shards: usize,
) -> Result<ExitCode, String> {
    let bytes = std::fs::read(rec_path).map_err(|e| format!("{rec_path}: {e}"))?;
    warn_recovered(rec_path, &bytes);
    let script = read_script(script)?;
    match scn.debug_transcript_sharded(&bytes, &script, shards) {
        Ok(transcript) => {
            print!("{transcript}");
            print_gvt_line(scn.capture);
            Ok(ExitCode::SUCCESS)
        }
        Err(e) => {
            eprintln!("{rec_path}: {e}");
            Ok(ExitCode::FAILURE)
        }
    }
}

/// Default ordering-sweep width for `explore` when `--salts` is omitted.
const DEFAULT_SALTS: u64 = 32;

/// The recording bytes a search verb operates on: loaded from a file when
/// one was given (skipping the re-record), freshly recorded otherwise.
fn search_bytes(scn: &Scenario, rec_path: Option<&str>) -> Result<Vec<u8>, String> {
    match rec_path {
        Some(path) => {
            let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
            warn_recovered(path, &bytes);
            Ok(bytes)
        }
        None => {
            let run = scn.record_run().map_err(|e| e.to_string())?;
            println!("{}", run.summary(&scn.name));
            print_gvt_line(scn.capture);
            Ok(run.bytes)
        }
    }
}

fn explore(
    scn: &Scenario,
    rec_path: Option<&str>,
    salts: u64,
    farm: &defined::core::FarmConfig,
) -> Result<ExitCode, String> {
    let bytes = search_bytes(scn, rec_path)?;
    let report = scn.explore_run(&bytes, salts, farm).map_err(|e| e.to_string())?;
    print!("{}", report.render());
    Ok(ExitCode::SUCCESS)
}

fn replay(scn: &Scenario, rec_path: &str, shards: usize) -> Result<ExitCode, String> {
    let bytes = std::fs::read(rec_path).map_err(|e| format!("{rec_path}: {e}"))?;
    warn_recovered(rec_path, &bytes);
    let logs = scn.replay_logs_sharded(&bytes, shards).map_err(|e| format!("{rec_path}: {e}"))?;
    let entries: usize = logs.iter().map(Vec::len).sum();
    println!("replayed {}: {} node(s), {} committed entries", scn.name, logs.len(), entries);
    Ok(ExitCode::SUCCESS)
}

fn verify(rec_path: &str, scenario: Option<&str>, shards: usize) -> Result<ExitCode, String> {
    let bytes = std::fs::read(rec_path).map_err(|e| format!("{rec_path}: {e}"))?;
    if !defined::store::is_store(&bytes) {
        return Err(format!("{rec_path}: not a recording store (missing DREC magic)"));
    }
    let name = match scenario {
        Some(name) => name.to_string(),
        None => {
            let info = defined::store::scan(&bytes).map_err(|e| format!("{rec_path}: {e}"))?;
            info.scenario
        }
    };
    let scn = resolve(&name)?;
    match scn.verify_store(&bytes, shards) {
        Ok(report) => {
            print!("{}", report.render());
            Ok(if report.ok() { ExitCode::SUCCESS } else { ExitCode::FAILURE })
        }
        Err(e) => {
            eprintln!("{rec_path}: {e}");
            Ok(ExitCode::FAILURE)
        }
    }
}

fn bisect(
    scn: &Scenario,
    rec_path: Option<&str>,
    farm: &defined::core::FarmConfig,
) -> Result<ExitCode, String> {
    let bytes = search_bytes(scn, rec_path)?;
    match scn.bisect_run(&bytes, farm).map_err(|e| e.to_string())? {
        Some(summary) => {
            print!("{}", summary.render());
            Ok(ExitCode::SUCCESS)
        }
        None => {
            eprintln!("{}: the recording has no groups to bisect", scn.name);
            Ok(ExitCode::FAILURE)
        }
    }
}

/// Pulls a `--<name> <u64>` pair out of the argument list.
fn take_flag(args: &mut Vec<String>, name: &str) -> Result<Option<u64>, String> {
    let flag = format!("--{name}");
    let Some(pos) = args.iter().position(|a| *a == flag) else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    let parsed = value.parse().map_err(|_| format!("{flag} {value}: not a u64"))?;
    Ok(Some(parsed))
}

/// Pulls a `--<name> <path>` pair out of the argument list.
fn take_path_flag(args: &mut Vec<String>, name: &str) -> Result<Option<String>, String> {
    let flag = format!("--{name}");
    let Some(pos) = args.iter().position(|a| *a == flag) else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Ok(Some(value))
}

/// Pulls a bare `--<name>` switch out of the argument list.
fn take_switch(args: &mut Vec<String>, name: &str) -> bool {
    let flag = format!("--{name}");
    match args.iter().position(|a| *a == flag) {
        Some(pos) => {
            args.remove(pos);
            true
        }
        None => false,
    }
}

/// Where a run's observability is surfaced (DESIGN.md §11). Reporting
/// only: none of these change what the run computes.
#[derive(Default)]
struct ObsOpts {
    profile: bool,
    profile_json: Option<String>,
    trace_out: Option<String>,
}

/// Writes the requested observability artifacts after a run.
fn emit_obs(opts: &ObsOpts) -> Result<(), String> {
    if !opts.profile && opts.profile_json.is_none() && opts.trace_out.is_none() {
        return Ok(());
    }
    let snap = defined::obs::global().snapshot();
    if opts.profile {
        print!("{}", snap.render_profile());
    }
    if let Some(path) = &opts.profile_json {
        std::fs::write(path, snap.to_json()).map_err(|e| format!("{path}: {e}"))?;
    }
    if let Some(path) = &opts.trace_out {
        let events = defined::obs::take_events();
        std::fs::write(path, defined::obs::chrome_trace_json(&events))
            .map_err(|e| format!("{path}: {e}"))?;
    }
    Ok(())
}

/// Validates a `--profile-json` dump from a record+replay run: the schema
/// version, the three sections, and the counters/spans CI depends on.
fn check_profile(path: &str) -> Result<ExitCode, String> {
    use defined::obs::json::Value;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let v = defined::obs::json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    if v.get("version").and_then(Value::as_u64) != Some(1) {
        return Err(format!("{path}: missing or unsupported profile schema version"));
    }
    let section = |key: &str| match v.get(key) {
        Some(Value::Obj(m)) => Ok(m.len()),
        _ => Err(format!("{path}: missing `{key}` section")),
    };
    let n_counters = section("counters")?;
    let n_spans = section("spans")?;
    let n_hists = section("histograms")?;
    let counters = v.get("counters").expect("checked");
    for name in
        ["gvt.samples", "ls.waves", "ls.delivered", "wire.bytes_encoded", "wire.bytes_decoded"]
    {
        if counters.get(name).and_then(Value::as_u64).is_none() {
            return Err(format!("{path}: required counter `{name}` missing"));
        }
    }
    let span_count = v
        .get("spans")
        .and_then(|s| s.get("ls.wave"))
        .and_then(|s| s.get("count"))
        .and_then(Value::as_u64);
    if span_count.is_none() {
        return Err(format!("{path}: required span `ls.wave` missing"));
    }
    println!("{path}: valid profile ({n_counters} counters, {n_spans} spans, {n_hists} histograms)");
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Flags belong to specific verbs; anywhere else they must be a usage
    // error, not a silently ignored argument.
    let verb = args.first().cloned().unwrap_or_default();
    let run_verb =
        matches!(verb.as_str(), "record" | "debug" | "replay" | "explore" | "bisect" | "verify");
    type Flags = (
        Option<u64>,
        Option<u64>,
        Option<u64>,
        Option<u64>,
        Option<String>,
        Option<String>,
        Option<CapturePolicy>,
        ObsOpts,
    );
    let flags: Result<Flags, String> = (|| {
        let seed = if verb == "record" { take_flag(&mut args, "seed")? } else { None };
        let out = if verb == "record" { take_path_flag(&mut args, "out")? } else { None };
        // `--ckpt-interval N|auto` belongs to the verbs that build a
        // network from the scenario; a malformed value is a typed parse
        // error surfaced as a usage failure, never a panic.
        let capture = if run_verb && verb != "verify" {
            match take_path_flag(&mut args, "ckpt-interval")? {
                Some(v) => Some(v.parse::<CapturePolicy>().map_err(|e| e.to_string())?),
                None => None,
            }
        } else {
            None
        };
        let salts = if verb == "explore" { take_flag(&mut args, "salts")? } else { None };
        let jobs = if verb == "explore" || verb == "bisect" {
            take_flag(&mut args, "jobs")?
        } else {
            None
        };
        let scenario =
            if verb == "verify" { take_path_flag(&mut args, "scenario")? } else { None };
        let shards = if run_verb { take_flag(&mut args, "shards")? } else { None };
        let obs = if run_verb {
            ObsOpts {
                profile: take_switch(&mut args, "profile"),
                profile_json: take_path_flag(&mut args, "profile-json")?,
                trace_out: take_path_flag(&mut args, "trace-out")?,
            }
        } else {
            ObsOpts::default()
        };
        Ok((seed, salts, jobs, shards, out, scenario, capture, obs))
    })();
    let (seed, salts, jobs, shards, out, scenario_flag, capture, obs_opts) = match flags {
        Ok(f) => f,
        Err(e) => {
            eprintln!("defined-dbg: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Applies the `--ckpt-interval` override to a resolved scenario.
    let tuned = move |scn: Scenario| match capture {
        Some(c) => scn.with_capture(c),
        None => scn,
    };
    if obs_opts.trace_out.is_some() {
        defined::obs::set_tracing(true);
    }
    // Omitted `--jobs` means auto (`with_jobs(0)` resolves to the core
    // count); omitted `--shards` keeps each replay serial, `--shards 0`
    // means auto.
    let farm = defined::core::FarmConfig::with_jobs(jobs.unwrap_or(0) as usize)
        .with_shards(shards.unwrap_or(1) as usize);
    let result = match args.as_slice() {
        [cmd] if cmd == "scenarios" => return list_scenarios(),
        [cmd, scenario_arg, rest @ ..]
            if cmd == "record" && rest.len() <= 1 && (out.is_some() || rest.len() == 1) =>
        {
            resolve(scenario_arg).map(tuned).and_then(|mut scn| {
                if let Some(s) = seed {
                    scn = scn.with_seed(s);
                }
                record(
                    &scn,
                    rest.first().map(|s| s.as_str()),
                    out.as_deref(),
                    shards.map(|s| s as usize),
                )
            })
        }
        [cmd, scenario_arg, path, rest @ ..] if cmd == "debug" && rest.len() <= 1 => {
            let script = rest.first().map(|s| s.as_str());
            resolve(scenario_arg).map(tuned).and_then(|scn| debug(&scn, path, script, farm.shards))
        }
        [cmd, scenario_arg, path] if cmd == "replay" => {
            resolve(scenario_arg).map(tuned).and_then(|scn| replay(&scn, path, farm.shards))
        }
        [cmd, scenario_arg, rest @ ..] if cmd == "explore" && rest.len() <= 1 => {
            resolve(scenario_arg).map(tuned).and_then(|scn| {
                explore(&scn, rest.first().map(|s| s.as_str()), salts.unwrap_or(DEFAULT_SALTS), &farm)
            })
        }
        [cmd, scenario_arg, rest @ ..] if cmd == "bisect" && rest.len() <= 1 => {
            resolve(scenario_arg)
                .map(tuned)
                .and_then(|scn| bisect(&scn, rest.first().map(|s| s.as_str()), &farm))
        }
        [cmd, path] if cmd == "verify" => verify(path, scenario_flag.as_deref(), farm.shards),
        [cmd, path] if cmd == "check-profile" => check_profile(path),
        _ => return usage(),
    };
    // The observability artifacts are written after the verb, win or lose —
    // a failing run's profile is exactly the one worth reading.
    let result = result.and_then(|code| emit_obs(&obs_opts).map(|()| code));
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("defined-dbg: {e}");
            ExitCode::FAILURE
        }
    }
}
