//! `defined-dbg` — record a production scenario and debug its recording
//! interactively, the paper's full workflow as a command-line tool.
//!
//! ```text
//! defined-dbg record <scenario> <recording-file>
//! defined-dbg debug  <scenario> <recording-file> [script-file]
//! defined-dbg scenarios
//! ```
//!
//! Scenarios bundle a topology, a protocol, and a workload:
//!
//! * `rip-blackhole` — the Quagga 0.96.5 timer-refresh black hole (Fig. 5);
//! * `bgp-med`       — the XORP 0.4 MED ordering bug network (Fig. 4).
//!
//! `record` runs the DEFINED-RB-instrumented production network and writes
//! the partial recording (external events, losses, death cuts, beacon tick
//! schedule) to the file. `debug` rebuilds the debugging network from the
//! same scenario, loads the recording, and drives a [`DebugSession`] with
//! commands from the script file (or stdin when omitted) — `help` lists
//! them. Replays are deterministic, so sessions are exactly repeatable.

use defined::core::debugger::Debugger;
use defined::core::recorder::Recording;
use defined::core::session::DebugSession;
use defined::core::{DefinedConfig, LockstepNet, RbNetwork};
use defined::netsim::{NodeId, SimDuration, SimTime};
use defined::routing::bgp::{self, BgpProcess, DecisionMode, Role};
use defined::routing::rip::{RefreshMode, RipConfig, RipExt, RipProcess};
use defined::topology::{canonical, Graph};
use std::io::Read as _;
use std::process::ExitCode;

const RIP_DEST: u32 = 77;
const BGP_PREFIX: u32 = 9;

fn usage() -> ExitCode {
    eprintln!(
        "usage: defined-dbg record <scenario> <recording-file>\n\
         \x20      defined-dbg debug  <scenario> <recording-file> [script-file]\n\
         \x20      defined-dbg scenarios"
    );
    ExitCode::FAILURE
}

fn rip_graph() -> (Graph, canonical::Fig5Roles) {
    canonical::fig5_rip(SimDuration::from_millis(10))
}

fn rip_spawner(g: &Graph) -> impl Fn(NodeId) -> RipProcess + 'static {
    let g = g.clone();
    move |id| {
        RipProcess::new(id, g.neighbors(id), RipConfig::emulation(RefreshMode::DestinationOnly))
    }
}

fn bgp_graph() -> (Graph, canonical::Fig4Roles) {
    canonical::fig4_bgp(SimDuration::from_millis(8), SimDuration::from_millis(12))
}

fn bgp_spawner(roles: canonical::Fig4Roles) -> impl Fn(NodeId) -> BgpProcess + 'static {
    move |id| {
        let internal = [roles.r1, roles.r2, roles.r3];
        if id == roles.er1 || id == roles.er2 {
            BgpProcess::new(id, Role::External { border: roles.r1 }, DecisionMode::BuggyIncremental)
        } else if id == roles.er3 {
            BgpProcess::new(id, Role::External { border: roles.r2 }, DecisionMode::BuggyIncremental)
        } else {
            let peers = internal.iter().copied().filter(|&p| p != id).collect();
            BgpProcess::new(id, Role::Internal { ibgp_peers: peers }, DecisionMode::BuggyIncremental)
        }
    }
}

fn record_rip(path: &str) -> std::io::Result<()> {
    let (g, roles) = rip_graph();
    let mut net = RbNetwork::new(&g, DefinedConfig::default(), 2, 0.6, rip_spawner(&g));
    net.inject_external(SimTime::from_millis(100), roles.dest, RipExt::Connect { prefix: RIP_DEST });
    net.schedule_node(SimTime::from_secs(8), roles.r2, false);
    net.run_until(SimTime::from_secs(26));
    let via = net.control_plane(roles.r1).route(RIP_DEST).and_then(|r| r.next_hop);
    let (rec, _) = net.into_recording();
    std::fs::write(path, rec.to_bytes())?;
    println!(
        "recorded rip-blackhole: {} groups, {} externals, {} death cut(s) -> {path}",
        rec.last_group,
        rec.externals.len(),
        rec.mutes.len(),
    );
    println!("production outcome: R1 routes {RIP_DEST} via {via:?} (R2 is dead — black hole)");
    Ok(())
}

fn record_bgp(path: &str) -> std::io::Result<()> {
    let (g, roles) = bgp_graph();
    let mut net = RbNetwork::new(&g, DefinedConfig::default(), 1, 0.5, bgp_spawner(roles));
    let [p1, p2, p3] = bgp::fig4_paths();
    for (er, p) in [(roles.er1, p1), (roles.er2, p2), (roles.er3, p3)] {
        net.inject_external(
            SimTime::from_millis(700),
            er,
            bgp::BgpExt::Announce { prefix: BGP_PREFIX, attrs: p },
        );
    }
    net.run_until(SimTime::from_secs(4));
    let best = net.control_plane(roles.r3).best_path(BGP_PREFIX).map(|p| p.route_id);
    let (rec, _) = net.into_recording();
    std::fs::write(path, rec.to_bytes())?;
    println!(
        "recorded bgp-med: {} groups, {} externals -> {path}",
        rec.last_group,
        rec.externals.len(),
    );
    println!("production outcome: R3 selects p{} (p3 would be correct)", best.unwrap_or(0));
    Ok(())
}

fn read_script(arg: Option<&str>) -> std::io::Result<String> {
    match arg {
        Some(path) => std::fs::read_to_string(path),
        None => {
            let mut s = String::new();
            std::io::stdin().read_to_string(&mut s)?;
            Ok(s)
        }
    }
}

fn debug_rip(rec_path: &str, script: Option<&str>) -> std::io::Result<ExitCode> {
    let bytes = std::fs::read(rec_path)?;
    let Some(rec): Option<Recording<RipExt>> = Recording::from_bytes(&bytes) else {
        eprintln!("{rec_path}: not a rip-blackhole recording");
        return Ok(ExitCode::FAILURE);
    };
    let (g, _) = rip_graph();
    let ls = LockstepNet::new(&g, DefinedConfig::default(), rec, rip_spawner(&g));
    let mut session = DebugSession::new(Debugger::new(ls), g.node_count());
    print!("{}", session.run_script(&read_script(script)?));
    Ok(ExitCode::SUCCESS)
}

fn debug_bgp(rec_path: &str, script: Option<&str>) -> std::io::Result<ExitCode> {
    let bytes = std::fs::read(rec_path)?;
    let Some(rec): Option<Recording<bgp::BgpExt>> = Recording::from_bytes(&bytes) else {
        eprintln!("{rec_path}: not a bgp-med recording");
        return Ok(ExitCode::FAILURE);
    };
    let (g, roles) = bgp_graph();
    let ls = LockstepNet::new(&g, DefinedConfig::default(), rec, bgp_spawner(roles));
    let mut session = DebugSession::new(Debugger::new(ls), g.node_count());
    print!("{}", session.run_script(&read_script(script)?));
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.as_slice() {
        [cmd] if cmd == "scenarios" => {
            println!("rip-blackhole  Quagga 0.96.5 RIP timer-refresh black hole (Fig. 5)");
            println!("bgp-med        XORP 0.4 BGP MED ordering bug network (Fig. 4)");
            return ExitCode::SUCCESS;
        }
        [cmd, scenario, path] if cmd == "record" => match scenario.as_str() {
            "rip-blackhole" => record_rip(path).map(|()| ExitCode::SUCCESS),
            "bgp-med" => record_bgp(path).map(|()| ExitCode::SUCCESS),
            other => {
                eprintln!("unknown scenario: {other} (try `defined-dbg scenarios`)");
                return ExitCode::FAILURE;
            }
        },
        [cmd, scenario, path, rest @ ..] if cmd == "debug" && rest.len() <= 1 => {
            let script = rest.first().map(|s| s.as_str());
            match scenario.as_str() {
                "rip-blackhole" => debug_rip(path, script),
                "bgp-med" => debug_bgp(path, script),
                other => {
                    eprintln!("unknown scenario: {other} (try `defined-dbg scenarios`)");
                    return ExitCode::FAILURE;
                }
            }
        }
        _ => return usage(),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("defined-dbg: {e}");
            ExitCode::FAILURE
        }
    }
}
