//! Umbrella crate for the DEFINED reproduction.
//!
//! DEFINED (Lin et al., USENIX ATC 2013) provides deterministic execution
//! for interactive control-plane debugging: a production network is
//! instrumented so that message orderings and timer firings become
//! deterministic (DEFINED-RB), a partial recording of external events is
//! taken, and a lockstep debugging network (DEFINED-LS) reproduces the
//! execution exactly for interactive stepping.
//!
//! This crate re-exports the workspace:
//!
//! * [`netsim`] — deterministic discrete-event network simulator;
//! * [`topology`] — graphs, ISP-like topologies, trace synthesis;
//! * [`routing`] — OSPF-, BGP-, and RIP-like control planes (with the
//!   paper's case-study bugs behind toggles);
//! * [`checkpoint`] — snapshot strategies with page-level accounting;
//! * [`core`] — the DEFINED-RB and DEFINED-LS engines, the recorder, the
//!   debugger, and the threaded lockstep runtime;
//! * [`store`] — the append-only, crash-safe on-disk recording store with
//!   torn-tail recovery and fault-injectable I/O (DESIGN.md §12);
//! * [`scenario`] — the declarative scenario & fault-injection engine and
//!   its registry of named workloads;
//! * [`obs`] — the determinism-safe tracing & metrics substrate the whole
//!   stack records into (DESIGN.md §11).
//!
//! See `examples/quickstart.rs` for the end-to-end flow.

#![warn(missing_docs)]

pub use checkpoint;
pub use defined_core as core;
pub use defined_obs as obs;
pub use defined_store as store;
pub use netsim;
pub use routing;
pub use scenario;
pub use topology;
