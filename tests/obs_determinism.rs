//! Observability non-perturbation: turning the obs substrate on, off, or
//! up (tracing) is invisible in every replay-relevant output.
//!
//! This is the engineering half of Ronsse's re-run invariant — observing
//! an execution must not change it. The obs layer guarantees it by
//! construction (wall-clock reads live only inside `defined-obs`, metrics
//! are write-only from the hot path, switches gate only *recording*), and
//! these tests hold the whole stack to that contract:
//!
//! * recordings, commit logs, debug transcripts, explore/bisect farm
//!   reports, the streamed on-disk `.drec` store (byte-for-byte), and its
//!   verify report are identical with collection enabled, disabled, and
//!   with Chrome-trace capture running, across shards ∈ {1, 2} and farm
//!   jobs ∈ {1, 2} (the `--profile`/`--trace-out` CLI paths);
//! * a disabled registry records nothing at all;
//! * the log2 histogram buckets and cross-thread snapshot merging the
//!   profile report is built on behave as specified (complementing the
//!   unit suites inside `crates/obs`).
//!
//! The compiled-out leg of the contract is the workspace `obs-off`
//! feature: building with it erases every call site, so there is nothing
//! left to diverge (CI builds it; it cannot be toggled from a test).
//!
//! Tests in this binary serialise on one lock: the obs switches are
//! process-global, so a test flipping them must not interleave with the
//! others.

use defined::core::recorder::CommitRecord;
use defined::core::FarmConfig;
use defined::obs;
use defined::scenario;
use std::sync::{Mutex, MutexGuard};

fn serial_guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const SCRIPT: &str = "where\nstepg 3\nwhere\nstep 5\ninspect 0\nrun\nwhere\n";

/// Every replay-relevant artifact one scenario produces end to end.
#[derive(PartialEq, Debug)]
struct Artifacts {
    recording: Vec<u8>,
    production_logs: Vec<Vec<CommitRecord>>,
    replay_logs: Vec<Vec<CommitRecord>>,
    transcript: String,
    explore: String,
    bisect: String,
    /// The streamed `.drec` file, byte for byte — obs must not perturb
    /// what reaches the disk, not just what replays from it.
    store_bytes: Vec<u8>,
    verify: String,
}

fn run_workflow(name: &str, shards: usize, jobs: usize) -> Artifacts {
    let scn = scenario::find(name).expect("registry scenario");
    let run = scn.record_run().expect("records");
    let replay_logs = scn.replay_logs_sharded(&run.bytes, shards).expect("replays");
    let transcript =
        scn.debug_transcript_sharded(&run.bytes, SCRIPT, shards).expect("debugs");
    let farm = FarmConfig::with_jobs(jobs).with_shards(shards);
    let explore = scn.explore_run(&run.bytes, 6, &farm).expect("explores").render();
    let bisect =
        scn.bisect_run(&run.bytes, &farm).expect("bisects").expect("has groups").render();
    let path = std::env::temp_dir().join(format!("defined-obs-{name}-{shards}-{jobs}.drec"));
    let _ = scn.record_run_to_store(&path).expect("streamed record");
    let store_bytes = std::fs::read(&path).expect("store file readable");
    let _ = std::fs::remove_file(&path);
    let verify = scn.verify_store(&store_bytes, shards).expect("verify opens").render();
    Artifacts {
        recording: run.bytes,
        production_logs: run.logs,
        replay_logs,
        transcript,
        explore,
        bisect,
        store_bytes,
        verify,
    }
}

/// The headline contract: enabled vs disabled vs tracing, across shard
/// and job counts, on a scenario with rollbacks, drops, and a death cut.
#[test]
fn workflow_outputs_are_identical_with_obs_on_off_and_tracing() {
    let _serial = serial_guard();
    for shards in [1usize, 2] {
        for jobs in [1usize, 2] {
            obs::set_enabled(true);
            let on = run_workflow("rip-blackhole", shards, jobs);

            obs::set_tracing(true);
            let traced = run_workflow("rip-blackhole", shards, jobs);
            obs::set_tracing(false);
            let _ = obs::take_events(); // Drop the capture buffer.

            obs::set_enabled(false);
            let off = run_workflow("rip-blackhole", shards, jobs);
            obs::set_enabled(true);

            assert_eq!(on, off, "obs on vs off diverged (shards={shards}, jobs={jobs})");
            assert_eq!(on, traced, "tracing perturbed the run (shards={shards}, jobs={jobs})");
        }
    }
}

/// A disabled registry records nothing: counters, spans, histograms, and
/// the trace buffer all stay put while a full workflow runs.
#[test]
fn disabled_collection_records_nothing() {
    let _serial = serial_guard();
    obs::set_enabled(false);
    let before = obs::global().snapshot();
    let _ = run_workflow("rip-blackhole", 2, 2);
    let after = obs::global().snapshot();
    obs::set_enabled(true);
    for key in [
        "ls.delivered",
        "ls.waves",
        "wire.bytes_encoded",
        "gvt.samples",
        "ckpt.pool.bytes_deduped",
        "store.bytes_written",
        "store.fsync",
    ] {
        assert_eq!(
            before.counter(key),
            after.counter(key),
            "counter {key} moved while collection was off"
        );
    }
    // The call sites still register their (zeroed) cells — only the
    // recorded counts must stay put.
    assert_eq!(
        before.spans.get("ls.wave").map_or(0, |s| s.count),
        after.spans.get("ls.wave").map_or(0, |s| s.count),
        "span ls.wave recorded while collection was off"
    );
}

/// An enabled run populates the metrics every subsystem contributes —
/// the positive control for the test above.
#[test]
fn enabled_collection_covers_the_whole_stack() {
    let _serial = serial_guard();
    obs::set_enabled(true);
    let before = obs::global().snapshot();
    let _ = run_workflow("rip-blackhole", 2, 2);
    let after = obs::global().snapshot();
    for key in [
        "ls.waves",
        "ls.delivered",
        "farm.jobs_claimed",
        "ckpt.captures",
        "ckpt.pool.misses",
        "gvt.samples",
        "wire.bytes_encoded",
        "wire.bytes_decoded",
        "store.bytes_written",
        "store.fsync",
        "store.sync_points",
    ] {
        assert!(
            after.counter(key) > before.counter(key),
            "counter {key} did not advance over a full workflow"
        );
    }
    assert!(
        after.spans.get("ls.wave").map_or(0, |s| s.count)
            > before.spans.get("ls.wave").map_or(0, |s| s.count),
        "span ls.wave did not record"
    );
    // The page-pool dedup counters move together: every hit saves a page's
    // worth of bytes, so one cannot advance without the other. (Whether any
    // hit fires depends on the scenario's state size — rip-blackhole's
    // single-page node states may never dedup — so only consistency is
    // pinned here; `tests/checkpoint_model.rs` proves the sharing itself.)
    let hits = after.counter("ckpt.pool.hits") - before.counter("ckpt.pool.hits");
    let deduped =
        after.counter("ckpt.pool.bytes_deduped") - before.counter("ckpt.pool.bytes_deduped");
    assert_eq!(hits > 0, deduped > 0, "pool hits ({hits}) vs bytes_deduped ({deduped}) diverge");
    assert!(
        after.histograms.get("ls.wave_events").map_or(0, |h| h.count)
            > before.histograms.get("ls.wave_events").map_or(0, |h| h.count),
        "histogram ls.wave_events did not record"
    );
}

/// Log2 bucketing: zeros land in bucket 0, and each value `v >= 1` lands
/// in the bucket whose floor is the largest power of two `<= v`.
#[test]
fn histogram_bucketing_is_log2_exact() {
    assert_eq!(obs::bucket_index(0), 0);
    for (v, want) in [(1u64, 1usize), (2, 2), (3, 2), (4, 3), (7, 3), (8, 4), (1023, 10)] {
        assert_eq!(obs::bucket_index(v), want, "bucket_index({v})");
        assert!(obs::bucket_floor(obs::bucket_index(v)) <= v);
        assert!(v < obs::bucket_floor(obs::bucket_index(v) + 1));
    }
    assert_eq!(obs::bucket_index(u64::MAX), 64);
}

/// Snapshots taken from registries written by different threads merge to
/// the same totals a single registry would have seen.
#[test]
fn snapshots_merge_across_threads() {
    let _serial = serial_guard();
    obs::set_enabled(true);
    let a = obs::Registry::new();
    let b = obs::Registry::new();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            a.counter("merge.events").add(30);
            a.histogram("merge.sizes").record(16);
        });
        scope.spawn(|| {
            b.counter("merge.events").add(12);
            b.histogram("merge.sizes").record(1024);
            b.histogram("merge.sizes").record(16);
        });
    });
    let mut merged = a.snapshot();
    merged.merge(&b.snapshot());
    assert_eq!(merged.counter("merge.events"), 42);
    let h = merged.histograms.get("merge.sizes").expect("merged histogram");
    assert_eq!(h.count, 3);
    assert_eq!(h.sum, 16 + 1024 + 16);
    assert_eq!(h.buckets.get(&obs::bucket_index(16)), Some(&2));
}
