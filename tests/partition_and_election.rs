//! Partitions, beacon gaps, and source failover — the hard cases of
//! virtual-time maintenance (paper §2.2's leader election and footnote 2's
//! subnetwork caveat).
//!
//! These scenarios are exactly where naive beacon handling breaks: nodes cut
//! off from the source must skip ticks and jump forward on heal; a crashed
//! source must be replaced without virtual time stalling or regressing; and
//! none of it may depend on per-packet network noise, or determinism across
//! seeds — and with it Theorem 1 — would quietly rot.

use defined::core::ls::first_divergence;
use defined::core::recorder::trim_log;
use defined::core::{DefinedConfig, LockstepNet, RbNetwork};
use defined::netsim::{NodeId, SimDuration, SimTime};
use defined::routing::ospf::OspfProcess;
// The canonical OSPF spawner lives in the scenario registry.
use defined::scenario::ospf_processes as spawners;
use defined::topology::{canonical, Graph};

fn line_net(seed: u64, jitter: f64) -> (Graph, RbNetwork<OspfProcess>) {
    let g = canonical::line(6, SimDuration::from_millis(5));
    let procs = spawners(&g);
    let net = RbNetwork::new(&g, DefinedConfig::default(), seed, jitter, move |id| {
        procs[id.index()].clone()
    });
    (g, net)
}

/// A short partition (under the watchdog threshold, so no election): the far
/// side misses beacon ticks, the recording says so, and the healed node
/// jumps its virtual time forward instead of replaying the gap.
#[test]
fn short_partition_skips_ticks_and_heals() {
    let (_g, mut net) = line_net(3, 0.4);
    // Cut the line between n2 and n3 for 0.9 s (watchdog needs 1 s).
    net.schedule_link(SimTime::from_millis(2000), NodeId(2), NodeId(3), false);
    net.schedule_link(SimTime::from_millis(2900), NodeId(2), NodeId(3), true);
    net.run_until(SimTime::from_secs(6));
    let (rec, _) = net.into_recording();

    let groups_of = |node: u32| -> Vec<u64> {
        rec.ticks.iter().filter(|t| t.node == NodeId(node)).map(|t| t.group).collect()
    };
    // Node 0 (source side) ticks contiguously.
    let near = groups_of(0);
    assert!(
        near.windows(2).all(|w| w[1] == w[0] + 1),
        "source side must not skip ticks: {near:?}",
    );
    // Node 5 (far side) has a gap of roughly the partition length.
    let far = groups_of(5);
    let max_jump = far.windows(2).map(|w| w[1] - w[0]).max().unwrap_or(0);
    assert!(
        (2..=6).contains(&max_jump),
        "far side must skip ~3 ticks across the cut: jump {max_jump}, ticks {far:?}",
    );
    // No election happened: every tick still announced by the initial source.
    assert!(rec.ticks.iter().all(|t| t.source == NodeId(0)));
}

/// Theorem 1 across a partition: the lockstep replay — driven by the
/// recorded tick schedule — reproduces the production execution exactly,
/// including the virtual-time jump at the healed node.
#[test]
fn theorem1_holds_across_partition() {
    let (g, mut net) = line_net(7, 0.6);
    net.schedule_link(SimTime::from_millis(2000), NodeId(2), NodeId(3), false);
    net.schedule_link(SimTime::from_millis(4200), NodeId(2), NodeId(3), true);
    net.run_until(SimTime::from_secs(7));
    let upto = net.completed_group(2);
    let (rec, rb_logs) = net.into_recording();
    assert!(upto > 15, "run must cover the partition window: {upto}");

    let procs = spawners(&g);
    let mut ls = LockstepNet::new(&g, DefinedConfig::default(), rec, move |id| {
        procs[id.index()].clone()
    });
    ls.run_to_end();
    let div = first_divergence(&rb_logs, ls.logs(), upto);
    assert!(div.is_none(), "divergence across partition: {div:?}");
}

/// Cross-seed determinism with a partition in the middle: the committed
/// execution is a function of the recorded externals, not the jitter seed.
/// (This exact scenario regresses if beacons or anti-messages ride the
/// jittery data channel.)
#[test]
fn committed_logs_identical_across_seeds_with_partition() {
    let run = |seed: u64| {
        let (_g, mut net) = line_net(seed, 0.8);
        net.schedule_link(SimTime::from_millis(2000), NodeId(2), NodeId(3), false);
        net.schedule_link(SimTime::from_millis(4200), NodeId(2), NodeId(3), true);
        net.run_until(SimTime::from_secs(7));
        let upto = net.completed_group(2);
        (upto, net.commit_logs())
    };
    let (ua, la) = run(1);
    let (ub, lb) = run(31337);
    let upto = ua.min(ub);
    assert!(upto > 15);
    for (i, (x, y)) in la.iter().zip(lb.iter()).enumerate() {
        assert_eq!(trim_log(x, upto), trim_log(y, upto), "node {i} diverged across seeds");
    }
}

/// Source failover: when the beacon source crashes, a survivor claims the
/// role, virtual time keeps advancing at roughly the beacon rate (the
/// claimant estimates the ticks missed during the silence), and the tick
/// records name the new source.
#[test]
fn source_crash_fails_over_without_stalling_virtual_time() {
    let (_g, mut net) = line_net(5, 0.3);
    net.schedule_node(SimTime::from_secs(3), NodeId(0), false);
    net.run_until(SimTime::from_secs(10));
    // 10 s at 4 groups/s = ~40 groups; allow a couple of beacon intervals
    // for the watchdog + claim back-off dead time.
    for i in 1..6u32 {
        let grp = net.sim().process(NodeId(i)).current_group();
        assert!(grp >= 33, "node {i} stalled at group {grp} after failover");
    }
    let (rec, _) = net.into_recording();
    // The tick schedule switches source: n0 before the crash, a survivor
    // afterwards (n1 has the shortest claim back-off).
    let sources: Vec<NodeId> = {
        let mut s: Vec<NodeId> =
            rec.ticks.iter().filter(|t| t.node == NodeId(3)).map(|t| t.source).collect();
        s.dedup();
        s
    };
    assert_eq!(sources, vec![NodeId(0), NodeId(1)], "failover must hand over to n1");
}

/// Failover is itself deterministic: different jitter seeds elect the same
/// claimant at the same group and commit identical logs.
#[test]
fn failover_is_deterministic_across_seeds() {
    let run = |seed: u64| {
        let (_g, mut net) = line_net(seed, 0.7);
        net.schedule_node(SimTime::from_secs(3), NodeId(0), false);
        net.run_until(SimTime::from_secs(9));
        let upto = net.completed_group(2);
        (upto, net.commit_logs())
    };
    let (ua, la) = run(17);
    let (ub, lb) = run(7700);
    let upto = ua.min(ub);
    assert!(upto > 25);
    for (i, (x, y)) in la.iter().zip(lb.iter()).enumerate() {
        assert_eq!(trim_log(x, upto), trim_log(y, upto), "node {i} diverged across seeds");
    }
}

/// Theorem 1 still holds when the recording spans a source failover: LS
/// replays the dead source's death cut and the claimant's ticks.
#[test]
fn theorem1_holds_across_failover() {
    let (g, mut net) = line_net(11, 0.5);
    net.schedule_node(SimTime::from_secs(3), NodeId(0), false);
    net.run_until(SimTime::from_secs(9));
    let upto = net.completed_group(2);
    let (rec, rb_logs) = net.into_recording();
    assert!(rec.mutes.iter().any(|m| m.node == NodeId(0)), "dead source has a death cut");

    let procs = spawners(&g);
    let mut ls = LockstepNet::new(&g, DefinedConfig::default(), rec, move |id| {
        procs[id.index()].clone()
    });
    ls.run_to_end();
    let div = first_divergence(&rb_logs, ls.logs(), upto);
    assert!(div.is_none(), "divergence across failover: {div:?}");
}

/// The GVT bound (Theorem 2's progress witness) stays monotone through a
/// partition *and* a source failover, and fossil collection keeps histories
/// bounded across both.
#[test]
fn gvt_progresses_through_partition_and_failover() {
    use defined::core::gvt::{fossil_collect, GvtMonitor};
    let (_g, mut net) = line_net(9, 0.6);
    // Partition 2–4.2 s, then the healed source dies at 6 s.
    net.schedule_link(SimTime::from_millis(2000), NodeId(2), NodeId(3), false);
    net.schedule_link(SimTime::from_millis(4200), NodeId(2), NodeId(3), true);
    net.schedule_node(SimTime::from_secs(6), NodeId(0), false);
    let mut mon = GvtMonitor::new();
    for tick in 1..=40u64 {
        net.run_until(SimTime::ZERO + SimDuration::from_millis(250) * tick);
        fossil_collect(&mut net, 3);
        mon.observe(&net);
    }
    assert!(mon.is_monotone(), "GVT regressed: {:?}", mon.samples());
    assert!(mon.total_advance() >= 25, "advance {}", mon.total_advance());
    // Liveness pauses during the failover dead time are bounded: within any
    // 16 samples (4 s) the bound moved.
    assert!(mon.progresses_within(16));
    assert_eq!(net.total_metrics().window_violations, 0);
    for i in 1..6u32 {
        let len = net.sim().process(NodeId(i)).history_len();
        assert!(len < 400, "node {i} history {len} bounded by fossil collection");
    }
}

/// Lazy cancellation is engaged and effective under heavy jitter: rollbacks
/// happen, most retracted sends are regenerated identically (kept), and the
/// anti-message traffic stays a small fraction of application traffic.
#[test]
fn lazy_cancellation_tames_antimessage_traffic() {
    let (_g, mut net) = line_net(13, 0.9);
    net.run_until(SimTime::from_secs(8));
    let m = net.total_metrics();
    assert!(m.rollbacks > 0, "heavy jitter must force rollbacks");
    assert!(m.lazy_hits > 0, "replays must regenerate identical sends");
    assert!(
        m.unsent_ids < m.lazy_hits,
        "most retractions should be absorbed lazily: unsent {} vs lazy {}",
        m.unsent_ids,
        m.lazy_hits,
    );
    assert!(
        m.unsend_msgs * 10 < m.app_msgs_sent,
        "anti-messages ({}) must stay well under app traffic ({})",
        m.unsend_msgs,
        m.app_msgs_sent,
    );
    assert_eq!(m.window_violations, 0);
}
