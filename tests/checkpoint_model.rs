//! Model-based property tests for the checkpoint store.
//!
//! The store underpins every rollback: if `restore` ever reconstructs the
//! wrong state, DEFINED silently replays from a corrupt base and every
//! theorem downstream is void. The model is a plain map from checkpoint id
//! to a deep copy of the state; the store (under each strategy, including
//! the page-diffing `MemIntercept`) must agree with it under arbitrary
//! interleavings of checkpoint / mutate / restore / truncate / release.

use defined::checkpoint::{Checkpointer, Snapshotable, Strategy as CkptStrategy};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A routing-table-like state: large enough to span pages, mutated in
/// place.
#[derive(Clone, Debug, PartialEq)]
struct Table {
    cells: Vec<u64>,
}

impl Snapshotable for Table {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&(self.cells.len() as u64).to_le_bytes());
        for c in &self.cells {
            buf.extend_from_slice(&c.to_le_bytes());
        }
    }
    fn decode(bytes: &[u8]) -> Option<Self> {
        let n = u64::from_le_bytes(bytes.get(..8)?.try_into().ok()?) as usize;
        let mut cells = Vec::with_capacity(n);
        for i in 0..n {
            let off = 8 + i * 8;
            cells.push(u64::from_le_bytes(bytes.get(off..off + 8)?.try_into().ok()?));
        }
        Some(Table { cells })
    }
}

#[derive(Clone, Debug)]
enum Op {
    Checkpoint,
    /// Poke `cells[i % len] = v`.
    Mutate(usize, u64),
    /// Restore the `k`-th oldest retained checkpoint (if any) and truncate
    /// everything at or after it — the rollback pattern.
    Rollback(usize),
    /// Release the oldest `k` retained checkpoints — the commit pattern.
    Release(usize),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => Just(Op::Checkpoint),
        4 => (any::<usize>(), any::<u64>()).prop_map(|(i, v)| Op::Mutate(i, v)),
        2 => (0usize..6).prop_map(Op::Rollback),
        1 => (0usize..4).prop_map(Op::Release),
    ]
}

fn run_model(strategy: CkptStrategy, ops: &[Op], size: usize) {
    let mut cp: Checkpointer<Table> = Checkpointer::new(strategy);
    let mut state = Table { cells: (0..size as u64).collect() };
    // The model: retained ids in order, each with its full expected state.
    let mut model: BTreeMap<u64, Table> = BTreeMap::new();
    for o in ops {
        match o {
            Op::Checkpoint => {
                let id = cp.checkpoint(&state);
                model.insert(id.0, state.clone());
            }
            Op::Mutate(i, v) => {
                let n = state.cells.len();
                state.cells[i % n] = *v;
            }
            Op::Rollback(k) => {
                let ids: Vec<u64> = model.keys().copied().collect();
                if let Some(&target) = ids.get(*k % ids.len().max(1)) {
                    let restored =
                        cp.restore(defined::checkpoint::CheckpointId(target)).expect("retained");
                    assert_eq!(restored, model[&target], "restore must match the model");
                    state = restored;
                    cp.truncate_from(defined::checkpoint::CheckpointId(target));
                    model.retain(|&id, _| id < target);
                }
            }
            Op::Release(k) => {
                let ids: Vec<u64> = model.keys().copied().collect();
                if let Some(&cut) = ids.get(*k % ids.len().max(1)) {
                    cp.release_before(defined::checkpoint::CheckpointId(cut));
                    model.retain(|&id, _| id >= cut);
                }
            }
        }
        assert_eq!(cp.len(), model.len(), "retained count must match the model");
    }
    // Every still-retained checkpoint restores to exactly the model state.
    for (&id, expect) in &model {
        let got = cp.restore(defined::checkpoint::CheckpointId(id)).expect("retained");
        assert_eq!(&got, expect, "checkpoint {id} must survive the op sequence");
    }
    // Memory accounting stays coherent. Physical may transiently exceed
    // virtual by exactly the image parked between a rollback truncation and
    // the next capture — never by more.
    let stats = cp.stats();
    assert_eq!(stats.retained, model.len());
    assert!(
        stats.physical_bytes <= stats.virtual_bytes.max(1) + stats.parked_bytes,
        "physical {} vs virtual {} + parked {}",
        stats.physical_bytes,
        stats.virtual_bytes,
        stats.parked_bytes,
    );
    // Refcount-leak property: releasing every checkpoint (and draining the
    // parked rollback image) must return every page ref to the pool.
    cp.release_before(defined::checkpoint::CheckpointId(u64::MAX));
    cp.truncate_from(defined::checkpoint::CheckpointId(0));
    let pool = cp.pool_stats();
    assert_eq!(pool.live_pages, 0, "leaked page refcounts");
    assert_eq!(pool.resident_bytes, 0, "leaked resident bytes");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn clone_strategy_matches_model(ops in proptest::collection::vec(op(), 1..60)) {
        run_model(CkptStrategy::CloneState, &ops, 2_000);
    }

    #[test]
    fn fork_strategy_matches_model(ops in proptest::collection::vec(op(), 1..60)) {
        run_model(CkptStrategy::Fork, &ops, 2_000);
    }

    #[test]
    fn mem_intercept_matches_model(ops in proptest::collection::vec(op(), 1..60)) {
        run_model(CkptStrategy::MemIntercept, &ops, 2_000);
    }

    /// Dedup-correctness: a page-deduplicated (MI) timeline fed the same
    /// history as an owning (Fork) timeline restores byte-identical states
    /// at every query position, across thinning — so thinning never frees a
    /// page a retained checkpoint still references.
    #[test]
    fn deduped_timeline_matches_owning_timeline(
        pokes in proptest::collection::vec((0usize..2_000, any::<u64>()), 8..40),
        queries in proptest::collection::vec(any::<u64>(), 8),
    ) {
        use defined::checkpoint::{RetentionPolicy, Timeline};
        let policy = RetentionPolicy { max_retained: 6 }; // Force thinning.
        let mut mi: Timeline<Table> = Timeline::new(CkptStrategy::MemIntercept, policy);
        let mut fork: Timeline<Table> = Timeline::new(CkptStrategy::Fork, policy);
        let mut state = Table { cells: (0..2_000).collect() };
        for (step, &(i, v)) in pokes.iter().enumerate() {
            let n = state.cells.len();
            state.cells[i % n] = v;
            let pos = (step as u64 + 1) * 3;
            mi.record(pos, &state);
            fork.record(pos, &state);
        }
        let enc = |s: &Table| {
            let mut b = Vec::new();
            s.encode(&mut b);
            b
        };
        let max_pos = pokes.len() as u64 * 3 + 5;
        let retained: Vec<u64> = mi.positions().collect();
        for q in queries.iter().map(|q| q % max_pos).chain(retained) {
            let a = mi.restore_at_or_before(q).map(|(p, s)| (p, enc(&s)));
            let b = fork.restore_at_or_before(q).map(|(p, s)| (p, enc(&s)));
            prop_assert_eq!(a, b, "deduped restore diverged at position {}", q);
        }
    }

    /// MI's page sharing: under localized mutation, physical stays far
    /// below virtual for long checkpoint chains.
    #[test]
    fn mi_shares_pages_under_local_mutation(
        pokes in proptest::collection::vec((0usize..64, any::<u64>()), 20..40),
    ) {
        let mut cp: Checkpointer<Table> = Checkpointer::new(CkptStrategy::MemIntercept);
        let mut t = Table { cells: (0..50_000).collect() }; // ~400 KiB
        cp.checkpoint(&t);
        for (i, v) in pokes {
            t.cells[i] = v; // All pokes land in the first page.
            cp.checkpoint(&t);
        }
        let s = cp.stats();
        prop_assert!(s.retained >= 21);
        prop_assert!(
            (s.physical_bytes as f64) < (s.virtual_bytes as f64) * 0.1,
            "physical {} vs virtual {}",
            s.physical_bytes,
            s.virtual_bytes,
        );
    }
}
