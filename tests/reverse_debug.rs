//! End-to-end reverse-execution guarantees, checked deterministically
//! (event counts, not wall clock — the latency story is `fig9_reverse`):
//!
//! 1. **Byte-identical transcripts**: forward → reverse → forward through a
//!    `DebugSession` reproduces the straight replay's output exactly, on
//!    every protocol in the registry (Theorem 1 applied twice).
//! 2. **Bounded rewind work**: however long the recorded run, a backward
//!    step re-executes fewer events than the checkpoint interval.
//! 3. **Watchpoints fire in both directions**: `rcont` lands on the same
//!    state change `run` found going forward.

use defined::core::debugger::{Debugger, StepGranularity};
use defined::core::{DefinedConfig, LockstepNet, RbNetwork};
use defined::netsim::{NodeId, SimDuration, SimTime};
use defined::routing::ospf::{OspfConfig, OspfProcess};
use defined::scenario;
use defined::topology::canonical;

/// Records a scenario and returns a fresh scripted-debug closure over it.
fn transcript_of(name: &str, script: &str) -> String {
    let scn = scenario::find(name).expect("registry scenario");
    let run = scn.record_run().expect("records");
    scn.debug_transcript(&run.bytes, script).expect("debugs")
}

#[test]
fn forward_reverse_forward_transcripts_are_byte_identical_across_protocols() {
    // One scenario per protocol: OSPF, RIP, BGP.
    for name in ["ospf-loss-window", "rip-blackhole", "bgp-med"] {
        let straight = transcript_of(name, "step 40\n");
        let round_trip = transcript_of(name, "step 40\nrstep 40\nstep 40\n");
        // The round trip's transcript is: the straight block, the rstep
        // line, then the straight block again (minus its `> step 40`
        // echo). Check the third command reproduces the first exactly.
        let straight_body: Vec<&str> = straight.lines().skip(1).collect();
        let lines: Vec<&str> = round_trip.lines().collect();
        let second_step = lines
            .iter()
            .rposition(|l| *l == "> step 40")
            .expect("second step echo present");
        assert_eq!(
            &lines[second_step + 1..],
            &straight_body[..],
            "{name}: forward -> reverse -> forward transcript diverged"
        );
        // And the whole session is reproducible end to end.
        assert_eq!(
            transcript_of(name, "step 40\nrstep 40\nstep 40\n"),
            round_trip,
            "{name}: repeated reverse session diverged"
        );
    }
}

#[test]
fn goto_zero_round_trip_matches_straight_replay() {
    let straight = transcript_of("beacon-failover", "run\nlog 0 8\nwhere\n");
    let round = transcript_of("beacon-failover", "run\ngoto 0\nrun\nlog 0 8\nwhere\n");
    let tail = |t: &str| {
        let lines: Vec<String> = t.lines().map(str::to_string).collect();
        let at = lines.iter().rposition(|l| l == "> log 0 8").expect("log echo");
        lines[at..].join("\n")
    };
    assert_eq!(tail(&straight), tail(&round), "state after goto-0 round trip diverged");
}

/// Rewind work is bounded by the checkpoint interval, not the run length:
/// grow the recorded run 10x and the re-executed event count per reverse
/// step stays under the interval both times.
#[test]
fn rewind_work_is_flat_in_run_length() {
    let interval = 16u64;
    let counts: Vec<(u64, u64)> = [3u64, 30]
        .into_iter()
        .map(|secs| {
            let g = canonical::ring(5, SimDuration::from_millis(4));
            let mk = OspfProcess::for_graph(&g, OspfConfig::stress(5));
            let procs: Vec<OspfProcess> = (0..5).map(|i| mk(NodeId(i))).collect();
            let spawn = procs.clone();
            let mut net = RbNetwork::new(&g, DefinedConfig::default(), 5, 0.4, move |id| {
                spawn[id.index()].clone()
            });
            net.run_until(SimTime::from_secs(secs));
            let (rec, _) = net.into_recording();
            let ls = LockstepNet::new(&g, DefinedConfig::default(), rec, move |id| {
                procs[id.index()].clone()
            });
            let mut dbg = Debugger::new(ls);
            dbg.enable_time_travel(
                interval,
                defined::checkpoint::Strategy::MemIntercept,
                defined::checkpoint::RetentionPolicy::default(),
            );
            dbg.run_to_end();
            let end = dbg.delivered();
            let mut worst = 0;
            for _ in 0..2 * interval {
                dbg.reverse_step(1).expect("rewind");
                worst = worst.max(dbg.last_rewind_replayed());
                dbg.step(StepGranularity::Event);
            }
            (end, worst)
        })
        .collect();
    let (short_end, short_worst) = counts[0];
    let (long_end, long_worst) = counts[1];
    assert!(long_end > 5 * short_end, "runs must differ in length: {short_end} vs {long_end}");
    assert!(short_worst < interval, "short-run rewind replayed {short_worst}");
    assert!(long_worst < interval, "long-run rewind replayed {long_worst}");
}

/// `rcont` finds, going backward, the same state change `run` (watch mode)
/// found going forward.
#[test]
fn reverse_continue_agrees_with_forward_watch() {
    let scn = scenario::find("ospf-loss-window").expect("registry scenario");
    let run = scn.record_run().expect("records");
    // Forward: run until node 1's state first changes; note the position.
    let fwd = scn
        .debug_transcript(&run.bytes, "watch 1\nrun\nwhere\n")
        .expect("debugs");
    assert!(fwd.contains("* watch n1 state"), "{fwd}");
    // Backward from the end: the last change is found without replaying
    // from zero, and stepping past it forward again is byte-stable.
    let back = scn
        .debug_transcript(&run.bytes, "run\nwatch 1\nrcont\nwhere\n")
        .expect("debugs");
    assert!(back.contains("* stopped after"), "{back}");
}
