//! Theorem 1 across protocols: the LS replay must reproduce the RB
//! production execution for BGP and RIP workloads too, not just OSPF —
//! DEFINED is protocol-agnostic as long as the control plane is a pure
//! state machine behind the `ControlPlane` seam.

use defined::core::ls::first_divergence;
use defined::core::{DefinedConfig, LockstepNet, RbNetwork};
use defined::netsim::{NodeId, SimDuration, SimTime};
use defined::routing::bgp::{fig4_paths, BgpExt, BgpProcess, DecisionMode, Role};
use defined::routing::rip::{RefreshMode, RipConfig, RipExt, RipProcess};
use defined::topology::canonical;

fn bgp_processes(roles: &canonical::Fig4Roles, mode: DecisionMode) -> Vec<BgpProcess> {
    let internal = [roles.r1, roles.r2, roles.r3];
    (0..6u32)
        .map(|i| {
            let id = NodeId(i);
            if id == roles.er1 || id == roles.er2 {
                BgpProcess::new(id, Role::External { border: roles.r1 }, mode)
            } else if id == roles.er3 {
                BgpProcess::new(id, Role::External { border: roles.r2 }, mode)
            } else {
                let peers = internal.iter().copied().filter(|&p| p != id).collect();
                BgpProcess::new(id, Role::Internal { ibgp_peers: peers }, mode)
            }
        })
        .collect()
}

#[test]
fn theorem1_holds_for_bgp() {
    let (graph, roles) =
        canonical::fig4_bgp(SimDuration::from_millis(8), SimDuration::from_millis(12));
    let cfg = DefinedConfig::default();
    let procs = bgp_processes(&roles, DecisionMode::BuggyIncremental);
    let p2 = procs.clone();
    let mut net = RbNetwork::new(&graph, cfg.clone(), 5, 0.8, move |id| procs[id.index()].clone());
    let [p1b, p2b, p3b] = fig4_paths();
    for (er, p) in [(roles.er1, p1b), (roles.er2, p2b), (roles.er3, p3b)] {
        net.inject_external(
            SimTime::from_millis(700),
            er,
            BgpExt::Announce { prefix: 9, attrs: p },
        );
    }
    // A withdraw later exercises the withdraw path under DEFINED as well.
    net.inject_external(
        SimTime::from_millis(2_400),
        roles.er3,
        BgpExt::Withdraw { prefix: 9, route_id: 3 },
    );
    net.run_until(SimTime::from_secs(5));
    let upto = net.completed_group(2);
    let (rec, rb_logs) = net.into_recording();
    assert_eq!(rec.externals.len(), 4);
    let mut ls = LockstepNet::new(&graph, cfg, rec, move |id| p2[id.index()].clone());
    ls.run_to_end();
    let div = first_divergence(&rb_logs, ls.logs(), upto);
    assert!(div.is_none(), "BGP divergence: {div:?}");
    // After the withdraw of p3, both worlds must agree on the (buggy)
    // re-selection outcome.
    let rb_best = ls.control_plane(roles.r3).best_path(9).map(|p| p.route_id);
    assert!(rb_best.is_some());
    assert_ne!(rb_best, Some(3), "p3 was withdrawn");
}

#[test]
fn theorem1_holds_for_rip_with_node_death() {
    // Node death is the environment event of the Fig. 5 scenario. Its
    // in-flight losses are replayed by committed send index; the death
    // itself silences the node, which the replay reproduces through the
    // recorded drops of messages to/from it.
    let (graph, roles) = canonical::fig5_rip(SimDuration::from_millis(10));
    let cfg = DefinedConfig::default();
    let mk = |mode: RefreshMode| {
        let c = RipConfig::emulation(mode);
        move |id: NodeId| RipProcess::new(id, graph_neighbors(id), c)
    };
    fn graph_neighbors(id: NodeId) -> Vec<NodeId> {
        let (g, _) = canonical::fig5_rip(SimDuration::from_millis(10));
        g.neighbors(id)
    }
    let spawn = mk(RefreshMode::DestinationOnly);
    let spawn2 = mk(RefreshMode::DestinationOnly);
    let mut net = RbNetwork::new(&graph, cfg.clone(), 7, 0.4, spawn);
    net.inject_external(SimTime::from_millis(100), roles.dest, RipExt::Connect { prefix: 77 });
    net.schedule_node(SimTime::from_secs(6), roles.r2, false);
    net.run_until(SimTime::from_secs(14));
    let upto = net.completed_group(2);
    let (rec, rb_logs) = net.into_recording();
    // The crash is captured as a death cut in the recording.
    assert_eq!(rec.mutes.len(), 1);
    assert_eq!(rec.mutes[0].node, roles.r2);
    let mut ls = LockstepNet::new(&graph, cfg, rec, spawn2);
    ls.run_to_end();
    // All nodes comparable — the dead node replays exactly its death cut.
    for (i, (a, b)) in rb_logs.iter().zip(ls.logs().iter()).enumerate() {
        let ta = defined::core::recorder::trim_log(a, upto);
        let tb = defined::core::recorder::trim_log(b, upto);
        assert_eq!(ta, tb, "node {i} diverged");
    }
    // And the black-hole outcome carries over to the debugging network.
    let rb_via = ls.control_plane(roles.r1).route(77).and_then(|r| r.next_hop);
    assert!(rb_via.is_some());
}
