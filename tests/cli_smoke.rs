//! Smoke tests for the `defined-dbg` binary: record → debug round trips of
//! registry scenarios and `.scn` file scenarios, driven exactly as a user
//! would drive them. These keep the CLI wired into tier-1 — a build that
//! breaks the binary's argument handling, the scenario registry, the `.scn`
//! parser, or the recording file format fails here.

use std::path::PathBuf;
use std::process::{Command, Output};

fn defined_dbg() -> Command {
    Command::new(env!("CARGO_BIN_EXE_defined-dbg"))
}

fn tmp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("defined-dbg-smoke-{}-{}", std::process::id(), name));
    p
}

fn assert_success(out: &Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed with {:?}\nstdout: {}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
}

#[test]
fn scenarios_lists_the_full_registry() {
    let out = defined_dbg().arg("scenarios").output().expect("spawns");
    assert_success(&out, "defined-dbg scenarios");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.lines().count() >= 10, "registry shrank below 10 entries:\n{stdout}");
    for name in ["rip-blackhole", "bgp-med", "ospf-flood-storm", "beacon-failover"] {
        assert!(stdout.contains(name), "missing scenario {name}: {stdout}");
    }
}

/// Records `scenario` and debugs it twice with the same script; the two
/// transcripts must match byte for byte (deterministic replay).
fn round_trip(scenario: &str, tag: &str) {
    let rec = tmp_path(&format!("{tag}.rec"));
    let script = tmp_path(&format!("{tag}.script"));
    std::fs::write(&script, "help\nrun\nwhere\ninspect 0\nlog 0\n").expect("writes script");

    let out = defined_dbg().args(["record", scenario]).arg(&rec).output().expect("spawns");
    assert_success(&out, &format!("record {scenario}"));
    assert!(rec.exists(), "recording file written");

    let out = defined_dbg()
        .args(["debug", scenario])
        .arg(&rec)
        .arg(&script)
        .output()
        .expect("spawns");
    assert_success(&out, &format!("debug {scenario}"));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.is_empty(), "debug session produced no output");

    let again = defined_dbg()
        .args(["debug", scenario])
        .arg(&rec)
        .arg(&script)
        .output()
        .expect("spawns");
    assert_success(&again, &format!("debug {scenario} (second run)"));
    assert_eq!(out.stdout, again.stdout, "{scenario}: replay transcripts diverged");

    let _ = std::fs::remove_file(&rec);
    let _ = std::fs::remove_file(&script);
}

#[test]
fn record_then_debug_rip_blackhole_round_trips() {
    round_trip("rip-blackhole", "rip");
}

#[test]
fn record_then_debug_bgp_med_round_trips() {
    round_trip("bgp-med", "bgp");
}

#[test]
fn record_then_debug_loss_window_round_trips() {
    round_trip("ospf-loss-window", "olw");
}

#[test]
fn scn_file_scenario_records_and_debugs() {
    // A scenario loaded from a .scn file gets the same workflow as a
    // registry entry. The file lives in the repo's scenarios/ directory
    // (tests run with the package root as the working directory).
    round_trip("scenarios/ring-loss.scn", "scn");
}

/// Record → debug → reverse-step → forward-step through the real binary:
/// the re-executed forward block must be byte-identical to the original
/// one, and the whole reverse session must be exactly repeatable.
#[test]
fn record_debug_reverse_step_forward_step_round_trips() {
    let rec = tmp_path("reverse.rec");
    let fwd_script = tmp_path("reverse-fwd.script");
    let rev_script = tmp_path("reverse-rev.script");
    std::fs::write(&fwd_script, "step 25\n").expect("writes script");
    std::fs::write(&rev_script, "step 25\nrstep 10\nstep 10\nwhere\n").expect("writes script");

    let out = defined_dbg().args(["record", "ospf-flood-storm"]).arg(&rec).output().expect("spawns");
    assert_success(&out, "record ospf-flood-storm");

    let fwd = defined_dbg()
        .args(["debug", "ospf-flood-storm"])
        .arg(&rec)
        .arg(&fwd_script)
        .output()
        .expect("spawns");
    assert_success(&fwd, "debug (forward)");
    let fwd_lines: Vec<String> =
        String::from_utf8_lossy(&fwd.stdout).lines().map(str::to_string).collect();

    let rev = defined_dbg()
        .args(["debug", "ospf-flood-storm"])
        .arg(&rec)
        .arg(&rev_script)
        .output()
        .expect("spawns");
    assert_success(&rev, "debug (reverse)");
    let rev_text = String::from_utf8_lossy(&rev.stdout).to_string();
    let rev_lines: Vec<String> = rev_text.lines().map(str::to_string).collect();

    // The reverse session's re-executed `step 10` block reproduces the
    // last 10 lines of the forward-only session's `step 25` block.
    assert!(rev_text.contains("<- position 15"), "reverse-step missing:\n{rev_text}");
    let step10 = rev_lines.iter().rposition(|l| l == "> step 10").expect("step 10 echo");
    let replayed = &rev_lines[step10 + 1..step10 + 11];
    let original = &fwd_lines[fwd_lines.len() - 10..];
    assert_eq!(replayed, original, "reverse -> forward replay diverged from the original");
    assert!(rev_text.contains("25 events delivered"), "{rev_text}");

    // The reverse session itself is deterministic.
    let again = defined_dbg()
        .args(["debug", "ospf-flood-storm"])
        .arg(&rec)
        .arg(&rev_script)
        .output()
        .expect("spawns");
    assert_eq!(rev.stdout, again.stdout, "reverse transcripts diverged");

    let _ = std::fs::remove_file(&rec);
    let _ = std::fs::remove_file(&fwd_script);
    let _ = std::fs::remove_file(&rev_script);
}

#[test]
fn seed_flag_sweeps_jitter_without_changing_the_outcome() {
    let rec_a = tmp_path("seed-a.rec");
    let rec_b = tmp_path("seed-b.rec");
    let outcome = |out: &Output| {
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .find(|l| l.starts_with("production outcome:"))
            .expect("outcome line")
            .to_string()
    };
    let a = defined_dbg()
        .args(["record", "bgp-med"])
        .arg(&rec_a)
        .args(["--seed", "17"])
        .output()
        .expect("spawns");
    assert_success(&a, "record --seed 17");
    let b = defined_dbg()
        .args(["record", "bgp-med"])
        .arg(&rec_b)
        .args(["--seed", "40404"])
        .output()
        .expect("spawns");
    assert_success(&b, "record --seed 40404");
    // Different jitter seeds, identical committed outcome — the paper's
    // headline property, exercised from the CLI surface.
    assert_eq!(outcome(&a), outcome(&b), "outcome must not depend on the seed");

    let _ = std::fs::remove_file(&rec_a);
    let _ = std::fs::remove_file(&rec_b);
}

#[test]
fn debug_script_via_stdin_is_accepted() {
    use std::io::Write as _;
    use std::process::Stdio;

    let rec = tmp_path("stdin.rec");
    let out = defined_dbg().args(["record", "bgp-med"]).arg(&rec).output().expect("spawns");
    assert_success(&out, "record bgp-med");

    let mut child = defined_dbg()
        .args(["debug", "bgp-med"])
        .arg(&rec)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawns");
    child.stdin.take().expect("stdin piped").write_all(b"help\nstep\n").expect("writes");
    let out = child.wait_with_output().expect("waits");
    assert_success(&out, "debug bgp-med with stdin script");

    let _ = std::fs::remove_file(&rec);
}

/// `explore` and `bisect` compile the scenario's outcome probe into a farm
/// search; their reports must be byte-identical across `--jobs` values.
#[test]
fn explore_and_bisect_are_jobs_invariant_through_the_binary() {
    let explore = |jobs: &str| {
        let out = defined_dbg()
            .args(["explore", "rip-blackhole", "--salts", "8", "--jobs", jobs])
            .output()
            .expect("spawns");
        assert_success(&out, &format!("explore --jobs {jobs}"));
        String::from_utf8_lossy(&out.stdout).to_string()
    };
    let e1 = explore("1");
    assert!(e1.contains("baseline outcome:"), "{e1}");
    assert!(e1.contains("first divergence: salt"), "the black hole is order-sensitive:\n{e1}");
    assert_eq!(e1, explore("2"), "explore report varies with --jobs");

    let bisect = |jobs: &str| {
        let out = defined_dbg()
            .args(["bisect", "rip-blackhole", "--jobs", jobs])
            .output()
            .expect("spawns");
        assert_success(&out, &format!("bisect --jobs {jobs}"));
        String::from_utf8_lossy(&out.stdout).to_string()
    };
    let b1 = bisect("1");
    assert!(b1.contains("established by group"), "{b1}");
    assert!(b1.contains("culprit event:"), "{b1}");
    assert_eq!(b1, bisect("2"), "bisect report varies with --jobs");
}

/// The durable-store workflow end to end, exactly as a user drives it:
/// `record --out` streams a `.drec` file, `debug`/`replay` accept it
/// without re-recording, `verify` passes on the intact file — and a
/// single flipped byte makes `verify` fail with a typed diagnostic (a
/// clean error line, never a panic backtrace).
#[test]
fn store_record_verify_and_corruption_detection() {
    let drec = tmp_path("store.drec");
    let script = tmp_path("store.script");
    std::fs::write(&script, "where\nstepg 2\nrun\nwhere\n").expect("writes script");

    let out = defined_dbg()
        .args(["record", "ospf-loss-window", "--out"])
        .arg(&drec)
        .output()
        .expect("spawns");
    assert_success(&out, "record --out");
    let bytes = std::fs::read(&drec).expect("store written");
    assert_eq!(&bytes[..4], b"DREC", "store file carries the magic");

    let dbg = defined_dbg()
        .args(["debug", "ospf-loss-window"])
        .arg(&drec)
        .arg(&script)
        .output()
        .expect("spawns");
    assert_success(&dbg, "debug from .drec");

    let replay = defined_dbg()
        .args(["replay", "ospf-loss-window"])
        .arg(&drec)
        .output()
        .expect("spawns");
    assert_success(&replay, "replay from .drec");
    assert!(String::from_utf8_lossy(&replay.stdout).contains("replayed ospf-loss-window"));

    // The scenario name travels in the file; verify needs no other args.
    let verify = defined_dbg().arg("verify").arg(&drec).output().expect("spawns");
    assert_success(&verify, "verify intact store");
    assert!(String::from_utf8_lossy(&verify.stdout).contains("verify ok"));

    // Flip one mid-file byte: verification must fail with a clean typed
    // diagnostic — exit non-zero, no panic backtrace on either stream.
    let mut corrupt = bytes.clone();
    let pos = corrupt.len() / 2;
    corrupt[pos] ^= 0x10;
    std::fs::write(&drec, &corrupt).expect("writes corrupted store");
    let bad = defined_dbg().arg("verify").arg(&drec).output().expect("spawns");
    assert!(!bad.status.success(), "corrupted store must fail verification");
    let err = String::from_utf8_lossy(&bad.stderr).to_string()
        + &String::from_utf8_lossy(&bad.stdout);
    assert!(!err.contains("panicked"), "diagnostic must be typed, not a backtrace:\n{err}");
    assert!(err.contains("byte") || err.contains("corrupt") || err.contains("unfinished"), "{err}");

    // Truncate to two thirds: strict verify refuses, but replay recovers
    // the durable prefix (with a torn-tail warning on stderr).
    std::fs::write(&drec, &bytes[..bytes.len() * 2 / 3]).expect("writes torn store");
    let torn = defined_dbg().arg("verify").arg(&drec).output().expect("spawns");
    assert!(!torn.status.success(), "torn store must fail strict verification");
    let recovered = defined_dbg()
        .args(["replay", "ospf-loss-window"])
        .arg(&drec)
        .output()
        .expect("spawns");
    assert_success(&recovered, "replay recovers the torn store's durable prefix");
    assert!(
        String::from_utf8_lossy(&recovered.stderr).contains("torn tail"),
        "recovery must be announced"
    );

    let _ = std::fs::remove_file(&drec);
    let _ = std::fs::remove_file(&script);
}

#[test]
fn bad_usage_exits_nonzero() {
    for args in [
        &[][..],
        &["frobnicate"][..],
        &["record", "no-such-scenario", "/tmp/x"][..],
        &["record", "bgp-med", "/tmp/x", "--seed"][..],
        &["record", "bgp-med", "/tmp/x", "--seed", "not-a-number"][..],
        &["record", "/tmp/no-such-file.scn", "/tmp/x"][..],
        // --seed belongs to record; elsewhere it must not be silently eaten.
        &["debug", "bgp-med", "/tmp/x", "--seed", "9"][..],
        &["scenarios", "--seed", "9"][..],
        // Farm flags belong to explore/bisect and demand values.
        &["explore", "no-such-scenario"][..],
        &["explore", "rip-blackhole", "--salts"][..],
        &["explore", "rip-blackhole", "--jobs", "two"][..],
        &["bisect", "rip-blackhole", "--salts", "4"][..],
        &["record", "bgp-med", "/tmp/x", "--jobs", "2"][..],
        // Store verbs: record needs some output, verify/replay need paths.
        &["record", "bgp-med"][..],
        &["record", "bgp-med", "--out"][..],
        &["verify"][..],
        &["verify", "/tmp/no-such-store.drec"][..],
        &["replay", "bgp-med"][..],
        // --out belongs to record; --scenario belongs to verify.
        &["debug", "bgp-med", "/tmp/x", "--out", "/tmp/y"][..],
        &["record", "bgp-med", "/tmp/x", "--scenario", "bgp-med"][..],
    ] {
        let out = defined_dbg().args(args).output().expect("spawns");
        assert!(
            !out.status.success(),
            "defined-dbg {args:?} unexpectedly succeeded:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

#[test]
fn registry_names_are_not_shadowed_by_cwd_files() {
    // A stray file in the working directory named after a registry scenario
    // must not hijack the name: the registry wins, files need a path/.scn.
    let dir = tmp_path("shadow-dir");
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(dir.join("bgp-med"), b"not a scenario").expect("writes");
    let rec = tmp_path("shadow.rec");
    let out = defined_dbg()
        .current_dir(&dir)
        .args(["record", "bgp-med"])
        .arg(&rec)
        .output()
        .expect("spawns");
    assert_success(&out, "record bgp-med with a shadowing cwd file");
    let _ = std::fs::remove_file(&rec);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn debug_rejects_garbage_recording() {
    let rec = tmp_path("garbage.rec");
    std::fs::write(&rec, b"not a recording at all").expect("writes");
    let out = defined_dbg()
        .args(["debug", "rip-blackhole"])
        .arg(&rec)
        .arg("/dev/null")
        .output()
        .expect("spawns");
    assert!(!out.status.success(), "garbage recording must be rejected");
    let _ = std::fs::remove_file(&rec);
}
