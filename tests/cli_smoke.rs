//! Smoke tests for the `defined-dbg` binary: the record → debug round trip
//! of both bundled scenarios, driven exactly as a user would drive them.
//! These keep the CLI wired into tier-1 — a build that breaks the binary's
//! argument handling or the recording file format fails here.

use std::path::PathBuf;
use std::process::{Command, Output};

fn defined_dbg() -> Command {
    Command::new(env!("CARGO_BIN_EXE_defined-dbg"))
}

fn tmp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("defined-dbg-smoke-{}-{}", std::process::id(), name));
    p
}

fn assert_success(out: &Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed with {:?}\nstdout: {}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
}

#[test]
fn scenarios_lists_both_bundled_scenarios() {
    let out = defined_dbg().arg("scenarios").output().expect("spawns");
    assert_success(&out, "defined-dbg scenarios");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("rip-blackhole"), "missing rip scenario: {stdout}");
    assert!(stdout.contains("bgp-med"), "missing bgp scenario: {stdout}");
}

#[test]
fn record_then_debug_rip_blackhole_round_trips() {
    let rec = tmp_path("rip.rec");
    let script = tmp_path("rip.script");
    std::fs::write(&script, "help\nrun\nwhere\ninspect 0\nlog 0\n").expect("writes script");

    let out = defined_dbg()
        .args(["record", "rip-blackhole"])
        .arg(&rec)
        .output()
        .expect("spawns");
    assert_success(&out, "record rip-blackhole");
    assert!(rec.exists(), "recording file written");

    let out = defined_dbg()
        .args(["debug", "rip-blackhole"])
        .arg(&rec)
        .arg(&script)
        .output()
        .expect("spawns");
    assert_success(&out, "debug rip-blackhole");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.is_empty(), "debug session produced no output");

    // Deterministic replay: driving the same session twice prints the same
    // transcript byte for byte.
    let again = defined_dbg()
        .args(["debug", "rip-blackhole"])
        .arg(&rec)
        .arg(&script)
        .output()
        .expect("spawns");
    assert_success(&again, "debug rip-blackhole (second run)");
    assert_eq!(out.stdout, again.stdout, "replay transcripts diverged");

    let _ = std::fs::remove_file(&rec);
    let _ = std::fs::remove_file(&script);
}

#[test]
fn debug_script_via_stdin_is_accepted() {
    use std::io::Write as _;
    use std::process::Stdio;

    let rec = tmp_path("bgp.rec");
    let out = defined_dbg()
        .args(["record", "bgp-med"])
        .arg(&rec)
        .output()
        .expect("spawns");
    assert_success(&out, "record bgp-med");

    let mut child = defined_dbg()
        .args(["debug", "bgp-med"])
        .arg(&rec)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawns");
    child.stdin.take().expect("stdin piped").write_all(b"help\nstep\n").expect("writes");
    let out = child.wait_with_output().expect("waits");
    assert_success(&out, "debug bgp-med with stdin script");

    let _ = std::fs::remove_file(&rec);
}

#[test]
fn bad_usage_exits_nonzero() {
    for args in [&[][..], &["frobnicate"][..], &["record", "no-such-scenario", "/tmp/x"][..]] {
        let out = defined_dbg().args(args).output().expect("spawns");
        assert!(
            !out.status.success(),
            "defined-dbg {args:?} unexpectedly succeeded:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

#[test]
fn debug_rejects_garbage_recording() {
    let rec = tmp_path("garbage.rec");
    std::fs::write(&rec, b"not a recording at all").expect("writes");
    let out = defined_dbg()
        .args(["debug", "rip-blackhole"])
        .arg(&rec)
        .arg("/dev/null")
        .output()
        .expect("spawns");
    assert!(!out.status.success(), "garbage recording must be rejected");
    let _ = std::fs::remove_file(&rec);
}
