//! Cross-crate property tests of the paper's two theorems.
//!
//! * Theorem 1 (Reproducibility): replaying the partial recording of an
//!   RB-instrumented production run in the lockstep debugging network
//!   reproduces its execution exactly.
//! * Theorem 2 (Termination): with a finite set of external events, the
//!   instrumented network keeps making progress — every run reaches the end
//!   of its horizon with bounded histories and no deadlock.
//! * Headline determinism: the committed execution is independent of the
//!   network nondeterminism seed.

use defined::core::ls::first_divergence;
use defined::core::recorder::trim_log;
use defined::core::{DefinedConfig, LockstepNet, OrderingMode, RbNetwork};
use defined::netsim::{NodeId, SimDuration, SimTime};
use defined::routing::ospf::{OspfConfig, OspfProcess};
use defined::topology::{brite, canonical, Graph};
use proptest::prelude::*;

fn topology(kind: u8, n: usize) -> Graph {
    let delay = SimDuration::from_millis(4);
    match kind % 4 {
        0 => canonical::ring(n.max(3), delay),
        1 => canonical::grid(2, n.max(4) / 2, delay),
        2 => brite::barabasi_albert(n.max(5), 2, 7 + n as u64),
        _ => brite::waxman(n.max(5), brite::WaxmanParams::default(), 11 + n as u64),
    }
}

fn spawners(g: &Graph) -> Vec<OspfProcess> {
    let f = OspfProcess::for_graph(g, OspfConfig::stress(g.node_count()));
    (0..g.node_count()).map(|i| f(NodeId(i as u32))).collect()
}

fn run_production(
    g: &Graph,
    cfg: &DefinedConfig,
    seed: u64,
    jitter: f64,
    fail_edge: Option<usize>,
    secs: u64,
) -> RbNetwork<OspfProcess> {
    let procs = spawners(g);
    let mut net = RbNetwork::new(g, cfg.clone(), seed, jitter, move |id| procs[id.index()].clone());
    if let Some(ei) = fail_edge {
        let e = g.edges()[ei % g.edge_count()];
        net.schedule_link(SimTime::from_secs(2), e.a, e.b, false);
        net.schedule_link(SimTime::from_secs(secs.saturating_sub(2).max(3)), e.a, e.b, true);
    }
    net.run_until(SimTime::from_secs(secs));
    net
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// Headline: committed executions are identical across jitter seeds.
    #[test]
    fn determinism_across_seeds(
        kind in 0u8..4,
        n in 4usize..9,
        seeds in (0u64..10_000, 0u64..10_000),
        jitter in 0.1f64..0.9,
        fail in proptest::option::of(0usize..8),
    ) {
        prop_assume!(seeds.0 != seeds.1);
        let g = topology(kind, n);
        let cfg = DefinedConfig::default();
        let a = run_production(&g, &cfg, seeds.0, jitter, fail, 6);
        let b = run_production(&g, &cfg, seeds.1, jitter, fail, 6);
        let upto = a.completed_group(2).min(b.completed_group(2));
        prop_assert!(upto >= 4, "run too short: {upto}");
        let la = a.commit_logs();
        let lb = b.commit_logs();
        for (i, (x, y)) in la.iter().zip(lb.iter()).enumerate() {
            prop_assert_eq!(
                trim_log(x, upto),
                trim_log(y, upto),
                "node {} diverged across seeds", i
            );
        }
    }

    /// Theorem 1: LS replay equals the RB production execution.
    #[test]
    fn theorem1_ls_reproduces_rb(
        kind in 0u8..4,
        n in 4usize..9,
        seed in 0u64..10_000,
        jitter in 0.1f64..0.9,
        ordering in prop_oneof![Just(OrderingMode::Optimized), Just(OrderingMode::Random)],
        fail in proptest::option::of(0usize..8),
    ) {
        let g = topology(kind, n);
        let cfg = DefinedConfig { ordering, ..DefinedConfig::default() };
        let net = run_production(&g, &cfg, seed, jitter, fail, 6);
        let upto = net.completed_group(2);
        let (rec, rb_logs) = net.into_recording();
        let procs = spawners(&g);
        let mut ls = LockstepNet::new(&g, cfg, rec, move |id| procs[id.index()].clone());
        ls.run_to_end();
        let div = first_divergence(&rb_logs, ls.logs(), upto);
        prop_assert!(div.is_none(), "divergence: {:?}", div);
    }

    /// Theorem 2: runs terminate with bounded rollback activity; histories
    /// stay bounded under the commit horizon and no deadlock occurs.
    #[test]
    fn theorem2_progress_under_rollbacks(
        kind in 0u8..4,
        n in 4usize..9,
        seed in 0u64..10_000,
    ) {
        let g = topology(kind, n);
        let cfg = DefinedConfig {
            commit_horizon: Some(SimDuration::from_secs(2)),
            strategy: checkpoint::Strategy::MemIntercept,
            ..DefinedConfig::default()
        };
        // Maximal jitter provokes the most rollbacks.
        let net = run_production(&g, &cfg, seed, 0.95, Some(1), 8);
        let m = net.total_metrics();
        prop_assert_eq!(m.window_violations, 0);
        // Progress: every node advanced its virtual time close to the end.
        for i in 0..g.node_count() {
            let grp = net.sim().process(NodeId(i as u32)).current_group();
            prop_assert!(grp >= 28, "node {} stalled at group {}", i, grp);
        }
        // Histories bounded by the GC horizon.
        for i in 0..g.node_count() {
            let len = net.sim().process(NodeId(i as u32)).history_len();
            prop_assert!(len < 600, "node {} history {}", i, len);
        }
    }
}

/// Deterministic equality must also hold for the protocol state itself, not
/// just the event logs.
#[test]
fn state_digests_match_across_seeds() {
    let g = canonical::ring(6, SimDuration::from_millis(4));
    let cfg = DefinedConfig::default();
    let run = |seed| {
        let net = run_production(&g, &cfg, seed, 0.7, Some(0), 10);
        (0..6)
            .map(|i| {
                use defined::routing::Snapshotable;
                net.control_plane(NodeId(i)).digest()
            })
            .collect::<Vec<_>>()
    };
    // Final tables depend only on committed events; allow the last groups to
    // settle by running well past the failure.
    assert_eq!(run(1), run(2));
}
