//! Codec robustness for partial recordings.
//!
//! A recording is the only artifact that crosses from the production network
//! to the debugging session (possibly via disk, possibly truncated by a
//! crash), so the decoder must (i) round-trip everything the encoder can
//! produce and (ii) reject arbitrary and truncated garbage without panicking
//! or allocating absurdly.

use defined::core::recorder::{DropByIndex, ExtRecord, MuteRecord, Recording, TickRecord};
use defined::core::{Annotation, OrderingMode};
use defined::netsim::NodeId;
use defined::routing::bgp::{BgpExt, PathAttrs};
use defined::store::{
    open_bytes, write_recording, FaultMode, FaultyIo, FsyncPolicy, StoreMeta, VecIo,
};
use proptest::prelude::*;

fn attrs() -> impl Strategy<Value = PathAttrs> {
    (any::<u32>(), any::<u8>(), any::<u16>(), any::<u32>(), any::<u32>()).prop_map(
        |(route_id, as_path_len, neighbor_as, med, igp_dist)| PathAttrs {
            route_id,
            as_path_len,
            neighbor_as,
            med,
            igp_dist,
        },
    )
}

fn bgp_ext() -> impl Strategy<Value = BgpExt> {
    prop_oneof![
        (any::<u32>(), attrs()).prop_map(|(prefix, attrs)| BgpExt::Announce { prefix, attrs }),
        (any::<u32>(), any::<u32>())
            .prop_map(|(prefix, route_id)| BgpExt::Withdraw { prefix, route_id }),
    ]
}

fn ext_record() -> impl Strategy<Value = ExtRecord<BgpExt>> {
    (0u32..64, 0u64..1000, 0u64..1000, bgp_ext()).prop_map(|(node, ext_seq, group, payload)| {
        ExtRecord { node: NodeId(node), ext_seq, group, payload }
    })
}

fn order_key() -> impl Strategy<Value = defined::core::OrderKey> {
    (0u32..64, 1u64..100, 0u64..16, 0u32..4, 1u64..1_000_000).prop_map(
        |(node, group, seq, emit, link)| {
            let root = Annotation::external(NodeId(node), group, seq);
            Annotation::child(&root, NodeId(node ^ 1), link, emit, 24)
                .key(OrderingMode::Optimized)
        },
    )
}

fn recording() -> impl Strategy<Value = Recording<BgpExt>> {
    (
        1usize..64,
        0u32..64,
        proptest::collection::vec(ext_record(), 0..20),
        proptest::collection::vec(
            (0u32..64, 0u64..10_000)
                .prop_map(|(sender, idx)| DropByIndex { sender: NodeId(sender), idx }),
            0..12,
        ),
        proptest::collection::vec(
            (0u32..64, proptest::collection::vec(order_key(), 0..8))
                .prop_map(|(node, allowed)| MuteRecord { node: NodeId(node), allowed }),
            0..4,
        ),
        proptest::collection::vec(
            (0u32..64, 1u64..200, 0u32..64).prop_map(|(node, group, source)| TickRecord {
                node: NodeId(node),
                group,
                source: NodeId(source),
            }),
            0..40,
        ),
        0u64..500,
    )
        .prop_map(|(n_nodes, source, externals, drops, mutes, ticks, last_group)| Recording {
            n_nodes,
            source: NodeId(source),
            externals,
            drops,
            mutes,
            ticks,
            last_group,
        })
}

fn store_meta(rec: &Recording<BgpExt>) -> StoreMeta {
    StoreMeta { n_nodes: rec.n_nodes, source: rec.source, scenario: "fuzz".into() }
}

/// Serialises `rec` into the on-disk store format, in memory.
fn to_store(rec: &Recording<BgpExt>, sync_every: u64) -> Vec<u8> {
    let commits = vec![Vec::new(); rec.n_nodes];
    write_recording(
        VecIo::new(),
        &store_meta(rec),
        rec,
        &commits,
        rec.last_group,
        sync_every,
        FsyncPolicy::Never,
    )
    .expect("in-memory store write cannot fail")
    .bytes
}

/// The store reader canonicalises on open, exactly as
/// `RbNetwork::into_recording` does; the fuzz strategies produce arbitrary
/// orderings and duplicates, so store round trips compare against this
/// normal form.
fn canon(rec: &Recording<BgpExt>) -> Recording<BgpExt> {
    let mut rec = rec.clone();
    let last_group = rec.last_group;
    rec.externals.sort_by_key(|e| (e.group, e.node, e.ext_seq));
    rec.drops.sort_by_key(|d| (d.sender, d.idx));
    rec.drops.dedup();
    rec.ticks.retain(|t| t.group <= last_group);
    rec.ticks.sort_by_key(|t| (t.group, t.node));
    rec
}

proptest! {
    /// Everything the encoder writes, the decoder reads back verbatim.
    #[test]
    fn round_trip(rec in recording()) {
        let bytes = rec.to_bytes();
        prop_assert_eq!(Recording::<BgpExt>::from_bytes(&bytes), Some(rec));
    }

    /// Truncation at any byte boundary is rejected cleanly (no panic).
    #[test]
    fn truncation_fails_cleanly(rec in recording(), cut_frac in 0.0f64..1.0) {
        let bytes = rec.to_bytes();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            // A strict prefix can never decode to the same recording; most
            // decode to None, and a prefix that happens to parse must parse
            // to something *different* only if trailing data mattered —
            // which it always does here because every section is
            // length-prefixed.
            prop_assert!(Recording::<BgpExt>::from_bytes(&bytes[..cut]).is_none());
        }
    }

    /// Arbitrary bytes never panic the decoder.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        let _ = Recording::<BgpExt>::from_bytes(&bytes);
    }

    /// Bit flips are either detected (None) or decode to a *valid* structure
    /// — never a panic, never an absurd allocation.
    #[test]
    fn bit_flips_are_contained(rec in recording(), pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let mut bytes = rec.to_bytes();
        if bytes.is_empty() {
            return Ok(());
        }
        let pos = ((bytes.len() as f64) * pos_frac) as usize % bytes.len();
        bytes[pos] ^= 1 << bit;
        let _ = Recording::<BgpExt>::from_bytes(&bytes);
    }

    /// On-disk store round trip: write → open reproduces the canonical
    /// recording, whatever the sync-point cadence.
    #[test]
    fn store_round_trip(rec in recording(), sync_every in 1u64..32) {
        let bytes = to_store(&rec, sync_every);
        let r = open_bytes::<BgpExt>(&bytes).expect("fresh store opens");
        prop_assert!(r.info.finished);
        prop_assert_eq!(r.recording, canon(&rec));
        prop_assert_eq!(r.commits, Some(vec![Vec::new(); rec.n_nodes]));
        prop_assert_eq!(r.upto, Some(rec.last_group));
    }

    /// Truncating a store at any byte boundary recovers to a sync point or
    /// yields a typed error — never a panic, never a finished store, never
    /// groups beyond what was durable.
    #[test]
    fn store_truncation_recovers_or_errors(
        rec in recording(),
        sync_every in 1u64..32,
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = to_store(&rec, sync_every);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut >= bytes.len() {
            return Ok(());
        }
        if let Ok(r) = open_bytes::<BgpExt>(&bytes[..cut]) {
            prop_assert!(!r.info.finished);
            prop_assert!(r.commits.is_none());
            prop_assert!(r.recording.last_group <= rec.last_group);
        }
    }

    /// A flipped bit anywhere in a store never passes for a finished
    /// store: the frame CRC catches it, or a forged length degrades the
    /// file to a recovered (unfinished) prefix.
    #[test]
    fn store_bit_flips_are_caught(
        rec in recording(),
        sync_every in 1u64..32,
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut bytes = to_store(&rec, sync_every);
        let pos = ((bytes.len() as f64) * pos_frac) as usize % bytes.len();
        bytes[pos] ^= 1 << bit;
        if let Ok(r) = open_bytes::<BgpExt>(&bytes) {
            prop_assert!(!r.info.finished, "flip at byte {} passed as finished", pos);
        }
    }

    /// An injected write fault — failed write, torn write, or a power
    /// loss exposing the page-cache lie — leaves a file recovery handles:
    /// open recovers a durable prefix or returns a typed error.
    #[test]
    fn store_faulty_io_recovers_or_errors(
        rec in recording(),
        mode_sel in 0usize..3,
        nth in 1usize..48,
        keep in 0usize..16,
        budget in 0usize..4096,
    ) {
        let mode = match mode_sel {
            0 => FaultMode::FailWrite { nth },
            1 => FaultMode::ShortWrite { nth, keep },
            _ => FaultMode::KillAfter { bytes: budget },
        };
        let mut io = FaultyIo::new(mode);
        let commits = vec![Vec::new(); rec.n_nodes];
        let _ = write_recording(
            &mut io,
            &store_meta(&rec),
            &rec,
            &commits,
            rec.last_group,
            4,
            FsyncPolicy::Never,
        );
        let persisted = io.into_bytes();
        if let Ok(r) = open_bytes::<BgpExt>(&persisted) {
            prop_assert!(r.recording.last_group <= rec.last_group);
            if !r.info.finished {
                prop_assert!(r.commits.is_none());
            }
        }
    }
}
