//! Virtual-time fidelity of route flap damping (paper §3).
//!
//! "Consider the flap damping algorithm in BGP, which 'holds down' unstable
//! routes for a certain period of time. When we run flap damping in virtual
//! time, we would like BGP to hold down routes for a similar amount of
//! time." DEFINED's virtual time advances one tick per beacon interval, so
//! a hold-down measured in ticks should span the same wall-clock duration
//! under the instrumented network as under the uninstrumented baseline —
//! that is what these tests measure.

use defined::core::harness::baseline_network;
use defined::core::{DefinedConfig, LockstepNet, RbNetwork};
use defined::netsim::{NodeId, SimDuration, SimTime};
use defined::routing::bgp::{
    fig4_paths, BgpExt, BgpProcess, DampingConfig, DecisionMode, Role,
};
use defined::topology::canonical;

const PREFIX: u32 = 9;

fn processes(roles: &canonical::Fig4Roles) -> Vec<BgpProcess> {
    let internal = [roles.r1, roles.r2, roles.r3];
    (0..6u32)
        .map(|i| {
            let id = NodeId(i);
            let p = if id == roles.er1 || id == roles.er2 {
                BgpProcess::new(id, Role::External { border: roles.r1 }, DecisionMode::CorrectFull)
            } else if id == roles.er3 {
                BgpProcess::new(id, Role::External { border: roles.r2 }, DecisionMode::CorrectFull)
            } else {
                let peers = internal.iter().copied().filter(|&q| q != id).collect();
                BgpProcess::new(id, Role::Internal { ibgp_peers: peers }, DecisionMode::CorrectFull)
            };
            p.with_damping(DampingConfig::emulation())
        })
        .collect()
}

/// The flap schedule: p1 and p3 announced early, then p1 withdrawn and
/// re-announced four times in quick succession (the per-tick decay between
/// slow flaps would never cross the suppress threshold).
fn schedule() -> Vec<(SimTime, NodeId, BgpExt)> {
    let (_, roles) = canonical::fig4_bgp(SimDuration::from_millis(8), SimDuration::from_millis(12));
    let [p1, _, p3] = fig4_paths();
    let mut evs = vec![
        (SimTime::from_millis(500), roles.er1, BgpExt::Announce { prefix: PREFIX, attrs: p1 }),
        (SimTime::from_millis(500), roles.er3, BgpExt::Announce { prefix: PREFIX, attrs: p3 }),
    ];
    for k in 0..4u64 {
        let t = 1_000 + 400 * k;
        evs.push((
            SimTime::from_millis(t),
            roles.er1,
            BgpExt::Withdraw { prefix: PREFIX, route_id: 1 },
        ));
        evs.push((
            SimTime::from_millis(t + 200),
            roles.er1,
            BgpExt::Announce { prefix: PREFIX, attrs: p1 },
        ));
    }
    evs
}

/// Samples every 50 ms up to `horizon_ms` and returns the longest
/// contiguous suppressed window `(start, end)` in seconds. (The longest
/// run, not the first transition: a sample can catch a speculative state
/// the next rollback retracts.)
fn longest_hold(mut probe: impl FnMut(SimTime) -> bool, horizon_ms: u64) -> Option<(f64, f64)> {
    let mut best: Option<(f64, f64)> = None;
    let mut run_start: Option<f64> = None;
    for ms in (0..=horizon_ms).step_by(50) {
        let t = SimTime::from_millis(ms);
        let sup = probe(t);
        match (run_start, sup) {
            (None, true) => run_start = Some(t.as_secs_f64()),
            (Some(s), false) => {
                let end = t.as_secs_f64();
                if best.map(|(a, b)| b - a).unwrap_or(0.0) < end - s {
                    best = Some((s, end));
                }
                run_start = None;
            }
            _ => {}
        }
    }
    best
}

fn baseline_hold(seed: u64) -> (f64, f64) {
    let (g, roles) =
        canonical::fig4_bgp(SimDuration::from_millis(8), SimDuration::from_millis(12));
    let procs = processes(&roles);
    let mut sim = baseline_network(&g, SimDuration::from_millis(250), seed, 0.5, move |id| {
        procs[id.index()].clone()
    });
    for (t, node, ev) in schedule() {
        sim.schedule_external(t, node, ev);
    }
    longest_hold(
        |t| {
            sim.run_until(t);
            sim.process(roles.r1).control_plane().is_suppressed(PREFIX, 1)
        },
        12_000,
    )
    .expect("baseline must suppress and reuse")
}

fn rb_hold(seed: u64) -> (f64, f64) {
    let (g, roles) =
        canonical::fig4_bgp(SimDuration::from_millis(8), SimDuration::from_millis(12));
    let procs = processes(&roles);
    let mut net = RbNetwork::new(&g, DefinedConfig::default(), seed, 0.5, move |id| {
        procs[id.index()].clone()
    });
    for (t, node, ev) in schedule() {
        net.inject_external(t, node, ev);
    }
    longest_hold(
        |t| {
            net.run_until(t);
            net.control_plane(roles.r1).is_suppressed(PREFIX, 1)
        },
        12_000,
    )
    .expect("DEFINED-RB must suppress and reuse")
}

/// The committed (replay-visible) hold window in *groups*: first group at
/// whose boundary R1 is suppressed, and the first group after it where the
/// suppression has lifted.
fn rb_hold_groups(seed: u64) -> (u64, u64) {
    let (g, roles) =
        canonical::fig4_bgp(SimDuration::from_millis(8), SimDuration::from_millis(12));
    let cfg = DefinedConfig::default();
    let procs = processes(&roles);
    let mut net =
        RbNetwork::new(&g, cfg.clone(), seed, 0.5, move |id| procs[id.index()].clone());
    for (t, node, ev) in schedule() {
        net.inject_external(t, node, ev);
    }
    net.run_until(SimTime::from_secs(12));
    let (rec, _) = net.into_recording();
    let roles2 = roles;
    let mut ls = LockstepNet::new(&g, cfg, rec, move |id| processes(&roles2)[id.index()].clone());
    let mut suppress_at = None;
    let mut reuse_at = None;
    let mut group = 0;
    while let Some(ev) = ls.step_event() {
        if ev.group != group {
            group = ev.group;
            let sup = ls.control_plane(roles.r1).is_suppressed(PREFIX, 1);
            if sup && suppress_at.is_none() {
                suppress_at = Some(group);
            }
            if !sup && suppress_at.is_some() && reuse_at.is_none() {
                reuse_at = Some(group);
            }
        }
    }
    (suppress_at.expect("suppressed"), reuse_at.expect("reused"))
}

/// §3's fidelity claim: the hold-down lasts a similar wall-clock duration
/// instrumented and uninstrumented.
#[test]
fn hold_down_duration_similar_under_virtual_time() {
    let (bs, br) = baseline_hold(1);
    let (ds, dr) = rb_hold(1);
    let base = br - bs;
    let rb = dr - ds;
    assert!(base > 0.5, "baseline hold {base}s must be substantial");
    assert!(rb > 0.5, "RB hold {rb}s must be substantial");
    let ratio = rb / base;
    assert!(
        (0.6..=1.6).contains(&ratio),
        "virtual-time hold ({rb:.2}s) must track wall-clock hold ({base:.2}s), ratio {ratio:.2}",
    );
}

/// Under DEFINED-RB the committed hold-down window — measured in groups on
/// the deterministic replay — is *identical* across seeds.
#[test]
fn hold_down_window_is_deterministic_under_rb() {
    let a = rb_hold_groups(3);
    let b = rb_hold_groups(4444);
    assert_eq!(a, b, "suppress/reuse groups must not depend on the seed");
    let (s, r) = a;
    // ~3 k penalty decaying at 1/8 per tick to the 800 reuse threshold:
    // about 10 ticks.
    assert!((6..=16).contains(&(r - s)), "hold {} groups", r - s);
}

/// The suppressed interval routes through the stable alternative and
/// recovers afterwards.
#[test]
fn suppression_falls_back_and_recovers() {
    let (g, roles) =
        canonical::fig4_bgp(SimDuration::from_millis(8), SimDuration::from_millis(12));
    let procs = processes(&roles);
    let mut net = RbNetwork::new(&g, DefinedConfig::default(), 7, 0.4, move |id| {
        procs[id.index()].clone()
    });
    for (t, node, ev) in schedule() {
        net.inject_external(t, node, ev);
    }
    // Mid-suppression: best is the stable p3.
    net.run_until(SimTime::from_secs(4));
    assert!(net.control_plane(roles.r1).is_suppressed(PREFIX, 1));
    assert_eq!(
        net.control_plane(roles.r1).best_path(PREFIX).map(|p| p.route_id),
        Some(3),
        "during suppression the stable path carries traffic",
    );
    // Well past reuse: p1 (better IGP distance) wins again.
    net.run_until(SimTime::from_secs(12));
    assert!(!net.control_plane(roles.r1).is_suppressed(PREFIX, 1));
    assert_eq!(
        net.control_plane(roles.r1).best_path(PREFIX).map(|p| p.route_id),
        Some(1),
        "after reuse the preferred path returns",
    );
}
