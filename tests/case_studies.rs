//! The paper's two case studies (§4) as assertions: both bugs are
//! nondeterministic without DEFINED, deterministic with it, reproducible
//! from partial recordings, and fixed by the validated patches.

use defined::core::{DefinedConfig, LockstepNet, RbNetwork};
use defined::netsim::{NodeId, SimDuration, SimTime};
use defined::routing::bgp::{fig4_paths, BgpExt, BgpProcess, DecisionMode, Role};
use defined::routing::rip::{RefreshMode, RipExt, RipProcess};
use defined::routing::ControlPlane;
// The canonical per-protocol spawners live in the scenario registry; the
// binary and these tests share them instead of keeping copies.
use defined::scenario::{bgp_fig4_processes, rip_processes};
use defined::topology::canonical;

const PREFIX: u32 = 9;
const DEST: u32 = 77;

fn bgp_rb_run(seed: u64, mode: DecisionMode) -> (RbNetwork<BgpProcess>, canonical::Fig4Roles) {
    let (graph, roles) =
        canonical::fig4_bgp(SimDuration::from_millis(8), SimDuration::from_millis(12));
    let procs = bgp_fig4_processes(&roles, mode);
    let mut net = RbNetwork::new(&graph, DefinedConfig::default(), seed, 0.9, move |id| {
        procs[id.index()].clone()
    });
    let [p1, p2, p3] = fig4_paths();
    for (er, p) in [(roles.er1, p1), (roles.er2, p2), (roles.er3, p3)] {
        net.inject_external(
            SimTime::from_millis(700),
            er,
            BgpExt::Announce { prefix: PREFIX, attrs: p },
        );
    }
    net.run_until(SimTime::from_secs(5));
    (net, roles)
}

#[test]
fn bgp_baseline_outcome_is_order_dependent() {
    // Directly exercise the decision process over all arrival orders: the
    // buggy mode must disagree with the correct one on some order.
    let [p1, p2, p3] = fig4_paths();
    let orders =
        [[p1, p2, p3], [p1, p3, p2], [p2, p1, p3], [p2, p3, p1], [p3, p1, p2], [p3, p2, p1]];
    let mut buggy_results = std::collections::BTreeSet::new();
    for order in orders {
        let mut r = BgpProcess::new(
            NodeId(0),
            Role::Internal { ibgp_peers: vec![] },
            DecisionMode::BuggyIncremental,
        );
        let mut out = defined::routing::Outbox::new();
        for p in order {
            r.on_message(NodeId(1), &defined::routing::bgp::BgpMsg::Update { prefix: PREFIX, attrs: p }, &mut out);
        }
        buggy_results.insert(r.best_path(PREFIX).unwrap().route_id);
    }
    assert!(buggy_results.len() > 1, "bug must be order-dependent: {buggy_results:?}");
    assert!(buggy_results.contains(&2), "the paper's wrong outcome p2 must occur");
}

#[test]
fn bgp_rb_is_deterministic_across_seeds() {
    let mut outcome = None;
    for seed in 0..6u64 {
        let (net, roles) = bgp_rb_run(seed, DecisionMode::BuggyIncremental);
        let best = net.control_plane(roles.r3).best_path(PREFIX).map(|p| p.route_id);
        assert!(best.is_some(), "R3 must have selected a path");
        if let Some(prev) = outcome {
            assert_eq!(prev, best, "seed {seed} changed the outcome");
        }
        outcome = Some(best);
    }
}

#[test]
fn bgp_ls_reproduces_and_patch_validates() {
    let (net, roles) = bgp_rb_run(0, DecisionMode::BuggyIncremental);
    let production_best =
        net.control_plane(roles.r3).best_path(PREFIX).map(|p| p.route_id);
    let (rec, _) = net.into_recording();
    assert_eq!(rec.externals.len(), 3, "three announcements recorded");

    // Replay with the buggy decision: same outcome as production.
    let (graph, _) = canonical::fig4_bgp(SimDuration::from_millis(8), SimDuration::from_millis(12));
    let procs = bgp_fig4_processes(&roles, DecisionMode::BuggyIncremental);
    let mut ls =
        LockstepNet::new(&graph, DefinedConfig::default(), rec.clone(), move |id| procs[id.index()].clone());
    ls.run_to_end();
    assert_eq!(
        ls.control_plane(roles.r3).best_path(PREFIX).map(|p| p.route_id),
        production_best,
        "debugging network must mirror production"
    );

    // Replay with the patch: correct best path p3.
    let procs = bgp_fig4_processes(&roles, DecisionMode::CorrectFull);
    let mut patched =
        LockstepNet::new(&graph, DefinedConfig::default(), rec, move |id| procs[id.index()].clone());
    patched.run_to_end();
    assert_eq!(
        patched.control_plane(roles.r3).best_path(PREFIX).map(|p| p.route_id),
        Some(3)
    );
}

fn rip_rb_run(seed: u64, mode: RefreshMode) -> (RbNetwork<RipProcess>, canonical::Fig5Roles) {
    let (graph, roles) = canonical::fig5_rip(SimDuration::from_millis(10));
    let procs = rip_processes(&graph, mode);
    let mut net = RbNetwork::new(&graph, DefinedConfig::default(), seed, 0.9, move |id| {
        procs[id.index()].clone()
    });
    net.inject_external(SimTime::from_millis(100), roles.dest, RipExt::Connect { prefix: DEST });
    net.schedule_node(SimTime::from_secs(8), roles.r2, false);
    net.run_until(SimTime::from_secs(26));
    (net, roles)
}

#[test]
fn rip_rb_is_deterministic_across_seeds() {
    let mut outcome = None;
    for seed in 0..5u64 {
        let (net, roles) = rip_rb_run(seed, RefreshMode::DestinationOnly);
        let via = net.control_plane(roles.r1).route(DEST).and_then(|r| r.next_hop);
        if let Some(prev) = outcome {
            assert_eq!(prev, via, "seed {seed} changed the outcome");
        }
        outcome = Some(via);
    }
}

#[test]
fn rip_buggy_mode_refreshes_from_backup() {
    let (net, roles) = rip_rb_run(0, RefreshMode::DestinationOnly);
    // Under the bug, R1 records refreshes triggered by R3's announcements
    // (matching destination only) — far more than the correct mode allows.
    let buggy_refreshes = net.control_plane(roles.r1).refresh_count(DEST);
    let (net_fixed, _) = rip_rb_run(0, RefreshMode::DestinationAndNextHop);
    let fixed_refreshes = net_fixed.control_plane(roles.r1).refresh_count(DEST);
    assert!(
        buggy_refreshes > fixed_refreshes + 5,
        "bug inflates refreshes: buggy={buggy_refreshes} fixed={fixed_refreshes}"
    );
}

#[test]
fn rip_patch_restores_failover() {
    let (net, roles) = rip_rb_run(0, RefreshMode::DestinationAndNextHop);
    let via = net.control_plane(roles.r1).route(DEST).and_then(|r| r.next_hop);
    // With the patch, R1 must have failed over off the dead router.
    assert_ne!(via, Some(roles.r2), "patched RIP must not keep the dead next hop");
    assert_eq!(via, Some(roles.r3));
}
