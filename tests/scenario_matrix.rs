//! The scenario-engine matrix: every registered scenario must record, and
//! its recording must replay — Theorem 1 as a property of the *whole
//! registry*, not just the two paper case studies.
//!
//! For each scenario:
//!
//! * the production run records without error and makes virtual-time
//!   progress;
//! * the lockstep replay commits exactly the production execution up to the
//!   comparison frontier (skipped for scenarios whose fault schedule
//!   restarts a node — a restart discards the pre-crash log, DESIGN.md §7);
//! * two scripted debug sessions over the same recording produce
//!   byte-identical transcripts.

use defined::core::ls::first_divergence;
use defined::core::recorder::trim_log;
use defined::scenario::registry;

const SCRIPT: &str = "where\nstepg 3\nwhere\nstep 5\nlog 0 3\nrun\nwhere\n";

#[test]
fn every_scenario_records_and_replays() {
    for scn in registry() {
        let run = scn.record_run().unwrap_or_else(|e| panic!("{}: record failed: {e}", scn.name));
        assert!(run.n_groups >= 5, "{}: only {} groups completed", scn.name, run.n_groups);

        if !scn.has_restart() {
            let ls_logs = scn
                .replay_logs(&run.bytes)
                .unwrap_or_else(|e| panic!("{}: replay failed: {e}", scn.name));
            let div = first_divergence(&run.logs, &ls_logs, run.upto);
            assert!(div.is_none(), "{}: production/replay divergence: {div:?}", scn.name);
        }

        let t1 = scn
            .debug_transcript(&run.bytes, SCRIPT)
            .unwrap_or_else(|e| panic!("{}: debug failed: {e}", scn.name));
        let t2 = scn.debug_transcript(&run.bytes, SCRIPT).expect("second debug run");
        assert_eq!(t1, t2, "{}: repeated debug transcripts diverged", scn.name);
        assert!(!t1.is_empty(), "{}: empty transcript", scn.name);
    }
}

#[test]
fn every_scenario_survives_a_store_round_trip() {
    // The on-disk store is a second serialisation of the same recording:
    // for every registered scenario, streaming the run into a store and
    // debugging from the file must be indistinguishable from debugging the
    // raw recording bytes, and `verify` must pass against the stored
    // commit logs (skipped for restart scenarios, whose production logs
    // are not replay-equivalent past the restart — DESIGN.md §7).
    for scn in registry() {
        let path = std::env::temp_dir().join(format!("defined-matrix-{}.drec", scn.name));
        let run = scn
            .record_run_to_store(&path)
            .unwrap_or_else(|e| panic!("{}: streamed record failed: {e}", scn.name));
        let bytes = std::fs::read(&path).expect("store file readable");
        let _ = std::fs::remove_file(&path);
        let info = defined::store::scan(&bytes)
            .unwrap_or_else(|e| panic!("{}: store scan failed: {e}", scn.name));
        assert!(info.finished, "{}: streamed store did not finish", scn.name);
        assert_eq!(info.scenario, scn.name);

        let t_store = scn
            .debug_transcript(&bytes, SCRIPT)
            .unwrap_or_else(|e| panic!("{}: debug from store failed: {e}", scn.name));
        let t_raw = scn.debug_transcript(&run.bytes, SCRIPT).expect("debug from raw bytes");
        assert_eq!(t_store, t_raw, "{}: store and raw transcripts diverged", scn.name);

        if !scn.has_restart() {
            let report = scn
                .verify_store(&bytes, 1)
                .unwrap_or_else(|e| panic!("{}: verify failed to open: {e}", scn.name));
            assert!(report.ok(), "{}: verify found divergence: {}", scn.name, report.render());
        }
    }
}

#[test]
fn scenario_outcomes_are_seed_independent() {
    // The committed execution — and with it the probed outcome — must be a
    // function of the recorded externals only, never of the jitter seed.
    // Spot-check the three protocols. (Loss-window scenarios are excluded
    // by design: Bernoulli losses are *recorded* external nondeterminism,
    // seed-dependent in production and replayed exactly from the recording.)
    for name in ["rip-blackhole", "bgp-med", "beacon-failover"] {
        let scn = defined::scenario::find(name).expect(name);
        let a = scn.clone().with_seed(1000).record_run().expect("seed 1000");
        let b = scn.with_seed(2000).record_run().expect("seed 2000");
        assert_eq!(a.outcome, b.outcome, "{name}: outcome changed with the seed");
        let upto = a.upto.min(b.upto);
        for (i, (x, y)) in a.logs.iter().zip(b.logs.iter()).enumerate() {
            assert_eq!(
                trim_log(x, upto),
                trim_log(y, upto),
                "{name}: node {i} diverged across seeds"
            );
        }
    }
}

#[test]
fn case_study_outcomes_match_the_paper() {
    // The re-expressed case studies still reproduce the paper's bugs, and
    // the patched variant validates the fix.
    let med = defined::scenario::find("bgp-med").unwrap().record_run().unwrap();
    assert_eq!(med.outcome.as_deref(), Some("n2 selects p2 for 9"), "buggy MED outcome");
    let patched = defined::scenario::find("bgp-med-patched").unwrap().record_run().unwrap();
    assert_eq!(patched.outcome.as_deref(), Some("n2 selects p3 for 9"), "patched outcome");
    let rip = defined::scenario::find("rip-blackhole").unwrap().record_run().unwrap();
    assert_eq!(
        rip.outcome.as_deref(),
        Some("n0 routes 77 via n1"),
        "black hole: R1 still points at dead R2"
    );
    assert_eq!(rip.n_mutes, 1, "R2's death cut recorded");
}
