//! The scenario-engine matrix: every registered scenario must record, and
//! its recording must replay — Theorem 1 as a property of the *whole
//! registry*, not just the two paper case studies.
//!
//! For each scenario:
//!
//! * the production run records without error and makes virtual-time
//!   progress;
//! * the lockstep replay commits exactly the production execution up to the
//!   comparison frontier (skipped for scenarios whose fault schedule
//!   restarts a node — a restart discards the pre-crash log, DESIGN.md §7);
//! * two scripted debug sessions over the same recording produce
//!   byte-identical transcripts.

use defined::core::ls::first_divergence;
use defined::core::recorder::trim_log;
use defined::scenario::registry;

const SCRIPT: &str = "where\nstepg 3\nwhere\nstep 5\nlog 0 3\nrun\nwhere\n";

#[test]
fn every_scenario_records_and_replays() {
    for scn in registry() {
        let run = scn.record_run().unwrap_or_else(|e| panic!("{}: record failed: {e}", scn.name));
        assert!(run.n_groups >= 5, "{}: only {} groups completed", scn.name, run.n_groups);

        if !scn.has_restart() {
            let ls_logs = scn
                .replay_logs(&run.bytes)
                .unwrap_or_else(|e| panic!("{}: replay failed: {e}", scn.name));
            let div = first_divergence(&run.logs, &ls_logs, run.upto);
            assert!(div.is_none(), "{}: production/replay divergence: {div:?}", scn.name);
        }

        let t1 = scn
            .debug_transcript(&run.bytes, SCRIPT)
            .unwrap_or_else(|e| panic!("{}: debug failed: {e}", scn.name));
        let t2 = scn.debug_transcript(&run.bytes, SCRIPT).expect("second debug run");
        assert_eq!(t1, t2, "{}: repeated debug transcripts diverged", scn.name);
        assert!(!t1.is_empty(), "{}: empty transcript", scn.name);
    }
}

#[test]
fn scenario_outcomes_are_seed_independent() {
    // The committed execution — and with it the probed outcome — must be a
    // function of the recorded externals only, never of the jitter seed.
    // Spot-check the three protocols. (Loss-window scenarios are excluded
    // by design: Bernoulli losses are *recorded* external nondeterminism,
    // seed-dependent in production and replayed exactly from the recording.)
    for name in ["rip-blackhole", "bgp-med", "beacon-failover"] {
        let scn = defined::scenario::find(name).expect(name);
        let a = scn.clone().with_seed(1000).record_run().expect("seed 1000");
        let b = scn.with_seed(2000).record_run().expect("seed 2000");
        assert_eq!(a.outcome, b.outcome, "{name}: outcome changed with the seed");
        let upto = a.upto.min(b.upto);
        for (i, (x, y)) in a.logs.iter().zip(b.logs.iter()).enumerate() {
            assert_eq!(
                trim_log(x, upto),
                trim_log(y, upto),
                "{name}: node {i} diverged across seeds"
            );
        }
    }
}

#[test]
fn case_study_outcomes_match_the_paper() {
    // The re-expressed case studies still reproduce the paper's bugs, and
    // the patched variant validates the fix.
    let med = defined::scenario::find("bgp-med").unwrap().record_run().unwrap();
    assert_eq!(med.outcome.as_deref(), Some("n2 selects p2 for 9"), "buggy MED outcome");
    let patched = defined::scenario::find("bgp-med-patched").unwrap().record_run().unwrap();
    assert_eq!(patched.outcome.as_deref(), Some("n2 selects p3 for 9"), "patched outcome");
    let rip = defined::scenario::find("rip-blackhole").unwrap().record_run().unwrap();
    assert_eq!(
        rip.outcome.as_deref(),
        Some("n0 routes 77 via n1"),
        "black hole: R1 still points at dead R2"
    );
    assert_eq!(rip.n_mutes, 1, "R2's death cut recorded");
}
