//! Farm determinism: the parallel search engines are byte-equivalent to
//! the serial ones, for every worker count, on all three protocols.
//!
//! The replay farm's whole contract is that `jobs` (and the seeding
//! checkpoints) change only *cost*: a parallel `explore_orderings` must
//! return the identical `(salt, final state)` — the earliest match in the
//! salt sequence, not the first to finish — and parallel bisection the
//! identical `BisectReport`, across jobs ∈ {1, 2, 8}. The salt set itself
//! is property-swept so the equivalence is not an artifact of one sweep.

use defined::core::bisect::{first_bad_event_farm, first_bad_group_farm, BisectReport};
use defined::core::explore::{explore_orderings_farm, ordering_sensitivity_farm};
use defined::core::ls::LockstepNet;
use defined::core::order::debug_digest;
use defined::core::{DefinedConfig, FarmConfig};
use defined::netsim::NodeId;
use defined::routing::bgp::BgpProcess;
use defined::routing::ospf::OspfProcess;
use defined::routing::rip::RipProcess;
use defined::routing::ControlPlane;
use defined::scenario::{self, Scenario};
use defined::topology::Graph;
use proptest::prelude::*;

const JOBS: [usize; 3] = [1, 2, 8];

/// Record a registry scenario and hand back its graph + recording bytes.
fn recorded(name: &str) -> (Scenario, Graph, Vec<u8>) {
    let scn = scenario::find(name).expect("registry scenario");
    let g = scn.topology.build();
    let run = scn.record_run().expect("records");
    (scn, g, run.bytes)
}

/// Asserts explore + bisect farm results are invariant in the job count
/// for one protocol instantiation.
fn check_invariance<P, S, F, B>(
    g: &Graph,
    rec: &defined::core::recorder::Recording<P::Ext>,
    spawn: S,
    predicate: F,
    bad: B,
    salts: &[u64],
    what: &str,
) where
    P: ControlPlane,
    P::Msg: defined::core::wire::Wire,
    P::Ext: defined::core::wire::Wire + Sync,
    S: Fn(NodeId) -> P + Sync + Copy,
    F: Fn(&LockstepNet<P>) -> bool + Sync + Copy,
    B: Fn(&LockstepNet<P>) -> bool + Sync + Copy,
{
    let cfg = DefinedConfig::default();
    let reference: Option<(u64, u64)> = explore_orderings_farm(
        g,
        &cfg,
        rec,
        spawn,
        salts.iter().copied(),
        predicate,
        &FarmConfig::serial(),
    )
    .map(|(salt, ls)| (salt, debug_digest(&ls.logs())));
    let ref_sense =
        ordering_sensitivity_farm(g, &cfg, rec, spawn, salts.iter().copied(), predicate, &FarmConfig::serial());
    let ref_bisect: Option<BisectReport> =
        first_bad_group_farm(g, &cfg, rec, spawn, bad, &FarmConfig::serial());
    let ref_event = ref_bisect.and_then(|r| {
        first_bad_event_farm(g, &cfg, rec, spawn, r.first_bad_group, bad, &FarmConfig::serial())
            .map(|(ev, _)| ev)
    });
    for jobs in JOBS {
        let farm = FarmConfig { jobs, speculation: 1, ..FarmConfig::serial() };
        let got = explore_orderings_farm(g, &cfg, rec, spawn, salts.iter().copied(), predicate, &farm)
            .map(|(salt, ls)| (salt, debug_digest(&ls.logs())));
        assert_eq!(got, reference, "{what}: explore result varies at jobs={jobs}");
        assert_eq!(
            ordering_sensitivity_farm(g, &cfg, rec, spawn, salts.iter().copied(), predicate, &farm),
            ref_sense,
            "{what}: sensitivity varies at jobs={jobs}"
        );
        assert_eq!(
            first_bad_group_farm(g, &cfg, rec, spawn, bad, &farm),
            ref_bisect,
            "{what}: bisect report varies at jobs={jobs}"
        );
        if let Some(r) = ref_bisect {
            let ev = first_bad_event_farm(g, &cfg, rec, spawn, r.first_bad_group, bad, &farm)
                .map(|(ev, _)| ev);
            assert_eq!(ev, ref_event, "{what}: culprit event varies at jobs={jobs}");
        }
        // Speculative rounds must still land on the same group (replay
        // counts legitimately differ from the serial schedule).
        let wide = FarmConfig { jobs, speculation: 3, ..FarmConfig::serial() };
        assert_eq!(
            first_bad_group_farm(g, &cfg, rec, spawn, bad, &wide).map(|r| r.first_bad_group),
            ref_bisect.map(|r| r.first_bad_group),
            "{what}: speculative bisection diverged at jobs={jobs}"
        );
    }
}

fn rip_case(salts: &[u64]) {
    let (scn, g, bytes) = recorded("rip-blackhole");
    let rec = defined::core::recorder::Recording::from_bytes(&bytes).expect("decodes");
    let procs = match scn.protocol {
        scenario::ProtocolSpec::Rip { mode } => scenario::rip_processes(&g, mode),
        _ => unreachable!("rip-blackhole is RIP"),
    };
    let spawn = |id: NodeId| -> RipProcess { procs[id.index()].clone() };
    // Outcome-flavoured predicates: where does n0 route the prefix?
    let via_backup = |ls: &LockstepNet<RipProcess>| {
        ls.control_plane(NodeId(0)).route(77).and_then(|r| r.next_hop) == Some(NodeId(2))
    };
    let installed = |ls: &LockstepNet<RipProcess>| ls.control_plane(NodeId(0)).route(77).is_some();
    check_invariance(&g, &rec, spawn, via_backup, installed, salts, "rip");
}

fn bgp_case(salts: &[u64]) {
    let (scn, g, bytes) = recorded("bgp-med");
    let rec = defined::core::recorder::Recording::from_bytes(&bytes).expect("decodes");
    let procs = match scn.protocol {
        scenario::ProtocolSpec::Bgp { mode } => {
            let roles = scn.topology.fig4_roles().expect("fig4");
            scenario::bgp_fig4_processes(&roles, mode)
        }
        _ => unreachable!("bgp-med is BGP"),
    };
    let spawn = |id: NodeId| -> BgpProcess { procs[id.index()].clone() };
    let selects_p3 = |ls: &LockstepNet<BgpProcess>| {
        ls.control_plane(NodeId(2)).best_path(9).map(|p| p.route_id) == Some(3)
    };
    let has_path =
        |ls: &LockstepNet<BgpProcess>| ls.control_plane(NodeId(2)).best_path(9).is_some();
    check_invariance(&g, &rec, spawn, selects_p3, has_path, salts, "bgp");
}

fn ospf_case(salts: &[u64]) {
    let (scn, g, bytes) = recorded("ospf-loss-window");
    let rec = defined::core::recorder::Recording::from_bytes(&bytes).expect("decodes");
    assert!(matches!(scn.protocol, scenario::ProtocolSpec::Ospf));
    let procs = scenario::ospf_processes(&g);
    let spawn = |id: NodeId| -> OspfProcess { procs[id.index()].clone() };
    let n = g.node_count();
    let converged = move |ls: &LockstepNet<OspfProcess>| {
        ls.control_plane(NodeId(2)).routing_table().len() >= n - 1
    };
    // Exploration predicate: some node's table digest, order-sensitive in
    // principle; any predicate works — invariance is what is asserted.
    let odd_digest = |ls: &LockstepNet<OspfProcess>| {
        debug_digest(ls.control_plane(NodeId(1))) % 2 == 1
    };
    check_invariance(&g, &rec, spawn, odd_digest, converged, salts, "ospf");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 3, .. ProptestConfig::default() })]

    /// Random salt sets: farm answers are job-count invariant on all three
    /// protocols whatever the swept sequence looks like.
    #[test]
    fn farm_is_job_count_invariant(base in 0u64..1000, n in 4usize..10) {
        let salts: Vec<u64> = (0..n as u64).map(|i| base + 3 * i).collect();
        rip_case(&salts);
        bgp_case(&salts);
        ospf_case(&salts);
    }
}

/// The canonical sweep the CLI uses (salts 0..N) — pinned outside the
/// property loop so a regression names itself clearly.
#[test]
fn canonical_sweep_is_invariant() {
    let salts: Vec<u64> = (0..12).collect();
    rip_case(&salts);
    bgp_case(&salts);
    ospf_case(&salts);
}

/// Adaptive capture composes with the farm: a recording taken under
/// `--ckpt-interval auto` yields explore and bisect reports identical to
/// the fixed-interval serial reference, at every job count.
#[test]
fn adaptive_capture_reports_are_job_count_invariant() {
    use defined::core::config::CapturePolicy;
    let fixed = scenario::find("rip-blackhole").expect("registry scenario");
    let auto = fixed.clone().with_capture(CapturePolicy::auto());
    let run = auto.record_run().expect("records under adaptive capture");
    let serial = FarmConfig::serial();
    let explore_ref = fixed.explore_run(&run.bytes, 8, &serial).expect("explores").render();
    let bisect_ref =
        fixed.bisect_run(&run.bytes, &serial).expect("bisects").expect("has groups").render();
    for jobs in [1usize, 2] {
        let farm = FarmConfig::with_jobs(jobs);
        assert_eq!(
            auto.explore_run(&run.bytes, 8, &farm).expect("explores").render(),
            explore_ref,
            "adaptive capture changed the explore report at jobs={jobs}"
        );
        assert_eq!(
            auto.bisect_run(&run.bytes, &farm).expect("bisects").expect("has groups").render(),
            bisect_ref,
            "adaptive capture changed the bisect report at jobs={jobs}"
        );
    }
}

/// End-to-end through the scenario engine: `explore_run` / `bisect_run`
/// render identical reports for jobs ∈ {1, 2, 8}.
#[test]
fn scenario_engine_reports_are_job_count_invariant() {
    for name in ["rip-blackhole", "bgp-med"] {
        let scn = scenario::find(name).expect("registry scenario");
        let run = scn.record_run().expect("records");
        let serial = FarmConfig::serial();
        let explore_ref = scn.explore_run(&run.bytes, 8, &serial).expect("explores").render();
        let bisect_ref = scn
            .bisect_run(&run.bytes, &serial)
            .expect("bisects")
            .expect("has groups")
            .render();
        for jobs in [2usize, 8] {
            let farm = FarmConfig::with_jobs(jobs);
            assert_eq!(
                scn.explore_run(&run.bytes, 8, &farm).expect("explores").render(),
                explore_ref,
                "{name}: explore report varies at jobs={jobs}"
            );
            assert_eq!(
                scn.bisect_run(&run.bytes, &farm).expect("bisects").expect("has groups").render(),
                bisect_ref,
                "{name}: bisect report varies at jobs={jobs}"
            );
        }
    }
}
