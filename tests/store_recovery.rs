//! Kill-safety acceptance for the on-disk recording store (DESIGN.md §12).
//!
//! The contract under test: a store file truncated at **any** byte offset,
//! or corrupted by a flipped bit anywhere, either recovers to the last
//! durable sync point or yields a typed error — it never panics and never
//! hands back a silently wrong recording. A recovered prefix is exactly
//! the in-memory recording filtered to the synced group, so its replay
//! (commit logs and debug transcripts alike) is byte-identical to the
//! replay of that in-memory prefix.

use defined::core::config::CapturePolicy;
use defined::core::recorder::{trim_log, Recording};
use defined::netsim::{NodeId, SimDuration, SimTime};
use defined::routing::rip::RefreshMode;
use defined::scenario::{
    ExtSpec, Fault, Injection, Probe, ProtocolSpec, Scenario, TopologySpec,
};
use defined::store::{
    open_bytes, open_bytes_strict, scan, write_recording, FaultMode, FaultyIo, FsyncPolicy,
    StoreError, StoreMeta, HEADER_LEN,
};

/// A deliberately small OSPF run (4-ring, 2 s, one loss window) so the
/// every-byte-offset sweeps stay cheap while still producing drops,
/// several streamed sync points, and a multi-group tick schedule.
fn small_ospf() -> Scenario {
    Scenario {
        name: "store-recovery-mini".into(),
        description: "4-ring OSPF with a loss window, for store kill-safety tests".into(),
        topology: TopologySpec::Ring { n: 4, delay: SimDuration::from_millis(4) },
        protocol: ProtocolSpec::Ospf,
        seed: 7,
        jitter_frac: 0.4,
        duration: SimDuration::from_secs(2),
        workload: vec![],
        faults: vec![Fault::LossWindow {
            from: SimTime::from_millis(600),
            until: SimTime::from_millis(1200),
            a: NodeId(0),
            b: NodeId(1),
            p: 0.5,
        }],
        probe: Probe::OspfReachable { node: NodeId(2) },
        capture: CapturePolicy::default(),
    }
}

/// A small RIP run with external-event injections, so the streamed-store
/// tests also cover external frames (OSPF takes no runtime externals).
fn small_rip() -> Scenario {
    Scenario {
        name: "store-recovery-rip".into(),
        description: "4-ring RIP with injected prefixes, for store streaming tests".into(),
        topology: TopologySpec::Ring { n: 4, delay: SimDuration::from_millis(4) },
        protocol: ProtocolSpec::Rip { mode: RefreshMode::DestinationAndNextHop },
        seed: 11,
        jitter_frac: 0.3,
        duration: SimDuration::from_secs(2),
        workload: vec![
            Injection {
                at: SimTime::from_millis(200),
                node: NodeId(1),
                ev: ExtSpec::RipConnect { prefix: 42 },
            },
            Injection {
                at: SimTime::from_millis(900),
                node: NodeId(3),
                ev: ExtSpec::RipConnect { prefix: 77 },
            },
        ],
        faults: vec![],
        probe: Probe::RipRoute { node: NodeId(0), prefix: 42 },
        capture: CapturePolicy::default(),
    }
}

/// Records `scn` while streaming into a store file, returning the store
/// bytes, the canonical in-memory recording, and the commit logs trimmed
/// to the run's comparison horizon (what the store carries).
fn record_streamed<X: defined::core::wire::Wire>(
    scn: &Scenario,
    tag: &str,
) -> (Vec<u8>, Recording<X>, Vec<Vec<defined::core::CommitRecord>>, u64) {
    let path = std::env::temp_dir().join(format!("defined-store-recovery-{tag}.drec"));
    let run = scn.record_run_to_store(&path).expect("streamed record");
    let bytes = std::fs::read(&path).expect("store file readable");
    let _ = std::fs::remove_file(&path);
    let rec = Recording::<X>::from_bytes(&run.bytes).expect("raw recording decodes");
    let trimmed = run.logs.iter().map(|l| trim_log(l, run.upto)).collect();
    (bytes, rec, trimmed, run.upto)
}

/// The in-memory recording a durable prefix at sync point `g` must equal:
/// everything with a group tag `<= g`, no drops or death cuts (those are
/// only knowable — and only written — at finalisation).
fn prefix_of<X: Clone>(rec: &Recording<X>, g: u64) -> Recording<X> {
    Recording {
        n_nodes: rec.n_nodes,
        source: rec.source,
        externals: rec.externals.iter().filter(|e| e.group <= g).cloned().collect(),
        drops: Vec::new(),
        mutes: Vec::new(),
        ticks: rec.ticks.iter().filter(|t| t.group <= g).cloned().collect(),
        last_group: g,
    }
}

#[test]
fn streamed_store_round_trips_and_verifies() {
    let scn = small_ospf();
    let (bytes, rec, trimmed, upto) = record_streamed::<()>(&scn, "roundtrip");
    let info = scan(&bytes).expect("fresh store scans");
    assert!(info.finished);
    assert_eq!(info.scenario, scn.name);
    assert_eq!(info.n_nodes, 4);
    let r = open_bytes_strict::<()>(&bytes).expect("fresh store opens strictly");
    assert_eq!(r.recording, rec, "store round trip reproduces the in-memory recording");
    assert_eq!(r.commits.as_deref(), Some(&trimmed[..]));
    assert_eq!(r.upto, Some(upto));
    assert!(!rec.drops.is_empty(), "the loss window must exercise drop frames");
    let report = scn.verify_store(&bytes, 1).expect("verify opens");
    assert!(report.ok(), "fresh store verifies: {}", report.render());
    assert_eq!(report.checked_nodes, 4);
    // The same bytes drive the debug stack directly (format sniffing).
    let t_store = scn.debug_transcript(&bytes, "stepg 2\nwhere\n").expect("debug from store");
    let t_raw =
        scn.debug_transcript(&rec.to_bytes(), "stepg 2\nwhere\n").expect("debug from raw");
    assert_eq!(t_store, t_raw);
}

/// The tentpole acceptance sweep: truncate the streamed store at **every**
/// byte offset. Each prefix must recover to a sync point or fail with a
/// typed error; every recovered recording must equal the in-memory prefix
/// at its synced group, and its replay — commit logs and debug transcript —
/// must be byte-identical to the replay of that in-memory prefix.
#[test]
fn every_offset_truncation_recovers_or_errors() {
    let scn = small_ospf();
    let (bytes, rec, _, _) = record_streamed::<()>(&scn, "truncate");
    let mut recovered: Vec<(u64, usize)> = Vec::new(); // (synced group, example cut)
    for cut in 0..bytes.len() {
        match open_bytes::<()>(&bytes[..cut]) {
            Ok(r) => {
                assert!(!r.info.finished, "a strict prefix can never be finished (cut {cut})");
                assert!(r.commits.is_none() && r.upto.is_none());
                assert_eq!(
                    r.recording,
                    prefix_of(&rec, r.recording.last_group),
                    "recovered prefix at cut {cut} must be the in-memory prefix at group {}",
                    r.recording.last_group
                );
                if !recovered.iter().any(|&(g, _)| g == r.recording.last_group) {
                    recovered.push((r.recording.last_group, cut));
                }
            }
            Err(e) => {
                // Typed, actionable, and displayable — the contract for
                // everything recovery cannot save.
                assert!(!format!("{e}").is_empty());
            }
        }
    }
    assert!(
        recovered.len() >= 2,
        "the run must stream at least two distinct sync points, got {recovered:?}"
    );
    // Replay byte-identity, once per distinct recovered prefix.
    for &(g, cut) in &recovered {
        let mem_bytes = prefix_of(&rec, g).to_bytes();
        let logs_store = scn.replay_logs(&bytes[..cut]).expect("recovered prefix replays");
        let logs_mem = scn.replay_logs(&mem_bytes).expect("in-memory prefix replays");
        assert_eq!(logs_store, logs_mem, "commit logs diverge for prefix at group {g}");
        let script = "stepg 1\nwhere\nrun\nwhere\n";
        let t_store = scn.debug_transcript(&bytes[..cut], script).expect("store debug");
        let t_mem = scn.debug_transcript(&mem_bytes, script).expect("memory debug");
        assert_eq!(t_store, t_mem, "debug transcripts diverge for prefix at group {g}");
    }
}

/// Every bit of the 12-byte header is load-bearing: any flip is rejected
/// with a typed error before a single frame is trusted.
#[test]
fn every_header_bit_flip_is_rejected() {
    let scn = small_ospf();
    let (bytes, _, _, _) = record_streamed::<()>(&scn, "header");
    for pos in 0..HEADER_LEN {
        for bit in 0..8 {
            let mut flipped = bytes.clone();
            flipped[pos] ^= 1 << bit;
            assert!(
                scan(&flipped).is_err(),
                "header flip at byte {pos} bit {bit} must be rejected"
            );
            assert!(open_bytes::<()>(&flipped).is_err());
        }
    }
}

/// A flipped bit anywhere in the body can never pass for a finished
/// store: the frame CRC catches it (typed error), or — when the flip
/// forges a frame length that overruns the file — recovery degrades the
/// store to an unfinished prefix. Strict open therefore always refuses.
#[test]
fn body_bit_flips_never_yield_a_finished_store() {
    let scn = small_ospf();
    let (bytes, _, _, _) = record_streamed::<()>(&scn, "body");
    for pos in HEADER_LEN..bytes.len() {
        let mut flipped = bytes.clone();
        flipped[pos] ^= 1 << (pos % 8);
        if let Ok(r) = open_bytes::<()>(&flipped) {
            assert!(!r.info.finished, "flip at byte {pos} passed as finished");
        }
        assert!(open_bytes_strict::<()>(&flipped).is_err());
    }
}

/// Streamed external events survive recovery: RIP prefixes injected
/// mid-run appear in every recovered prefix whose sync point covers them.
#[test]
fn streamed_externals_recover_with_their_prefix() {
    let scn = small_rip();
    let (bytes, rec, _, _) = record_streamed::<defined::routing::rip::RipExt>(&scn, "rip");
    assert_eq!(rec.externals.len(), 2, "both injections must be recorded");
    let r = open_bytes::<defined::routing::rip::RipExt>(&bytes).expect("opens");
    assert_eq!(r.recording, rec);
    // Sweep a stride of truncation offsets (the exhaustive sweep runs on
    // the OSPF store above; this one checks external frames specifically).
    for cut in (0..bytes.len()).step_by(7) {
        if let Ok(r) = open_bytes::<defined::routing::rip::RipExt>(&bytes[..cut]) {
            assert_eq!(r.recording, prefix_of(&rec, r.recording.last_group));
        }
    }
}

/// Fault-injected writes through the offline writer: failing or tearing
/// the Nth write call, for every N, leaves a file recovery handles.
#[test]
fn fault_injected_writes_leave_recoverable_files() {
    let scn = small_ospf();
    let (_, rec, trimmed, upto) = record_streamed::<()>(&scn, "faulty");
    let meta = StoreMeta { n_nodes: rec.n_nodes, source: rec.source, scenario: scn.name.clone() };
    let full = write_recording(
        defined::store::VecIo::new(),
        &meta,
        &rec,
        &trimmed,
        upto,
        4,
        FsyncPolicy::Never,
    )
    .expect("clean write")
    .bytes;
    for nth in 1.. {
        for mode in
            [FaultMode::FailWrite { nth }, FaultMode::ShortWrite { nth, keep: 3 }]
        {
            let mut io = FaultyIo::new(mode);
            let wrote =
                write_recording(&mut io, &meta, &rec, &trimmed, upto, 4, FsyncPolicy::Never)
                    .is_ok();
            let persisted = io.into_bytes();
            if matches!(mode, FaultMode::FailWrite { .. }) && wrote {
                // nth exceeded the total write count: the file is whole.
                assert_eq!(persisted, full);
                let r = open_bytes::<()>(&persisted).expect("whole file opens");
                assert!(r.info.finished);
                return; // Every failing index has been covered.
            }
            assert!(!wrote, "an injected fault must surface to the writer");
            match open_bytes::<()>(&persisted) {
                Ok(r) => {
                    assert!(!r.info.finished);
                    assert_eq!(r.recording, prefix_of(&rec, r.recording.last_group));
                }
                Err(e) => assert!(!format!("{e}").is_empty()),
            }
        }
    }
}

/// `KillAfter` models a power loss after the page cache accepted
/// everything: only a byte budget survives. Recovery must treat every
/// budget like the equivalent truncation.
#[test]
fn kill_after_power_loss_recovers_like_truncation() {
    let scn = small_ospf();
    let (_, rec, trimmed, upto) = record_streamed::<()>(&scn, "kill");
    let meta = StoreMeta { n_nodes: rec.n_nodes, source: rec.source, scenario: scn.name.clone() };
    let full = write_recording(
        defined::store::VecIo::new(),
        &meta,
        &rec,
        &trimmed,
        upto,
        4,
        FsyncPolicy::Never,
    )
    .expect("clean write")
    .bytes;
    for budget in (0..full.len()).step_by(13).chain([full.len()]) {
        let mut io = FaultyIo::new(FaultMode::KillAfter { bytes: budget });
        // The kill lies: every write reports success, so the writer
        // finishes "cleanly" — durability is decided by the budget alone.
        write_recording(&mut io, &meta, &rec, &trimmed, upto, 4, FsyncPolicy::Never)
            .expect("writes appear to succeed");
        let persisted = io.into_bytes();
        assert_eq!(&persisted[..], &full[..budget.min(full.len())]);
        match open_bytes::<()>(&persisted) {
            Ok(r) if r.info.finished => assert_eq!(budget, full.len()),
            Ok(r) => assert_eq!(r.recording, prefix_of(&rec, r.recording.last_group)),
            Err(e) => assert!(!format!("{e}").is_empty()),
        }
    }
}

/// The typed error taxonomy is stable and actionable — the errors a
/// troubleshooter actually sees name the offset and the failure class.
#[test]
fn corruption_errors_are_typed_and_name_the_offset() {
    let scn = small_ospf();
    let (bytes, _, _, _) = record_streamed::<()>(&scn, "typed");
    // Empty and tiny files: too short.
    assert!(matches!(scan(&[]), Err(StoreError::TooShort { .. })));
    assert!(matches!(scan(&bytes[..5]), Err(StoreError::TooShort { .. })));
    // Wrong magic.
    let mut wrong = bytes.clone();
    wrong[0] = b'X';
    assert!(matches!(scan(&wrong), Err(StoreError::BadMagic)));
    // A mid-file payload flip is caught by the frame CRC at that offset.
    let mut flipped = bytes.clone();
    let pos = bytes.len() / 2;
    flipped[pos] ^= 0x10;
    match scan(&flipped) {
        Err(StoreError::Corrupt { offset, .. }) => assert!(offset <= pos),
        Ok(info) => assert!(!info.finished, "flip degraded to a recovered prefix"),
        Err(e) => panic!("unexpected error class for a payload flip: {e}"),
    }
    // Strict open refuses a torn tail with the recovery coordinates.
    let torn = &bytes[..bytes.len() - 3];
    match open_bytes_strict::<()>(torn) {
        Err(StoreError::Unfinished { synced_group, dropped_bytes }) => {
            assert!(synced_group > 0);
            assert!(dropped_bytes > 0);
        }
        Err(e) => panic!("strict open of a torn tail must be Unfinished, got {e}"),
        Ok(_) => panic!("strict open of a torn tail must fail"),
    }
}
