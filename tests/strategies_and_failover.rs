//! Integration tests for checkpoint-strategy equivalence, recorded-loss
//! replay, beacon-source failover, and checkpoint-granularity correctness.

use defined::core::config::CapturePolicy;
use defined::core::ls::first_divergence;
use defined::core::recorder::trim_log;
use defined::core::{DefinedConfig, LockstepNet, RbNetwork};
use defined::netsim::{NodeId, SimDuration, SimTime};
use defined::routing::ospf::OspfProcess;
// The canonical OSPF spawner lives in the scenario registry.
use defined::scenario::ospf_processes as spawners;
use defined::topology::canonical;
use defined::topology::Graph;

fn run(g: &Graph, cfg: DefinedConfig, seed: u64) -> RbNetwork<OspfProcess> {
    let procs = spawners(g);
    let mut net = RbNetwork::new(g, cfg, seed, 0.7, move |id| procs[id.index()].clone());
    net.schedule_link(SimTime::from_secs(2), NodeId(0), NodeId(1), false);
    net.run_until(SimTime::from_secs(7));
    net
}

/// The committed execution must be identical regardless of the checkpoint
/// storage strategy — strategies change cost, never semantics.
#[test]
fn strategies_commit_identical_executions() {
    let g = canonical::ring(5, SimDuration::from_millis(4));
    let mut logs = Vec::new();
    let mut upto = u64::MAX;
    for strategy in [
        checkpoint::Strategy::CloneState,
        checkpoint::Strategy::Fork,
        checkpoint::Strategy::MemIntercept,
    ] {
        let cfg = DefinedConfig { strategy, ..DefinedConfig::default() };
        let net = run(&g, cfg, 4);
        upto = upto.min(net.completed_group(2));
        logs.push(net.commit_logs());
    }
    for pair in logs.windows(2) {
        for (i, (a, b)) in pair[0].iter().zip(pair[1].iter()).enumerate() {
            assert_eq!(trim_log(a, upto), trim_log(b, upto), "node {i}");
        }
    }
}

/// Checkpointing every k-th delivery (the paper's §3 optimisation) must not
/// change the committed execution either — rollbacks just replay further.
#[test]
fn checkpoint_granularity_preserves_execution() {
    let g = canonical::ring(5, SimDuration::from_millis(4));
    let mut logs = Vec::new();
    let mut upto = u64::MAX;
    let mut rollback_entries = Vec::new();
    let policies = [
        CapturePolicy::Every(1),
        CapturePolicy::Every(4),
        CapturePolicy::Every(16),
        // The churn-adaptive policy must commit the same execution too.
        CapturePolicy::auto(),
    ];
    for capture in policies {
        let cfg = DefinedConfig { capture, ..DefinedConfig::default() };
        let net = run(&g, cfg, 9);
        upto = upto.min(net.completed_group(2));
        rollback_entries.push(net.total_metrics().rolled_entries);
        logs.push(net.commit_logs());
    }
    for pair in logs.windows(2) {
        for (i, (a, b)) in pair[0].iter().zip(pair[1].iter()).enumerate() {
            assert_eq!(trim_log(a, upto), trim_log(b, upto), "node {i}");
        }
    }
    // Sparser checkpoints force deeper replays (weakly monotone).
    assert!(
        rollback_entries[2] >= rollback_entries[0],
        "k=16 should replay at least as much as k=1: {rollback_entries:?}"
    );
}

/// Recorded message losses replay exactly: a lossy production run's
/// recording reproduces in LS (Theorem 1 with footnote-4 loss replay).
#[test]
fn lossy_run_reproduces_via_drop_replay() {
    // Loss is injected through link-down flaps, which kill in-flight
    // packets; the recorder maps them to committed send indexes.
    let g = canonical::grid(2, 3, SimDuration::from_millis(4));
    let cfg = DefinedConfig::default();
    let procs = spawners(&g);
    let p2 = procs.clone();
    let mut net = RbNetwork::new(&g, cfg.clone(), 17, 0.6, move |id| procs[id.index()].clone());
    net.schedule_link(SimTime::from_millis(2_100), NodeId(0), NodeId(1), false);
    net.schedule_link(SimTime::from_millis(3_600), NodeId(0), NodeId(1), true);
    net.schedule_link(SimTime::from_millis(4_300), NodeId(2), NodeId(3), false);
    net.schedule_link(SimTime::from_millis(5_900), NodeId(2), NodeId(3), true);
    net.run_until(SimTime::from_secs(9));
    let upto = net.completed_group(3);
    let (rec, rb_logs) = net.into_recording();
    assert!(!rec.drops.is_empty(), "flaps should have killed in-flight packets");
    let mut ls = LockstepNet::new(&g, cfg, rec, move |id| p2[id.index()].clone());
    ls.run_to_end();
    let div = first_divergence(&rb_logs, ls.logs(), upto);
    assert!(div.is_none(), "lossy replay diverged: {div:?}");
}

/// When the beacon source dies, the election installs a new source and
/// virtual time keeps advancing (the paper's leader-election requirement).
#[test]
fn beacon_source_failover_keeps_time_advancing() {
    let g = canonical::ring(5, SimDuration::from_millis(4));
    let cfg = DefinedConfig::default();
    let procs = spawners(&g);
    let mut net = RbNetwork::new(&g, cfg, 3, 0.3, move |id| procs[id.index()].clone());
    // Node 0 is the initial beacon source; kill it at 3 s.
    net.schedule_node(SimTime::from_secs(3), NodeId(0), false);
    net.run_until(SimTime::from_secs(3));
    let group_at_death = (1..5)
        .map(|i| net.sim().process(NodeId(i)).current_group())
        .max()
        .unwrap();
    net.run_until(SimTime::from_secs(14));
    for i in 1..5 {
        let g_now = net.sim().process(NodeId(i)).current_group();
        assert!(
            g_now > group_at_death + 10,
            "node {i}: virtual time stalled after source death ({group_at_death} -> {g_now})"
        );
    }
}

/// Groups remain strictly monotonic at every node across the failover.
#[test]
fn failover_groups_monotonic() {
    let g = canonical::ring(4, SimDuration::from_millis(4));
    let cfg = DefinedConfig::default();
    let procs = spawners(&g);
    let mut net = RbNetwork::new(&g, cfg, 8, 0.3, move |id| procs[id.index()].clone());
    net.schedule_node(SimTime::from_secs(2), NodeId(0), false);
    net.run_until(SimTime::from_secs(10));
    for i in 1..4 {
        let log = net.sim().process(NodeId(i)).commit_records();
        let beacon_groups: Vec<u64> = log
            .iter()
            .filter(|r| r.ann.class == defined::core::EventClass::Beacon)
            .map(|r| r.ann.group)
            .collect();
        assert!(
            beacon_groups.windows(2).all(|w| w[0] < w[1]),
            "node {i} beacon groups not strictly increasing: {beacon_groups:?}"
        );
    }
}

/// Determinism still holds with the production configuration (Fork
/// checkpoints on arrival + GC horizon), not just the test defaults.
#[test]
fn production_config_end_to_end() {
    let g = canonical::grid(2, 3, SimDuration::from_millis(4));
    let cfg = DefinedConfig::production(SimDuration::from_secs(2));
    let run_with = |seed| {
        let procs = spawners(&g);
        let mut net =
            RbNetwork::new(&g, cfg.clone(), seed, 0.8, move |id| procs[id.index()].clone());
        net.schedule_link(SimTime::from_secs(2), NodeId(1), NodeId(2), false);
        net.run_until(SimTime::from_secs(8));
        let upto = net.completed_group(3);
        let m = net.total_metrics();
        assert_eq!(m.window_violations, 0);
        (net.commit_logs(), upto)
    };
    let (a, ua) = run_with(5);
    let (b, ub) = run_with(6);
    let upto = ua.min(ub);
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(trim_log(x, upto), trim_log(y, upto), "node {i}");
    }
}
