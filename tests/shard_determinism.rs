//! Shard determinism: splitting a single replay across worker shards is
//! invisible in every observable output.
//!
//! `ShardedNet` block-partitions each lockstep wave over the nodes and
//! re-merges the shards' emissions in deterministic `(OrderKey, to)` order,
//! so the shard count — like the farm's job count — is a pure *cost* knob.
//! These tests hold that contract end to end through the scenario engine:
//!
//! * commit logs are byte-identical for shards ∈ {1, 2, 4} on all three
//!   protocols, including a crash-fault scenario whose death cut must be
//!   applied per destination shard;
//! * scripted debug transcripts are byte-identical for every shard count;
//! * checkpoint-seeded farm searches (`--jobs 2 --shards 2`) render the
//!   same explore/bisect reports as the fully serial engines.
//!
//! Everything here runs on any host: a 1-CPU machine still exercises the
//! real cross-thread exchange because `ShardedWaves` spawns its scoped
//! workers regardless of the core count.

use defined::core::FarmConfig;
use defined::scenario;

/// One scenario per protocol, plus a second crash-fault case: RIP with a
/// crashed next hop (death cut), OSPF under a recorded loss window, BGP's
/// MED case study, and an OSPF hub crash on a Barabási–Albert topology.
const SCENARIOS: [&str; 4] = ["rip-blackhole", "ospf-loss-window", "bgp-med", "ba-hub-crash"];

const SCRIPT: &str = "where\nstepg 3\nwhere\nstep 5\ninspect 0\nlog 0 3\nrun\nwhere\n";

#[test]
fn commit_logs_are_shard_count_invariant() {
    for name in SCENARIOS {
        let scn = scenario::find(name).expect("registry scenario");
        let run = scn.record_run().expect("records");
        let serial = scn.replay_logs(&run.bytes).expect("serial replay");
        for shards in [2usize, 4] {
            let sharded =
                scn.replay_logs_sharded(&run.bytes, shards).expect("sharded replay");
            assert_eq!(sharded, serial, "{name}: commit logs diverge at shards={shards}");
        }
    }
}

#[test]
fn debug_transcripts_are_shard_count_invariant() {
    for name in SCENARIOS {
        let scn = scenario::find(name).expect("registry scenario");
        let run = scn.record_run().expect("records");
        let reference = scn
            .debug_transcript_sharded(&run.bytes, SCRIPT, 1)
            .expect("serial transcript");
        assert!(!reference.is_empty(), "{name}: empty transcript");
        for shards in [2usize, 4] {
            let transcript = scn
                .debug_transcript_sharded(&run.bytes, SCRIPT, shards)
                .expect("sharded transcript");
            assert_eq!(transcript, reference, "{name}: transcript diverges at shards={shards}");
        }
    }
}

/// Checkpoint-seeded farm probes compose with sharding: a farm running
/// `jobs = 2` whose every probe replay is itself split 2-way must render
/// the same explore and bisect reports as the serial engines. This is the
/// `--jobs 2 --shards 2` CLI configuration.
#[test]
fn farm_searches_are_shard_invariant() {
    for name in ["rip-blackhole", "bgp-med"] {
        let scn = scenario::find(name).expect("registry scenario");
        let run = scn.record_run().expect("records");
        let serial = FarmConfig::serial();
        let sharded = FarmConfig::with_jobs(2).with_shards(2);
        assert_eq!(
            scn.explore_run(&run.bytes, 8, &sharded).expect("explores").render(),
            scn.explore_run(&run.bytes, 8, &serial).expect("explores").render(),
            "{name}: explore report varies under --jobs 2 --shards 2"
        );
        assert_eq!(
            scn.bisect_run(&run.bytes, &sharded).expect("bisects").expect("groups").render(),
            scn.bisect_run(&run.bytes, &serial).expect("bisects").expect("groups").render(),
            "{name}: bisect report varies under --jobs 2 --shards 2"
        );
    }
}

/// The churn-adaptive capture policy (`--ckpt-interval auto`) is a pure
/// cost knob like the shard count: the recording it produces is
/// byte-identical to the fixed-interval one, and every sharded replay of it
/// matches the serial fixed-interval commit logs.
#[test]
fn adaptive_capture_is_shard_count_invariant() {
    use defined::core::config::CapturePolicy;
    let fixed = scenario::find("ospf-loss-window").expect("registry scenario");
    let auto = fixed.clone().with_capture(CapturePolicy::auto());
    let run = auto.record_run().expect("records under adaptive capture");
    let run_fixed = fixed.record_run().expect("records under fixed capture");
    assert_eq!(run.bytes, run_fixed.bytes, "capture policy leaked into the recording");
    let serial = fixed.replay_logs(&run_fixed.bytes).expect("serial replay");
    assert_eq!(
        auto.replay_logs(&run.bytes).expect("adaptive replay"),
        serial,
        "capture policy changed the committed logs"
    );
    for shards in [2usize, 4] {
        let sharded = auto.replay_logs_sharded(&run.bytes, shards).expect("sharded replay");
        assert_eq!(sharded, serial, "adaptive capture diverges at shards={shards}");
    }
}

/// `--shards 0` (auto) resolves to the available core count and still
/// reproduces the serial logs — the resolution path used by the CLI.
#[test]
fn auto_shard_count_reproduces_serial_logs() {
    let scn = scenario::find("ospf-loss-window").expect("registry scenario");
    let run = scn.record_run().expect("records");
    let serial = scn.replay_logs(&run.bytes).expect("serial replay");
    let auto = scn.replay_logs_sharded(&run.bytes, 0).expect("auto-sharded replay");
    assert_eq!(auto, serial, "auto shard count diverges from serial");
}
