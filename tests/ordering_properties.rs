//! Property tests of the pseudorandom ordering function (paper §2.2).
//!
//! The paper requires the ordering to be (i) deterministic, (ii) consistent
//! with causality, and (iii) close to the common-case arrival order. The
//! first two are universally quantified claims, so they get proptests over
//! random causal forests; the third is measured by Fig. 8a (OO vs RO).

use defined::core::{Annotation, OrderingMode};
use defined::netsim::NodeId;
use proptest::prelude::*;

/// A recipe for one causal chain: where it starts and which (node, emit)
/// hops extend it.
#[derive(Clone, Debug)]
struct ChainSpec {
    origin: u32,
    group: u64,
    ext_seq: u64,
    hops: Vec<(u32, u32, u64)>, // (forwarder node, emit slot, link delay)
}

fn chain_spec() -> impl Strategy<Value = ChainSpec> {
    (
        0u32..12,
        1u64..6,
        0u64..4,
        proptest::collection::vec((0u32..12, 0u32..3, 1u64..20_000_000), 1..10),
    )
        .prop_map(|(origin, group, ext_seq, hops)| ChainSpec { origin, group, ext_seq, hops })
}

/// Materialises a chain: external root, then message children hop by hop.
fn build_chain(spec: &ChainSpec, bound: u32) -> Vec<Annotation> {
    let mut out = Vec::with_capacity(spec.hops.len() + 1);
    let mut cur = Annotation::external(NodeId(spec.origin), spec.group, spec.ext_seq);
    out.push(cur);
    for &(node, emit, link) in &spec.hops {
        cur = Annotation::child(&cur, NodeId(node), link, emit, bound);
        out.push(cur);
    }
    out
}

proptest! {
    /// Determinism: rebuilding the same chain yields identical annotations
    /// and identical keys under every ordering mode.
    #[test]
    fn keys_are_deterministic(spec in chain_spec(), salt in 0u64..1000) {
        let a = build_chain(&spec, 24);
        let b = build_chain(&spec, 24);
        prop_assert_eq!(&a, &b);
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.key(OrderingMode::Optimized), y.key(OrderingMode::Optimized));
            prop_assert_eq!(x.key(OrderingMode::Random), y.key(OrderingMode::Random));
            prop_assert_eq!(
                x.key(OrderingMode::Permuted(salt)),
                y.key(OrderingMode::Permuted(salt))
            );
        }
    }

    /// Causal consistency: every parent sorts strictly before its child,
    /// under every ordering mode — the property the paper's footnote 1
    /// argues for `d` and that `(group, chain)` makes structural here.
    #[test]
    fn parents_precede_children(spec in chain_spec(), salt in 0u64..1000) {
        for mode in [
            OrderingMode::Optimized,
            OrderingMode::Random,
            OrderingMode::Permuted(salt),
        ] {
            let chain = build_chain(&spec, 24);
            for w in chain.windows(2) {
                prop_assert!(
                    w[0].key(mode) < w[1].key(mode),
                    "parent {:?} !< child {:?} under {:?}",
                    w[0],
                    w[1],
                    mode,
                );
            }
        }
    }

    /// Lineage totality: annotations built along *different* causal paths
    /// never collide, even when every paper field agrees. (Within one
    /// chain, `(group, chain)` already separates.)
    #[test]
    fn distinct_paths_have_distinct_keys(
        a in chain_spec(),
        b in chain_spec(),
    ) {
        let ca = build_chain(&a, 24);
        let cb = build_chain(&b, 24);
        for (i, x) in ca.iter().enumerate() {
            for (j, y) in cb.iter().enumerate() {
                // Identical prefixes legitimately produce identical events;
                // skip pairs that are the same construction.
                let same_construction = a.origin == b.origin
                    && a.group == b.group
                    && a.ext_seq == b.ext_seq
                    && i == j
                    && a.hops[..i] == b.hops[..j];
                if same_construction {
                    continue;
                }
                prop_assert!(
                    x.key(OrderingMode::Optimized) != y.key(OrderingMode::Optimized)
                        || x == y,
                    "distinct events share a key:\n  {x:?}\n  {y:?}",
                );
            }
        }
    }

    /// The chain bound always lands children in the next group with a fresh
    /// chain, preserving the origin identity (paper §2.2).
    #[test]
    fn chain_bound_rolls_over(
        spec in chain_spec(),
        bound in 1u32..6,
    ) {
        let chain = build_chain(&spec, bound);
        for w in chain.windows(2) {
            let (p, c) = (&w[0], &w[1]);
            prop_assert_eq!(c.origin, p.origin);
            prop_assert_eq!(c.origin_seq, p.origin_seq);
            if p.chain + 1 > bound {
                prop_assert_eq!(c.group, p.group + 1, "overflow enters next group");
                prop_assert_eq!(c.chain, 1u32);
            } else {
                prop_assert_eq!(c.group, p.group);
                prop_assert_eq!(c.chain, p.chain + 1);
                prop_assert!(c.delay >= p.delay, "delay accumulates");
            }
        }
    }

    /// Key encoding round-trips for arbitrary chain-derived keys.
    #[test]
    fn order_keys_round_trip(spec in chain_spec(), salt in 0u64..1000) {
        for ann in build_chain(&spec, 24) {
            for mode in [
                OrderingMode::Optimized,
                OrderingMode::Random,
                OrderingMode::Permuted(salt),
            ] {
                let k = ann.key(mode);
                let mut buf = Vec::new();
                k.encode(&mut buf);
                let mut r = defined::routing::enc::Reader::new(&buf);
                prop_assert_eq!(defined::core::OrderKey::decode(&mut r), Some(k));
            }
        }
    }

    /// Group always dominates the order, in every mode: any event of group
    /// `g` sorts before any event of group `g + k`.
    #[test]
    fn groups_dominate_everything(
        a in chain_spec(),
        b in chain_spec(),
        bump in 1u64..5,
    ) {
        let mut late = b.clone();
        late.group = a.group + bump + 10; // Clear any chain-bound spill of `a`.
        let ca = build_chain(&a, 24);
        let cb = build_chain(&late, 24);
        for x in &ca {
            for y in &cb {
                if y.group > x.group {
                    prop_assert!(x.key(OrderingMode::Random) < y.key(OrderingMode::Random));
                }
            }
        }
    }
}
