//! Offline shim for `crossbeam`.
//!
//! The build machine has no crates.io access, so this workspace vendors a
//! std-backed implementation of the subset it uses: `crossbeam::channel`
//! with multi-producer **multi-consumer** unbounded channels (std's `mpsc`
//! receiver is not `Clone`, so the queue lives behind a shared mutex).
//! Receiving is non-blocking only (`try_recv`/`try_iter`) — exactly what
//! the threaded lockstep runtime, which synchronises on a barrier, uses.
//!
//! Like the real crate, channels *disconnect*: once every `Receiver` has
//! been dropped, `send` fails with [`channel::SendError`] instead of
//! queueing into the void. The threaded replayer relies on this to detect
//! peers that closed their mailbox after exhausting a recorded death cut.

#![warn(missing_docs)]

pub mod channel {
    //! Multi-producer multi-consumer unbounded FIFO channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        /// Live `Receiver` handles; 0 means the channel is disconnected.
        receivers: AtomicUsize,
    }

    /// The sending half of an unbounded channel; cloneable.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half of an unbounded channel; cloneable (all clones
    /// drain the same queue). Dropping the last clone disconnects the
    /// channel: subsequent sends fail.
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Error returned by [`Sender::send`] when every receiver has been
    /// dropped; carries the rejected value.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`] when the queue is empty.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct TryRecvError;

    /// Creates an unbounded channel, returning the two halves.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            receivers: AtomicUsize::new(1),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            // Decrement under the queue lock so disconnection linearises
            // with `send`'s check-then-push (see there).
            let _q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            self.0.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Appends `value` to the queue, or returns it in a [`SendError`]
        /// when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            // Both this check-then-push and `Receiver::drop`'s decrement
            // run under the queue lock, so disconnection is atomic with
            // respect to sends: a send observes the channel either fully
            // alive (push succeeds) or fully disconnected (error) — never
            // a push into a queue that was already dead at check time.
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            if self.0.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            q.push_back(value);
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Pops the front of the queue without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.pop_front().ok_or(TryRecvError)
        }

        /// Returns an iterator draining everything currently queued without
        /// blocking (new items enqueued mid-iteration are also yielded).
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter(self)
        }
    }

    /// Iterator returned by [`Receiver::try_iter`].
    pub struct TryIter<'a, T>(&'a Receiver<T>);

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.0.try_recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_and_try_iter() {
            let (tx, rx) = unbounded();
            for i in 0..5 {
                tx.send(i).unwrap();
            }
            assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
            assert_eq!(rx.try_recv(), Err(TryRecvError));
        }

        #[test]
        fn cloned_receivers_share_queue() {
            let (tx, rx1) = unbounded();
            let rx2 = rx1.clone();
            tx.send(7u8).unwrap();
            assert_eq!(rx2.try_recv(), Ok(7));
            assert_eq!(rx1.try_recv(), Err(TryRecvError));
        }

        #[test]
        fn dropping_the_last_receiver_disconnects() {
            let (tx, rx1) = unbounded();
            let rx2 = rx1.clone();
            tx.send(1u8).unwrap();
            drop(rx1);
            tx.send(2u8).unwrap(); // One receiver still alive.
            drop(rx2);
            assert_eq!(tx.send(3u8), Err(SendError(3)), "all receivers gone");
            // Cloned senders observe the same disconnection.
            assert_eq!(tx.clone().send(4u8), Err(SendError(4)));
        }
    }
}
