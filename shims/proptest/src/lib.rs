//! Offline shim for `proptest`.
//!
//! The build machine has no crates.io access, so this workspace vendors a
//! deterministic property-testing harness exposing the subset of the
//! proptest API its tests use: the [`Strategy`] trait with `prop_map`,
//! range/tuple/`Just`/union strategies, [`collection::vec`],
//! [`option::of`], [`arbitrary::Arbitrary`] (`any::<T>()`), and the
//! [`proptest!`] / `prop_assert*` / [`prop_oneof!`] macros.
//!
//! Differences from real proptest, chosen for an offline reproduction of a
//! *determinism* paper:
//!
//! * case generation is fully deterministic — a fixed seed mixed with the
//!   test name, overridable via `PROPTEST_SEED`;
//! * there is no shrinking: a failing case reports its seed and case index
//!   so it can be replayed exactly;
//! * `PROPTEST_CASES` overrides the per-test case count.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Op {
        Push(u8),
        Pop,
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => any::<u8>().prop_map(Op::Push),
            1 => Just(Op::Pop),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn vec_lengths_respect_bounds(v in crate::collection::vec(0u32..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            for x in v {
                prop_assert!(x < 10);
            }
        }

        #[test]
        fn ranges_stay_in_bounds(a in 3u64..17, b in -4i32..9, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-4..9).contains(&b));
            prop_assert!((0.25..0.75).contains(&f), "f = {}", f);
        }

        #[test]
        fn unions_hit_every_arm_type(ops in crate::collection::vec(op(), 1..40)) {
            let mut depth = 0i32;
            for o in &ops {
                match o {
                    Op::Push(_) => depth += 1,
                    Op::Pop => depth -= 1,
                }
            }
            prop_assert!((-40..=40).contains(&depth));
        }

        #[test]
        fn assume_rejects_do_not_fail(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn option_of_produces_both(o in crate::option::of(1usize..5)) {
            if let Some(v) = o {
                prop_assert!((1..5).contains(&v));
            }
        }
    }

    #[test]
    fn determinism_same_seed_same_values() {
        use crate::test_runner::TestRng;
        let s = (0u8..200, crate::collection::vec(any::<u64>(), 0..8));
        let a: Vec<_> = {
            let mut rng = TestRng::new(42);
            (0..20).map(|_| s.generate(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = TestRng::new(42);
            (0..20).map(|_| s.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "proptest: test failed")]
    fn failures_panic() {
        proptest!(|(x in 0u32..10)| {
            prop_assert!(x < 5, "x was {}", x);
        });
    }
}
