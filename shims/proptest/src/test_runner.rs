//! Deterministic RNG, configuration, and the case-running loop behind the
//! [`proptest!`](crate::proptest) macro.

use std::fmt;

/// Splitmix64-based deterministic RNG. Good enough statistical quality for
/// test-case generation, and — the property this workspace actually cares
/// about — bit-for-bit reproducible everywhere.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from `seed`.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1) }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift rejection-free mapping (Lemire); bias is < 2^-64
        // per draw, irrelevant for test-case generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-test configuration; mirrors the proptest struct shape so
/// `ProptestConfig { cases: 64, ..ProptestConfig::default() }` compiles.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum number of `prop_assume!` rejections tolerated before the
    /// test errors out as over-constrained.
    pub max_global_rejects: u32,
    /// Accepted for API compatibility; this shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases, max_global_rejects: 65_536, max_shrink_iters: 0 }
    }
}

impl ProptestConfig {
    /// Convenience constructor used by some call sites.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..ProptestConfig::default() }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is re-drawn, not failed.
    Reject(String),
    /// An assertion failed; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// A failed-assertion error.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected-inputs (assume) error.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Result type of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Returns the base seed: `PROPTEST_SEED` if set, a fixed default
/// otherwise. Failure reports print this value, so replaying is exactly
/// `PROPTEST_SEED=<printed> cargo test <name>`.
pub fn base_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xDEF1_4ED0_0000_2013)
}

fn mix_test_name(base: u64, test_name: &str) -> u64 {
    // FNV-1a over the test name, so distinct tests explore distinct
    // sequences under the same base seed.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    base ^ h
}

/// Runs `case` up to `config.cases` times with per-case deterministic RNGs.
/// Panics on the first [`TestCaseError::Fail`], reporting enough to replay.
pub fn run_cases(
    test_name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> TestCaseResult,
) {
    let base = base_seed();
    let seed = mix_test_name(base, test_name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut case_index = 0u64;
    while passed < config.cases {
        let mut rng = TestRng::new(seed ^ case_index.wrapping_mul(0xa076_1d64_78bd_642f));
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "proptest: test over-constrained: {rejected} rejects in `{test_name}` \
                     (base seed {base})"
                );
            }
            Err(TestCaseError::Fail(msg)) => panic!(
                "proptest: test failed: {msg}\n  test: {test_name}\n  case: {case_index}\n  \
                 replay with PROPTEST_SEED={base}"
            ),
        }
        case_index += 1;
    }
}
