//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type from a deterministic RNG.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// is just a sampling function, and a failing case is replayed by seed.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Shuffles generated `Vec` values into a random permutation.
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
    {
        Shuffle { inner: self }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Strategy returned by [`Strategy::prop_shuffle`]: a uniformly random
/// permutation (Fisher–Yates over the deterministic test RNG) of the inner
/// strategy's `Vec` value.
#[derive(Clone, Debug)]
pub struct Shuffle<S> {
    inner: S,
}

impl<S, T> Strategy for Shuffle<S>
where
    S: Strategy<Value = Vec<T>>,
{
    type Value = Vec<T>;

    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        let mut v = self.inner.generate(rng);
        for i in (1..v.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            v.swap(i, j);
        }
        v
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: ?Sized + Strategy> Strategy for Box<T> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<T: ?Sized + Strategy> Strategy for &T {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice between type-erased strategies; what
/// [`prop_oneof!`](crate::prop_oneof) builds.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms. Panics if empty or if
    /// every weight is zero.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "proptest shim: union needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum to total")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64/u128-ish domain;
                    // fall back to raw bits.
                    rng.next_u64() as $t
                } else {
                    (lo as i128 + rng.below(span as u64) as i128) as $t
                }
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        // Rounding can land exactly on `end` (e.g. ties-to-even at the
        // maximal unit value); the range is half-open, so step back.
        if v >= self.end {
            self.end.next_down().max(self.start)
        } else {
            v
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (rng.unit_f64() as f32) * (self.end - self.start);
        if v >= self.end {
            self.end.next_down().max(self.start)
        } else {
            v
        }
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Weighted union of strategies with a common value type.
///
/// `prop_oneof![s1, s2]` gives equal weights; `prop_oneof![3 => s1, 1 => s2]`
/// draws the first arm three times as often.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}
