//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`, covering its full domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Rejection-sample the scalar-value space.
        loop {
            if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                return c;
            }
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only: a wide signed exponential spread plus zero.
        // Real proptest also emits NaN/∞, which every use in this workspace
        // would have to filter out anyway.
        let mantissa = rng.unit_f64() * 2.0 - 1.0;
        let exp = rng.below(61) as i32 - 30;
        mantissa * (2.0f64).powi(exp)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

macro_rules! arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}

arbitrary_tuple!(A);
arbitrary_tuple!(A, B);
arbitrary_tuple!(A, B, C);
arbitrary_tuple!(A, B, C, D);
arbitrary_tuple!(A, B, C, D, E);
arbitrary_tuple!(A, B, C, D, E, F);

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Option<T> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(T::arbitrary(rng))
        }
    }
}
