//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Something usable as a collection size: a fixed count or a range.
pub trait SizeRange {
    /// Draws a size.
    fn draw(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn draw(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn draw(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty size range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn draw(&self, rng: &mut TestRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty size range");
        lo + rng.below((hi - lo + 1) as u64) as usize
    }
}

/// Generates a `Vec` whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}

/// Strategy returned by [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.draw(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
