//! One-stop import surface, mirroring `proptest::prelude`.

pub use crate::arbitrary::{any, Arbitrary};
pub use crate::strategy::{BoxedStrategy, Just, Strategy};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};

pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

/// Declares deterministic property tests.
///
/// Supported forms:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
///
///     #[test]
///     fn my_test(x in 0u32..10, v in proptest::collection::vec(any::<u8>(), 0..5)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
///
/// and the immediate closure form `proptest!(|(x in 0u32..10)| { .. })`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($config; $($rest)*);
    };
    (|($($pat:pat in $strat:expr),* $(,)?)| $body:block) => {{
        let __config = $crate::test_runner::ProptestConfig::default();
        let __strat = ($($strat,)*);
        $crate::test_runner::run_cases("<closure>", &__config, |__rng| {
            let ($($pat,)*) = $crate::strategy::Strategy::generate(&__strat, __rng);
            (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                $body;
                ::std::result::Result::Ok(())
            })()
        });
    }};
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]: expands each test item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($config:expr;) => {};
    (
        $config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let __strat = ($($strat,)*);
            $crate::test_runner::run_cases(stringify!($name), &__config, |__rng| {
                let ($($pat,)*) = $crate::strategy::Strategy::generate(&__strat, __rng);
                (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body;
                    ::std::result::Result::Ok(())
                })()
            });
        }
        $crate::__proptest_items!($config; $($rest)*);
    };
}

/// Fails the current case (without aborting the whole test run machinery)
/// when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert!` for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`: {}\n  left: `{:?}`\n right: `{:?}`",
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

/// `prop_assert!` for inequality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left != right)`\n  both: `{:?}`",
                __l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left != right)`: {}\n  both: `{:?}`",
                format!($($fmt)+),
                __l
            )));
        }
    }};
}

/// Discards the current case (re-drawn, not failed) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
