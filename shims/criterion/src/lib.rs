//! Offline shim for `criterion`.
//!
//! The build machine has no crates.io access, so this workspace vendors a
//! minimal timing harness exposing the subset of the criterion API its
//! benches use: [`Criterion`], benchmark groups, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Statistics are deliberately simple — median of a small sample — but the
//! output format (`group/function ... time per iter`) is stable enough to
//! eyeball figure shapes. `CRITERION_SAMPLE_MS` caps per-benchmark wall
//! time (default 300 ms) so `cargo bench` terminates quickly.

#![warn(missing_docs)]

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`]: an identity function opaque to
/// the optimiser.
pub use std::hint::black_box;

/// Top-level benchmark driver. Construct with [`Criterion::default`].
#[derive(Debug)]
pub struct Criterion {
    sample_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("CRITERION_SAMPLE_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(300);
        Criterion { sample_budget: Duration::from_millis(ms) }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(None, name, self.sample_budget, f);
        self
    }
}

/// A named group of benchmarks, opened with [`Criterion::benchmark_group`].
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this shim sizes samples by wall
    /// time, not by count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; bounds nothing beyond the global
    /// sample budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(Some(&self.name), &id.into_benchmark_id().0, self.criterion.sample_budget, f);
        self
    }

    /// Runs one parameterised benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: impl IntoBenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(Some(&self.name), &id.into_benchmark_id().0, self.criterion.sample_budget, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (a no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Identifies a benchmark, optionally combining a name with a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A benchmark named `name`, parameterised by `parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// A benchmark identified by its parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Conversion into [`BenchmarkId`] accepted by the `bench_*` methods.
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// How `iter_batched` amortises setup cost; this shim treats every variant
/// as "one setup per iteration".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Routine input is small; criterion would batch many per allocation.
    SmallInput,
    /// Routine input is large.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Timer handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    budget: Duration,
    /// Median per-iteration time of the most recent `iter*` call.
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, repeating it until the sample budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.iter_batched(|| (), |()| routine(), BatchSize::PerIteration);
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut samples = Vec::new();
        let start = Instant::now();
        loop {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            samples.push(t.elapsed());
            if start.elapsed() >= self.budget || samples.len() >= 101 {
                break;
            }
        }
        self.elapsed = median(&mut samples);
    }

}

fn median(samples: &mut [Duration]) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn run_one<F>(group: Option<&str>, name: &str, budget: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher { budget, elapsed: Duration::ZERO };
    f(&mut b);
    let label = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    println!("bench {label:<48} {:>12.3?} /iter (median)", b.elapsed);
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_format() {
        assert_eq!(BenchmarkId::new("spf", 30).to_string(), "spf/30");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }

    #[test]
    fn iter_measures_something() {
        let mut c = Criterion { sample_budget: Duration::from_millis(5) };
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }
}
