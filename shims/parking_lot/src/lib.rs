//! Offline shim for `parking_lot`.
//!
//! The build machine has no crates.io access, so this workspace vendors a
//! std-backed implementation of exactly the subset of the `parking_lot`
//! API it uses: [`Mutex`] with poison-free guards.

#![warn(missing_docs)]

use std::sync;

/// A mutual-exclusion primitive; `lock` never returns a poison error
/// (poisoning from a panicked holder is ignored, matching `parking_lot`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_survives_poisoning_panic() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex underneath");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
