//! The engine: compiles a [`Scenario`] onto the DEFINED record → replay
//! workflow. All protocol dispatch lives here; everything downstream of the
//! dispatch is generic over [`ControlPlane`].

use crate::spec::{ExtSpec, Fault, Probe, ProtocolSpec};
use crate::{Scenario, ScenarioError};
use defined_core::bisect::{localise_fault_farm, BisectReport};
use defined_core::debugger::Debugger;
use defined_core::explore::ordering_survey_farm;
use defined_core::farm::JobPanic;
use defined_core::gvt::{gvt_estimate, GvtMonitor};
use defined_core::ls::first_divergence;
use defined_core::recorder::{trim_log, CommitRecord, Recording, TickRecord};
use defined_core::session::DebugSession;
use defined_core::wire::Wire;
use defined_core::{DefinedConfig, EventClass, FarmConfig, LockstepNet, RbNetwork};
use defined_obs as obs;
use defined_store::{FileIo, FsyncPolicy, StoreError, StoreMeta, StoreWriter};
use netsim::{NodeId, SimTime};
use std::collections::{HashMap, HashSet};
use std::path::Path;
use routing::bgp::{BgpExt, BgpProcess};
use routing::ospf::OspfProcess;
use routing::rip::{RipExt, RipProcess};
use routing::ControlPlane;
use topology::Graph;

/// Everything a recorded production run yields: the serialised partial
/// recording, headline counts for reporting, the probe outcome, and the
/// committed logs a replay can be checked against.
#[derive(Clone, Debug)]
pub struct RecordedRun {
    /// The serialised partial recording ([`Recording::to_bytes`]).
    pub bytes: Vec<u8>,
    /// Highest group the production run completed.
    pub n_groups: u64,
    /// Recorded external events.
    pub n_externals: usize,
    /// Death cuts (nodes down at the end of the run).
    pub n_mutes: usize,
    /// Committed message losses.
    pub n_drops: usize,
    /// The probe's report on the production outcome, if any.
    pub outcome: Option<String>,
    /// Comparison frontier: groups `<= upto` are settled network-wide and
    /// must match between production and replay.
    pub upto: u64,
    /// Per-node committed delivery logs of the production run.
    pub logs: Vec<Vec<CommitRecord>>,
    /// GVT progression of the optimistic production run.
    pub gvt: GvtReport,
}

impl RecordedRun {
    /// One-line summary for CLI output.
    pub fn summary(&self, name: &str) -> String {
        format!(
            "recorded {name}: {} groups, {} externals, {} drop(s), {} death cut(s)",
            self.n_groups, self.n_externals, self.n_drops, self.n_mutes,
        )
    }
}

/// How the production run's global-virtual-time bound progressed — the
/// observable that makes an optimistic (Time Warp) run's stalls visible
/// instead of silent: a bound that stops advancing while rollbacks climb
/// means speculative work is being thrown away faster than it commits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GvtReport {
    /// GVT bound at the first sample.
    pub first: u64,
    /// GVT bound at the last sample.
    pub last: u64,
    /// Rollback floor (lowest group any node may still rewind to) at the
    /// last sample.
    pub floor: u64,
    /// Samples taken over the run.
    pub samples: usize,
    /// Whether the bound never regressed between samples (Theorem 2's
    /// monotonicity, observed).
    pub monotone: bool,
    /// Total bound advance summed over sample intervals.
    pub total_advance: u64,
    /// Rollbacks the production run performed, summed over nodes.
    pub rollbacks: u64,
    /// The effective checkpoint-capture policy the run used, rendered
    /// (e.g. `every 1` or `auto 1..64`).
    pub capture: String,
}

impl GvtReport {
    /// One-line CLI rendering.
    pub fn render(&self) -> String {
        format!(
            "gvt: bound {} -> {} over {} samples ({}), floor {}, {} rollback(s), capture {}",
            self.first,
            self.last,
            self.samples,
            if self.monotone { "monotone" } else { "NOT monotone" },
            self.floor,
            self.rollbacks,
            self.capture,
        )
    }
}

fn ext_to_rip(ev: &ExtSpec) -> Option<RipExt> {
    match ev {
        ExtSpec::RipConnect { prefix } => Some(RipExt::Connect { prefix: *prefix }),
        _ => None,
    }
}

fn ext_to_bgp(ev: &ExtSpec) -> Option<BgpExt> {
    match ev {
        ExtSpec::BgpAnnounce { prefix, attrs } => {
            Some(BgpExt::Announce { prefix: *prefix, attrs: *attrs })
        }
        ExtSpec::BgpWithdraw { prefix, route_id } => {
            Some(BgpExt::Withdraw { prefix: *prefix, route_id: *route_id })
        }
        _ => None,
    }
}

fn ext_to_ospf(_ev: &ExtSpec) -> Option<()> {
    None // OSPF takes no runtime externals; validation rejects them.
}

/// The probe's report, read off one RIP control plane.
fn rip_outcome(probe: &Probe, cp: &RipProcess) -> Option<String> {
    match *probe {
        Probe::RipRoute { node, prefix } => {
            let via = cp.route(prefix).and_then(|r| r.next_hop);
            Some(match via {
                Some(nh) => format!("{node} routes {prefix} via {nh}"),
                None => format!("{node} has no route to {prefix}"),
            })
        }
        _ => None,
    }
}

/// The probe's report, read off one BGP control plane.
fn bgp_outcome(probe: &Probe, cp: &BgpProcess) -> Option<String> {
    match *probe {
        Probe::BgpBest { node, prefix } => {
            let best = cp.best_path(prefix).map(|p| p.route_id);
            Some(match best {
                Some(id) => format!("{node} selects p{id} for {prefix}"),
                None => format!("{node} has no path to {prefix}"),
            })
        }
        _ => None,
    }
}

/// The probe's report, read off one OSPF control plane.
fn ospf_outcome(probe: &Probe, cp: &OspfProcess) -> Option<String> {
    match *probe {
        Probe::OspfReachable { node } => {
            Some(format!("{node} reaches {} destinations", cp.routing_table().len()))
        }
        _ => None,
    }
}

/// Decodes a recording and checks it was taken on a network of this
/// scenario's size — `LockstepNet::new` asserts on a mismatch, and a
/// recording from a same-protocol but different-sized scenario should be a
/// clean [`ScenarioError::BadRecording`], not a panic.
///
/// Accepts both serialisations transparently: the on-disk store format
/// (sniffed by its magic; torn tails recover to the last sync point,
/// corruption is a typed [`ScenarioError::Store`]) and the raw in-memory
/// [`Recording::to_bytes`] framing.
fn decode_for<P>(g: &Graph, bytes: &[u8]) -> Result<Recording<P::Ext>, ScenarioError>
where
    P: ControlPlane,
    P::Ext: Wire,
{
    let rec = if defined_store::is_store(bytes) {
        defined_store::open_bytes::<P::Ext>(bytes)?.recording
    } else {
        Recording::<P::Ext>::from_bytes(bytes).ok_or(ScenarioError::BadRecording)?
    };
    if rec.n_nodes != g.node_count() {
        return Err(ScenarioError::BadRecording);
    }
    Ok(rec)
}

/// Streams a production run's recording into an on-disk store *while the
/// run is in flight*, so a crash mid-run loses at most one inter-sync
/// window instead of the whole recording.
///
/// Only committed state is durable: the drain frontier trails the GVT
/// bound by a safety margin, so every streamed frame is below the
/// rollback floor and can never be invalidated by a later Time-Warp
/// rewind. Frames the frontier never reached are appended at
/// [`finish`](Self::finish) from the final canonical recording.
struct StoreStreamer<X: Wire> {
    w: StoreWriter<X, FileIo>,
    /// Streamed externals, keyed `(node, ext_seq)`, valued by group — the
    /// value lets [`finish`](Self::finish) detect a streamed frame the
    /// canonical recording no longer contains.
    seen_ext: HashMap<(NodeId, u64), u64>,
    /// Streamed ticks, keyed `(node, group)`, valued by beacon source.
    seen_ticks: HashMap<(NodeId, u64), NodeId>,
    frontier: u64,
}

impl<X: Wire> StoreStreamer<X> {
    fn create(path: &Path, meta: &StoreMeta) -> Result<Self, StoreError> {
        let io = FileIo::create(path)?;
        Ok(StoreStreamer {
            w: StoreWriter::create(io, meta, FsyncPolicy::OnSync)?,
            seen_ext: HashMap::new(),
            seen_ticks: HashMap::new(),
            frontier: 0,
        })
    }

    /// Persists everything newly committed since the last drain and
    /// declares it durable with a sync point.
    fn drain<P>(&mut self, net: &RbNetwork<P>) -> Result<(), StoreError>
    where
        P: ControlPlane<Ext = X> + 'static,
    {
        let f = gvt_estimate(net).saturating_sub(2);
        if f <= self.frontier {
            return Ok(());
        }
        for e in net.externals_so_far() {
            if e.group <= f && self.seen_ext.insert((e.node, e.ext_seq), e.group).is_none() {
                self.w.append_ext(&e)?;
            }
        }
        for (i, log) in net.commit_logs().iter().enumerate() {
            let node = NodeId(i as u32);
            for r in log {
                if r.ann.class == EventClass::Beacon
                    && r.ann.group <= f
                    && self.seen_ticks.insert((node, r.ann.group), r.ann.origin).is_none()
                {
                    self.w.append_tick(&TickRecord {
                        node,
                        group: r.ann.group,
                        source: r.ann.origin,
                    })?;
                }
            }
        }
        self.frontier = f;
        self.w.sync_point(f)
    }

    /// Appends whatever the streaming frontier never reached — straggler
    /// externals and ticks, the drops and death cuts (only knowable at
    /// finalisation) — then closes the store with the commit logs.
    ///
    /// One wrinkle: a node restart discards that node's pre-crash
    /// committed log (DESIGN.md §7), so frames this streamer durably wrote
    /// mid-run can be absent from the final canonical recording. The file
    /// is append-only, so when that happens the streamed content is
    /// retracted with a [`StoreWriter::reset`] tombstone and the canonical
    /// recording is appended whole — the finished store always opens to
    /// exactly `rec`, while a torn (pre-finish) file still recovers the
    /// streamed prefix, which was committed truth at the time it synced.
    fn finish(
        mut self,
        rec: &Recording<X>,
        commits: &[Vec<CommitRecord>],
        upto: u64,
    ) -> Result<(), StoreError> {
        let rec_ext: HashSet<(NodeId, u64, u64)> =
            rec.externals.iter().map(|e| (e.node, e.ext_seq, e.group)).collect();
        let rec_ticks: HashSet<(NodeId, u64, NodeId)> =
            rec.ticks.iter().map(|t| (t.node, t.group, t.source)).collect();
        // Ticks past `last_group` are dropped on open regardless, so only
        // in-range stragglers count as superseded.
        let superseded = self
            .seen_ext
            .iter()
            .any(|(&(node, seq), &group)| !rec_ext.contains(&(node, seq, group)))
            || self.seen_ticks.iter().any(|(&(node, group), &source)| {
                group <= rec.last_group && !rec_ticks.contains(&(node, group, source))
            });
        if superseded {
            self.w.reset()?;
            self.seen_ext.clear();
            self.seen_ticks.clear();
        }
        for e in &rec.externals {
            if !self.seen_ext.contains_key(&(e.node, e.ext_seq)) {
                self.w.append_ext(e)?;
            }
        }
        for t in &rec.ticks {
            if !self.seen_ticks.contains_key(&(t.node, t.group)) {
                self.w.append_tick(t)?;
            }
        }
        for d in &rec.drops {
            self.w.append_drop(d)?;
        }
        for m in &rec.mutes {
            self.w.append_mute(m)?;
        }
        self.w.finish(rec.last_group, upto, commits)?;
        Ok(())
    }
}

impl Scenario {
    /// Checks the description for internal consistency: node and link
    /// references resolve in the topology, injections fit the protocol,
    /// fault parameters are well-formed, and event times fall inside the
    /// run.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        self.checked_build().map(|_| ())
    }

    /// Validates the topology parameters, builds the graph, and validates
    /// the rest of the scenario against it — the one entry point every run
    /// path shares, so no untrusted spec reaches a generator panic.
    fn checked_build(&self) -> Result<Graph, ScenarioError> {
        self.topology.check().map_err(ScenarioError::Invalid)?;
        let g = self.topology.build();
        self.validate_on(&g)?;
        Ok(g)
    }

    /// The run configuration every engine path shares: the defaults plus
    /// this scenario's checkpoint-capture policy.
    fn run_config(&self) -> DefinedConfig {
        DefinedConfig { capture: self.capture, ..DefinedConfig::default() }
    }

    /// [`validate`](Self::validate) against an already-built graph, so the
    /// run paths build the (possibly generator-backed) topology once.
    fn validate_on(&self, g: &Graph) -> Result<(), ScenarioError> {
        let err = |msg: String| Err(ScenarioError::Invalid(msg));
        let n = g.node_count();
        let end = SimTime::ZERO + self.duration;
        let check_node = |node: NodeId, what: &str| {
            if node.index() >= n {
                err(format!("{what} references node {node} but the topology has {n} nodes"))
            } else {
                Ok(())
            }
        };
        let check_edge = |a: NodeId, b: NodeId, what: &str| {
            if a.index() >= n || b.index() >= n || !g.has_edge(a, b) {
                err(format!("{what} references link {a}—{b}, which the topology lacks"))
            } else {
                Ok(())
            }
        };
        if self.duration == netsim::SimDuration::ZERO {
            return err("duration must be positive".into());
        }
        if !(0.0..=2.0).contains(&self.jitter_frac) {
            return err(format!("jitter fraction {} out of range [0, 2]", self.jitter_frac));
        }
        if matches!(self.protocol, ProtocolSpec::Bgp { .. })
            && self.topology.fig4_roles().is_none()
        {
            return err("the BGP protocol requires the fig4-bgp topology (role assignment)".into());
        }
        for inj in &self.workload {
            check_node(inj.node, "an injection")?;
            if !inj.ev.fits(&self.protocol) {
                return err(format!(
                    "injection {:?} does not fit protocol {}",
                    inj.ev,
                    self.protocol.name()
                ));
            }
            if inj.at > end {
                return err(format!("injection at {} lands after the {} run", inj.at, end));
            }
        }
        let mut loss_windows: Vec<(NodeId, NodeId, SimTime, SimTime)> = Vec::new();
        for f in &self.faults {
            let start = match f {
                Fault::NodeDown { at, .. }
                | Fault::NodeUp { at, .. }
                | Fault::LinkDown { at, .. }
                | Fault::LinkUp { at, .. }
                | Fault::LinkFlap { at, .. }
                | Fault::Partition { at, .. } => *at,
                Fault::LossWindow { from, .. } => *from,
            };
            if start > end {
                return err(format!("a fault at {start} lands after the {end} run"));
            }
            match f {
                Fault::NodeDown { node, .. } | Fault::NodeUp { node, .. } => {
                    check_node(*node, "a node fault")?;
                }
                Fault::LinkDown { a, b, .. } | Fault::LinkUp { a, b, .. } => {
                    check_edge(*a, *b, "a link fault")?;
                }
                Fault::LinkFlap { a, b, down_for, period, count, .. } => {
                    check_edge(*a, *b, "a link flap")?;
                    if down_for >= period {
                        return err(format!(
                            "flap down time {down_for} must be shorter than its period {period}"
                        ));
                    }
                    if *count == 0 {
                        return err("a flap needs at least one cycle".into());
                    }
                }
                Fault::Partition { side, heal, at } => {
                    let unique: std::collections::BTreeSet<NodeId> = side.iter().copied().collect();
                    if unique.is_empty() || unique.len() >= n {
                        return err("a partition side must be a nonempty proper node subset".into());
                    }
                    for &node in side {
                        check_node(node, "a partition")?;
                    }
                    if let Some(h) = heal {
                        if h <= at {
                            return err(format!("partition heal {h} precedes its cut {at}"));
                        }
                        if *h > end {
                            return err(format!("partition heal {h} lands after the {end} run"));
                        }
                    }
                }
                Fault::LossWindow { from, until, a, b, p } => {
                    check_edge(*a, *b, "a loss window")?;
                    if !(0.0..=1.0).contains(p) {
                        return err(format!("loss probability {p} out of range [0, 1]"));
                    }
                    if until <= from {
                        return err(format!("loss window end {until} precedes its start {from}"));
                    }
                    // Windows install/clear a per-link loss model, so two
                    // overlapping windows on one link would silently
                    // truncate each other.
                    let (lo, hi) = if a.0 <= b.0 { (*a, *b) } else { (*b, *a) };
                    for &(wa, wb, wf, wu) in &loss_windows {
                        if (wa, wb) == (lo, hi) && *from < wu && wf < *until {
                            return err(format!(
                                "overlapping loss windows on link {lo}—{hi} \
                                 ({wf}..{wu} and {from}..{until})"
                            ));
                        }
                    }
                    loss_windows.push((lo, hi, *from, *until));
                }
            }
        }
        match (&self.probe, &self.protocol) {
            (Probe::None, _) => {}
            (Probe::RipRoute { node, .. }, ProtocolSpec::Rip { .. })
            | (Probe::OspfReachable { node }, ProtocolSpec::Ospf)
            | (Probe::BgpBest { node, .. }, ProtocolSpec::Bgp { .. }) => {
                check_node(*node, "the probe")?;
            }
            (p, proto) => {
                return err(format!("probe {p:?} does not fit protocol {}", proto.name()));
            }
        }
        Ok(())
    }

    /// Runs the instrumented production network and extracts the partial
    /// recording (the `record` half of the workflow).
    pub fn record_run(&self) -> Result<RecordedRun, ScenarioError> {
        self.record_dispatch(None)
    }

    /// [`record_run`](Self::record_run), additionally *streaming* the
    /// recording into an on-disk store at `path` as the run progresses:
    /// committed frames are appended and fsynced at every sync point, so a
    /// crash mid-run leaves a recoverable prefix instead of nothing. The
    /// returned [`RecordedRun`] is identical to the store-less path.
    pub fn record_run_to_store(&self, path: &Path) -> Result<RecordedRun, ScenarioError> {
        self.record_dispatch(Some(path))
    }

    fn record_dispatch(&self, store: Option<&Path>) -> Result<RecordedRun, ScenarioError> {
        let g = self.checked_build()?;
        match self.protocol {
            ProtocolSpec::Rip { mode } => {
                let procs = crate::registry::rip_processes(&g, mode);
                self.record_typed(&g, procs, ext_to_rip, |net| self.probe_rip(net), store)
            }
            ProtocolSpec::Ospf => {
                let procs = crate::registry::ospf_processes(&g);
                self.record_typed(&g, procs, ext_to_ospf, |net| self.probe_ospf(net), store)
            }
            ProtocolSpec::Bgp { mode } => {
                let roles = self.topology.fig4_roles().expect("validated");
                let procs = crate::registry::bgp_fig4_processes(&roles, mode);
                self.record_typed(&g, procs, ext_to_bgp, |net| self.probe_bgp(net), store)
            }
        }
    }

    /// Replays a serialised recording in lockstep and returns the per-node
    /// committed logs (for equivalence checks against
    /// [`RecordedRun::logs`]).
    pub fn replay_logs(&self, bytes: &[u8]) -> Result<Vec<Vec<CommitRecord>>, ScenarioError> {
        self.replay_logs_sharded(bytes, 1)
    }

    /// [`replay_logs`](Self::replay_logs) with the replay's waves executed
    /// across `shards` worker shards (`0` = auto). The logs are
    /// byte-identical for every shard count — the `--shards` self-check in
    /// `defined-dbg record` leans on this.
    pub fn replay_logs_sharded(
        &self,
        bytes: &[u8],
        shards: usize,
    ) -> Result<Vec<Vec<CommitRecord>>, ScenarioError> {
        let g = self.checked_build()?;
        match self.protocol {
            ProtocolSpec::Rip { mode } => {
                self.replay_typed(&g, crate::registry::rip_processes(&g, mode), bytes, shards)
            }
            ProtocolSpec::Ospf => {
                self.replay_typed(&g, crate::registry::ospf_processes(&g), bytes, shards)
            }
            ProtocolSpec::Bgp { mode } => {
                let roles = self.topology.fig4_roles().expect("validated");
                self.replay_typed(
                    &g,
                    crate::registry::bgp_fig4_processes(&roles, mode),
                    bytes,
                    shards,
                )
            }
        }
    }

    /// Loads a serialised recording into a debugging network and drives a
    /// scripted [`DebugSession`] over it, returning the transcript (the
    /// `debug` half of the workflow). Deterministic: the same recording and
    /// script always produce the same transcript.
    pub fn debug_transcript(&self, bytes: &[u8], script: &str) -> Result<String, ScenarioError> {
        self.debug_transcript_sharded(bytes, script, 1)
    }

    /// [`debug_transcript`](Self::debug_transcript) with the underlying
    /// replay sharded `shards` ways (`0` = auto). Interactive stepping is
    /// wave-serial either way; sharding accelerates the bulk moves (`run`,
    /// `stepg`, checkpoint re-execution) and never changes the transcript.
    pub fn debug_transcript_sharded(
        &self,
        bytes: &[u8],
        script: &str,
        shards: usize,
    ) -> Result<String, ScenarioError> {
        let g = self.checked_build()?;
        match self.protocol {
            ProtocolSpec::Rip { mode } => {
                self.debug_typed(&g, crate::registry::rip_processes(&g, mode), bytes, script, shards)
            }
            ProtocolSpec::Ospf => {
                self.debug_typed(&g, crate::registry::ospf_processes(&g), bytes, script, shards)
            }
            ProtocolSpec::Bgp { mode } => {
                let roles = self.topology.fig4_roles().expect("validated");
                self.debug_typed(
                    &g,
                    crate::registry::bgp_fig4_processes(&roles, mode),
                    bytes,
                    script,
                    shards,
                )
            }
        }
    }

    /// Builds the RB-instrumented production network, applies the workload
    /// and fault schedule, runs to the deadline, and extracts the recording.
    fn record_typed<P>(
        &self,
        g: &Graph,
        procs: Vec<P>,
        conv: impl Fn(&ExtSpec) -> Option<P::Ext>,
        outcome: impl FnOnce(&RbNetwork<P>) -> Option<String>,
        store: Option<&Path>,
    ) -> Result<RecordedRun, ScenarioError>
    where
        P: ControlPlane + Clone + 'static,
        P::Ext: Wire,
    {
        let mut net = RbNetwork::new(g, self.run_config(), self.seed, self.jitter_frac, {
            move |id: NodeId| procs[id.index()].clone()
        });
        let mut streamer = match store {
            Some(path) => {
                let meta = StoreMeta {
                    n_nodes: g.node_count(),
                    source: net.initial_source(),
                    scenario: self.name.clone(),
                };
                Some(StoreStreamer::create(path, &meta)?)
            }
            None => None,
        };
        for inj in &self.workload {
            let ev = conv(&inj.ev).ok_or_else(|| {
                ScenarioError::Invalid(format!("injection {:?} does not fit the protocol", inj.ev))
            })?;
            net.inject_external(inj.at, inj.node, ev);
        }
        for f in &self.faults {
            match f {
                Fault::NodeDown { at, node } => net.schedule_node(*at, *node, false),
                Fault::NodeUp { at, node } => net.schedule_node(*at, *node, true),
                Fault::LinkDown { at, a, b } => net.schedule_link(*at, *a, *b, false),
                Fault::LinkUp { at, a, b } => net.schedule_link(*at, *a, *b, true),
                Fault::LinkFlap { at, a, b, down_for, period, count } => {
                    net.schedule_flap(*at, *a, *b, *down_for, *period, *count);
                }
                Fault::Partition { at, heal, side } => {
                    net.schedule_partition(*at, *heal, side);
                }
                Fault::LossWindow { from, until, a, b, p } => {
                    net.schedule_loss_window(*from, *until, *a, *b, *p);
                }
            }
        }
        // Run in beacon-sized slices, sampling the GVT bound at each — the
        // simulator is a pure event pump, so incremental `run_until` calls
        // commit the identical execution as one call to the deadline.
        let end = SimTime::ZERO + self.duration;
        let slice = DefinedConfig::default().beacon_interval * 4;
        let mut monitor = GvtMonitor::new();
        let mut t = SimTime::ZERO;
        while t < end {
            t = (t + slice).min(end);
            net.run_until(t);
            monitor.observe(&net);
            if let Some(s) = streamer.as_mut() {
                s.drain(&net)?;
            }
        }
        let outcome = outcome(&net);
        let upto = net.completed_group(2);
        // Publish the production run's rollback tallies as gauge-style
        // counters (§11): every subcommand that records can then surface
        // the same `gvt:` line from the obs snapshot alone.
        let m = net.total_metrics();
        obs::counter!("rb.rollbacks").set(m.rollbacks);
        obs::counter!("rb.rolled_entries").set(m.rolled_entries);
        obs::counter!("rb.unsend_msgs").set(m.unsend_msgs);
        obs::counter!("rb.fast_path").set(m.fast_path);
        let samples = monitor.samples();
        let gvt = GvtReport {
            first: samples.first().map(|s| s.gvt).unwrap_or(0),
            last: samples.last().map(|s| s.gvt).unwrap_or(0),
            floor: samples.last().map(|s| s.floor).unwrap_or(0),
            samples: samples.len(),
            monotone: monitor.is_monotone(),
            total_advance: monitor.total_advance(),
            rollbacks: m.rollbacks,
            capture: self.capture.to_string(),
        };
        let (rec, logs) = net.into_recording();
        if let Some(s) = streamer {
            // Store the commit logs trimmed to the comparison horizon: that
            // is exactly the prefix `verify` replays against, and groups
            // past `upto` are not settled network-wide anyway.
            let trimmed: Vec<Vec<CommitRecord>> =
                logs.iter().map(|l| trim_log(l, upto)).collect();
            s.finish(&rec, &trimmed, upto)?;
        }
        Ok(RecordedRun {
            bytes: rec.to_bytes(),
            n_groups: rec.last_group,
            n_externals: rec.externals.len(),
            n_mutes: rec.mutes.len(),
            n_drops: rec.drops.len(),
            outcome,
            upto,
            logs,
            gvt,
        })
    }

    fn replay_typed<P>(
        &self,
        g: &Graph,
        procs: Vec<P>,
        bytes: &[u8],
        shards: usize,
    ) -> Result<Vec<Vec<CommitRecord>>, ScenarioError>
    where
        P: ControlPlane + Clone + 'static,
        P::Ext: Wire,
    {
        let rec = decode_for::<P>(g, bytes)?;
        let mut ls = LockstepNet::new(g, self.run_config(), rec, move |id: NodeId| {
            procs[id.index()].clone()
        })
        .with_shards(shards);
        ls.run_to_end();
        Ok(ls.logs().to_vec())
    }

    fn debug_typed<P>(
        &self,
        g: &Graph,
        procs: Vec<P>,
        bytes: &[u8],
        script: &str,
        shards: usize,
    ) -> Result<String, ScenarioError>
    where
        P: ControlPlane + Clone + 'static,
        P::Msg: Wire,
        P::Ext: Wire,
    {
        let rec = decode_for::<P>(g, bytes)?;
        let ls = LockstepNet::new(g, self.run_config(), rec, move |id: NodeId| {
            procs[id.index()].clone()
        })
        .with_shards(shards);
        let mut session = DebugSession::new(Debugger::new(ls), g.node_count());
        Ok(session.run_script(script))
    }

    fn probe_rip(&self, net: &RbNetwork<RipProcess>) -> Option<String> {
        let node = self.probe.node()?;
        rip_outcome(&self.probe, net.control_plane(node))
    }

    fn probe_bgp(&self, net: &RbNetwork<BgpProcess>) -> Option<String> {
        let node = self.probe.node()?;
        bgp_outcome(&self.probe, net.control_plane(node))
    }

    fn probe_ospf(&self, net: &RbNetwork<OspfProcess>) -> Option<String> {
        let node = self.probe.node()?;
        ospf_outcome(&self.probe, net.control_plane(node))
    }

    /// Sweeps `salts` permuted orderings over a recording on the replay
    /// farm, using the scenario's outcome probe as the search predicate:
    /// the baseline is the probe outcome of the replay under the production
    /// ordering, and a salt "hits" when its outcome differs. Deterministic
    /// for every `farm.jobs` and `farm.shards` value (the earliest divergent
    /// salt is reported, not the first to finish).
    pub fn explore_run(
        &self,
        bytes: &[u8],
        salts: u64,
        farm: &FarmConfig,
    ) -> Result<ExploreReport, ScenarioError> {
        let g = self.checked_build()?;
        self.require_probe()?;
        match self.protocol {
            ProtocolSpec::Rip { mode } => self.explore_typed(
                &g,
                crate::registry::rip_processes(&g, mode),
                bytes,
                salts,
                farm,
                rip_outcome,
            ),
            ProtocolSpec::Ospf => self.explore_typed(
                &g,
                crate::registry::ospf_processes(&g),
                bytes,
                salts,
                farm,
                ospf_outcome,
            ),
            ProtocolSpec::Bgp { mode } => {
                let roles = self.topology.fig4_roles().expect("validated");
                self.explore_typed(
                    &g,
                    crate::registry::bgp_fig4_processes(&roles, mode),
                    bytes,
                    salts,
                    farm,
                    bgp_outcome,
                )
            }
        }
    }

    /// Localises when the scenario's final probe outcome was established:
    /// bisects the recording on the replay farm for the earliest group
    /// whose prefix replay already reports the full run's outcome, then
    /// steps that group for the exact event. Returns `Ok(None)` only for
    /// degenerate (group-less) recordings.
    ///
    /// Like [`defined_core::bisect::first_bad_group_farm`], the bisection
    /// assumes the predicate
    /// — "the probe already reports the final outcome" — is *monotone*
    /// over prefixes, which holds when the outcome persists once
    /// established (the case-study bugs: a wrong best path, a stuck stale
    /// route). On scenarios whose outcome oscillates before settling
    /// (flap/heal/restart schedules where the final state matches an
    /// early transient), the located group is a heuristic: its prefix
    /// provably reports the outcome and the probed predecessors did not,
    /// but an intervening un-establishment may exist. The located group is
    /// still a pure function of the recording (never of `farm.jobs` or
    /// `farm.shards`).
    pub fn bisect_run(
        &self,
        bytes: &[u8],
        farm: &FarmConfig,
    ) -> Result<Option<BisectSummary>, ScenarioError> {
        let g = self.checked_build()?;
        self.require_probe()?;
        match self.protocol {
            ProtocolSpec::Rip { mode } => self.bisect_typed(
                &g,
                crate::registry::rip_processes(&g, mode),
                bytes,
                farm,
                rip_outcome,
            ),
            ProtocolSpec::Ospf => {
                self.bisect_typed(&g, crate::registry::ospf_processes(&g), bytes, farm, ospf_outcome)
            }
            ProtocolSpec::Bgp { mode } => {
                let roles = self.topology.fig4_roles().expect("validated");
                self.bisect_typed(
                    &g,
                    crate::registry::bgp_fig4_processes(&roles, mode),
                    bytes,
                    farm,
                    bgp_outcome,
                )
            }
        }
    }

    fn require_probe(&self) -> Result<(), ScenarioError> {
        if matches!(self.probe, Probe::None) {
            return Err(ScenarioError::Invalid(format!(
                "scenario {} has no outcome probe to compile into a search predicate",
                self.name
            )));
        }
        Ok(())
    }

    fn explore_typed<P>(
        &self,
        g: &Graph,
        procs: Vec<P>,
        bytes: &[u8],
        salts: u64,
        farm: &FarmConfig,
        outcome: impl Fn(&Probe, &P) -> Option<String> + Sync,
    ) -> Result<ExploreReport, ScenarioError>
    where
        P: ControlPlane + Clone + Sync + 'static,
        P::Ext: Wire,
    {
        let rec = decode_for::<P>(g, bytes)?;
        let spawn = move |id: NodeId| procs[id.index()].clone();
        let cfg = self.run_config();
        let node = self.probe.node().expect("probe checked");
        let read = |ls: &LockstepNet<P>| {
            outcome(&self.probe, ls.control_plane(node)).expect("probe fits the protocol")
        };
        let mut base =
            LockstepNet::new(g, cfg.clone(), rec.clone(), &spawn).with_shards(farm.shards);
        base.run_to_end();
        let baseline = read(&base);
        // One sweep yields everything the report needs: each salt's outcome
        // string, from which both the sensitivity tally and the earliest
        // divergence fall out — half the replays of a find-then-count pair.
        let outcomes = ordering_survey_farm(g, &cfg, &rec, &spawn, 0..salts, read, farm);
        let mut divergent = 0;
        let mut found = None;
        let mut failures = Vec::new();
        for (i, o) in outcomes.into_iter().enumerate() {
            match o {
                Ok(o) if o != baseline => {
                    divergent += 1;
                    if found.is_none() {
                        found = Some((i as u64, o));
                    }
                }
                Ok(_) => {}
                Err(p) => failures.push(p),
            }
        }
        Ok(ExploreReport { baseline, found, divergent, total: salts as usize, failures })
    }

    fn bisect_typed<P>(
        &self,
        g: &Graph,
        procs: Vec<P>,
        bytes: &[u8],
        farm: &FarmConfig,
        outcome: impl Fn(&Probe, &P) -> Option<String> + Sync,
    ) -> Result<Option<BisectSummary>, ScenarioError>
    where
        P: ControlPlane + Clone + Sync + 'static,
        P::Msg: Wire,
        P::Ext: Wire,
    {
        let rec = decode_for::<P>(g, bytes)?;
        let spawn = move |id: NodeId| procs[id.index()].clone();
        let cfg = self.run_config();
        let node = self.probe.node().expect("probe checked");
        let read = |ls: &LockstepNet<P>| {
            outcome(&self.probe, ls.control_plane(node)).expect("probe fits the protocol")
        };
        let mut full =
            LockstepNet::new(g, cfg.clone(), rec.clone(), &spawn).with_shards(farm.shards);
        full.run_to_end();
        let target = read(&full);
        // The speculation width fixes the probe *schedule*; keeping it
        // constant (rather than tied to `jobs`) makes the rendered report —
        // replay count included — byte-identical for every `--jobs` value.
        let farm = FarmConfig { speculation: 4, ..*farm };
        let bad = |ls: &LockstepNet<P>| read(ls) == target;
        // One call shares the probe sessions between the group bisection
        // and the event scan, so the scan seeds from their checkpoints.
        let Some((report, located)) = localise_fault_farm(g, &cfg, &rec, &spawn, bad, &farm)
        else {
            return Ok(None); // Only a degenerate group-less recording.
        };
        let event = located.map(|(ev, _)| {
            format!("[g{} c{}] {} @ {}", ev.group, ev.chain, ev.record.ann.class, ev.node)
        });
        Ok(Some(BisectSummary { outcome: target, report, event }))
    }

    /// Verifies an on-disk recording store end to end: structural
    /// integrity (every frame CRC, self-check tallies), then a fresh
    /// lockstep replay checked entry-by-entry against the commit logs the
    /// production run stored. Strict: a store that needed torn-tail
    /// recovery, or whose bytes were corrupted anywhere, is a typed
    /// [`ScenarioError::Store`] — never a panic, never a silent pass.
    pub fn verify_store(&self, bytes: &[u8], shards: usize) -> Result<VerifyReport, ScenarioError> {
        let g = self.checked_build()?;
        match self.protocol {
            ProtocolSpec::Rip { mode } => {
                self.verify_typed(&g, crate::registry::rip_processes(&g, mode), bytes, shards)
            }
            ProtocolSpec::Ospf => {
                self.verify_typed(&g, crate::registry::ospf_processes(&g), bytes, shards)
            }
            ProtocolSpec::Bgp { mode } => {
                let roles = self.topology.fig4_roles().expect("validated");
                self.verify_typed(
                    &g,
                    crate::registry::bgp_fig4_processes(&roles, mode),
                    bytes,
                    shards,
                )
            }
        }
    }

    fn verify_typed<P>(
        &self,
        g: &Graph,
        procs: Vec<P>,
        bytes: &[u8],
        shards: usize,
    ) -> Result<VerifyReport, ScenarioError>
    where
        P: ControlPlane + Clone + 'static,
        P::Ext: Wire,
    {
        let r = defined_store::open_bytes_strict::<P::Ext>(bytes)?;
        if r.recording.n_nodes != g.node_count() {
            return Err(ScenarioError::BadRecording);
        }
        let commits = r.commits.expect("strict open only passes finished stores");
        let upto = r.upto.expect("strict open only passes finished stores");
        let last_group = r.recording.last_group;
        let mut ls =
            LockstepNet::new(g, self.run_config(), r.recording, move |id: NodeId| {
                procs[id.index()].clone()
            })
            .with_shards(shards);
        ls.run_to_end();
        let divergence = first_divergence(&commits, ls.logs(), upto).map(|(node, i, a, b)| {
            format!("node {node}, entry {i}: stored {a:?}, replay {b:?}")
        });
        let checked_entries = commits.iter().map(|l| trim_log(l, upto).len()).sum();
        Ok(VerifyReport {
            scenario: r.info.scenario,
            frames: r.info.frames,
            last_group,
            upto,
            checked_nodes: commits.len(),
            checked_entries,
            divergence,
        })
    }
}

/// What an ordering sweep over a scenario's recording found.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// Probe outcome of the replay under the production ordering.
    pub baseline: String,
    /// Earliest salt whose replay reports a different outcome, with that
    /// outcome — `None` when every swept ordering agrees with the baseline.
    pub found: Option<(u64, String)>,
    /// How many swept salts diverge from the baseline.
    pub divergent: usize,
    /// How many salts were swept.
    pub total: usize,
    /// Jobs whose probe panicked even after a retry and a serial fallback;
    /// their salts are excluded from the tallies above. Surfaced instead
    /// of aborting the sweep — one poisoned salt should not cost the rest.
    pub failures: Vec<JobPanic>,
}

impl ExploreReport {
    /// Multi-line CLI rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "baseline outcome: {}\nsensitivity: {}/{} orderings diverge\n",
            self.baseline, self.divergent, self.total
        );
        match &self.found {
            Some((salt, outcome)) => {
                out.push_str(&format!("first divergence: salt {salt} -> {outcome}\n"));
            }
            None => out.push_str("no divergent ordering in the swept range\n"),
        }
        for p in &self.failures {
            out.push_str(&format!("WARNING: {p}; its salt is excluded from the sweep\n"));
        }
        out
    }
}

/// Where a scenario's final probe outcome was established (assuming it
/// persisted from there — see [`Scenario::bisect_run`] on monotonicity).
#[derive(Clone, Debug)]
pub struct BisectSummary {
    /// The full replay's probe outcome (the state being localised).
    pub outcome: String,
    /// Group-level bisection result.
    pub report: BisectReport,
    /// The exact delivery inside the located group that established the
    /// outcome, rendered for display; `None` when the outcome appears only
    /// at the group boundary itself.
    pub event: Option<String>,
}

impl BisectSummary {
    /// Multi-line CLI rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "outcome: {}\nestablished by group {} ({} prefix replays)\n",
            self.outcome, self.report.first_bad_group, self.report.replays
        );
        match &self.event {
            Some(ev) => out.push_str(&format!("culprit event: {ev}\n")),
            None => out.push_str("culprit event: at the group boundary (no single delivery)\n"),
        }
        if let Some((bad, healthy)) = self.report.oscillation {
            out.push_str(&format!(
                "WARNING: the predicate oscillates — group {bad} already reports the \
                 outcome but later group {healthy} does not; the located group is where \
                 it *last* became established, not a provable first cause\n"
            ));
        }
        out
    }
}

/// What [`Scenario::verify_store`] checked and found.
#[derive(Clone, Debug)]
pub struct VerifyReport {
    /// Scenario name recorded in the store's meta frame.
    pub scenario: String,
    /// Valid frames in the store.
    pub frames: usize,
    /// Highest group the stored run completed.
    pub last_group: u64,
    /// Comparison horizon: groups `<= upto` are settled network-wide and
    /// were checked against the replay.
    pub upto: u64,
    /// Nodes whose commit logs were compared.
    pub checked_nodes: usize,
    /// Commit-log entries compared (trimmed to the horizon).
    pub checked_entries: usize,
    /// First replay/stored mismatch, rendered — `None` when the replay
    /// matches the stored logs exactly.
    pub divergence: Option<String>,
}

impl VerifyReport {
    /// Whether verification passed.
    pub fn ok(&self) -> bool {
        self.divergence.is_none()
    }

    /// Multi-line CLI rendering.
    pub fn render(&self) -> String {
        let head = format!(
            "scenario {}: {} frames, last group {}, replay horizon {}\n",
            self.scenario, self.frames, self.last_group, self.upto,
        );
        match &self.divergence {
            Some(d) => format!(
                "{head}VERIFY FAILED: replay diverges from the stored commit log\n  {d}\n"
            ),
            None => format!(
                "{head}verify ok: {} commit-log entries across {} node(s) match a fresh replay\n",
                self.checked_entries, self.checked_nodes,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Injection;
    use defined_core::ls::first_divergence;
    use netsim::SimDuration;

    fn mini_ospf() -> Scenario {
        Scenario {
            name: "mini".into(),
            description: "4-ring OSPF with one link fault".into(),
            topology: TopologySpec::Ring { n: 4, delay: SimDuration::from_millis(4) },
            protocol: ProtocolSpec::Ospf,
            seed: 5,
            jitter_frac: 0.4,
            duration: SimDuration::from_secs(3),
            workload: vec![],
            faults: vec![Fault::LinkDown {
                at: SimTime::from_millis(1500),
                a: NodeId(0),
                b: NodeId(1),
            }],
            probe: Probe::OspfReachable { node: NodeId(2) },
            capture: defined_core::config::CapturePolicy::default(),
        }
    }

    use crate::spec::TopologySpec;

    #[test]
    fn record_replay_debug_cycle() {
        let scn = mini_ospf();
        let run = scn.record_run().expect("records");
        assert!(run.n_groups >= 5);
        assert_eq!(run.outcome.as_deref(), Some("n2 reaches 3 destinations"));
        let ls = scn.replay_logs(&run.bytes).expect("replays");
        assert!(first_divergence(&run.logs, &ls, run.upto).is_none());
        let t1 = scn.debug_transcript(&run.bytes, "stepg 2\nwhere\n").expect("debugs");
        let t2 = scn.debug_transcript(&run.bytes, "stepg 2\nwhere\n").expect("debugs again");
        assert_eq!(t1, t2);
        assert!(t1.contains("group"), "{t1}");
    }

    #[test]
    fn recorded_run_carries_a_gvt_report() {
        let run = mini_ospf().record_run().expect("records");
        let gvt = &run.gvt;
        assert!(gvt.samples >= 2, "too few GVT samples: {gvt:?}");
        assert!(gvt.monotone, "GVT bound regressed: {gvt:?}");
        assert!(gvt.last >= gvt.first, "{gvt:?}");
        assert_eq!(gvt.total_advance, gvt.last - gvt.first, "{gvt:?}");
        assert!(gvt.floor <= gvt.last, "fossil floor beyond the bound: {gvt:?}");
        let line = gvt.render();
        assert!(line.starts_with("gvt: bound"), "{line}");
        assert!(line.contains("rollback"), "{line}");
        // The report is a pure function of the scenario: re-recording
        // reproduces it exactly.
        assert_eq!(run.gvt, mini_ospf().record_run().expect("re-records").gvt);
    }

    #[test]
    fn sharded_scenario_replay_matches_serial() {
        let scn = mini_ospf();
        let run = scn.record_run().expect("records");
        let serial = scn.replay_logs(&run.bytes).expect("serial");
        for shards in [2usize, 3] {
            assert_eq!(
                scn.replay_logs_sharded(&run.bytes, shards).expect("sharded"),
                serial,
                "shards={shards}"
            );
        }
    }

    #[test]
    fn bad_recordings_are_rejected() {
        let scn = mini_ospf();
        assert!(matches!(
            scn.debug_transcript(b"garbage", "step\n"),
            Err(ScenarioError::BadRecording)
        ));
        assert!(matches!(scn.replay_logs(&[1, 2, 3]), Err(ScenarioError::BadRecording)));
    }

    #[test]
    fn validation_rejects_mismatches() {
        // BGP off the Fig. 4 topology.
        let mut scn = mini_ospf();
        scn.protocol = ProtocolSpec::Bgp { mode: routing::bgp::DecisionMode::CorrectFull };
        assert!(matches!(scn.record_run(), Err(ScenarioError::Invalid(_))));

        // An injection that does not fit the protocol.
        let mut scn = mini_ospf();
        scn.workload.push(Injection {
            at: SimTime::from_millis(100),
            node: NodeId(0),
            ev: ExtSpec::RipConnect { prefix: 7 },
        });
        assert!(matches!(scn.record_run(), Err(ScenarioError::Invalid(_))));

        // A fault on a link the topology lacks (0—2 is a chord of the ring).
        let mut scn = mini_ospf();
        scn.faults.push(Fault::LinkDown {
            at: SimTime::from_millis(100),
            a: NodeId(0),
            b: NodeId(2),
        });
        assert!(matches!(scn.record_run(), Err(ScenarioError::Invalid(_))));

        // A probe that does not fit the protocol.
        let mut scn = mini_ospf();
        scn.probe = Probe::RipRoute { node: NodeId(0), prefix: 7 };
        assert!(matches!(scn.record_run(), Err(ScenarioError::Invalid(_))));

        // A fault scheduled after the end of the run would silently never
        // fire and report a misleading healthy outcome.
        let mut scn = mini_ospf();
        scn.faults.push(Fault::LinkDown {
            at: SimTime::from_secs(10),
            a: NodeId(0),
            b: NodeId(1),
        });
        assert!(matches!(scn.record_run(), Err(ScenarioError::Invalid(_))));

        // Overlapping loss windows on one link (either orientation) would
        // truncate each other when the first window's end clears the model.
        let mut scn = mini_ospf();
        scn.faults = vec![
            Fault::LossWindow {
                from: SimTime::from_millis(500),
                until: SimTime::from_millis(2500),
                a: NodeId(1),
                b: NodeId(2),
                p: 0.5,
            },
            Fault::LossWindow {
                from: SimTime::from_millis(2000),
                until: SimTime::from_millis(2800),
                a: NodeId(2),
                b: NodeId(1),
                p: 0.9,
            },
        ];
        assert!(matches!(scn.record_run(), Err(ScenarioError::Invalid(_))));

        // A partition heal after the run end would silently never heal.
        let mut scn = mini_ospf();
        scn.faults = vec![Fault::Partition {
            at: SimTime::from_millis(500),
            heal: Some(SimTime::from_secs(50)),
            side: vec![NodeId(0)],
        }];
        assert!(matches!(scn.record_run(), Err(ScenarioError::Invalid(_))));

        // Duplicate ids in a partition side are harmless — the *set* must be
        // a proper subset, not the raw list length.
        let mut scn = mini_ospf();
        scn.faults = vec![Fault::Partition {
            at: SimTime::from_millis(500),
            heal: None,
            side: vec![NodeId(0), NodeId(0), NodeId(1), NodeId(1)],
        }];
        assert!(scn.validate().is_ok());
    }

    #[test]
    fn wrong_size_recording_is_rejected_cleanly() {
        // A same-protocol recording from a different-sized network must be
        // BadRecording, not a LockstepNet size-assert panic.
        let run = mini_ospf().record_run().expect("records");
        let mut big = mini_ospf();
        big.topology = TopologySpec::Ring { n: 5, delay: SimDuration::from_millis(4) };
        assert!(matches!(big.replay_logs(&run.bytes), Err(ScenarioError::BadRecording)));
        assert!(matches!(
            big.debug_transcript(&run.bytes, "step\n"),
            Err(ScenarioError::BadRecording)
        ));
    }
}
