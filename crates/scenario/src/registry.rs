//! The scenario registry: named, ready-made scenarios, plus the canonical
//! per-protocol process spawners the binary and the integration tests share.

use crate::spec::{ExtSpec, Fault, Injection, Probe, ProtocolSpec, TopologySpec};
use crate::Scenario;
use defined_core::config::CapturePolicy;
use netsim::{NodeId, SimDuration, SimTime};
use routing::bgp::{fig4_paths, BgpProcess, DecisionMode, Role};
use routing::ospf::{OspfConfig, OspfProcess};
use routing::rip::{RefreshMode, RipConfig, RipProcess};
use topology::canonical::Fig4Roles;
use topology::rocketfuel::Isp;
use topology::Graph;

/// One RIP process per node, neighbours taken from the graph.
pub fn rip_processes(g: &Graph, mode: RefreshMode) -> Vec<RipProcess> {
    let cfg = RipConfig::emulation(mode);
    (0..g.node_count() as u32)
        .map(|i| RipProcess::new(NodeId(i), g.neighbors(NodeId(i)), cfg))
        .collect()
}

/// One OSPF process per node, interfaces from the graph, stress timers.
pub fn ospf_processes(g: &Graph) -> Vec<OspfProcess> {
    let f = OspfProcess::for_graph(g, OspfConfig::stress(g.node_count()));
    (0..g.node_count() as u32).map(|i| f(NodeId(i))).collect()
}

/// The six Fig. 4 BGP processes: `ER1`/`ER2` peer with `R1`, `ER3` with
/// `R2`, and the three internal routers form an iBGP full mesh.
pub fn bgp_fig4_processes(roles: &Fig4Roles, mode: DecisionMode) -> Vec<BgpProcess> {
    let internal = [roles.r1, roles.r2, roles.r3];
    (0..6u32)
        .map(|i| {
            let id = NodeId(i);
            if id == roles.er1 || id == roles.er2 {
                BgpProcess::new(id, Role::External { border: roles.r1 }, mode)
            } else if id == roles.er3 {
                BgpProcess::new(id, Role::External { border: roles.r2 }, mode)
            } else {
                let peers = internal.iter().copied().filter(|&p| p != id).collect();
                BgpProcess::new(id, Role::Internal { ibgp_peers: peers }, mode)
            }
        })
        .collect()
}

fn ms(x: u64) -> SimTime {
    SimTime::from_millis(x)
}

fn dms(x: u64) -> SimDuration {
    SimDuration::from_millis(x)
}

/// The Fig. 4 topology the paper's BGP case study uses.
fn fig4_topology() -> TopologySpec {
    TopologySpec::Fig4Bgp { internal: dms(8), external: dms(12) }
}

/// The three Fig. 4 announcements as workload injections.
fn fig4_workload(at: SimTime) -> Vec<Injection> {
    let roles = fig4_topology().fig4_roles().expect("fig4");
    let [p1, p2, p3] = fig4_paths();
    [(roles.er1, p1), (roles.er2, p2), (roles.er3, p3)]
        .into_iter()
        .map(|(er, attrs)| Injection {
            at,
            node: er,
            ev: ExtSpec::BgpAnnounce { prefix: 9, attrs },
        })
        .collect()
}

/// The paper's Fig. 5 case study: the Quagga 0.96.5 timer-refresh black
/// hole. `R2` dies mid-run; under the buggy refresh mode `R1` keeps the
/// dead next hop alive.
fn rip_blackhole() -> Scenario {
    Scenario {
        name: "rip-blackhole".into(),
        description: "Quagga 0.96.5 RIP timer-refresh black hole (Fig. 5)".into(),
        topology: TopologySpec::Fig5Rip { delay: dms(10) },
        protocol: ProtocolSpec::Rip { mode: RefreshMode::DestinationOnly },
        seed: 2,
        jitter_frac: 0.6,
        duration: SimDuration::from_secs(26),
        workload: vec![Injection {
            at: ms(100),
            node: NodeId(3),
            ev: ExtSpec::RipConnect { prefix: 77 },
        }],
        faults: vec![Fault::NodeDown { at: SimTime::from_secs(8), node: NodeId(1) }],
        probe: Probe::RipRoute { node: NodeId(0), prefix: 77 },
        capture: CapturePolicy::default(),
    }
}

/// The paper's Fig. 4 case study: the XORP 0.4 MED ordering bug. The
/// announcements are staggered so the updates reach `R3` in the paper's
/// fatal order `p1, p3, p2`: the buggy incremental decision settles on
/// `p2` though `p3` is correct.
fn bgp_med() -> Scenario {
    let roles = fig4_topology().fig4_roles().expect("fig4");
    let [p1, p2, p3] = fig4_paths();
    let workload = [(roles.er1, p1, 700), (roles.er3, p3, 900), (roles.er2, p2, 1100)]
        .into_iter()
        .map(|(er, attrs, at)| Injection {
            at: ms(at),
            node: er,
            ev: ExtSpec::BgpAnnounce { prefix: 9, attrs },
        })
        .collect();
    Scenario {
        name: "bgp-med".into(),
        description: "XORP 0.4 BGP MED ordering bug network (Fig. 4)".into(),
        topology: fig4_topology(),
        protocol: ProtocolSpec::Bgp { mode: DecisionMode::BuggyIncremental },
        seed: 1,
        jitter_frac: 0.5,
        duration: SimDuration::from_secs(4),
        workload,
        faults: vec![],
        probe: Probe::BgpBest { node: NodeId(2), prefix: 9 },
        capture: CapturePolicy::default(),
    }
}

/// The Fig. 4 network with the validated patch (full decision re-run):
/// the same workload must settle on `p3`.
fn bgp_med_patched() -> Scenario {
    Scenario {
        name: "bgp-med-patched".into(),
        description: "Fig. 4 network with the MED patch applied; must select p3".into(),
        protocol: ProtocolSpec::Bgp { mode: DecisionMode::CorrectFull },
        ..bgp_med()
    }
}

/// RIP count-to-infinity: the destination's only remaining attachment
/// flaps, so distance vectors chase each other around the ring.
fn rip_count_to_infinity() -> Scenario {
    Scenario {
        name: "rip-count-to-infinity".into(),
        description: "RIP count-to-infinity race on a ring under link flap".into(),
        topology: TopologySpec::Ring { n: 4, delay: dms(8) },
        protocol: ProtocolSpec::Rip { mode: RefreshMode::DestinationAndNextHop },
        seed: 4,
        jitter_frac: 0.6,
        duration: SimDuration::from_secs(16),
        workload: vec![Injection {
            at: ms(100),
            node: NodeId(3),
            ev: ExtSpec::RipConnect { prefix: 50 },
        }],
        faults: vec![Fault::LinkFlap {
            at: SimTime::from_secs(6),
            a: NodeId(2),
            b: NodeId(3),
            down_for: dms(1200),
            period: dms(2500),
            count: 2,
        }],
        probe: Probe::RipRoute { node: NodeId(0), prefix: 50 },
        capture: CapturePolicy::default(),
    }
}

/// OSPF flooding storm on a Rocketfuel-like ISP: a backbone hub is cut
/// off and heals, forcing LSA storms and SPF churn across 25 PoPs.
fn ospf_flood_storm() -> Scenario {
    Scenario {
        name: "ospf-flood-storm".into(),
        description: "OSPF flooding storm on the Ebone ISP map with hub partition/heal".into(),
        topology: TopologySpec::Rocketfuel { isp: Isp::Ebone },
        protocol: ProtocolSpec::Ospf,
        seed: 3,
        jitter_frac: 0.5,
        duration: SimDuration::from_secs(5),
        workload: vec![],
        faults: vec![Fault::Partition {
            at: ms(1500),
            heal: Some(SimTime::from_secs(3)),
            side: vec![NodeId(0)],
        }],
        probe: Probe::OspfReachable { node: NodeId(5) },
        capture: CapturePolicy::default(),
    }
}

/// BGP route churn: announcements arrive, one is withdrawn and re-announced,
/// and the `p3` peer crashes and restarts. The restart makes this an
/// RB-exploration scenario (see DESIGN.md §7).
fn bgp_churn() -> Scenario {
    let roles = fig4_topology().fig4_roles().expect("fig4");
    let [p1, _, _] = fig4_paths();
    let mut workload = fig4_workload(ms(700));
    workload.push(Injection {
        at: ms(1500),
        node: roles.er1,
        ev: ExtSpec::BgpWithdraw { prefix: 9, route_id: 1 },
    });
    workload.push(Injection {
        at: ms(2200),
        node: roles.er1,
        ev: ExtSpec::BgpAnnounce { prefix: 9, attrs: p1 },
    });
    Scenario {
        name: "bgp-churn".into(),
        description: "BGP route churn with withdraw/re-announce and a peer crash/restart".into(),
        topology: fig4_topology(),
        protocol: ProtocolSpec::Bgp { mode: DecisionMode::BuggyIncremental },
        seed: 6,
        jitter_frac: 0.5,
        duration: SimDuration::from_secs(5),
        workload,
        faults: vec![
            Fault::NodeDown { at: ms(2500), node: roles.er3 },
            Fault::NodeUp { at: ms(3200), node: roles.er3 },
        ],
        probe: Probe::BgpBest { node: NodeId(2), prefix: 9 },
        capture: CapturePolicy::default(),
    }
}

/// Convergence race on a BRITE Waxman graph: node 0's two lowest-numbered
/// incident links fail 100 ms apart, racing SPF recomputations.
fn brite_convergence_race() -> Scenario {
    let topology = TopologySpec::Waxman {
        n: 12,
        params: topology::brite::WaxmanParams::default(),
        seed: 7,
    };
    // Pick the fault edges from the (deterministic) generated graph so the
    // scenario stays valid whatever the generator produced.
    let g = topology.build();
    let incident: Vec<_> = g
        .edges()
        .iter()
        .filter(|e| e.a == NodeId(0) || e.b == NodeId(0))
        .take(2)
        .map(|e| (e.a, e.b))
        .collect();
    let mut faults: Vec<Fault> = incident
        .iter()
        .enumerate()
        .map(|(i, &(a, b))| Fault::LinkDown { at: ms(2000 + 100 * i as u64), a, b })
        .collect();
    // Heal the first failure late, racing the second outage's convergence.
    if let Some(&(a, b)) = incident.first() {
        faults.push(Fault::LinkUp { at: ms(3500), a, b });
    }
    Scenario {
        name: "brite-race".into(),
        description: "OSPF convergence race on a Waxman graph: staggered link failures".into(),
        topology,
        protocol: ProtocolSpec::Ospf,
        seed: 5,
        jitter_frac: 0.7,
        duration: SimDuration::from_secs(5),
        workload: vec![],
        faults,
        probe: Probe::OspfReachable { node: NodeId(0) },
        capture: CapturePolicy::default(),
    }
}

/// Beacon-source failover stress: the virtual-time source crashes mid-run;
/// the survivors elect a claimant and the recording must replay across the
/// handover.
fn beacon_failover_stress() -> Scenario {
    Scenario {
        name: "beacon-failover".into(),
        description: "beacon-source crash: survivors elect a new source; time keeps advancing"
            .into(),
        topology: TopologySpec::Line { n: 6, delay: dms(5) },
        protocol: ProtocolSpec::Ospf,
        seed: 11,
        jitter_frac: 0.5,
        duration: SimDuration::from_secs(9),
        workload: vec![],
        faults: vec![Fault::NodeDown { at: SimTime::from_secs(3), node: NodeId(0) }],
        probe: Probe::OspfReachable { node: NodeId(5) },
        capture: CapturePolicy::default(),
    }
}

/// RIP across a healed bisection: the left column of a grid is cut off,
/// routes poison, the partition heals, and the tables must reconverge.
fn rip_partition_heal() -> Scenario {
    Scenario {
        name: "rip-partition-heal".into(),
        description: "RIP reconvergence across a grid bisection that heals".into(),
        topology: TopologySpec::Grid { rows: 2, cols: 3, delay: dms(4) },
        protocol: ProtocolSpec::Rip { mode: RefreshMode::DestinationAndNextHop },
        seed: 9,
        jitter_frac: 0.5,
        duration: SimDuration::from_secs(14),
        workload: vec![Injection {
            at: ms(100),
            node: NodeId(5),
            ev: ExtSpec::RipConnect { prefix: 60 },
        }],
        faults: vec![Fault::Partition {
            at: SimTime::from_secs(3),
            heal: Some(SimTime::from_secs(5)),
            side: vec![NodeId(0), NodeId(3)],
        }],
        probe: Probe::RipRoute { node: NodeId(0), prefix: 60 },
        capture: CapturePolicy::default(),
    }
}

/// A message-loss window: an OSPF ring loses half its packets on one link
/// for 1.5 s. Committed losses enter the recording and replay exactly.
fn ospf_loss_window() -> Scenario {
    Scenario {
        name: "ospf-loss-window".into(),
        description: "OSPF ring under a 50% message-loss window on one link".into(),
        topology: TopologySpec::Ring { n: 5, delay: dms(4) },
        protocol: ProtocolSpec::Ospf,
        seed: 13,
        jitter_frac: 0.5,
        duration: SimDuration::from_secs(6),
        workload: vec![],
        faults: vec![Fault::LossWindow {
            from: ms(1500),
            until: SimTime::from_secs(3),
            a: NodeId(1),
            b: NodeId(2),
            p: 0.5,
        }],
        probe: Probe::OspfReachable { node: NodeId(2) },
        capture: CapturePolicy::default(),
    }
}

/// Hub crash on a Barabási–Albert graph: the highest-degree node dies, so
/// a large fraction of shortest paths must reroute at once.
fn ba_hub_crash() -> Scenario {
    let topology = TopologySpec::BarabasiAlbert { n: 14, m: 2, seed: 13 };
    let g = topology.build();
    let hub = (0..g.node_count() as u32)
        .max_by_key(|&i| g.degree(NodeId(i)))
        .map(NodeId)
        .expect("nonempty graph");
    // Probe from a node other than the hub (the hub is dead at probe time).
    let witness = NodeId(if hub == NodeId(0) { 1 } else { 0 });
    Scenario {
        name: "ba-hub-crash".into(),
        description: "OSPF on a Barabási–Albert graph; the highest-degree hub crashes".into(),
        topology,
        protocol: ProtocolSpec::Ospf,
        seed: 8,
        jitter_frac: 0.4,
        duration: SimDuration::from_secs(6),
        workload: vec![],
        faults: vec![Fault::NodeDown { at: ms(2500), node: hub }],
        probe: Probe::OspfReachable { node: witness },
        capture: CapturePolicy::default(),
    }
}

/// Flap storm on a star: two spokes flap against the hub while a third
/// spoke owns the destination prefix.
fn rip_star_flap_storm() -> Scenario {
    Scenario {
        name: "rip-flap-storm".into(),
        description: "RIP star under concurrent spoke flaps".into(),
        topology: TopologySpec::Star { n: 5, delay: dms(6) },
        protocol: ProtocolSpec::Rip { mode: RefreshMode::DestinationAndNextHop },
        seed: 15,
        jitter_frac: 0.6,
        duration: SimDuration::from_secs(12),
        workload: vec![Injection {
            at: ms(100),
            node: NodeId(4),
            ev: ExtSpec::RipConnect { prefix: 42 },
        }],
        faults: vec![
            Fault::LinkFlap {
                at: SimTime::from_secs(3),
                a: NodeId(0),
                b: NodeId(1),
                down_for: dms(900),
                period: dms(2000),
                count: 2,
            },
            Fault::LinkFlap {
                at: ms(3700),
                a: NodeId(0),
                b: NodeId(2),
                down_for: dms(900),
                period: dms(2000),
                count: 2,
            },
        ],
        probe: Probe::RipRoute { node: NodeId(1), prefix: 42 },
        capture: CapturePolicy::default(),
    }
}

/// Every bundled scenario, in listing order.
pub fn registry() -> Vec<Scenario> {
    vec![
        rip_blackhole(),
        bgp_med(),
        bgp_med_patched(),
        bgp_churn(),
        rip_count_to_infinity(),
        rip_partition_heal(),
        rip_star_flap_storm(),
        ospf_flood_storm(),
        ospf_loss_window(),
        brite_convergence_race(),
        beacon_failover_stress(),
        ba_hub_crash(),
    ]
}

/// Looks a bundled scenario up by name.
pub fn find(name: &str) -> Option<Scenario> {
    registry().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_at_least_ten_and_named_uniquely() {
        let reg = registry();
        assert!(reg.len() >= 10, "registry has {} entries", reg.len());
        let mut names: Vec<&str> = reg.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), reg.len(), "duplicate scenario names");
    }

    #[test]
    fn every_registered_scenario_validates() {
        for s in registry() {
            assert!(s.validate().is_ok(), "{}: {:?}", s.name, s.validate());
        }
    }

    #[test]
    fn find_resolves_names() {
        assert!(find("rip-blackhole").is_some());
        assert!(find("bgp-med").is_some());
        assert!(find("no-such-scenario").is_none());
    }

    #[test]
    fn spawners_cover_every_node() {
        let g = topology::canonical::ring(5, SimDuration::from_millis(4));
        assert_eq!(rip_processes(&g, RefreshMode::DestinationOnly).len(), 5);
        assert_eq!(ospf_processes(&g).len(), 5);
        let roles = fig4_topology().fig4_roles().unwrap();
        assert_eq!(bgp_fig4_processes(&roles, DecisionMode::BuggyIncremental).len(), 6);
    }

    #[test]
    fn only_bgp_churn_restarts() {
        for s in registry() {
            assert_eq!(s.has_restart(), s.name == "bgp-churn", "{}", s.name);
        }
    }
}
