//! The `.scn` text format: one directive per line, `#` starts a comment.
//!
//! ```text
//! name ring-loss
//! description OSPF ring with a loss window and a flap
//! topology ring 5 4ms
//! protocol ospf
//! seed 3
//! jitter 0.5
//! duration 6s
//! fault 1500ms loss 1 2 0.5 until 3s
//! fault 2s flap 0 1 400ms 900ms 2
//! probe ospf-reachable 0
//! ```
//!
//! Directives:
//!
//! * `name <ident>` / `description <text>` — identity (name required).
//! * `topology line|ring|star|full-mesh <n> <delay>` ·
//!   `grid <rows> <cols> <delay>` · `fig4-bgp <internal> <external>` ·
//!   `fig5-rip <delay>` · `rocketfuel sprintlink|ebone|level3` ·
//!   `waxman <n> <alpha> <beta> <seed>` · `ba <n> <m> <seed>`.
//! * `protocol ospf` · `rip destination-only|destination-and-next-hop` ·
//!   `bgp buggy-incremental|correct-full`.
//! * `seed <u64>` · `jitter <f64>` · `duration <time>` — run parameters
//!   (duration required; seed defaults to 0, jitter to 0.5).
//! * `ckpt-interval <n>|auto` — checkpoint-capture policy: capture every
//!   n-th delivery, or adapt the interval to observed rollback churn
//!   (defaults to every delivery).
//! * `inject <time> <node> rip-connect <prefix>` ·
//!   `… bgp-announce <prefix> <route_id> <as_path_len> <neighbor_as> <med>
//!   <igp_dist>` · `… bgp-withdraw <prefix> <route_id>` — the workload.
//! * `fault <time> node-down|node-up <node>` ·
//!   `… link-down|link-up <a> <b>` ·
//!   `… flap <a> <b> <down_for> <period> <count>` ·
//!   `… partition <node>… [heal <time>]` ·
//!   `… loss <a> <b> <p> until <time>` — the fault schedule.
//! * `probe rip-route <node> <prefix>` · `probe bgp-best <node> <prefix>` ·
//!   `probe ospf-reachable <node>`.
//!
//! Times are `<integer><unit>` with unit `ns`, `us`, `ms`, or `s`.

use crate::spec::{ExtSpec, Fault, Injection, Probe, ProtocolSpec, TopologySpec};
use crate::{Scenario, ScenarioError};
use defined_core::config::CapturePolicy;
use netsim::{NodeId, SimDuration, SimTime};
use routing::bgp::{DecisionMode, PathAttrs};
use routing::rip::RefreshMode;
use topology::brite::WaxmanParams;
use topology::rocketfuel::Isp;

fn perr(line: usize, msg: impl Into<String>) -> ScenarioError {
    ScenarioError::Parse { line, msg: msg.into() }
}

/// Parses a `<integer><unit>` duration token.
fn parse_duration(tok: &str, line: usize) -> Result<SimDuration, ScenarioError> {
    let split = tok.find(|c: char| !c.is_ascii_digit()).ok_or_else(|| {
        perr(line, format!("`{tok}`: expected a duration like `250ms` (unit ns/us/ms/s)"))
    })?;
    let (num, unit) = tok.split_at(split);
    let v: u64 = num.parse().map_err(|_| perr(line, format!("`{tok}`: bad number")))?;
    match unit {
        "ns" => Ok(SimDuration::from_nanos(v)),
        "us" => Ok(SimDuration::from_micros(v)),
        "ms" => Ok(SimDuration::from_millis(v)),
        "s" => Ok(SimDuration::from_secs(v)),
        _ => Err(perr(line, format!("`{tok}`: unknown time unit `{unit}`"))),
    }
}

fn parse_time(tok: &str, line: usize) -> Result<SimTime, ScenarioError> {
    Ok(SimTime::ZERO + parse_duration(tok, line)?)
}

struct Tokens<'a> {
    it: std::iter::Peekable<std::str::SplitWhitespace<'a>>,
    line: usize,
}

impl<'a> Tokens<'a> {
    fn new(s: &'a str, line: usize) -> Self {
        Tokens { it: s.split_whitespace().peekable(), line }
    }

    fn next(&mut self, what: &str) -> Result<&'a str, ScenarioError> {
        self.it.next().ok_or_else(|| perr(self.line, format!("missing {what}")))
    }

    fn peek(&mut self) -> Option<&&'a str> {
        self.it.peek()
    }

    fn num<T: std::str::FromStr>(&mut self, what: &str) -> Result<T, ScenarioError> {
        let tok = self.next(what)?;
        tok.parse().map_err(|_| perr(self.line, format!("`{tok}`: bad {what}")))
    }

    fn node(&mut self) -> Result<NodeId, ScenarioError> {
        Ok(NodeId(self.num::<u32>("node id")?))
    }

    fn time(&mut self) -> Result<SimTime, ScenarioError> {
        let tok = self.next("time")?;
        parse_time(tok, self.line)
    }

    fn duration(&mut self) -> Result<SimDuration, ScenarioError> {
        let tok = self.next("duration")?;
        parse_duration(tok, self.line)
    }

    fn done(&mut self) -> Result<(), ScenarioError> {
        match self.it.next() {
            None => Ok(()),
            Some(t) => Err(perr(self.line, format!("unexpected trailing token `{t}`"))),
        }
    }
}

fn parse_topology(t: &mut Tokens<'_>) -> Result<TopologySpec, ScenarioError> {
    let kind = t.next("topology kind")?;
    let spec = match kind {
        "line" => TopologySpec::Line { n: t.num("node count")?, delay: t.duration()? },
        "ring" => TopologySpec::Ring { n: t.num("node count")?, delay: t.duration()? },
        "star" => TopologySpec::Star { n: t.num("node count")?, delay: t.duration()? },
        "full-mesh" => TopologySpec::FullMesh { n: t.num("node count")?, delay: t.duration()? },
        "grid" => TopologySpec::Grid {
            rows: t.num("row count")?,
            cols: t.num("column count")?,
            delay: t.duration()?,
        },
        "fig4-bgp" => TopologySpec::Fig4Bgp { internal: t.duration()?, external: t.duration()? },
        "fig5-rip" => TopologySpec::Fig5Rip { delay: t.duration()? },
        "rocketfuel" => {
            let isp = match t.next("isp name")? {
                "sprintlink" => Isp::Sprintlink,
                "ebone" => Isp::Ebone,
                "level3" => Isp::Level3,
                other => return Err(perr(t.line, format!("unknown isp `{other}`"))),
            };
            TopologySpec::Rocketfuel { isp }
        }
        "waxman" => TopologySpec::Waxman {
            n: t.num("node count")?,
            params: WaxmanParams { alpha: t.num("alpha")?, beta: t.num("beta")? },
            seed: t.num("seed")?,
        },
        "ba" => TopologySpec::BarabasiAlbert {
            n: t.num("node count")?,
            m: t.num("edges per node")?,
            seed: t.num("seed")?,
        },
        other => return Err(perr(t.line, format!("unknown topology `{other}`"))),
    };
    t.done()?;
    Ok(spec)
}

fn parse_protocol(t: &mut Tokens<'_>) -> Result<ProtocolSpec, ScenarioError> {
    let spec = match t.next("protocol name")? {
        "ospf" => ProtocolSpec::Ospf,
        "rip" => {
            let mode = match t.next("rip refresh mode")? {
                "destination-only" => RefreshMode::DestinationOnly,
                "destination-and-next-hop" => RefreshMode::DestinationAndNextHop,
                other => return Err(perr(t.line, format!("unknown rip mode `{other}`"))),
            };
            ProtocolSpec::Rip { mode }
        }
        "bgp" => {
            let mode = match t.next("bgp decision mode")? {
                "buggy-incremental" => DecisionMode::BuggyIncremental,
                "correct-full" => DecisionMode::CorrectFull,
                other => return Err(perr(t.line, format!("unknown bgp mode `{other}`"))),
            };
            ProtocolSpec::Bgp { mode }
        }
        other => return Err(perr(t.line, format!("unknown protocol `{other}`"))),
    };
    t.done()?;
    Ok(spec)
}

fn parse_inject(t: &mut Tokens<'_>) -> Result<Injection, ScenarioError> {
    let at = t.time()?;
    let node = t.node()?;
    let ev = match t.next("event kind")? {
        "rip-connect" => ExtSpec::RipConnect { prefix: t.num("prefix")? },
        "bgp-announce" => ExtSpec::BgpAnnounce {
            prefix: t.num("prefix")?,
            attrs: PathAttrs {
                route_id: t.num("route id")?,
                as_path_len: t.num("as-path length")?,
                neighbor_as: t.num("neighbour as")?,
                med: t.num("med")?,
                igp_dist: t.num("igp distance")?,
            },
        },
        "bgp-withdraw" => {
            ExtSpec::BgpWithdraw { prefix: t.num("prefix")?, route_id: t.num("route id")? }
        }
        other => return Err(perr(t.line, format!("unknown event `{other}`"))),
    };
    t.done()?;
    Ok(Injection { at, node, ev })
}

fn parse_fault(t: &mut Tokens<'_>) -> Result<Fault, ScenarioError> {
    let at = t.time()?;
    let fault = match t.next("fault kind")? {
        "node-down" => Fault::NodeDown { at, node: t.node()? },
        "node-up" => Fault::NodeUp { at, node: t.node()? },
        "link-down" => Fault::LinkDown { at, a: t.node()?, b: t.node()? },
        "link-up" => Fault::LinkUp { at, a: t.node()?, b: t.node()? },
        "flap" => Fault::LinkFlap {
            at,
            a: t.node()?,
            b: t.node()?,
            down_for: t.duration()?,
            period: t.duration()?,
            count: t.num("cycle count")?,
        },
        "partition" => {
            let mut side = Vec::new();
            let mut heal = None;
            while let Some(&tok) = t.peek() {
                if tok == "heal" {
                    t.next("heal")?;
                    heal = Some(t.time()?);
                    break;
                }
                side.push(t.node()?);
            }
            if side.is_empty() {
                return Err(perr(t.line, "partition needs at least one node"));
            }
            Fault::Partition { at, heal, side }
        }
        "loss" => {
            let (a, b) = (t.node()?, t.node()?);
            let p = t.num("loss probability")?;
            match t.next("`until`")? {
                "until" => {}
                other => return Err(perr(t.line, format!("expected `until`, got `{other}`"))),
            }
            Fault::LossWindow { from: at, until: t.time()?, a, b, p }
        }
        other => return Err(perr(t.line, format!("unknown fault `{other}`"))),
    };
    t.done()?;
    Ok(fault)
}

fn parse_probe(t: &mut Tokens<'_>) -> Result<Probe, ScenarioError> {
    let probe = match t.next("probe kind")? {
        "rip-route" => Probe::RipRoute { node: t.node()?, prefix: t.num("prefix")? },
        "bgp-best" => Probe::BgpBest { node: t.node()?, prefix: t.num("prefix")? },
        "ospf-reachable" => Probe::OspfReachable { node: t.node()? },
        other => return Err(perr(t.line, format!("unknown probe `{other}`"))),
    };
    t.done()?;
    Ok(probe)
}

/// Parses (and validates) a scenario from `.scn` text.
pub fn parse(text: &str) -> Result<Scenario, ScenarioError> {
    let mut name = None;
    let mut description = String::new();
    let mut topology = None;
    let mut protocol = None;
    let mut seed = 0u64;
    let mut jitter = 0.5f64;
    let mut duration = None;
    let mut capture = CapturePolicy::default();
    let mut workload = Vec::new();
    let mut faults = Vec::new();
    let mut probe = Probe::None;
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (verb, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let mut t = Tokens::new(rest, lineno);
        match verb {
            "name" => {
                name = Some(t.next("scenario name")?.to_string());
                t.done()?;
            }
            "description" => description = rest.trim().to_string(),
            "topology" => topology = Some(parse_topology(&mut t)?),
            "protocol" => protocol = Some(parse_protocol(&mut t)?),
            "seed" => {
                seed = t.num("seed")?;
                t.done()?;
            }
            "jitter" => {
                jitter = t.num("jitter fraction")?;
                t.done()?;
            }
            "duration" => {
                duration = Some(t.duration()?);
                t.done()?;
            }
            "ckpt-interval" => {
                let tok = t.next("capture policy")?;
                capture = tok.parse().map_err(|e| perr(lineno, format!("{e}")))?;
                t.done()?;
            }
            "inject" => workload.push(parse_inject(&mut t)?),
            "fault" => faults.push(parse_fault(&mut t)?),
            "probe" => probe = parse_probe(&mut t)?,
            other => return Err(perr(lineno, format!("unknown directive `{other}`"))),
        }
    }
    let scenario = Scenario {
        name: name.ok_or_else(|| perr(0, "missing `name` directive"))?,
        description,
        topology: topology.ok_or_else(|| perr(0, "missing `topology` directive"))?,
        protocol: protocol.ok_or_else(|| perr(0, "missing `protocol` directive"))?,
        seed,
        jitter_frac: jitter,
        duration: duration.ok_or_else(|| perr(0, "missing `duration` directive"))?,
        workload,
        faults,
        probe,
        capture,
    };
    scenario.validate()?;
    Ok(scenario)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = "\
# OSPF ring with a loss window and a flap
name ring-loss
description OSPF ring with a loss window and a flap
topology ring 5 4ms
protocol ospf
seed 3
jitter 0.5
duration 6s
fault 1500ms loss 1 2 0.5 until 3s
fault 2s flap 0 1 400ms 900ms 2
probe ospf-reachable 0
";

    #[test]
    fn parses_the_module_example() {
        let s = parse(EXAMPLE).expect("parses");
        assert_eq!(s.name, "ring-loss");
        assert_eq!(s.topology, TopologySpec::Ring { n: 5, delay: SimDuration::from_millis(4) });
        assert_eq!(s.protocol, ProtocolSpec::Ospf);
        assert_eq!(s.seed, 3);
        assert_eq!(s.duration, SimDuration::from_secs(6));
        assert_eq!(s.faults.len(), 2);
        assert_eq!(s.probe, Probe::OspfReachable { node: NodeId(0) });
        assert!(matches!(s.faults[0], Fault::LossWindow { p, .. } if p == 0.5));
    }

    #[test]
    fn parses_every_fault_and_inject_form() {
        let s = parse(
            "name all\n\
             topology fig4-bgp 8ms 12ms\n\
             protocol bgp buggy-incremental\n\
             duration 5s\n\
             inject 700ms 3 bgp-announce 9 1 3 100 10 10\n\
             inject 1500ms 3 bgp-withdraw 9 1\n\
             fault 1s node-down 5\n\
             fault 2s node-up 5\n\
             fault 1s link-down 0 1\n\
             fault 2s link-up 0 1\n\
             fault 1s flap 0 2 100ms 300ms 2\n\
             fault 1s partition 3 heal 2s\n\
             fault 1s loss 1 2 0.25 until 2s\n\
             probe bgp-best 2 9\n",
        )
        .expect("parses");
        assert_eq!(s.workload.len(), 2);
        assert_eq!(s.faults.len(), 7);
        assert!(s.has_restart());
    }

    #[test]
    fn rip_scenario_round_trips_through_fig5() {
        let s = parse(
            "name mini-rip\n\
             topology fig5-rip 10ms\n\
             protocol rip destination-only\n\
             duration 8s\n\
             inject 100ms 3 rip-connect 77\n\
             probe rip-route 0 77\n",
        )
        .expect("parses");
        assert_eq!(s.protocol, ProtocolSpec::Rip { mode: RefreshMode::DestinationOnly });
        assert_eq!(s.workload[0].ev, ExtSpec::RipConnect { prefix: 77 });
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("name x\ntopology ring 5 4ms\nprotocol ospf\nduration 5s\nfault 1s frobnicate 0\n")
            .unwrap_err();
        match err {
            ScenarioError::Parse { line, msg } => {
                assert_eq!(line, 5);
                assert!(msg.contains("frobnicate"), "{msg}");
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn missing_directives_are_rejected() {
        assert!(parse("topology ring 4 1ms\nprotocol ospf\nduration 2s\n").is_err()); // no name
        assert!(parse("name x\nprotocol ospf\nduration 2s\n").is_err()); // no topology
        assert!(parse("name x\ntopology ring 4 1ms\nduration 2s\n").is_err()); // no protocol
        assert!(parse("name x\ntopology ring 4 1ms\nprotocol ospf\n").is_err()); // no duration
    }

    #[test]
    fn validation_runs_at_parse_time() {
        // Node 9 does not exist in a 5-ring: parse must reject it.
        let err = parse(
            "name x\ntopology ring 5 4ms\nprotocol ospf\nduration 5s\nfault 1s node-down 9\n",
        )
        .unwrap_err();
        assert!(matches!(err, ScenarioError::Invalid(_)), "{err:?}");
    }

    #[test]
    fn ckpt_interval_directive_parses_and_rejects() {
        let base = "name x\ntopology ring 4 1ms\nprotocol ospf\nduration 2s\n";
        let s = parse(base).expect("parses");
        assert_eq!(s.capture, CapturePolicy::default());
        let s = parse(&format!("{base}ckpt-interval 4\n")).expect("parses");
        assert_eq!(s.capture, CapturePolicy::Every(4));
        let s = parse(&format!("{base}ckpt-interval auto\n")).expect("parses");
        assert_eq!(s.capture, CapturePolicy::auto());
        // A malformed policy is a parse error on its line, not a panic.
        let err = parse(&format!("{base}ckpt-interval 0\n")).unwrap_err();
        match err {
            ScenarioError::Parse { line, msg } => {
                assert_eq!(line, 5);
                assert!(msg.contains("capture policy"), "{msg}");
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn bad_durations_are_rejected() {
        assert!(parse_duration("250ms", 1).is_ok());
        assert!(parse_duration("3s", 1).is_ok());
        assert!(parse_duration("17", 1).is_err());
        assert!(parse_duration("ms", 1).is_err());
        assert!(parse_duration("3h", 1).is_err());
    }
}
