//! The declarative vocabulary a [`Scenario`](crate::Scenario) is written in:
//! topology, protocol, workload injections, fault schedule, and outcome
//! probe. Everything here is plain data — building networks and running them
//! happens in the engine.

use netsim::{NodeId, SimDuration, SimTime};
use routing::bgp::{DecisionMode, PathAttrs};
use routing::rip::RefreshMode;
use topology::brite::{self, WaxmanParams};
use topology::rocketfuel::{self, Isp};
use topology::{canonical, Graph};

/// Which network graph the scenario runs on.
#[derive(Clone, Debug, PartialEq)]
pub enum TopologySpec {
    /// A line `0 — 1 — … — n-1`.
    Line {
        /// Node count.
        n: usize,
        /// Uniform edge delay.
        delay: SimDuration,
    },
    /// A ring over `n` nodes.
    Ring {
        /// Node count.
        n: usize,
        /// Uniform edge delay.
        delay: SimDuration,
    },
    /// A star with node 0 in the centre.
    Star {
        /// Node count (centre + n-1 spokes).
        n: usize,
        /// Uniform edge delay.
        delay: SimDuration,
    },
    /// A `rows × cols` grid, row-major node ids.
    Grid {
        /// Row count.
        rows: usize,
        /// Column count.
        cols: usize,
        /// Uniform edge delay.
        delay: SimDuration,
    },
    /// A complete graph.
    FullMesh {
        /// Node count.
        n: usize,
        /// Uniform edge delay.
        delay: SimDuration,
    },
    /// The paper's Fig. 4 XORP BGP MED network (6 nodes, fixed roles).
    Fig4Bgp {
        /// iBGP full-mesh link delay.
        internal: SimDuration,
        /// eBGP session link delay.
        external: SimDuration,
    },
    /// The paper's Fig. 5 Quagga RIP network (4 nodes, fixed roles).
    Fig5Rip {
        /// Uniform edge delay.
        delay: SimDuration,
    },
    /// A synthesised Rocketfuel-like PoP-level ISP map.
    Rocketfuel {
        /// Which ISP to synthesise.
        isp: Isp,
    },
    /// A BRITE-style Waxman random graph.
    Waxman {
        /// Node count.
        n: usize,
        /// Waxman parameters (`alpha`, `beta`).
        params: WaxmanParams,
        /// Generation seed (part of the topology identity, not the run
        /// seed — the same spec always builds the same graph).
        seed: u64,
    },
    /// A BRITE-style Barabási–Albert preferential-attachment graph.
    BarabasiAlbert {
        /// Node count.
        n: usize,
        /// Edges per new node.
        m: usize,
        /// Generation seed.
        seed: u64,
    },
}

/// Upper bound on generated scenario sizes. Scenarios describe debugging
/// workloads, not internet-scale graphs; the cap turns a hostile or
/// fat-fingered node count in a `.scn` file into a clean validation error
/// instead of a multi-gigabyte allocation (or, for `grid`, a debug-build
/// multiplication overflow) inside the topology generators.
pub const MAX_SCENARIO_NODES: usize = 512;

impl TopologySpec {
    /// Validates the generator *parameters* without building anything —
    /// every precondition the topology generators would otherwise enforce
    /// by panic (node-count bounds, `waxman`'s `n >= 2`, `ba`'s
    /// `n > m >= 1`, finite Waxman parameters) becomes an `Err` here, so
    /// untrusted `.scn` input can never panic or exhaust memory through
    /// [`TopologySpec::build`].
    pub fn check(&self) -> Result<(), String> {
        let bounded = |n: usize, what: &str| {
            if n < 2 {
                Err(format!("{what}: need at least 2 nodes, got {n}"))
            } else if n > MAX_SCENARIO_NODES {
                Err(format!("{what}: {n} nodes exceeds the {MAX_SCENARIO_NODES}-node cap"))
            } else {
                Ok(())
            }
        };
        match *self {
            TopologySpec::Line { n, .. } => bounded(n, "line"),
            TopologySpec::Ring { n, .. } => bounded(n, "ring"),
            TopologySpec::Star { n, .. } => bounded(n, "star"),
            TopologySpec::FullMesh { n, .. } => bounded(n, "full-mesh"),
            TopologySpec::Grid { rows, cols, .. } => {
                let n = rows
                    .checked_mul(cols)
                    .ok_or_else(|| format!("grid: {rows}x{cols} overflows"))?;
                bounded(n, "grid")
            }
            TopologySpec::Fig4Bgp { .. } | TopologySpec::Fig5Rip { .. } => Ok(()),
            TopologySpec::Rocketfuel { .. } => Ok(()),
            TopologySpec::Waxman { n, params, .. } => {
                bounded(n, "waxman")?;
                if !params.alpha.is_finite() || params.alpha < 0.0 {
                    return Err(format!("waxman: alpha {} must be finite and >= 0", params.alpha));
                }
                if !params.beta.is_finite() || params.beta <= 0.0 {
                    return Err(format!("waxman: beta {} must be finite and > 0", params.beta));
                }
                Ok(())
            }
            TopologySpec::BarabasiAlbert { n, m, .. } => {
                bounded(n, "ba")?;
                if m == 0 || m >= n {
                    return Err(format!("ba: need n > m >= 1, got n {n}, m {m}"));
                }
                Ok(())
            }
        }
    }

    /// Builds the graph this spec describes. Deterministic: the same spec
    /// always yields the same graph.
    ///
    /// Call [`TopologySpec::check`] first on untrusted specs — the
    /// generators enforce their preconditions by panic.
    pub fn build(&self) -> Graph {
        match *self {
            TopologySpec::Line { n, delay } => canonical::line(n, delay),
            TopologySpec::Ring { n, delay } => canonical::ring(n, delay),
            TopologySpec::Star { n, delay } => canonical::star(n, delay),
            TopologySpec::Grid { rows, cols, delay } => canonical::grid(rows, cols, delay),
            TopologySpec::FullMesh { n, delay } => canonical::full_mesh(n, delay),
            TopologySpec::Fig4Bgp { internal, external } => canonical::fig4_bgp(internal, external).0,
            TopologySpec::Fig5Rip { delay } => canonical::fig5_rip(delay).0,
            TopologySpec::Rocketfuel { isp } => rocketfuel::build(isp),
            TopologySpec::Waxman { n, params, seed } => brite::waxman(n, params, seed),
            TopologySpec::BarabasiAlbert { n, m, seed } => brite::barabasi_albert(n, m, seed),
        }
    }

    /// The Fig. 4 role assignment, when this is the Fig. 4 topology.
    pub fn fig4_roles(&self) -> Option<canonical::Fig4Roles> {
        match *self {
            TopologySpec::Fig4Bgp { internal, external } => {
                Some(canonical::fig4_bgp(internal, external).1)
            }
            _ => None,
        }
    }

    /// The Fig. 5 role assignment, when this is the Fig. 5 topology.
    pub fn fig5_roles(&self) -> Option<canonical::Fig5Roles> {
        match *self {
            TopologySpec::Fig5Rip { delay } => Some(canonical::fig5_rip(delay).1),
            _ => None,
        }
    }
}

/// Which control plane every node runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolSpec {
    /// RIP on every node, neighbours taken from the graph.
    Rip {
        /// Timer-refresh behaviour (the Quagga bug toggle).
        mode: RefreshMode,
    },
    /// OSPF on every node (interfaces from the graph, stress timers).
    Ospf,
    /// BGP with the Fig. 4 role assignment; requires
    /// [`TopologySpec::Fig4Bgp`].
    Bgp {
        /// Decision-process behaviour (the XORP bug toggle).
        mode: DecisionMode,
    },
}

impl ProtocolSpec {
    /// Short protocol name for listings.
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolSpec::Rip { .. } => "rip",
            ProtocolSpec::Ospf => "ospf",
            ProtocolSpec::Bgp { .. } => "bgp",
        }
    }
}

/// A protocol-neutral external event; the engine converts it to the running
/// protocol's `Ext` type and rejects mismatches at validation time.
#[derive(Clone, Debug, PartialEq)]
pub enum ExtSpec {
    /// RIP: attach a directly connected prefix.
    RipConnect {
        /// The prefix to own.
        prefix: u32,
    },
    /// BGP: start announcing a path at an external router.
    BgpAnnounce {
        /// Destination prefix.
        prefix: u32,
        /// Path attributes.
        attrs: PathAttrs,
    },
    /// BGP: withdraw a previously announced path.
    BgpWithdraw {
        /// Destination prefix.
        prefix: u32,
        /// The `route_id` to retract.
        route_id: u32,
    },
}

impl ExtSpec {
    /// Whether this event can be delivered under `protocol`.
    pub fn fits(&self, protocol: &ProtocolSpec) -> bool {
        matches!(
            (self, protocol),
            (ExtSpec::RipConnect { .. }, ProtocolSpec::Rip { .. })
                | (ExtSpec::BgpAnnounce { .. }, ProtocolSpec::Bgp { .. })
                | (ExtSpec::BgpWithdraw { .. }, ProtocolSpec::Bgp { .. })
        )
    }
}

/// One timed external-event injection — the workload.
#[derive(Clone, Debug, PartialEq)]
pub struct Injection {
    /// Absolute injection time.
    pub at: SimTime,
    /// Receiving node.
    pub node: NodeId,
    /// The event.
    pub ev: ExtSpec,
}

/// One entry of the fault schedule.
#[derive(Clone, Debug, PartialEq)]
pub enum Fault {
    /// Crash a node (its death cut enters the partial recording).
    NodeDown {
        /// Crash time.
        at: SimTime,
        /// The node.
        node: NodeId,
    },
    /// Restart a crashed node with a fresh process. Recordable, but the
    /// pre-crash committed log is lost with the old process, so
    /// production ↔ replay equivalence is not guaranteed past a restart
    /// (see DESIGN.md §7); use for RB-side exploration.
    NodeUp {
        /// Restart time.
        at: SimTime,
        /// The node.
        node: NodeId,
    },
    /// Take a link down administratively.
    LinkDown {
        /// Failure time.
        at: SimTime,
        /// One endpoint.
        a: NodeId,
        /// Other endpoint.
        b: NodeId,
    },
    /// Bring a link back up.
    LinkUp {
        /// Recovery time.
        at: SimTime,
        /// One endpoint.
        a: NodeId,
        /// Other endpoint.
        b: NodeId,
    },
    /// `count` down/up cycles: down at `at + k*period`, up `down_for`
    /// later.
    LinkFlap {
        /// First outage time.
        at: SimTime,
        /// One endpoint.
        a: NodeId,
        /// Other endpoint.
        b: NodeId,
        /// Outage length.
        down_for: SimDuration,
        /// Cycle period (must exceed `down_for`).
        period: SimDuration,
        /// Number of cycles.
        count: u32,
    },
    /// Bisection partition: every link with exactly one endpoint in `side`
    /// goes down at `at`, and comes back at `heal` when given.
    ///
    /// The cut is computed from the static topology, so the heal re-raises
    /// *every* crossing link — including one another fault took down
    /// earlier. Schedule a permanent outage of a crossing link after the
    /// heal if it must persist.
    Partition {
        /// Cut time.
        at: SimTime,
        /// Heal time, if the partition heals.
        heal: Option<SimTime>,
        /// One side of the bisection.
        side: Vec<NodeId>,
    },
    /// Bernoulli message loss with probability `p` on the `a — b` link
    /// between `from` and `until` (committed losses replay exactly).
    LossWindow {
        /// Window start.
        from: SimTime,
        /// Window end.
        until: SimTime,
        /// One endpoint.
        a: NodeId,
        /// Other endpoint.
        b: NodeId,
        /// Per-packet loss probability.
        p: f64,
    },
}

/// What to report about the production outcome after a recorded run.
#[derive(Clone, Debug, PartialEq)]
pub enum Probe {
    /// Report nothing.
    None,
    /// RIP: `node`'s next hop towards `prefix`.
    RipRoute {
        /// Inspected node.
        node: NodeId,
        /// Destination prefix.
        prefix: u32,
    },
    /// BGP: the `route_id` `node` selected for `prefix`.
    BgpBest {
        /// Inspected node.
        node: NodeId,
        /// Destination prefix.
        prefix: u32,
    },
    /// OSPF: how many destinations `node` can reach.
    OspfReachable {
        /// Inspected node.
        node: NodeId,
    },
}

impl Probe {
    /// The node the probe inspects, if any.
    pub fn node(&self) -> Option<NodeId> {
        match *self {
            Probe::None => None,
            Probe::RipRoute { node, .. }
            | Probe::BgpBest { node, .. }
            | Probe::OspfReachable { node } => Some(node),
        }
    }
}
