//! A declarative scenario & fault-injection engine for DEFINED.
//!
//! The paper's workflow — instrument a production network with DEFINED-RB,
//! take a partial recording, replay it interactively under DEFINED-LS — is
//! only as useful as the misbehaviours you can reproduce. This crate turns
//! that workflow into a function of *data*: a [`Scenario`] is a composable
//! description of
//!
//! * **topology** ([`TopologySpec`]) — the paper's Fig. 4/5 case-study
//!   graphs, canonical shapes, Rocketfuel-like ISP maps, BRITE generators;
//! * **protocol** ([`ProtocolSpec`]) — RIP, OSPF, or BGP with their bug
//!   toggles;
//! * **workload** ([`Injection`]) — timed external events, the only inputs
//!   DEFINED records;
//! * **fault schedule** ([`Fault`]) — node crash/restart, link down/up and
//!   flap sequences, bisection partitions with heals, Bernoulli
//!   message-loss windows;
//! * **probe** ([`Probe`]) — what to report about the production outcome.
//!
//! The engine compiles any such description onto
//! [`RbNetwork`](defined_core::RbNetwork) /
//! [`LockstepNet`](defined_core::LockstepNet), so *every* scenario gets the
//! full record → replay → interactive-debug cycle for free:
//! [`Scenario::record_run`] produces a serialised partial recording,
//! [`Scenario::replay_logs`] re-executes it in lockstep, and
//! [`Scenario::debug_transcript`] drives a scripted
//! [`DebugSession`](defined_core::session::DebugSession) over it. The
//! outcome probe also compiles into a *search predicate*:
//! [`Scenario::explore_run`] sweeps salted orderings on the parallel replay
//! farm for one that changes the outcome, and [`Scenario::bisect_run`]
//! localises the group — and the exact delivery — that established it.
//!
//! A [`registry()`] of named, ready-made scenarios ships with the crate, and
//! the [`scn`] module parses a line-oriented `.scn` text format so
//! scenarios can also live in files:
//!
//! ```text
//! name ring-loss
//! description OSPF ring with a loss window
//! topology ring 5 4ms
//! protocol ospf
//! seed 3
//! jitter 0.5
//! duration 6s
//! fault 1500ms loss 1 2 0.5 until 3s
//! probe ospf-reachable 0
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod engine;
pub mod registry;
pub mod scn;
pub mod spec;

pub use engine::{BisectSummary, ExploreReport, RecordedRun, VerifyReport};
pub use registry::{bgp_fig4_processes, find, ospf_processes, registry, rip_processes};
pub use spec::{ExtSpec, Fault, Injection, Probe, ProtocolSpec, TopologySpec};

use defined_core::config::CapturePolicy;
use netsim::SimDuration;

/// A complete, runnable scenario description.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Registry / CLI name (kebab-case).
    pub name: String,
    /// One-line human description.
    pub description: String,
    /// The network graph.
    pub topology: TopologySpec,
    /// The control plane every node runs.
    pub protocol: ProtocolSpec,
    /// Network-nondeterminism seed (link jitter and loss draws). Sweepable:
    /// the committed execution must not depend on it.
    pub seed: u64,
    /// Uniform per-packet jitter as a fraction of each link's base delay.
    pub jitter_frac: f64,
    /// How long the production run lasts.
    pub duration: SimDuration,
    /// Timed external-event injections.
    pub workload: Vec<Injection>,
    /// The fault schedule.
    pub faults: Vec<Fault>,
    /// Outcome probe evaluated after the production run.
    pub probe: Probe,
    /// Checkpoint-capture policy for every run of this scenario (fixed
    /// interval or churn-adaptive). Like `seed`, sweepable: the committed
    /// execution must not depend on it.
    pub capture: CapturePolicy,
}

impl Scenario {
    /// Returns the scenario with its run seed replaced — the CLI's
    /// `--seed` override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the scenario with its checkpoint-capture policy replaced —
    /// the CLI's `--ckpt-interval` override.
    pub fn with_capture(mut self, capture: CapturePolicy) -> Self {
        self.capture = capture;
        self
    }

    /// Whether the fault schedule restarts a node. Restarts lose the
    /// pre-crash committed log, so production ↔ replay equivalence is not
    /// guaranteed past one (DESIGN.md §7); repeated *debug* runs of one
    /// recording remain deterministic regardless.
    pub fn has_restart(&self) -> bool {
        self.faults.iter().any(|f| matches!(f, Fault::NodeUp { .. }))
    }
}

/// Why a scenario was rejected or failed to run.
#[derive(Debug)]
pub enum ScenarioError {
    /// The description is inconsistent (bad node id, protocol/topology
    /// mismatch, malformed fault, …).
    Invalid(String),
    /// A `.scn` line failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// The recording bytes do not decode under this scenario's protocol.
    BadRecording,
    /// An on-disk recording store failed to open, verify, or write — the
    /// inner error names the offset and the kind of corruption or I/O
    /// failure (DESIGN.md §12).
    Store(defined_store::StoreError),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Invalid(msg) => write!(f, "invalid scenario: {msg}"),
            ScenarioError::Parse { line, msg } => write!(f, "scn parse error (line {line}): {msg}"),
            ScenarioError::BadRecording => write!(f, "recording does not match the scenario"),
            ScenarioError::Store(e) => write!(f, "recording store: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<defined_store::StoreError> for ScenarioError {
    fn from(e: defined_store::StoreError) -> Self {
        ScenarioError::Store(e)
    }
}
