//! Fuzz the `.scn` parser: arbitrary input must come back as `Err` (or a
//! valid `Scenario`), never as a panic, an overflow, or a giant allocation.
//!
//! Three generators attack from different angles: raw bytes (encoding and
//! tokenisation edges), token soup assembled from real directive vocabulary
//! plus hostile numbers (the parse paths that *almost* succeed and then hit
//! numeric conversion, time arithmetic, or the topology generators), and
//! mutations of a known-good scenario (deep paths with one field poisoned).

use proptest::collection::vec;
use proptest::prelude::*;
use scenario::scn;

/// A vocabulary of real directive tokens and hostile fillers. The numeric
/// extremes aim at the classes of bug this suite has caught: `u64` second
/// values that overflow nanosecond conversion, node counts that would
/// allocate gigabytes or overflow `rows * cols`, NaN/infinite floats, and
/// `ba`/`waxman` parameters that violate generator preconditions.
fn token() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("name"),
        Just("description"),
        Just("topology"),
        Just("protocol"),
        Just("seed"),
        Just("jitter"),
        Just("duration"),
        Just("inject"),
        Just("fault"),
        Just("probe"),
        Just("line"),
        Just("ring"),
        Just("grid"),
        Just("star"),
        Just("full-mesh"),
        Just("waxman"),
        Just("ba"),
        Just("rocketfuel"),
        Just("sprintlink"),
        Just("ospf"),
        Just("rip"),
        Just("bgp"),
        Just("destination-only"),
        Just("buggy-incremental"),
        Just("node-down"),
        Just("node-up"),
        Just("link-down"),
        Just("flap"),
        Just("partition"),
        Just("heal"),
        Just("loss"),
        Just("until"),
        Just("rip-connect"),
        Just("bgp-announce"),
        Just("ospf-reachable"),
        Just("rip-route"),
        Just("0"),
        Just("1"),
        Just("2"),
        Just("5"),
        Just("-1"),
        Just("18446744073709551615"),
        Just("18446744073709551615s"),
        Just("99999999999999999999"),
        Just("4294967295"),
        Just("1000000000"),
        Just("250ms"),
        Just("3s"),
        Just("0ns"),
        Just("1h"),
        Just("ms"),
        Just("nan"),
        Just("NaN"),
        Just("inf"),
        Just("-inf"),
        Just("1e308"),
        Just("0.5"),
        Just("#"),
        Just(""),
    ]
}

fn token_line() -> impl Strategy<Value = String> {
    vec(token(), 0..9).prop_map(|ts| ts.join(" "))
}

/// A valid scenario skeleton with one token swapped for a hostile one.
fn mutated_good() -> impl Strategy<Value = String> {
    const GOOD: &str = "name x\ntopology ring 5 4ms\nprotocol ospf\nseed 3\njitter 0.5\n\
                        duration 6s\nfault 1s link-down 0 1\nprobe ospf-reachable 0\n";
    (0usize..40, token()).prop_map(|(pos, evil)| {
        let mut words: Vec<String> = GOOD
            .lines()
            .map(|l| l.split(' ').collect::<Vec<_>>().join(" "))
            .collect::<Vec<_>>()
            .join("\n")
            .split(' ')
            .map(str::to_string)
            .collect();
        let slot = pos % words.len();
        words[slot] = evil.to_string();
        words.join(" ")
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn arbitrary_bytes_never_panic(bytes in vec(any::<u8>(), 0..400)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = scn::parse(&text);
    }

    #[test]
    fn token_soup_never_panics(lines in vec(token_line(), 0..10)) {
        let _ = scn::parse(&lines.join("\n"));
    }

    #[test]
    fn mutated_scenarios_never_panic(text in mutated_good()) {
        let _ = scn::parse(&text);
    }
}

/// Directed regressions for the classes of bug the fuzzers shook out; kept
/// explicit so they fail readably if reintroduced.
#[test]
fn parser_rejects_or_saturates_hostile_inputs_without_panicking() {
    let cases = [
        // u64::MAX seconds used to overflow the ns conversion in debug;
        // saturated, the fault now lands (far) after the run and is
        // rejected by validation instead.
        "name x\ntopology ring 5 4ms\nprotocol ospf\nduration 6s\nfault 18446744073709551615s link-down 0 1\n",
        // Giant node counts used to reach the generators and allocate.
        "name x\ntopology ring 4294967295 1ms\nprotocol ospf\nduration 2s\n",
        "name x\ntopology full-mesh 100000 1ms\nprotocol ospf\nduration 2s\n",
        // rows*cols used to overflow in debug builds.
        "name x\ntopology grid 4294967295 4294967295 1ms\nprotocol ospf\nduration 2s\n",
        // waxman/ba preconditions used to be enforced by generator panics.
        "name x\ntopology waxman 1 0.25 0.2 7\nprotocol ospf\nduration 2s\n",
        "name x\ntopology waxman 5 nan 0.2 7\nprotocol ospf\nduration 2s\n",
        "name x\ntopology waxman 5 0.25 inf 7\nprotocol ospf\nduration 2s\n",
        "name x\ntopology ba 2 5 7\nprotocol ospf\nduration 2s\n",
        "name x\ntopology ba 0 0 7\nprotocol ospf\nduration 2s\n",
        // NaN jitter must fail the range check, not sail through.
        "name x\ntopology ring 5 4ms\nprotocol ospf\nduration 2s\njitter nan\n",
    ];
    for text in cases {
        assert!(scn::parse(text).is_err(), "hostile input accepted:\n{text}");
    }
    // Overflowing durations saturate into (absurdly) long but *valid* runs
    // — the time constructors clamp instead of panicking in debug builds.
    for long in [
        "name x\ntopology ring 5 4ms\nprotocol ospf\nduration 1000000s\n",
        "name x\ntopology ring 5 4ms\nprotocol ospf\nduration 18446744073709551615s\n",
    ] {
        assert!(scn::parse(long).is_ok(), "saturating duration rejected:\n{long}");
    }
}
