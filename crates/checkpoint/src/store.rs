//! The checkpoint store: ordered snapshots with rollback truncation and
//! commit-horizon garbage collection, backed by a content-addressed page
//! pool so storage grows with *state that changed*, not with checkpoints.

use crate::pages::PageImage;
use crate::pool::PagePool;
use crate::Snapshotable;
use defined_obs as obs;
use std::collections::VecDeque;

/// Identifier of one checkpoint; strictly increasing per [`Checkpointer`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CheckpointId(pub u64);

/// Snapshot storage strategy (paper §3 / §5.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Deep-clone the state object (fast functional baseline).
    CloneState,
    /// FK: store the full encoded image per checkpoint.
    Fork,
    /// MI: store a page-granular diff against the previous checkpoint.
    MemIntercept,
}

enum Stored<S> {
    Clone(S),
    Full(Vec<u8>),
    Paged(PageImage),
}

/// Memory and activity statistics for a [`Checkpointer`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Checkpoints currently retained.
    pub retained: usize,
    /// Checkpoints ever taken.
    pub taken: u64,
    /// Restores ever performed.
    pub restores: u64,
    /// Sum of full logical image sizes over retained checkpoints (the VM
    /// curve of Fig. 7c). Zero for `CloneState`.
    pub virtual_bytes: usize,
    /// Unique materialised bytes over retained checkpoints (the PM curve):
    /// full images for `Fork` plus the page pool's distinct live pages for
    /// `MemIntercept`. Maintained incrementally — O(1) to read.
    pub physical_bytes: usize,
    /// Dirty pages (changed vs. the previous image) of the most recent
    /// checkpoint (MI only).
    pub last_dirty_pages: usize,
    /// Total dirty pages since creation (MI only).
    pub total_dirty_pages: u64,
    /// Of the most recent checkpoint's dirty pages, how many were new to
    /// the page pool and actually copied (MI only).
    pub last_fresh_pages: usize,
    /// Total bytes the store materialised since creation — what
    /// `ckpt.bytes_stored` records. Fork counts full images; MI counts only
    /// pool-fresh pages.
    pub fresh_bytes: u64,
    /// Page-pool lookups satisfied without copying (MI only).
    pub pool_hits: u64,
    /// Page-pool lookups that materialised a new page (MI only).
    pub pool_misses: u64,
    /// Bytes dedup avoided copying (MI only).
    pub bytes_deduped: u64,
    /// Logical size of the image parked between a rollback truncation and
    /// the next capture (MI only). Its pages stay resident — and counted in
    /// `physical_bytes` — so the post-rollback re-capture copies nothing.
    pub parked_bytes: usize,
}

/// Cap on spare encode buffers kept for reuse.
const SPARE_BUFS: usize = 8;

/// An ordered store of state checkpoints.
///
/// Supports the three operations DEFINED-RB needs: `checkpoint` before each
/// speculative delivery, `restore` + `truncate_from` on rollback, and
/// `release_before` when the commit horizon advances (§2.2: "an entry in the
/// history can be removed after all messages that might be ordered before it
/// have arrived").
///
/// Under [`Strategy::MemIntercept`] every page lives in a [`PagePool`]
/// shared by all of this store's images: identical content is stored once
/// across checkpoints and across rollback generations, and every eviction
/// path (thinning, truncation, the commit horizon) decrements refcounts
/// instead of dropping bytes. The restored-to image invalidated by
/// `truncate_from` is parked until the next capture completes, so a
/// post-rollback re-capture re-uses its pages instead of copying them back.
pub struct Checkpointer<S> {
    strategy: Strategy,
    entries: VecDeque<(CheckpointId, Stored<S>)>,
    pool: PagePool,
    /// The restored-to image invalidated by the latest `truncate_from`,
    /// kept alive until the next `checkpoint` so the forced post-rollback
    /// re-capture diffs against it (at most one element).
    graveyard: Vec<PageImage>,
    next: u64,
    taken: u64,
    restores: u64,
    last_dirty: usize,
    total_dirty: u64,
    last_fresh: usize,
    fresh_bytes: u64,
    /// Incrementally maintained so the hot path never scans entries.
    virtual_bytes: usize,
    /// Bytes held by `Stored::Full` entries (Fork's physical footprint).
    full_bytes: usize,
    encode_buf: Vec<u8>,
    spare_bufs: Vec<Vec<u8>>,
}

impl<S> Stored<S> {
    fn logical_len(&self) -> usize {
        match self {
            Stored::Clone(_) => 0,
            Stored::Full(b) => b.len(),
            Stored::Paged(img) => img.len(),
        }
    }
}

impl<S: Snapshotable> Checkpointer<S> {
    /// Creates an empty store with the given strategy.
    pub fn new(strategy: Strategy) -> Self {
        Checkpointer {
            strategy,
            entries: VecDeque::new(),
            pool: PagePool::new(),
            graveyard: Vec::new(),
            next: 0,
            taken: 0,
            restores: 0,
            last_dirty: 0,
            total_dirty: 0,
            last_fresh: 0,
            fresh_bytes: 0,
            virtual_bytes: 0,
            full_bytes: 0,
            encode_buf: Vec::new(),
            spare_bufs: Vec::new(),
        }
    }

    /// The configured strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Records a checkpoint of `state`, returning its id.
    pub fn checkpoint(&mut self, state: &S) -> CheckpointId {
        let _span = obs::span!("ckpt.capture");
        let id = CheckpointId(self.next);
        self.next += 1;
        self.taken += 1;
        let mut stored_fresh = 0usize;
        let stored = match self.strategy {
            Strategy::CloneState => Stored::Clone(state.clone()),
            Strategy::Fork => {
                let mut buf = self.spare_bufs.pop().unwrap_or_default();
                buf.clear();
                state.encode(&mut buf);
                stored_fresh = buf.len();
                self.full_bytes += buf.len();
                Stored::Full(buf)
            }
            Strategy::MemIntercept => {
                self.encode_buf.clear();
                state.encode(&mut self.encode_buf);
                let before = self.pool.stats();
                // Diff base: the newest live paged image, or — right after a
                // rollback truncation — the parked image of the checkpoint
                // we restored to, whose pages this re-capture can re-use
                // wholesale.
                let prev = self.graveyard.last().or_else(|| {
                    self.entries.iter().rev().find_map(|(_, s)| match s {
                        Stored::Paged(img) => Some(img),
                        _ => None,
                    })
                });
                let (img, cost) = match prev {
                    Some(p) => PageImage::diff_from(&mut self.pool, p, &self.encode_buf),
                    None => PageImage::from_bytes(&mut self.pool, &self.encode_buf),
                };
                for dead in self.graveyard.drain(..) {
                    dead.release(&mut self.pool);
                }
                let after = self.pool.stats();
                self.last_dirty = cost.dirty_pages;
                self.total_dirty += cost.dirty_pages as u64;
                self.last_fresh = cost.fresh_pages;
                stored_fresh = cost.fresh_bytes;
                obs::counter!("ckpt.pages_dirty").add(cost.dirty_pages as u64);
                obs::counter!("ckpt.pages_total").add(img.page_count() as u64);
                obs::counter!("ckpt.pool.hits").add(after.hits - before.hits);
                obs::counter!("ckpt.pool.misses").add(after.misses - before.misses);
                obs::counter!("ckpt.pool.bytes_deduped")
                    .add(after.bytes_deduped - before.bytes_deduped);
                Stored::Paged(img)
            }
        };
        self.fresh_bytes += stored_fresh as u64;
        obs::counter!("ckpt.captures").add(1);
        obs::counter!("ckpt.bytes_stored").add(stored_fresh as u64);
        self.virtual_bytes += stored.logical_len();
        self.entries.push_back((id, stored));
        id
    }

    /// Reconstructs the state recorded under `id`.
    pub fn restore(&mut self, id: CheckpointId) -> Option<S> {
        let _span = obs::span!("ckpt.restore");
        obs::counter!("ckpt.restores").add(1);
        self.restores += 1;
        // Ids are pushed in increasing order; binary-search the deque.
        let slice = self.entries.make_contiguous();
        let pos = slice.partition_point(|(i, _)| *i < id);
        let (found, stored) = slice.get(pos)?;
        if *found != id {
            return None;
        }
        match stored {
            Stored::Clone(s) => Some(s.clone()),
            Stored::Full(bytes) => S::decode(bytes),
            Stored::Paged(img) => {
                let mut buf = self.spare_bufs.pop().unwrap_or_default();
                img.write_bytes(&mut buf);
                let out = S::decode(&buf);
                self.put_spare(buf);
                out
            }
        }
    }

    /// Returns a stored entry's backing bytes to the reuse pools.
    fn dispose(&mut self, stored: Stored<S>, park: bool) {
        match stored {
            Stored::Clone(_) => {}
            Stored::Full(b) => {
                self.full_bytes -= b.len();
                self.put_spare(b);
            }
            Stored::Paged(img) => {
                if park {
                    self.graveyard.push(img);
                } else {
                    img.release(&mut self.pool);
                }
            }
        }
    }

    fn put_spare(&mut self, buf: Vec<u8>) {
        if self.spare_bufs.len() < SPARE_BUFS {
            self.spare_bufs.push(buf);
        }
    }

    /// Discards exactly the checkpoint `id`, wherever it sits in the order
    /// (retention thinning). A no-op for unknown ids. Images reference the
    /// shared page pool, so removing an interior checkpoint drops only the
    /// refcounts it held: neighbours stay restorable and pages they still
    /// reference stay resident.
    pub fn remove(&mut self, id: CheckpointId) {
        let slice = self.entries.make_contiguous();
        let pos = slice.partition_point(|(i, _)| *i < id);
        if slice.get(pos).map(|(i, _)| *i == id).unwrap_or(false) {
            let (_, stored) = self.entries.remove(pos).expect("checked");
            obs::counter!("ckpt.evictions").add(1);
            obs::counter!("ckpt.evicted_bytes").add(stored.logical_len() as u64);
            self.virtual_bytes -= stored.logical_len();
            self.dispose(stored, false);
        }
    }

    /// Discards checkpoints at or after `id` (rollback invalidates them).
    ///
    /// The invalidated paged images are parked until the next `checkpoint`
    /// call so the post-rollback re-capture shares their pages instead of
    /// copying the restored state afresh.
    pub fn truncate_from(&mut self, id: CheckpointId) {
        // At most one parked image at a time.
        for dead in std::mem::take(&mut self.graveyard) {
            dead.release(&mut self.pool);
        }
        while self.entries.back().map(|(i, _)| *i >= id).unwrap_or(false) {
            let (popped, stored) = self.entries.pop_back().expect("checked");
            self.virtual_bytes -= stored.logical_len();
            // Only the restored-to image (`id` itself, popped last) is a
            // useful diff base for the forced re-capture; newer invalidated
            // images release their page refs immediately.
            self.dispose(stored, popped == id);
        }
    }

    /// Releases checkpoints strictly before `id` (the commit horizon).
    pub fn release_before(&mut self, id: CheckpointId) {
        while self.entries.front().map(|(i, _)| *i < id).unwrap_or(false) {
            let (_, stored) = self.entries.pop_front().expect("checked");
            self.virtual_bytes -= stored.logical_len();
            self.dispose(stored, false);
        }
    }

    /// Id of the most recent retained checkpoint.
    pub fn latest(&self) -> Option<CheckpointId> {
        self.entries.back().map(|(i, _)| *i)
    }

    /// Number of retained checkpoints.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Distinct live pages and their bytes in the shared page pool.
    pub fn pool_stats(&self) -> crate::pool::PoolStats {
        self.pool.stats()
    }

    /// O(1) statistics. `physical_bytes` counts `Fork` full images plus the
    /// page pool's distinct live pages (including, transiently, images
    /// parked between a rollback truncation and the next capture).
    pub fn stats_fast(&self) -> MemStats {
        let pool = self.pool.stats();
        MemStats {
            retained: self.entries.len(),
            taken: self.taken,
            restores: self.restores,
            virtual_bytes: self.virtual_bytes,
            physical_bytes: self.full_bytes + pool.resident_bytes,
            last_dirty_pages: self.last_dirty,
            total_dirty_pages: self.total_dirty,
            last_fresh_pages: self.last_fresh,
            fresh_bytes: self.fresh_bytes,
            pool_hits: pool.hits,
            pool_misses: pool.misses,
            bytes_deduped: pool.bytes_deduped,
            parked_bytes: self.graveyard.iter().map(|img| img.len()).sum(),
        }
    }

    /// Full memory statistics. Physical bytes are maintained incrementally
    /// by the pool, so this is O(1) and identical to
    /// [`Checkpointer::stats_fast`] (kept for API stability).
    pub fn stats(&self) -> MemStats {
        self.stats_fast()
    }
}

impl<S> Drop for Checkpointer<S> {
    fn drop(&mut self) {
        // Release image refs so pool bookkeeping stays consistent even if a
        // debug assertion inspects the pool mid-drop. (The pool itself is
        // dropped right after, so this is belt-and-braces.)
        for dead in std::mem::take(&mut self.graveyard) {
            dead.release(&mut self.pool);
        }
        for (_, stored) in std::mem::take(&mut self.entries) {
            if let Stored::Paged(img) = stored {
                img.release(&mut self.pool);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pages::PAGE_SIZE;

    /// A large state with localised mutation, mimicking a routing table.
    #[derive(Clone, Debug, PartialEq)]
    struct Table {
        cells: Vec<u64>,
    }

    impl Table {
        fn new(n: usize) -> Self {
            Table { cells: (0..n as u64).collect() }
        }
        fn poke(&mut self, i: usize, v: u64) {
            self.cells[i] = v;
        }
    }

    impl Snapshotable for Table {
        fn encode(&self, buf: &mut Vec<u8>) {
            buf.extend_from_slice(&(self.cells.len() as u64).to_le_bytes());
            for c in &self.cells {
                buf.extend_from_slice(&c.to_le_bytes());
            }
        }
        fn decode(bytes: &[u8]) -> Option<Self> {
            let n = u64::from_le_bytes(bytes.get(..8)?.try_into().ok()?) as usize;
            let mut cells = Vec::with_capacity(n);
            for i in 0..n {
                let off = 8 + i * 8;
                cells.push(u64::from_le_bytes(bytes.get(off..off + 8)?.try_into().ok()?));
            }
            Some(Table { cells })
        }
    }

    fn round_trip(strategy: Strategy) {
        let mut cp = Checkpointer::new(strategy);
        let mut t = Table::new(10_000);
        let a = cp.checkpoint(&t);
        t.poke(5, 99);
        let b = cp.checkpoint(&t);
        assert_eq!(cp.restore(a).unwrap().cells[5], 5);
        assert_eq!(cp.restore(b).unwrap().cells[5], 99);
        assert_eq!(cp.len(), 2);
    }

    #[test]
    fn clone_round_trip() {
        round_trip(Strategy::CloneState);
    }

    #[test]
    fn fork_round_trip() {
        round_trip(Strategy::Fork);
    }

    #[test]
    fn mem_intercept_round_trip() {
        round_trip(Strategy::MemIntercept);
    }

    #[test]
    fn mi_physical_much_smaller_than_virtual() {
        let mut cp = Checkpointer::new(Strategy::MemIntercept);
        let mut t = Table::new(100_000); // ~800 KiB state
        for i in 0..50 {
            t.poke(i, i as u64 + 1_000_000);
            cp.checkpoint(&t);
        }
        let s = cp.stats();
        assert_eq!(s.retained, 50);
        assert!(s.virtual_bytes > 50 * 700_000);
        // All pokes land in the low pages; physical must be near one image.
        assert!(
            (s.physical_bytes as f64) < (s.virtual_bytes as f64) * 0.05,
            "physical {} vs virtual {}",
            s.physical_bytes,
            s.virtual_bytes
        );
        // The paper reports < 2% inflation over the base process size.
        let base = 100_000 * 8 + 8;
        let inflation = s.physical_bytes as f64 / base as f64 - 1.0;
        assert!(inflation < 0.30, "inflation {inflation}");
    }

    #[test]
    fn fork_physical_equals_virtual() {
        let mut cp = Checkpointer::new(Strategy::Fork);
        let t = Table::new(10_000);
        for _ in 0..10 {
            cp.checkpoint(&t);
        }
        let s = cp.stats();
        assert_eq!(s.physical_bytes, s.virtual_bytes);
        assert!(s.virtual_bytes >= 10 * 80_000);
    }

    #[test]
    fn truncate_discards_rollback_targets() {
        let mut cp = Checkpointer::new(Strategy::CloneState);
        let t = Table::new(10);
        let a = cp.checkpoint(&t);
        let b = cp.checkpoint(&t);
        let c = cp.checkpoint(&t);
        cp.truncate_from(b);
        assert_eq!(cp.len(), 1);
        assert_eq!(cp.latest(), Some(a));
        assert!(cp.restore(b).is_none());
        assert!(cp.restore(c).is_none());
    }

    #[test]
    fn remove_discards_only_the_target() {
        for strategy in [Strategy::CloneState, Strategy::Fork, Strategy::MemIntercept] {
            let mut cp = Checkpointer::new(strategy);
            let mut t = Table::new(1000);
            let a = cp.checkpoint(&t);
            t.poke(3, 30);
            let b = cp.checkpoint(&t);
            t.poke(3, 99);
            let c = cp.checkpoint(&t);
            cp.remove(b);
            assert_eq!(cp.len(), 2);
            assert!(cp.restore(b).is_none());
            // Neighbours stay restorable: their pool refs are independent.
            assert_eq!(cp.restore(a).unwrap().cells[3], 3);
            assert_eq!(cp.restore(c).unwrap().cells[3], 99);
            cp.remove(b); // Unknown id: a no-op.
            assert_eq!(cp.len(), 2);
        }
    }

    #[test]
    fn release_advances_horizon() {
        let mut cp = Checkpointer::new(Strategy::Fork);
        let t = Table::new(10);
        let a = cp.checkpoint(&t);
        let b = cp.checkpoint(&t);
        cp.release_before(b);
        assert_eq!(cp.len(), 1);
        assert!(cp.restore(a).is_none());
        assert!(cp.restore(b).is_some());
    }

    #[test]
    fn mi_dirty_counting() {
        let mut cp = Checkpointer::new(Strategy::MemIntercept);
        let mut t = Table::new(10_000);
        cp.checkpoint(&t);
        let first_dirty = cp.stats().last_dirty_pages;
        assert_eq!(first_dirty, (10_000usize * 8 + 8).div_ceil(PAGE_SIZE));
        t.poke(0, 42);
        cp.checkpoint(&t);
        assert_eq!(cp.stats().last_dirty_pages, 1);
        assert!(cp.stats().total_dirty_pages > first_dirty as u64);
    }

    #[test]
    fn recapture_after_truncation_reuses_parked_pages() {
        let mut cp = Checkpointer::new(Strategy::MemIntercept);
        let mut t = Table::new(50_000);
        let a = cp.checkpoint(&t);
        t.poke(7, 1);
        cp.checkpoint(&t);
        t.poke(7, 2);
        cp.checkpoint(&t);
        // Roll all the way back: every image is invalidated…
        let restored = cp.restore(a).unwrap();
        cp.truncate_from(a);
        assert!(cp.is_empty());
        // …but re-capturing the restored state copies nothing: the parked
        // images still hold every page.
        let before = cp.stats().fresh_bytes;
        let b = cp.checkpoint(&restored);
        let s = cp.stats();
        assert_eq!(s.fresh_bytes, before, "re-capture materialised no bytes");
        assert_eq!(s.last_fresh_pages, 0);
        assert_eq!(cp.restore(b).unwrap(), restored);
    }

    #[test]
    fn fresh_bytes_track_what_is_materialised() {
        let mut cp = Checkpointer::new(Strategy::MemIntercept);
        let mut t = Table::new(10_000);
        cp.checkpoint(&t);
        let full = cp.stats().fresh_bytes;
        assert_eq!(full, (10_000 * 8 + 8) as u64, "first capture is all fresh");
        // An unchanged re-capture materialises nothing.
        cp.checkpoint(&t);
        assert_eq!(cp.stats().fresh_bytes, full);
        // A one-page change materialises at most one page.
        t.poke(0, 42);
        cp.checkpoint(&t);
        let delta = cp.stats().fresh_bytes - full;
        assert!(delta <= PAGE_SIZE as u64, "delta {delta}");
        assert!(cp.stats().bytes_deduped > 0);
    }

    #[test]
    fn pool_empties_when_all_checkpoints_are_released() {
        let mut cp = Checkpointer::new(Strategy::MemIntercept);
        let mut t = Table::new(10_000);
        for i in 0..10 {
            t.poke(i, 99 + i as u64);
            cp.checkpoint(&t);
        }
        cp.release_before(CheckpointId(u64::MAX));
        assert!(cp.is_empty());
        let pool = cp.pool_stats();
        assert_eq!(pool.live_pages, 0, "no leaked refcounts");
        assert_eq!(pool.resident_bytes, 0);
        assert_eq!(cp.stats().physical_bytes, 0);
    }

    #[test]
    fn empty_store_behaviour() {
        let mut cp: Checkpointer<Table> = Checkpointer::new(Strategy::Fork);
        assert!(cp.is_empty());
        assert_eq!(cp.latest(), None);
        assert!(cp.restore(CheckpointId(0)).is_none());
        cp.truncate_from(CheckpointId(0));
        cp.release_before(CheckpointId(5));
        assert_eq!(cp.stats().retained, 0);
    }

    #[test]
    fn stats_count_activity() {
        let mut cp = Checkpointer::new(Strategy::CloneState);
        let t = Table::new(5);
        let a = cp.checkpoint(&t);
        cp.checkpoint(&t);
        cp.restore(a);
        let s = cp.stats();
        assert_eq!(s.taken, 2);
        assert_eq!(s.restores, 1);
        assert_eq!(s.retained, 2);
    }
}
