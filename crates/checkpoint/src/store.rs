//! The checkpoint store: ordered snapshots with rollback truncation and
//! commit-horizon garbage collection.

use crate::pages::PageImage;
use crate::Snapshotable;
use defined_obs as obs;
use std::collections::HashMap;
use std::collections::VecDeque;

/// Identifier of one checkpoint; strictly increasing per [`Checkpointer`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CheckpointId(pub u64);

/// Snapshot storage strategy (paper §3 / §5.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Deep-clone the state object (fast functional baseline).
    CloneState,
    /// FK: store the full encoded image per checkpoint.
    Fork,
    /// MI: store a page-granular diff against the previous checkpoint.
    MemIntercept,
}

enum Stored<S> {
    Clone(S),
    Full(Vec<u8>),
    Paged(PageImage),
}

/// Memory and activity statistics for a [`Checkpointer`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Checkpoints currently retained.
    pub retained: usize,
    /// Checkpoints ever taken.
    pub taken: u64,
    /// Restores ever performed.
    pub restores: u64,
    /// Sum of full logical image sizes over retained checkpoints (the VM
    /// curve of Fig. 7c). Zero for `CloneState`.
    pub virtual_bytes: usize,
    /// Unique materialised bytes over retained checkpoints (the PM curve).
    /// Equals `virtual_bytes` for `Fork`; much smaller for `MemIntercept`.
    pub physical_bytes: usize,
    /// Dirty pages copied by the most recent checkpoint (MI only).
    pub last_dirty_pages: usize,
    /// Total dirty pages copied since creation (MI only).
    pub total_dirty_pages: u64,
}

/// An ordered store of state checkpoints.
///
/// Supports the three operations DEFINED-RB needs: `checkpoint` before each
/// speculative delivery, `restore` + `truncate_from` on rollback, and
/// `release_before` when the commit horizon advances (§2.2: "an entry in the
/// history can be removed after all messages that might be ordered before it
/// have arrived").
pub struct Checkpointer<S> {
    strategy: Strategy,
    entries: VecDeque<(CheckpointId, Stored<S>)>,
    next: u64,
    taken: u64,
    restores: u64,
    last_dirty: usize,
    total_dirty: u64,
    /// Incrementally maintained so the hot path never scans entries.
    virtual_bytes: usize,
    encode_buf: Vec<u8>,
}

impl<S> Stored<S> {
    fn logical_len(&self) -> usize {
        match self {
            Stored::Clone(_) => 0,
            Stored::Full(b) => b.len(),
            Stored::Paged(img) => img.len(),
        }
    }
}

impl<S: Snapshotable> Checkpointer<S> {
    /// Creates an empty store with the given strategy.
    pub fn new(strategy: Strategy) -> Self {
        Checkpointer {
            strategy,
            entries: VecDeque::new(),
            next: 0,
            taken: 0,
            restores: 0,
            last_dirty: 0,
            total_dirty: 0,
            virtual_bytes: 0,
            encode_buf: Vec::new(),
        }
    }

    /// The configured strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Records a checkpoint of `state`, returning its id.
    pub fn checkpoint(&mut self, state: &S) -> CheckpointId {
        let _span = obs::span!("ckpt.capture");
        let id = CheckpointId(self.next);
        self.next += 1;
        self.taken += 1;
        let stored = match self.strategy {
            Strategy::CloneState => Stored::Clone(state.clone()),
            Strategy::Fork => {
                let mut buf = Vec::new();
                state.encode(&mut buf);
                Stored::Full(buf)
            }
            Strategy::MemIntercept => {
                self.encode_buf.clear();
                state.encode(&mut self.encode_buf);
                let prev = self.entries.iter().rev().find_map(|(_, s)| match s {
                    Stored::Paged(img) => Some(img),
                    _ => None,
                });
                let (img, dirty) = match prev {
                    Some(p) => PageImage::diff_from(p, &self.encode_buf),
                    None => {
                        let img = PageImage::from_bytes(&self.encode_buf);
                        let pages = img.page_count();
                        (img, pages)
                    }
                };
                self.last_dirty = dirty;
                self.total_dirty += dirty as u64;
                obs::counter!("ckpt.pages_dirty").add(dirty as u64);
                obs::counter!("ckpt.pages_total").add(img.page_count() as u64);
                Stored::Paged(img)
            }
        };
        obs::counter!("ckpt.captures").add(1);
        obs::counter!("ckpt.bytes_stored").add(stored.logical_len() as u64);
        self.virtual_bytes += stored.logical_len();
        self.entries.push_back((id, stored));
        id
    }

    /// Reconstructs the state recorded under `id`.
    pub fn restore(&mut self, id: CheckpointId) -> Option<S> {
        let _span = obs::span!("ckpt.restore");
        obs::counter!("ckpt.restores").add(1);
        self.restores += 1;
        // Ids are pushed in increasing order; binary-search the deque.
        let slice = self.entries.make_contiguous();
        let pos = slice.partition_point(|(i, _)| *i < id);
        let (found, stored) = slice.get(pos)?;
        if *found != id {
            return None;
        }
        match stored {
            Stored::Clone(s) => Some(s.clone()),
            Stored::Full(bytes) => S::decode(bytes),
            Stored::Paged(img) => S::decode(&img.to_bytes()),
        }
    }

    /// Discards exactly the checkpoint `id`, wherever it sits in the order
    /// (retention thinning). A no-op for unknown ids. Page-diff images are
    /// self-contained, so removing an interior checkpoint never invalidates
    /// its neighbours.
    pub fn remove(&mut self, id: CheckpointId) {
        let slice = self.entries.make_contiguous();
        let pos = slice.partition_point(|(i, _)| *i < id);
        if slice.get(pos).map(|(i, _)| *i == id).unwrap_or(false) {
            let (_, stored) = self.entries.remove(pos).expect("checked");
            obs::counter!("ckpt.evictions").add(1);
            obs::counter!("ckpt.evicted_bytes").add(stored.logical_len() as u64);
            self.virtual_bytes -= stored.logical_len();
        }
    }

    /// Discards checkpoints at or after `id` (rollback invalidates them).
    pub fn truncate_from(&mut self, id: CheckpointId) {
        while self.entries.back().map(|(i, _)| *i >= id).unwrap_or(false) {
            let (_, stored) = self.entries.pop_back().expect("checked");
            self.virtual_bytes -= stored.logical_len();
        }
    }

    /// Releases checkpoints strictly before `id` (the commit horizon).
    pub fn release_before(&mut self, id: CheckpointId) {
        while self.entries.front().map(|(i, _)| *i < id).unwrap_or(false) {
            let (_, stored) = self.entries.pop_front().expect("checked");
            self.virtual_bytes -= stored.logical_len();
        }
    }

    /// Id of the most recent retained checkpoint.
    pub fn latest(&self) -> Option<CheckpointId> {
        self.entries.back().map(|(i, _)| *i)
    }

    /// Number of retained checkpoints.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// O(1) statistics for hot paths; `physical_bytes` is left zero (it
    /// requires a page scan — use [`Checkpointer::stats`] when needed).
    pub fn stats_fast(&self) -> MemStats {
        MemStats {
            retained: self.entries.len(),
            taken: self.taken,
            restores: self.restores,
            virtual_bytes: self.virtual_bytes,
            physical_bytes: 0,
            last_dirty_pages: self.last_dirty,
            total_dirty_pages: self.total_dirty,
        }
    }

    /// Full memory statistics, including deduplicated physical bytes
    /// (scans every retained page — O(retained × pages)).
    pub fn stats(&self) -> MemStats {
        let mut unique: HashMap<usize, usize> = HashMap::new();
        let mut full_bytes = 0usize;
        for (_, stored) in &self.entries {
            match stored {
                Stored::Clone(_) => {}
                Stored::Full(b) => {
                    full_bytes += b.len();
                }
                Stored::Paged(img) => {
                    img.visit_pages(&mut |ptr, len| {
                        unique.insert(ptr, len);
                    });
                }
            }
        }
        MemStats {
            physical_bytes: full_bytes + unique.values().sum::<usize>(),
            ..self.stats_fast()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pages::PAGE_SIZE;

    /// A large state with localised mutation, mimicking a routing table.
    #[derive(Clone, Debug, PartialEq)]
    struct Table {
        cells: Vec<u64>,
    }

    impl Table {
        fn new(n: usize) -> Self {
            Table { cells: (0..n as u64).collect() }
        }
        fn poke(&mut self, i: usize, v: u64) {
            self.cells[i] = v;
        }
    }

    impl Snapshotable for Table {
        fn encode(&self, buf: &mut Vec<u8>) {
            buf.extend_from_slice(&(self.cells.len() as u64).to_le_bytes());
            for c in &self.cells {
                buf.extend_from_slice(&c.to_le_bytes());
            }
        }
        fn decode(bytes: &[u8]) -> Option<Self> {
            let n = u64::from_le_bytes(bytes.get(..8)?.try_into().ok()?) as usize;
            let mut cells = Vec::with_capacity(n);
            for i in 0..n {
                let off = 8 + i * 8;
                cells.push(u64::from_le_bytes(bytes.get(off..off + 8)?.try_into().ok()?));
            }
            Some(Table { cells })
        }
    }

    fn round_trip(strategy: Strategy) {
        let mut cp = Checkpointer::new(strategy);
        let mut t = Table::new(10_000);
        let a = cp.checkpoint(&t);
        t.poke(5, 99);
        let b = cp.checkpoint(&t);
        assert_eq!(cp.restore(a).unwrap().cells[5], 5);
        assert_eq!(cp.restore(b).unwrap().cells[5], 99);
        assert_eq!(cp.len(), 2);
    }

    #[test]
    fn clone_round_trip() {
        round_trip(Strategy::CloneState);
    }

    #[test]
    fn fork_round_trip() {
        round_trip(Strategy::Fork);
    }

    #[test]
    fn mem_intercept_round_trip() {
        round_trip(Strategy::MemIntercept);
    }

    #[test]
    fn mi_physical_much_smaller_than_virtual() {
        let mut cp = Checkpointer::new(Strategy::MemIntercept);
        let mut t = Table::new(100_000); // ~800 KiB state
        for i in 0..50 {
            t.poke(i, i as u64 + 1_000_000);
            cp.checkpoint(&t);
        }
        let s = cp.stats();
        assert_eq!(s.retained, 50);
        assert!(s.virtual_bytes > 50 * 700_000);
        // All pokes land in the low pages; physical must be near one image.
        assert!(
            (s.physical_bytes as f64) < (s.virtual_bytes as f64) * 0.05,
            "physical {} vs virtual {}",
            s.physical_bytes,
            s.virtual_bytes
        );
        // The paper reports < 2% inflation over the base process size.
        let base = 100_000 * 8 + 8;
        let inflation = s.physical_bytes as f64 / base as f64 - 1.0;
        assert!(inflation < 0.30, "inflation {inflation}");
    }

    #[test]
    fn fork_physical_equals_virtual() {
        let mut cp = Checkpointer::new(Strategy::Fork);
        let t = Table::new(10_000);
        for _ in 0..10 {
            cp.checkpoint(&t);
        }
        let s = cp.stats();
        assert_eq!(s.physical_bytes, s.virtual_bytes);
        assert!(s.virtual_bytes >= 10 * 80_000);
    }

    #[test]
    fn truncate_discards_rollback_targets() {
        let mut cp = Checkpointer::new(Strategy::CloneState);
        let t = Table::new(10);
        let a = cp.checkpoint(&t);
        let b = cp.checkpoint(&t);
        let c = cp.checkpoint(&t);
        cp.truncate_from(b);
        assert_eq!(cp.len(), 1);
        assert_eq!(cp.latest(), Some(a));
        assert!(cp.restore(b).is_none());
        assert!(cp.restore(c).is_none());
    }

    #[test]
    fn remove_discards_only_the_target() {
        for strategy in [Strategy::CloneState, Strategy::Fork, Strategy::MemIntercept] {
            let mut cp = Checkpointer::new(strategy);
            let mut t = Table::new(1000);
            let a = cp.checkpoint(&t);
            t.poke(3, 30);
            let b = cp.checkpoint(&t);
            t.poke(3, 99);
            let c = cp.checkpoint(&t);
            cp.remove(b);
            assert_eq!(cp.len(), 2);
            assert!(cp.restore(b).is_none());
            // Neighbours stay restorable: page-diff images are self-contained.
            assert_eq!(cp.restore(a).unwrap().cells[3], 3);
            assert_eq!(cp.restore(c).unwrap().cells[3], 99);
            cp.remove(b); // Unknown id: a no-op.
            assert_eq!(cp.len(), 2);
        }
    }

    #[test]
    fn release_advances_horizon() {
        let mut cp = Checkpointer::new(Strategy::Fork);
        let t = Table::new(10);
        let a = cp.checkpoint(&t);
        let b = cp.checkpoint(&t);
        cp.release_before(b);
        assert_eq!(cp.len(), 1);
        assert!(cp.restore(a).is_none());
        assert!(cp.restore(b).is_some());
    }

    #[test]
    fn mi_dirty_counting() {
        let mut cp = Checkpointer::new(Strategy::MemIntercept);
        let mut t = Table::new(10_000);
        cp.checkpoint(&t);
        let first_dirty = cp.stats().last_dirty_pages;
        assert_eq!(first_dirty, (10_000usize * 8 + 8).div_ceil(PAGE_SIZE));
        t.poke(0, 42);
        cp.checkpoint(&t);
        assert_eq!(cp.stats().last_dirty_pages, 1);
        assert!(cp.stats().total_dirty_pages > first_dirty as u64);
    }

    #[test]
    fn empty_store_behaviour() {
        let mut cp: Checkpointer<Table> = Checkpointer::new(Strategy::Fork);
        assert!(cp.is_empty());
        assert_eq!(cp.latest(), None);
        assert!(cp.restore(CheckpointId(0)).is_none());
        cp.truncate_from(CheckpointId(0));
        cp.release_before(CheckpointId(5));
        assert_eq!(cp.stats().retained, 0);
    }

    #[test]
    fn stats_count_activity() {
        let mut cp = Checkpointer::new(Strategy::CloneState);
        let t = Table::new(5);
        let a = cp.checkpoint(&t);
        cp.checkpoint(&t);
        cp.restore(a);
        let s = cp.stats();
        assert_eq!(s.taken, 2);
        assert_eq!(s.restores, 1);
        assert_eq!(s.retained, 2);
    }
}
