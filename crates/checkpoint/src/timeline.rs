//! A position-keyed checkpoint timeline with a bounded-retention policy —
//! the substrate behind reverse execution.
//!
//! A [`Timeline`] maps *positions* (monotone external keys, e.g. "events
//! delivered so far") to checkpoints stored in a [`Checkpointer`]. Backward
//! navigation restores the nearest checkpoint at or before the target
//! position and re-executes forward from there, so rewind cost is bounded
//! by the spacing between retained checkpoints, not by the run length.
//!
//! Retention: when more than [`RetentionPolicy::max_retained`] checkpoints
//! are held, the timeline *thins* instead of refusing — it drops the
//! interior checkpoint whose removal creates the smallest gap between its
//! neighbours (ties broken toward older history). The first checkpoint
//! (the anchor, usually position 0) and the most recent one are never
//! dropped, so `goto 0` and short rewinds stay cheap while memory stays
//! bounded. With the [`Strategy::MemIntercept`] page-diff strategy the
//! retained images additionally share every unchanged 4 KiB page.

use crate::store::{CheckpointId, Checkpointer, MemStats, Strategy};
use crate::Snapshotable;
use defined_obs as obs;

/// How many checkpoints a [`Timeline`] retains before thinning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetentionPolicy {
    /// Maximum number of retained checkpoints (minimum 2: the anchor and
    /// the most recent). Thinning keeps the retained set roughly evenly
    /// spaced over the covered position range.
    pub max_retained: usize,
}

impl Default for RetentionPolicy {
    fn default() -> Self {
        RetentionPolicy { max_retained: 256 }
    }
}

/// An ordered, position-keyed store of checkpoints with bounded retention.
pub struct Timeline<S> {
    store: Checkpointer<S>,
    /// `(position, id)` pairs sorted by position.
    index: Vec<(u64, CheckpointId)>,
    policy: RetentionPolicy,
}

impl<S: Snapshotable> Timeline<S> {
    /// An empty timeline with the given storage strategy and retention.
    pub fn new(strategy: Strategy, policy: RetentionPolicy) -> Self {
        let policy = RetentionPolicy { max_retained: policy.max_retained.max(2) };
        Timeline { store: Checkpointer::new(strategy), index: Vec::new(), policy }
    }

    /// Records a checkpoint of `state` at `position`. Returns false (and
    /// stores nothing) when the position already has a checkpoint — replays
    /// over already-covered ground are free.
    pub fn record(&mut self, position: u64, state: &S) -> bool {
        let at = self.index.partition_point(|&(p, _)| p < position);
        if self.index.get(at).map(|&(p, _)| p == position).unwrap_or(false) {
            return false;
        }
        let id = self.store.checkpoint(state);
        self.index.insert(at, (position, id));
        self.thin();
        true
    }

    /// Restores the checkpoint nearest at-or-before `position`, returning
    /// its position and state, or `None` when nothing that early is
    /// retained.
    pub fn restore_at_or_before(&mut self, position: u64) -> Option<(u64, S)> {
        let at = self.index.partition_point(|&(p, _)| p <= position);
        let &(pos, id) = self.index.get(at.checked_sub(1)?)?;
        Some((pos, self.store.restore(id)?))
    }

    /// The position of the checkpoint nearest at-or-before `position`,
    /// without restoring it — the cheap peek a replay farm uses to decide
    /// whether seeding from a checkpoint beats running forward from where
    /// it already is.
    pub fn position_at_or_before(&self, position: u64) -> Option<u64> {
        let at = self.index.partition_point(|&(p, _)| p <= position);
        self.index.get(at.checked_sub(1)?).map(|&(p, _)| p)
    }

    /// Whether a checkpoint exists exactly at `position`.
    pub fn contains(&self, position: u64) -> bool {
        self.index.binary_search_by_key(&position, |&(p, _)| p).is_ok()
    }

    /// Retained checkpoint positions, in increasing order.
    pub fn positions(&self) -> impl Iterator<Item = u64> + '_ {
        self.index.iter().map(|&(p, _)| p)
    }

    /// Number of retained checkpoints.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the timeline holds no checkpoints.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The largest gap between consecutive retained positions (including
    /// neither end of the covered range) — an upper bound, in positions, on
    /// the forward re-execution any backward jump inside the covered range
    /// needs.
    pub fn max_gap(&self) -> u64 {
        self.index.windows(2).map(|w| w[1].0 - w[0].0).max().unwrap_or(0)
    }

    /// Full memory statistics of the underlying store.
    pub fn stats(&self) -> MemStats {
        self.store.stats()
    }

    /// Drops interior checkpoints until the retention cap holds.
    fn thin(&mut self) {
        while self.index.len() > self.policy.max_retained {
            // Victim: interior entry whose removal leaves the smallest
            // neighbour gap; on ties prefer the oldest (thin far history
            // first). The anchor and the newest entry are exempt.
            let victim = (1..self.index.len() - 1)
                .min_by_key(|&i| self.index[i + 1].0 - self.index[i - 1].0)
                .expect("cap >= 2 leaves an interior entry whenever len > cap");
            let (_, id) = self.index.remove(victim);
            obs::counter!("ckpt.thinned").add(1);
            self.store.remove(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct Word(u64);
    impl Snapshotable for Word {
        fn encode(&self, buf: &mut Vec<u8>) {
            buf.extend_from_slice(&self.0.to_le_bytes());
        }
        fn decode(bytes: &[u8]) -> Option<Self> {
            Some(Word(u64::from_le_bytes(bytes.get(..8)?.try_into().ok()?)))
        }
    }

    fn filled(strategy: Strategy, cap: usize, step: u64, n: u64) -> Timeline<Word> {
        let mut t = Timeline::new(strategy, RetentionPolicy { max_retained: cap });
        for i in 0..n {
            t.record(i * step, &Word(i * step));
        }
        t
    }

    #[test]
    fn nearest_at_or_before_finds_the_right_image() {
        for strategy in [Strategy::CloneState, Strategy::Fork, Strategy::MemIntercept] {
            let mut t = filled(strategy, 64, 10, 8);
            assert_eq!(t.restore_at_or_before(35), Some((30, Word(30))));
            assert_eq!(t.restore_at_or_before(30), Some((30, Word(30))));
            assert_eq!(t.restore_at_or_before(0), Some((0, Word(0))));
            assert_eq!(t.restore_at_or_before(1_000), Some((70, Word(70))));
        }
    }

    #[test]
    fn peek_matches_restore_without_touching_the_store() {
        // Two identical timelines: one only peeks, the other restores.
        let peeker = filled(Strategy::Fork, 64, 10, 8);
        let mut restorer = filled(Strategy::Fork, 64, 10, 8);
        for q in [0, 5, 30, 35, 1_000] {
            assert_eq!(
                peeker.position_at_or_before(q),
                restorer.restore_at_or_before(q).map(|(p, _)| p)
            );
        }
        // The peeks above performed no restores; the restores did.
        assert_eq!(peeker.stats().restores, 0);
        assert_eq!(restorer.stats().restores, 5);
        let empty: Timeline<Word> = Timeline::new(Strategy::Fork, RetentionPolicy::default());
        assert_eq!(empty.position_at_or_before(9), None);
    }

    #[test]
    fn duplicate_positions_are_free() {
        let mut t = Timeline::new(Strategy::Fork, RetentionPolicy::default());
        assert!(t.record(5, &Word(5)));
        assert!(!t.record(5, &Word(99)), "second record at the same position is a no-op");
        assert_eq!(t.restore_at_or_before(5), Some((5, Word(5))));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn out_of_order_record_after_a_rewind_keeps_the_index_sorted() {
        let mut t = filled(Strategy::Fork, 64, 10, 5);
        // A rewind re-executed past a thinned position re-records it.
        assert!(t.record(15, &Word(15)));
        let ps: Vec<u64> = t.positions().collect();
        assert_eq!(ps, vec![0, 10, 15, 20, 30, 40]);
        assert_eq!(t.restore_at_or_before(16), Some((15, Word(15))));
    }

    #[test]
    fn thinning_keeps_anchor_newest_and_even_spacing() {
        let t = filled(Strategy::MemIntercept, 8, 1, 100);
        assert_eq!(t.len(), 8);
        let ps: Vec<u64> = t.positions().collect();
        assert_eq!(ps[0], 0, "anchor survives thinning");
        assert_eq!(*ps.last().unwrap(), 99, "newest survives thinning");
        // Spacing stays within a small factor of the ideal 99/7 ≈ 14.
        assert!(t.max_gap() <= 3 * (99_u64.div_ceil(7)), "max gap {}", t.max_gap());
    }

    #[test]
    fn before_first_checkpoint_is_none() {
        let mut t = filled(Strategy::Fork, 64, 10, 3);
        let mut empty: Timeline<Word> = Timeline::new(Strategy::Fork, RetentionPolicy::default());
        assert_eq!(empty.restore_at_or_before(7), None);
        // Drop the anchor case: first retained position is 5.
        let mut t5 = Timeline::new(Strategy::Fork, RetentionPolicy::default());
        t5.record(5, &Word(5));
        assert_eq!(t5.restore_at_or_before(4), None);
        assert!(t.restore_at_or_before(0).is_some());
    }

    #[test]
    fn stats_reflect_thinning() {
        let t = filled(Strategy::Fork, 4, 1, 32);
        let s = t.stats();
        assert_eq!(s.retained, 4);
        assert_eq!(s.taken, 32);
        assert_eq!(s.virtual_bytes, 4 * 8);
    }
}
