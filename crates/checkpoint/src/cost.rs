//! Simulated-time cost model for checkpoint operations.
//!
//! The microbenchmarks of Fig. 7 are *measured* (Criterion over the real
//! [`crate::Checkpointer`] implementations); this model is what the
//! network-level simulations (Figs. 6 and 8) charge on nodes' critical
//! paths, calibrated to the magnitudes the paper reports.

use crate::pages::PAGE_SIZE;

/// When the per-message checkpoint cost lands on the critical path
/// (paper §5.2, Fig. 7b).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ForkTiming {
    /// TF — fork when the packet arrives: the full fork cost is paid before
    /// processing.
    OnArrival,
    /// PF — pre-fork after the previous packet: only the copy-on-write
    /// residual is paid at arrival.
    PreFork,
    /// TM — pre-fork and pre-touch heap memory: the residual is also
    /// (mostly) eliminated.
    PreForkTouch,
}

/// Nanosecond costs per operation, tunable per experiment.
///
/// Defaults are calibrated so simulated overheads land in the ranges of
/// Fig. 7: full-fork checkpoints cost on the order of a millisecond for a
/// routing-daemon-sized state, memory-intercept rollbacks ~0.6 ms, and
/// pre-forked non-rollback overhead tens of microseconds.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Fixed cost of invoking the checkpoint machinery (syscall analogue).
    pub fork_base_ns: u64,
    /// Per-page cost of materialising a copied page.
    pub copy_page_ns: u64,
    /// Fraction of the full copy cost still paid at arrival under
    /// [`ForkTiming::PreFork`] (deferred copy-on-write faults).
    pub prefork_residual: f64,
    /// Fraction still paid under [`ForkTiming::PreForkTouch`].
    pub touch_residual: f64,
    /// Per-page cost of recognising a dirty page as already pooled (hash +
    /// compare + refcount, no copy). An order of magnitude below
    /// [`CostModel::copy_page_ns`]: dedup hits are priced, not free.
    pub dedup_page_ns: u64,
    /// Fixed cost of a restore (process switch analogue).
    pub restore_base_ns: u64,
    /// Copy-on-write working-set pages a full-fork (FK) restore must touch
    /// beyond the protocol state itself. A real routing daemon is a large
    /// process (the paper's XORP images run to hundreds of MB, Fig. 7c);
    /// restoring a forked checkpoint faults that working set back in, which
    /// is exactly the cost memory interception (MI) avoids by copying only
    /// changed bytes. Without this term a simulator-sized protocol state
    /// (KBs) would make FK ≈ MI and erase the paper's Fig. 7a gap.
    pub fork_restore_extra_pages: usize,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            fork_base_ns: 60_000,      // 60 µs fork() overhead
            copy_page_ns: 600,         // ~0.6 µs per 4 KiB page copied
            dedup_page_ns: 60,         // ~0.06 µs to hash + match a pooled page
            prefork_residual: 0.35,
            touch_residual: 0.05,
            restore_base_ns: 120_000,  // 120 µs context restore
            fork_restore_extra_pages: 8_192, // 32 MiB COW working set
        }
    }
}

impl CostModel {
    /// Critical-path cost (ns) of taking a checkpoint of `state_bytes` with
    /// `dirty_pages` changed since the previous one.
    ///
    /// Full-image strategies pay for every page; memory interception pays
    /// only for dirty pages. The timing mode scales what lands on the
    /// critical path.
    pub fn checkpoint_ns(
        &self,
        timing: ForkTiming,
        state_bytes: usize,
        dirty_pages: Option<usize>,
    ) -> u64 {
        let pages = match dirty_pages {
            Some(d) => d,
            None => state_bytes.div_ceil(PAGE_SIZE),
        };
        // Without pool information every dirty page is priced as a copy.
        self.capture_ns(timing, pages, pages)
    }

    /// Critical-path cost (ns) of a pool-backed (MI) capture: of the
    /// `dirty_pages` that changed since the previous image, only
    /// `fresh_pages` were new to the content-addressed pool and copied; the
    /// rest were dedup hits, priced at [`CostModel::dedup_page_ns`].
    ///
    /// This is the estimator the store's own accounting matches: the copy
    /// term covers exactly the bytes `ckpt.bytes_stored` records
    /// (`MemStats::fresh_bytes`), so estimator and observed bytes cannot
    /// drift apart.
    pub fn capture_ns(&self, timing: ForkTiming, dirty_pages: usize, fresh_pages: usize) -> u64 {
        let fresh = fresh_pages.min(dirty_pages) as u64;
        let deduped = dirty_pages as u64 - fresh;
        let full = self.fork_base_ns + self.copy_page_ns * fresh + self.dedup_page_ns * deduped;
        let frac = match timing {
            ForkTiming::OnArrival => 1.0,
            ForkTiming::PreFork => self.prefork_residual,
            ForkTiming::PreForkTouch => self.touch_residual,
        };
        (full as f64 * frac) as u64
    }

    /// Critical-path cost (ns) of restoring a checkpoint and replaying
    /// `replayed` deliveries, each costing `per_replay_ns`.
    ///
    /// With `dirty_pages = Some(d)` (memory interception) only the changed
    /// pages are copied back; with `None` (full fork) the restore also
    /// faults the forked process's copy-on-write working set
    /// ([`CostModel::fork_restore_extra_pages`]).
    pub fn rollback_ns(
        &self,
        state_bytes: usize,
        dirty_pages: Option<usize>,
        replayed: usize,
        per_replay_ns: u64,
    ) -> u64 {
        let pages = match dirty_pages {
            Some(d) => d,
            None => state_bytes.div_ceil(PAGE_SIZE) + self.fork_restore_extra_pages,
        };
        self.restore_base_ns
            + self.copy_page_ns * pages as u64
            + per_replay_ns * replayed as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_modes_order_costs() {
        let m = CostModel::default();
        let size = 64 * PAGE_SIZE;
        let tf = m.checkpoint_ns(ForkTiming::OnArrival, size, None);
        let pf = m.checkpoint_ns(ForkTiming::PreFork, size, None);
        let tm = m.checkpoint_ns(ForkTiming::PreForkTouch, size, None);
        assert!(tf > pf, "TF must cost more than PF");
        assert!(pf > tm, "PF must cost more than TM");
        assert!(tm > 0);
    }

    #[test]
    fn dirty_pages_cap_the_cost() {
        let m = CostModel::default();
        let size = 1024 * PAGE_SIZE;
        let full = m.checkpoint_ns(ForkTiming::OnArrival, size, None);
        let sparse = m.checkpoint_ns(ForkTiming::OnArrival, size, Some(2));
        assert!(sparse < full / 10);
    }

    #[test]
    fn rollback_scales_with_replay() {
        let m = CostModel::default();
        let a = m.rollback_ns(8 * PAGE_SIZE, Some(2), 0, 50_000);
        let b = m.rollback_ns(8 * PAGE_SIZE, Some(2), 5, 50_000);
        assert_eq!(b - a, 250_000);
    }

    #[test]
    fn estimator_matches_observed_bytes_on_churn() {
        // A synthetic churn run: one page dirtied per round, with a
        // rollback + re-capture after each capture. The estimator's copy
        // term must price exactly the pages the store recorded as
        // materialised (`fresh_bytes` == what `ckpt.bytes_stored` adds),
        // not the full dirty set the naive estimator would charge.
        use crate::{Checkpointer, Snapshotable, Strategy};

        #[derive(Clone)]
        struct Blob(Vec<u8>);
        impl Snapshotable for Blob {
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.0);
            }
            fn decode(bytes: &[u8]) -> Option<Self> {
                Some(Blob(bytes.to_vec()))
            }
        }

        let m = CostModel::default();
        let mut cp = Checkpointer::new(Strategy::MemIntercept);
        let mut blob = Blob(vec![0u8; 64 * PAGE_SIZE]); // page-aligned size
        let mut priced_copy_pages = 0u64;
        let mut dirty_pages_seen = 0u64;
        for round in 0..16usize {
            blob.0[round * PAGE_SIZE] = round as u8 + 1;
            let id = cp.checkpoint(&blob);
            let s = cp.stats();
            priced_copy_pages += s.last_fresh_pages as u64;
            dirty_pages_seen += s.last_dirty_pages as u64;
            // Churn: roll back to the capture and re-commit the same state.
            let restored = cp.restore(id).expect("restorable");
            cp.truncate_from(id);
            cp.checkpoint(&restored);
            let s = cp.stats();
            priced_copy_pages += s.last_fresh_pages as u64;
            dirty_pages_seen += s.last_dirty_pages as u64;
        }
        let observed = cp.stats().fresh_bytes;
        assert_eq!(
            priced_copy_pages * PAGE_SIZE as u64,
            observed,
            "estimator copy term must equal the bytes the store recorded"
        );
        // The churn re-captures copied nothing, so the consistent estimate
        // is strictly below what full dirty-page pricing would charge.
        let consistent = m.capture_ns(
            ForkTiming::OnArrival,
            dirty_pages_seen as usize,
            priced_copy_pages as usize,
        );
        let naive = m.capture_ns(ForkTiming::OnArrival, dirty_pages_seen as usize, dirty_pages_seen as usize);
        assert!(
            consistent < naive,
            "dedup hits must be priced below copies ({consistent} vs {naive})"
        );
    }

    #[test]
    fn mi_rollback_near_paper_magnitude() {
        // Memory interception with a handful of dirty pages should land
        // around the paper's ~0.6 ms median rollback cost.
        let m = CostModel::default();
        let ns = m.rollback_ns(128 * PAGE_SIZE, Some(8), 6, 60_000);
        let ms = ns as f64 / 1e6;
        assert!((0.2..2.0).contains(&ms), "got {ms} ms");
    }
}
