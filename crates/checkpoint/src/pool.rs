//! A content-addressed, refcounted page pool.
//!
//! Every 4 KiB page a [`crate::Checkpointer`] materialises is interned here,
//! keyed by its FNV-1a content hash (with full byte comparison on hash
//! collisions). Images hold *references* into the pool; identical pages are
//! stored once no matter how many checkpoints, timelines, or rollback
//! generations contain them. Releasing an image decrements refcounts and
//! frees only pages nothing else still references — which is what lets
//! retention thinning and rollback truncation drop *references* instead of
//! bytes, and lets a post-rollback re-capture re-use the pages of the images
//! it just invalidated.

use crate::fnv1a;
use std::collections::HashMap;
use std::sync::Arc;

/// One pooled page: the shared bytes plus the content hash they were
/// interned under. The hash is cached so releasing or re-retaining a page
/// never re-hashes its contents.
#[derive(Debug)]
pub(crate) struct PooledPage {
    pub(crate) hash: u64,
    pub(crate) page: Arc<Vec<u8>>,
}

struct Slot {
    page: Arc<Vec<u8>>,
    refs: usize,
}

/// Aggregate pool activity, readable in O(1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Distinct pages currently held (refcount > 0).
    pub live_pages: usize,
    /// Bytes of those distinct pages — the physical footprint.
    pub resident_bytes: usize,
    /// Page lookups satisfied by an already-pooled page.
    pub hits: u64,
    /// Page lookups that had to materialise a new page.
    pub misses: u64,
    /// Bytes the hits avoided copying.
    pub bytes_deduped: u64,
}

/// The content-addressed page store shared by every image in one
/// [`crate::Checkpointer`].
#[derive(Default)]
pub struct PagePool {
    buckets: HashMap<u64, Vec<Slot>>,
    stats: PoolStats,
}

impl PagePool {
    /// An empty pool.
    pub fn new() -> Self {
        PagePool::default()
    }

    /// Interns `chunk`, returning a page reference with one refcount held by
    /// the caller. A pooled page with identical bytes is shared (hit); only
    /// genuinely new content allocates (miss).
    pub(crate) fn intern(&mut self, chunk: &[u8]) -> PooledPage {
        let hash = fnv1a(chunk);
        let bucket = self.buckets.entry(hash).or_default();
        if let Some(slot) = bucket.iter_mut().find(|s| s.page.as_slice() == chunk) {
            slot.refs += 1;
            self.stats.hits += 1;
            self.stats.bytes_deduped += chunk.len() as u64;
            return PooledPage { hash, page: Arc::clone(&slot.page) };
        }
        let page = Arc::new(chunk.to_vec());
        bucket.push(Slot { page: Arc::clone(&page), refs: 1 });
        self.stats.misses += 1;
        self.stats.live_pages += 1;
        self.stats.resident_bytes += chunk.len();
        PooledPage { hash, page }
    }

    /// Takes an additional reference on an already-pooled page (sharing an
    /// unchanged page with the previous image). Counted as a dedup hit: the
    /// page's bytes were not copied.
    pub(crate) fn retain(&mut self, p: &PooledPage) -> PooledPage {
        let slot = self
            .buckets
            .get_mut(&p.hash)
            .and_then(|b| b.iter_mut().find(|s| Arc::ptr_eq(&s.page, &p.page)))
            .expect("retained page must be pooled");
        slot.refs += 1;
        self.stats.hits += 1;
        self.stats.bytes_deduped += p.page.len() as u64;
        PooledPage { hash: p.hash, page: Arc::clone(&p.page) }
    }

    /// Drops one reference; the page's bytes are freed only when no image
    /// references it any more.
    pub(crate) fn release(&mut self, p: &PooledPage) {
        let bucket = self.buckets.get_mut(&p.hash).expect("released page must be pooled");
        let i = bucket
            .iter()
            .position(|s| Arc::ptr_eq(&s.page, &p.page))
            .expect("released page must be pooled");
        bucket[i].refs -= 1;
        if bucket[i].refs == 0 {
            self.stats.live_pages -= 1;
            self.stats.resident_bytes -= bucket[i].page.len();
            bucket.swap_remove(i);
            if bucket.is_empty() {
                self.buckets.remove(&p.hash);
            }
        }
    }

    /// Current pool statistics.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Bytes of distinct live pages — the pool's physical footprint, O(1).
    pub fn resident_bytes(&self) -> usize {
        self.stats.resident_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedups_identical_content() {
        let mut pool = PagePool::new();
        let a = pool.intern(&[7u8; 100]);
        let b = pool.intern(&[7u8; 100]);
        assert!(Arc::ptr_eq(&a.page, &b.page));
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.live_pages, 1);
        assert_eq!(s.resident_bytes, 100);
        assert_eq!(s.bytes_deduped, 100);
    }

    #[test]
    fn release_frees_only_unreferenced_pages() {
        let mut pool = PagePool::new();
        let a = pool.intern(&[1u8; 64]);
        let b = pool.intern(&[1u8; 64]); // shares with a
        let c = pool.intern(&[2u8; 64]);
        pool.release(&a);
        assert_eq!(pool.stats().live_pages, 2, "b still references a's page");
        pool.release(&b);
        assert_eq!(pool.stats().live_pages, 1);
        pool.release(&c);
        assert_eq!(pool.stats().live_pages, 0);
        assert_eq!(pool.resident_bytes(), 0);
    }

    #[test]
    fn retain_shares_without_rehash() {
        let mut pool = PagePool::new();
        let a = pool.intern(&[3u8; 32]);
        let b = pool.retain(&a);
        assert!(Arc::ptr_eq(&a.page, &b.page));
        assert_eq!(pool.stats().hits, 1);
        pool.release(&a);
        pool.release(&b);
        assert_eq!(pool.stats().live_pages, 0);
    }

    #[test]
    fn hash_collisions_fall_back_to_byte_compare() {
        // Force two different contents into one bucket by inserting, then
        // interning a slice that happens to share the bucket is impractical
        // to construct for FNV; instead assert the bucket scan compares
        // bytes: same-length different contents never alias.
        let mut pool = PagePool::new();
        let a = pool.intern(&[0u8; 16]);
        let b = pool.intern(&[1u8; 16]);
        assert!(!Arc::ptr_eq(&a.page, &b.page));
        assert_eq!(pool.stats().misses, 2);
    }
}
