//! Page-granular state images with copy-on-write sharing.

use std::sync::Arc;

/// The page granularity used for diffing; matches the 4 KiB pages the
/// kernel's copy-on-write operates on.
pub const PAGE_SIZE: usize = 4096;

type Page = Arc<Vec<u8>>;

/// A byte image split into `Arc`-shared pages.
///
/// Deriving one image from another shares every unchanged page, which is the
/// in-process analogue of `fork()`'s copy-on-write: virtual size is the full
/// image, physical size is only the pages this image materialised anew.
#[derive(Clone, Debug)]
pub struct PageImage {
    pages: Vec<Page>,
    len: usize,
}

impl PageImage {
    /// Builds an image from raw bytes (every page freshly materialised).
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let pages = bytes
            .chunks(PAGE_SIZE)
            .map(|c| Arc::new(c.to_vec()))
            .collect();
        PageImage { pages, len: bytes.len() }
    }

    /// Builds an image of `bytes` sharing unchanged pages with `prev`.
    ///
    /// Returns the image and the number of pages that had to be copied
    /// (the dirty-page count, which is what memory interception pays for).
    pub fn diff_from(prev: &PageImage, bytes: &[u8]) -> (Self, usize) {
        let mut pages = Vec::with_capacity(bytes.len().div_ceil(PAGE_SIZE));
        let mut dirty = 0;
        for (i, chunk) in bytes.chunks(PAGE_SIZE).enumerate() {
            match prev.pages.get(i) {
                Some(p) if p.as_slice() == chunk => pages.push(Arc::clone(p)),
                _ => {
                    pages.push(Arc::new(chunk.to_vec()));
                    dirty += 1;
                }
            }
        }
        (PageImage { pages, len: bytes.len() }, dirty)
    }

    /// Reassembles the raw bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len);
        for p in &self.pages {
            out.extend_from_slice(p);
        }
        out
    }

    /// Logical (virtual) size in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the image is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Appends each page's identity (allocation address) and byte length to
    /// `sink`; used to compute unique physical bytes across many images.
    pub fn visit_pages(&self, sink: &mut impl FnMut(usize, usize)) {
        for p in &self.pages {
            sink(Arc::as_ptr(p) as usize, p.len());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn physical_bytes(images: &[PageImage]) -> usize {
        let mut seen: HashMap<usize, usize> = HashMap::new();
        for img in images {
            img.visit_pages(&mut |ptr, len| {
                seen.insert(ptr, len);
            });
        }
        seen.values().sum()
    }

    #[test]
    fn round_trip() {
        let data: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        let img = PageImage::from_bytes(&data);
        assert_eq!(img.to_bytes(), data);
        assert_eq!(img.len(), 10_000);
        assert_eq!(img.page_count(), 3);
        assert!(!img.is_empty());
    }

    #[test]
    fn empty_image() {
        let img = PageImage::from_bytes(&[]);
        assert!(img.is_empty());
        assert_eq!(img.page_count(), 0);
        assert_eq!(img.to_bytes(), Vec::<u8>::new());
    }

    #[test]
    fn diff_shares_unchanged_pages() {
        let mut data: Vec<u8> = vec![7; 5 * PAGE_SIZE];
        let base = PageImage::from_bytes(&data);
        // Touch one byte in page 2.
        data[2 * PAGE_SIZE + 10] = 9;
        let (next, dirty) = PageImage::diff_from(&base, &data);
        assert_eq!(dirty, 1);
        assert_eq!(next.to_bytes(), data);
        // Physical cost of holding both: 5 pages + 1 dirty page.
        assert_eq!(physical_bytes(&[base, next]), 6 * PAGE_SIZE);
    }

    #[test]
    fn diff_handles_growth_and_shrink() {
        let base = PageImage::from_bytes(&vec![1; 2 * PAGE_SIZE]);
        let grown: Vec<u8> = vec![1; 3 * PAGE_SIZE + 7];
        let (g, dirty_g) = PageImage::diff_from(&base, &grown);
        assert_eq!(g.to_bytes(), grown);
        assert_eq!(dirty_g, 2, "one new full page + one tail page");
        let shrunk: Vec<u8> = vec![1; PAGE_SIZE / 2];
        let (s, dirty_s) = PageImage::diff_from(&base, &shrunk);
        assert_eq!(s.to_bytes(), shrunk);
        // The final partial page differs in length from the full base page.
        assert_eq!(dirty_s, 1);
    }

    #[test]
    fn identical_diff_is_all_shared() {
        let data = vec![3; 4 * PAGE_SIZE];
        let base = PageImage::from_bytes(&data);
        let (next, dirty) = PageImage::diff_from(&base, &data);
        assert_eq!(dirty, 0);
        assert_eq!(physical_bytes(&[base, next]), 4 * PAGE_SIZE);
    }
}
