//! Page-granular state images whose pages live in a content-addressed pool.

use crate::pool::{PagePool, PooledPage};
use std::sync::Arc;

/// The page granularity used for diffing; matches the 4 KiB pages the
/// kernel's copy-on-write operates on.
pub const PAGE_SIZE: usize = 4096;

/// What building an image cost, page-wise.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BuildCost {
    /// Pages that differ from the previous image (what memory interception
    /// must inspect and re-reference).
    pub dirty_pages: usize,
    /// Of the dirty pages, those whose content was *new to the pool* — the
    /// only pages that allocated and copied bytes.
    pub fresh_pages: usize,
    /// Bytes those fresh pages materialised (what the store actually grew
    /// by).
    pub fresh_bytes: usize,
}

/// A byte image split into pages interned in a [`PagePool`].
///
/// Deriving one image from another shares every unchanged page, and the pool
/// additionally shares identical content *across* unrelated images and
/// rollback generations: virtual size is the full image, physical size is
/// only the pages the pool had never seen.
///
/// Images hold pool references, so they must be released back to the pool
/// that built them ([`PageImage::release`]) rather than merely dropped —
/// the owning [`crate::Checkpointer`] does this on every eviction path.
#[derive(Debug)]
pub struct PageImage {
    pages: Vec<PooledPage>,
    len: usize,
}

impl PageImage {
    /// Builds an image from raw bytes, interning every page.
    pub fn from_bytes(pool: &mut PagePool, bytes: &[u8]) -> (Self, BuildCost) {
        let mut pages = Vec::with_capacity(bytes.len().div_ceil(PAGE_SIZE));
        let mut cost = BuildCost::default();
        for chunk in bytes.chunks(PAGE_SIZE) {
            let before = pool.stats().misses;
            let p = pool.intern(chunk);
            cost.dirty_pages += 1;
            if pool.stats().misses > before {
                cost.fresh_pages += 1;
                cost.fresh_bytes += chunk.len();
            }
            pages.push(p);
        }
        (PageImage { pages, len: bytes.len() }, cost)
    }

    /// Builds an image of `bytes` sharing unchanged pages with `prev`
    /// (position-wise fast path, no re-hash), interning changed pages into
    /// the pool (content-wise dedup against everything else it holds).
    pub fn diff_from(pool: &mut PagePool, prev: &PageImage, bytes: &[u8]) -> (Self, BuildCost) {
        let mut pages = Vec::with_capacity(bytes.len().div_ceil(PAGE_SIZE));
        let mut cost = BuildCost::default();
        for (i, chunk) in bytes.chunks(PAGE_SIZE).enumerate() {
            match prev.pages.get(i) {
                Some(p) if p.page.as_slice() == chunk => pages.push(pool.retain(p)),
                _ => {
                    let before = pool.stats().misses;
                    let p = pool.intern(chunk);
                    cost.dirty_pages += 1;
                    if pool.stats().misses > before {
                        cost.fresh_pages += 1;
                        cost.fresh_bytes += chunk.len();
                    }
                    pages.push(p);
                }
            }
        }
        (PageImage { pages, len: bytes.len() }, cost)
    }

    /// Takes a whole-image reference: every page re-retained from the pool.
    pub fn retain_clone(&self, pool: &mut PagePool) -> Self {
        let pages = self.pages.iter().map(|p| pool.retain(p)).collect();
        PageImage { pages, len: self.len }
    }

    /// Returns every page reference to the pool. Call exactly once, from the
    /// store that owns the image.
    pub fn release(&self, pool: &mut PagePool) {
        for p in &self.pages {
            pool.release(p);
        }
    }

    /// Reassembles the raw bytes into `out` (cleared first).
    pub fn write_bytes(&self, out: &mut Vec<u8>) {
        out.clear();
        out.reserve(self.len);
        for p in &self.pages {
            out.extend_from_slice(&p.page);
        }
    }

    /// Reassembles the raw bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_bytes(&mut out);
        out
    }

    /// Logical (virtual) size in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the image is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Appends each page's identity (allocation address) and byte length to
    /// `sink`; used to compute unique physical bytes across many images.
    pub fn visit_pages(&self, sink: &mut impl FnMut(usize, usize)) {
        for p in &self.pages {
            sink(Arc::as_ptr(&p.page) as usize, p.page.len());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn physical_bytes(images: &[&PageImage]) -> usize {
        let mut seen: HashMap<usize, usize> = HashMap::new();
        for img in images {
            img.visit_pages(&mut |ptr, len| {
                seen.insert(ptr, len);
            });
        }
        seen.values().sum()
    }

    #[test]
    fn round_trip() {
        let mut pool = PagePool::new();
        let data: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        let (img, cost) = PageImage::from_bytes(&mut pool, &data);
        assert_eq!(img.to_bytes(), data);
        assert_eq!(img.len(), 10_000);
        assert_eq!(img.page_count(), 3);
        assert!(!img.is_empty());
        assert_eq!(cost.fresh_pages, 3);
        assert_eq!(cost.fresh_bytes, 10_000);
        img.release(&mut pool);
        assert_eq!(pool.resident_bytes(), 0);
    }

    #[test]
    fn empty_image() {
        let mut pool = PagePool::new();
        let (img, cost) = PageImage::from_bytes(&mut pool, &[]);
        assert!(img.is_empty());
        assert_eq!(img.page_count(), 0);
        assert_eq!(img.to_bytes(), Vec::<u8>::new());
        assert_eq!(cost, BuildCost::default());
    }

    #[test]
    fn diff_shares_unchanged_pages() {
        let mut pool = PagePool::new();
        let mut data: Vec<u8> = vec![7; 5 * PAGE_SIZE];
        let (base, _) = PageImage::from_bytes(&mut pool, &data);
        // Touch one byte in page 2.
        data[2 * PAGE_SIZE + 10] = 9;
        let (next, cost) = PageImage::diff_from(&mut pool, &base, &data);
        assert_eq!(cost.dirty_pages, 1);
        assert_eq!(cost.fresh_pages, 1);
        assert_eq!(next.to_bytes(), data);
        // Physical cost of holding both: base dedups its 5 identical pages
        // to one pooled page, plus the one dirty page.
        assert_eq!(pool.resident_bytes(), 2 * PAGE_SIZE);
        assert_eq!(physical_bytes(&[&base, &next]), 2 * PAGE_SIZE);
    }

    #[test]
    fn diff_handles_growth_and_shrink() {
        let mut pool = PagePool::new();
        let (base, _) = PageImage::from_bytes(&mut pool, &vec![1; 2 * PAGE_SIZE]);
        let grown: Vec<u8> = vec![1; 3 * PAGE_SIZE + 7];
        let (g, cost_g) = PageImage::diff_from(&mut pool, &base, &grown);
        assert_eq!(g.to_bytes(), grown);
        // One new full page (deduped against the pool!) + one tail page.
        assert_eq!(cost_g.dirty_pages, 2);
        assert_eq!(cost_g.fresh_pages, 1, "the grown full page already exists in the pool");
        let shrunk: Vec<u8> = vec![1; PAGE_SIZE / 2];
        let (s, cost_s) = PageImage::diff_from(&mut pool, &base, &shrunk);
        assert_eq!(s.to_bytes(), shrunk);
        // The final partial page differs in length from the full base page.
        assert_eq!(cost_s.dirty_pages, 1);
    }

    #[test]
    fn identical_diff_is_all_shared() {
        let mut pool = PagePool::new();
        let data = vec![3; 4 * PAGE_SIZE];
        let (base, _) = PageImage::from_bytes(&mut pool, &data);
        let (next, cost) = PageImage::diff_from(&mut pool, &base, &data);
        assert_eq!(cost.dirty_pages, 0);
        assert_eq!(cost.fresh_bytes, 0);
        // All four identical pages collapse to a single pooled page.
        assert_eq!(pool.resident_bytes(), PAGE_SIZE);
        assert_eq!(physical_bytes(&[&base, &next]), PAGE_SIZE);
    }

    #[test]
    fn pool_dedups_across_unrelated_images() {
        let mut pool = PagePool::new();
        let data = vec![9; 3 * PAGE_SIZE];
        let (a, ca) = PageImage::from_bytes(&mut pool, &data);
        let (b, cb) = PageImage::from_bytes(&mut pool, &data);
        assert_eq!(ca.fresh_pages, 1);
        assert_eq!(cb.fresh_pages, 0, "second image re-uses pooled content");
        assert_eq!(pool.resident_bytes(), PAGE_SIZE);
        a.release(&mut pool);
        assert_eq!(pool.resident_bytes(), PAGE_SIZE, "b keeps the page alive");
        b.release(&mut pool);
        assert_eq!(pool.resident_bytes(), 0);
    }

    #[test]
    fn retain_clone_round_trips_and_refcounts() {
        let mut pool = PagePool::new();
        let data: Vec<u8> = (0..2 * PAGE_SIZE).map(|i| (i % 13) as u8).collect();
        let (a, _) = PageImage::from_bytes(&mut pool, &data);
        let b = a.retain_clone(&mut pool);
        assert_eq!(b.to_bytes(), data);
        a.release(&mut pool);
        assert_eq!(b.to_bytes(), data, "clone keeps pages alive");
        b.release(&mut pool);
        assert_eq!(pool.resident_bytes(), 0);
    }
}
