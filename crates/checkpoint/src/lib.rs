//! Checkpoint/rollback substrate for DEFINED-RB.
//!
//! The paper checkpoints routing daemons with `fork()` (copy-on-write) and,
//! as an optimisation, intercepts memory writes through `/proc/<pid>/mem` to
//! copy only changed bytes (§3, §5.2). Neither mechanism is portable or safe
//! in-process, so this crate recreates their *cost and memory structure* over
//! explicit state snapshots:
//!
//! * [`Strategy::Fork`] (FK) — stores a full encoded image per checkpoint, as
//!   a fork's address-space copy would.
//! * [`Strategy::MemIntercept`] (MI) — stores a page-granular diff against
//!   the previous checkpoint; unchanged 4 KiB pages are shared via `Arc`,
//!   exactly the sharing copy-on-write provides.
//! * [`Strategy::CloneState`] — a plain deep clone; the fastest functional
//!   baseline, used when only correctness (not cost modelling) matters.
//!
//! Memory accounting distinguishes **virtual** bytes (what `fork()` maps:
//! every checkpoint's full image — the paper's VM curve in Fig. 7c) from
//! **physical** bytes (unique pages actually materialised — the PM curve).
//! Under MI every page is interned in a content-addressed, refcounted
//! [`PagePool`], so identical content is stored once across checkpoints,
//! across retention thinning, and across rollback generations — checkpoint
//! cost scales with state that *changed*, not with checkpoints taken.
//!
//! The [`ForkTiming`] enum models *when* the checkpoint cost is paid relative
//! to packet processing (Fig. 7b): at arrival (TF), pre-forked during idle
//! (PF), or pre-forked with memory pre-touched (TM).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod cost;
mod pages;
mod pool;
mod store;
mod timeline;

pub use cost::{CostModel, ForkTiming};
pub use pages::{BuildCost, PageImage, PAGE_SIZE};
pub use pool::{PagePool, PoolStats};
pub use store::{CheckpointId, Checkpointer, MemStats, Strategy};
pub use timeline::{RetentionPolicy, Timeline};

/// FNV-1a digest over bytes; the cheap state-comparison primitive used
/// throughout the workspace.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// A state that can be checkpointed: deep-clonable and round-trippable
/// through a stable byte encoding.
pub trait Snapshotable: Clone {
    /// Appends a stable, self-delimiting byte encoding of the full state.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Reconstructs a state from [`Snapshotable::encode`] output.
    ///
    /// Returns `None` on malformed input.
    fn decode(bytes: &[u8]) -> Option<Self>;

    /// A 64-bit digest of the encoded state.
    fn digest(&self) -> u64 {
        let mut buf = Vec::with_capacity(256);
        self.encode(&mut buf);
        fnv1a(&buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_distinguishes() {
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
    }

    #[derive(Clone, Debug, PartialEq)]
    struct Blob(Vec<u8>);
    impl Snapshotable for Blob {
        fn encode(&self, buf: &mut Vec<u8>) {
            buf.extend_from_slice(&(self.0.len() as u64).to_le_bytes());
            buf.extend_from_slice(&self.0);
        }
        fn decode(bytes: &[u8]) -> Option<Self> {
            let len = u64::from_le_bytes(bytes.get(..8)?.try_into().ok()?) as usize;
            Some(Blob(bytes.get(8..8 + len)?.to_vec()))
        }
    }

    #[test]
    fn snapshotable_round_trip_and_digest() {
        let b = Blob(vec![1, 2, 3]);
        let mut buf = Vec::new();
        b.encode(&mut buf);
        assert_eq!(Blob::decode(&buf), Some(b.clone()));
        assert_eq!(b.digest(), Blob(vec![1, 2, 3]).digest());
        assert_ne!(b.digest(), Blob(vec![1, 2, 4]).digest());
    }
}
