//! Rocketfuel-like PoP-level ISP topologies.
//!
//! The actual Rocketfuel measurement data (Spring et al., SIGCOMM 2002) is not
//! redistributable here, so this module *synthesises* ISP-like PoP graphs with
//! the node counts the paper reports: Sprintlink (43 PoPs), Ebone (25), and
//! Level3 (52). Construction mimics observed PoP-level structure: a small,
//! densely-meshed long-haul backbone of hub PoPs, regional PoPs attached to
//! their two nearest hubs (dual-homing for redundancy), and a sprinkling of
//! shortcut links. Delays are geographic. The generators are deterministic:
//! the same ISP always yields the same graph.

use crate::graph::{Graph, TopoMask};
use netsim::{DetRng, NodeId, SimDuration};

/// Which synthesised ISP map to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Isp {
    /// Sprintlink-like, 43 PoPs (Rocketfuel AS 1239).
    Sprintlink,
    /// Ebone-like, 25 PoPs (Rocketfuel AS 1755).
    Ebone,
    /// Level3-like, 52 PoPs (Rocketfuel AS 3356).
    Level3,
}

impl Isp {
    /// PoP count the paper reports for this ISP.
    pub fn pop_count(self) -> usize {
        match self {
            Isp::Sprintlink => 43,
            Isp::Ebone => 25,
            Isp::Level3 => 52,
        }
    }

    /// Number of backbone hub PoPs used in synthesis.
    fn hubs(self) -> usize {
        match self {
            Isp::Sprintlink => 8,
            Isp::Ebone => 5,
            Isp::Level3 => 10,
        }
    }

    /// Fixed seed so each ISP map is reproducible.
    fn seed(self) -> u64 {
        match self {
            Isp::Sprintlink => 0x5931_1239,
            Isp::Ebone => 0x5931_1755,
            Isp::Level3 => 0x5931_3356,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Isp::Sprintlink => "sprintlink",
            Isp::Ebone => "ebone",
            Isp::Level3 => "level3",
        }
    }
}

const PLANE_KM: f64 = 4500.0;
const US_PER_KM: f64 = 5.0;

fn dist_km(a: (f64, f64), b: (f64, f64)) -> f64 {
    ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
}

fn delay_of(a: (f64, f64), b: (f64, f64)) -> SimDuration {
    SimDuration::from_micros(((dist_km(a, b) * US_PER_KM) as u64).max(200))
}

/// Builds the synthesised PoP-level map for `isp`.
///
/// Nodes `0..hubs` are backbone hubs; the rest are regional PoPs.
pub fn build(isp: Isp) -> Graph {
    let n = isp.pop_count();
    let hubs = isp.hubs();
    let mut rng = DetRng::new(isp.seed());

    // Hubs are spread widely (metro centres); regional PoPs cluster around a
    // uniformly-chosen parent hub.
    let hub_pos: Vec<(f64, f64)> =
        (0..hubs).map(|_| (rng.gen_f64() * PLANE_KM, rng.gen_f64() * PLANE_KM)).collect();
    let mut pos = hub_pos.clone();
    for _ in hubs..n {
        let h = rng.gen_index(hubs);
        let (hx, hy) = hub_pos[h];
        let dx = rng.gen_normal(0.0, PLANE_KM / 12.0);
        let dy = rng.gen_normal(0.0, PLANE_KM / 12.0);
        pos.push(((hx + dx).clamp(0.0, PLANE_KM), (hy + dy).clamp(0.0, PLANE_KM)));
    }

    let mut g = Graph::new(n);
    // Backbone: ring over hubs (in placement order) plus chords so the core
    // is 3-connected-ish, as Tier-1 long-haul meshes are.
    for i in 0..hubs {
        let j = (i + 1) % hubs;
        g.add_edge(NodeId(i as u32), NodeId(j as u32), delay_of(pos[i], pos[j]));
    }
    for i in 0..hubs {
        let j = (i + hubs / 2) % hubs;
        if i != j {
            g.add_edge(NodeId(i as u32), NodeId(j as u32), delay_of(pos[i], pos[j]));
        }
    }

    // Regional PoPs dual-home to their two nearest hubs. `total_cmp`, not
    // `partial_cmp(..).unwrap()`: coincident or otherwise degenerate
    // coordinates must never be able to panic topology generation.
    for v in hubs..n {
        let mut order: Vec<usize> = (0..hubs).collect();
        order.sort_by(|&a, &b| {
            dist_km(pos[v], pos[a]).total_cmp(&dist_km(pos[v], pos[b]))
        });
        for &h in order.iter().take(2) {
            g.add_edge(NodeId(v as u32), NodeId(h as u32), delay_of(pos[v], pos[h]));
        }
    }

    // Shortcut links between random regional PoPs (about n/6 of them),
    // mirroring the lateral links Rocketfuel observes.
    let shortcuts = n / 6;
    let mut added = 0;
    let mut guard = 0;
    while added < shortcuts && guard < 1000 {
        guard += 1;
        let a = hubs + rng.gen_index(n - hubs);
        let b = hubs + rng.gen_index(n - hubs);
        if a != b && g.add_edge(NodeId(a as u32), NodeId(b as u32), delay_of(pos[a], pos[b])).is_some()
        {
            added += 1;
        }
    }
    debug_assert!(g.is_connected(&TopoMask::default()));
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_counts_match_paper() {
        assert_eq!(build(Isp::Sprintlink).node_count(), 43);
        assert_eq!(build(Isp::Ebone).node_count(), 25);
        assert_eq!(build(Isp::Level3).node_count(), 52);
    }

    #[test]
    fn all_connected() {
        for isp in [Isp::Sprintlink, Isp::Ebone, Isp::Level3] {
            assert!(build(isp).is_connected(&TopoMask::default()), "{:?}", isp);
        }
    }

    #[test]
    fn deterministic() {
        let a = build(Isp::Sprintlink);
        let b = build(Isp::Sprintlink);
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn isps_differ() {
        assert_ne!(build(Isp::Sprintlink).edges(), build(Isp::Level3).edges());
    }

    #[test]
    fn dual_homing_gives_redundancy() {
        // Dropping any single regional link must not disconnect the graph.
        let g = build(Isp::Ebone);
        for e in g.edges() {
            let mut mask = TopoMask::default();
            mask.link_down(e.a, e.b);
            assert!(
                g.is_connected(&mask),
                "single link {:?}-{:?} disconnects the graph",
                e.a,
                e.b
            );
        }
    }

    #[test]
    fn realistic_delays() {
        let g = build(Isp::Sprintlink);
        for e in g.edges() {
            assert!(e.delay >= SimDuration::from_micros(200));
            assert!(e.delay <= SimDuration::from_millis(40), "delay {} too long", e.delay);
        }
    }

    #[test]
    fn names_and_counts() {
        assert_eq!(Isp::Sprintlink.name(), "sprintlink");
        assert_eq!(Isp::Ebone.pop_count(), 25);
    }
}
