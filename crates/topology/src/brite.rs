//! BRITE-like topology generation: Waxman and Barabási–Albert models.
//!
//! The paper's scalability study (§5.3, Fig. 8) uses BRITE-generated graphs of
//! 20–80 nodes. BRITE's two classic flat router-level models are implemented
//! here over a deterministic RNG; delays derive from Euclidean distance on a
//! continental-scale plane, as BRITE does.

use crate::graph::{Graph, TopoMask};
use netsim::{DetRng, NodeId, SimDuration};

/// Side length of the placement plane, in kilometres (continental US scale).
const PLANE_KM: f64 = 4000.0;

/// Propagation speed in fibre, roughly 5 µs per km.
const US_PER_KM: f64 = 5.0;

/// Parameters for the Waxman model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WaxmanParams {
    /// Edge-probability scale (`alpha` in Waxman's formulation); larger
    /// means denser graphs. Typical 0.15–0.4.
    pub alpha: f64,
    /// Distance decay (`beta`); larger favours long links. Typical 0.1–0.3.
    pub beta: f64,
}

impl Default for WaxmanParams {
    fn default() -> Self {
        WaxmanParams { alpha: 0.25, beta: 0.2 }
    }
}

fn place(n: usize, rng: &mut DetRng) -> Vec<(f64, f64)> {
    (0..n).map(|_| (rng.gen_f64() * PLANE_KM, rng.gen_f64() * PLANE_KM)).collect()
}

fn dist_km(a: (f64, f64), b: (f64, f64)) -> f64 {
    ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
}

fn delay_of(a: (f64, f64), b: (f64, f64)) -> SimDuration {
    // Enforce a 100 µs floor so co-located nodes never get zero delay.
    SimDuration::from_micros(((dist_km(a, b) * US_PER_KM) as u64).max(100))
}

/// Connects any disconnected components by attaching each unreachable node to
/// its geographically nearest reachable node.
fn ensure_connected(g: &mut Graph, pos: &[(f64, f64)]) {
    let mask = TopoMask::default();
    loop {
        let info = g.shortest_paths(NodeId(0), &mask);
        let Some(orphan) = (0..g.node_count())
            .find(|&i| i != 0 && info.dist[i].is_none())
        else {
            return;
        };
        let mut best: Option<(usize, f64)> = None;
        for i in 0..g.node_count() {
            if i == orphan || info.dist[i].is_none() && i != 0 {
                continue;
            }
            let d = dist_km(pos[orphan], pos[i]);
            if best.map(|(_, bd)| d < bd).unwrap_or(true) {
                best = Some((i, d));
            }
        }
        let (target, _) = best.expect("graph has at least two nodes");
        g.add_edge(
            NodeId(orphan as u32),
            NodeId(target as u32),
            delay_of(pos[orphan], pos[target]),
        );
    }
}

/// Generates a Waxman graph with `n` nodes.
///
/// Edge `(i, j)` exists with probability `alpha * exp(-d / (beta * L))`
/// where `d` is the Euclidean distance and `L` the plane diagonal. The result
/// is patched to be connected.
pub fn waxman(n: usize, params: WaxmanParams, seed: u64) -> Graph {
    assert!(n >= 2, "need at least two nodes");
    let mut rng = DetRng::new(seed ^ 0x8A1_77E5);
    let pos = place(n, &mut rng);
    let l = (2.0f64).sqrt() * PLANE_KM;
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let d = dist_km(pos[i], pos[j]);
            let p = params.alpha * (-d / (params.beta * l)).exp();
            if rng.gen_bool(p) {
                g.add_edge(NodeId(i as u32), NodeId(j as u32), delay_of(pos[i], pos[j]));
            }
        }
    }
    ensure_connected(&mut g, &pos);
    g
}

/// Generates a Barabási–Albert preferential-attachment graph with `n` nodes,
/// each new node attaching with `m` edges.
///
/// This is BRITE's "BA" model; it produces the heavy-tailed degree
/// distributions observed in router-level ISP maps.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Graph {
    assert!(n > m && m >= 1, "need n > m >= 1");
    let mut rng = DetRng::new(seed ^ 0xBA_BA_BA);
    let pos = place(n, &mut rng);
    let mut g = Graph::new(n);
    // Seed clique over the first m+1 nodes.
    for i in 0..=m {
        for j in (i + 1)..=m {
            g.add_edge(NodeId(i as u32), NodeId(j as u32), delay_of(pos[i], pos[j]));
        }
    }
    // Repeated-endpoint list for degree-proportional sampling.
    let mut endpoints: Vec<u32> = Vec::new();
    for e in g.edges() {
        endpoints.push(e.a.0);
        endpoints.push(e.b.0);
    }
    for v in (m + 1)..n {
        let mut chosen: Vec<u32> = Vec::new();
        let mut guard = 0;
        while chosen.len() < m && guard < 10_000 {
            guard += 1;
            let pick = endpoints[rng.gen_index(endpoints.len())];
            if !chosen.contains(&pick) {
                chosen.push(pick);
            }
        }
        for &t in &chosen {
            g.add_edge(NodeId(v as u32), NodeId(t), delay_of(pos[v], pos[t as usize]));
            endpoints.push(v as u32);
            endpoints.push(t);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waxman_connected_and_right_size() {
        for &n in &[20usize, 40, 80] {
            let g = waxman(n, WaxmanParams::default(), 7);
            assert_eq!(g.node_count(), n);
            assert!(g.is_connected(&TopoMask::default()), "n={n} disconnected");
            assert!(g.edge_count() >= n - 1);
        }
    }

    #[test]
    fn waxman_deterministic() {
        let a = waxman(30, WaxmanParams::default(), 5);
        let b = waxman(30, WaxmanParams::default(), 5);
        assert_eq!(a.edges(), b.edges());
        let c = waxman(30, WaxmanParams::default(), 6);
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    fn ba_connected_and_degree_sum() {
        let g = barabasi_albert(50, 2, 3);
        assert_eq!(g.node_count(), 50);
        assert!(g.is_connected(&TopoMask::default()));
        // Seed clique of 3 edges + ~2 per subsequent node (dedup may reduce
        // counts slightly, never increase them).
        assert!(g.edge_count() <= 3 + 47 * 2);
        assert!(g.edge_count() >= 49);
    }

    #[test]
    fn ba_deterministic() {
        let a = barabasi_albert(40, 2, 11);
        let b = barabasi_albert(40, 2, 11);
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn ba_hubs_emerge() {
        let g = barabasi_albert(100, 2, 13);
        let max_deg = (0..100).map(|i| g.degree(NodeId(i))).max().unwrap();
        assert!(max_deg >= 8, "expected a hub, max degree {max_deg}");
    }

    #[test]
    fn delays_positive() {
        let g = waxman(25, WaxmanParams::default(), 9);
        assert!(g.edges().iter().all(|e| e.delay > SimDuration::ZERO));
    }
}
