//! Small hand-built topologies, including the paper's case-study networks.

use crate::graph::Graph;
use netsim::{NodeId, SimDuration};

/// A line `0 — 1 — … — n-1` with uniform edge delay.
pub fn line(n: usize, delay: SimDuration) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge(NodeId(i as u32 - 1), NodeId(i as u32), delay);
    }
    g
}

/// A ring over `n` nodes with uniform edge delay.
pub fn ring(n: usize, delay: SimDuration) -> Graph {
    let mut g = line(n, delay);
    if n > 2 {
        g.add_edge(NodeId(n as u32 - 1), NodeId(0), delay);
    }
    g
}

/// A star with node 0 in the centre.
pub fn star(n: usize, delay: SimDuration) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge(NodeId(0), NodeId(i as u32), delay);
    }
    g
}

/// A `rows × cols` grid.
pub fn grid(rows: usize, cols: usize, delay: SimDuration) -> Graph {
    let mut g = Graph::new(rows * cols);
    let id = |r: usize, c: usize| NodeId((r * cols + c) as u32);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(id(r, c), id(r, c + 1), delay);
            }
            if r + 1 < rows {
                g.add_edge(id(r, c), id(r + 1, c), delay);
            }
        }
    }
    g
}

/// A complete graph over `n` nodes.
pub fn full_mesh(n: usize, delay: SimDuration) -> Graph {
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            g.add_edge(NodeId(i as u32), NodeId(j as u32), delay);
        }
    }
    g
}

/// Node roles in the Figure 4 (XORP BGP MED bug) topology.
///
/// The AS under study has routers `R1`, `R2`, `R3`; it peers with two other
/// ASes at external routers `ER1`, `ER2`, `ER3`, which advertise paths `p1`,
/// `p2`, `p3` respectively. `p1`/`p2` enter via `R1`, `p3` via `R2`, and all
/// three eventually reach `R3`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fig4Roles {
    /// Border router learning `p1` and `p2`.
    pub r1: NodeId,
    /// Border router learning `p3`.
    pub r2: NodeId,
    /// The router that runs the buggy decision process.
    pub r3: NodeId,
    /// External router advertising `p1`.
    pub er1: NodeId,
    /// External router advertising `p2`.
    pub er2: NodeId,
    /// External router advertising `p3`.
    pub er3: NodeId,
}

/// The six-machine emulation of Figure 4.
///
/// Internal links carry `internal_delay`; external (ER → border) links carry
/// `external_delay`.
pub fn fig4_bgp(internal_delay: SimDuration, external_delay: SimDuration) -> (Graph, Fig4Roles) {
    let roles = Fig4Roles {
        r1: NodeId(0),
        r2: NodeId(1),
        r3: NodeId(2),
        er1: NodeId(3),
        er2: NodeId(4),
        er3: NodeId(5),
    };
    let mut g = Graph::new(6);
    // iBGP full mesh inside the AS.
    g.add_edge(roles.r1, roles.r2, internal_delay);
    g.add_edge(roles.r1, roles.r3, internal_delay);
    g.add_edge(roles.r2, roles.r3, internal_delay);
    // eBGP sessions.
    g.add_edge(roles.er1, roles.r1, external_delay);
    g.add_edge(roles.er2, roles.r1, external_delay);
    g.add_edge(roles.er3, roles.r2, external_delay);
    (g, roles)
}

/// Node roles in the Figure 5 (Quagga RIP timer bug) topology.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fig5Roles {
    /// The router whose routing table develops the black hole.
    pub r1: NodeId,
    /// Main router towards the destination.
    pub r2: NodeId,
    /// Backup router towards the destination.
    pub r3: NodeId,
    /// The destination network's router.
    pub dest: NodeId,
}

/// The four-machine emulation of Figure 5: `R1` connects to `R2` (main) and
/// `R3` (backup); both reach the destination.
pub fn fig5_rip(delay: SimDuration) -> (Graph, Fig5Roles) {
    let roles =
        Fig5Roles { r1: NodeId(0), r2: NodeId(1), r3: NodeId(2), dest: NodeId(3) };
    let mut g = Graph::new(4);
    g.add_edge(roles.r1, roles.r2, delay);
    g.add_edge(roles.r1, roles.r3, delay);
    g.add_edge(roles.r2, roles.dest, delay);
    g.add_edge(roles.r3, roles.dest, delay);
    (g, roles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TopoMask;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    #[test]
    fn line_shape() {
        let g = line(5, ms(1));
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(NodeId(0)), 1);
        assert_eq!(g.degree(NodeId(2)), 2);
        assert!(g.is_connected(&TopoMask::default()));
    }

    #[test]
    fn ring_shape() {
        let g = ring(6, ms(1));
        assert_eq!(g.edge_count(), 6);
        assert!((0..6).all(|i| g.degree(NodeId(i)) == 2));
    }

    #[test]
    fn star_shape() {
        let g = star(7, ms(1));
        assert_eq!(g.degree(NodeId(0)), 6);
        assert!((1..7).all(|i| g.degree(NodeId(i)) == 1));
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4, ms(1));
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4);
        assert!(g.is_connected(&TopoMask::default()));
    }

    #[test]
    fn full_mesh_shape() {
        let g = full_mesh(5, ms(1));
        assert_eq!(g.edge_count(), 10);
        assert!((0..5).all(|i| g.degree(NodeId(i)) == 4));
    }

    #[test]
    fn fig4_wiring() {
        let (g, r) = fig4_bgp(ms(2), ms(5));
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 6);
        assert!(g.has_edge(r.er1, r.r1));
        assert!(g.has_edge(r.er2, r.r1));
        assert!(g.has_edge(r.er3, r.r2));
        assert!(g.has_edge(r.r1, r.r3));
        assert!(g.has_edge(r.r2, r.r3));
        assert!(!g.has_edge(r.er1, r.r3));
        assert_eq!(g.edge_delay(r.er1, r.r1), Some(ms(5)));
        assert_eq!(g.edge_delay(r.r1, r.r3), Some(ms(2)));
    }

    #[test]
    fn fig5_wiring() {
        let (g, r) = fig5_rip(ms(3));
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert!(g.has_edge(r.r1, r.r2));
        assert!(g.has_edge(r.r1, r.r3));
        assert!(g.has_edge(r.r2, r.dest));
        assert!(g.has_edge(r.r3, r.dest));
        assert!(!g.has_edge(r.r1, r.dest));
    }
}
