//! Topologies and workloads for the DEFINED evaluation.
//!
//! The paper evaluates on Rocketfuel PoP-level ISP maps (Sprintlink, Ebone,
//! Level3), BRITE-generated graphs, and an OSPF event trace from a Tier-1 ISP.
//! None of those datasets ship with this reproduction, so this crate provides
//! faithful *synthetic* stand-ins (see DESIGN.md §2 for the substitution
//! argument):
//!
//! * [`Graph`] — an undirected weighted graph with deterministic shortest-path
//!   routines used both to wire the simulator and to compute routing ground
//!   truth.
//! * [`canonical`] — small hand-built topologies, including the exact
//!   Figure 4 (BGP MED bug) and Figure 5 (RIP timer bug) networks.
//! * [`rocketfuel`] — ISP-like PoP graphs with the paper's node counts.
//! * [`brite`] — Waxman and Barabási–Albert generators (the models BRITE
//!   implements).
//! * [`trace`] — Tier-1-like OSPF event trace synthesis and Poisson event
//!   workloads.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod brite;
pub mod canonical;
mod graph;
pub mod rocketfuel;
pub mod trace;

pub use graph::{EdgeId, Graph, GraphEdge, PathInfo, TopoMask};
