//! Undirected weighted graphs with deterministic shortest paths.

use netsim::{LinkParams, NodeId, SimDuration};
use std::collections::HashSet;

/// Index of an undirected edge within a [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EdgeId(pub u32);

/// One undirected edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GraphEdge {
    /// Lower endpoint (by id).
    pub a: NodeId,
    /// Higher endpoint (by id).
    pub b: NodeId,
    /// Propagation delay, used as the link cost.
    pub delay: SimDuration,
}

/// An undirected graph with delay-weighted edges.
///
/// Node ids are dense: `0..node_count`. Edge endpoints are normalised so that
/// `a < b`.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    n: usize,
    edges: Vec<GraphEdge>,
    adj: Vec<Vec<(NodeId, EdgeId)>>,
}

/// A set of failed elements, used to compute post-failure ground truth.
#[derive(Clone, Debug, Default)]
pub struct TopoMask {
    /// Downed undirected links, stored with `a < b`.
    pub links_down: HashSet<(NodeId, NodeId)>,
    /// Downed nodes.
    pub nodes_down: HashSet<NodeId>,
}

impl TopoMask {
    /// Marks the `x — y` link down.
    pub fn link_down(&mut self, x: NodeId, y: NodeId) {
        self.links_down.insert(ordered(x, y));
    }

    /// Marks the `x — y` link up again.
    pub fn link_up(&mut self, x: NodeId, y: NodeId) {
        self.links_down.remove(&ordered(x, y));
    }

    /// Marks a node down.
    pub fn node_down(&mut self, x: NodeId) {
        self.nodes_down.insert(x);
    }

    /// Marks a node up again.
    pub fn node_up(&mut self, x: NodeId) {
        self.nodes_down.remove(&x);
    }

    /// Whether the mask disables the given edge.
    pub fn blocks(&self, e: &GraphEdge) -> bool {
        self.links_down.contains(&(e.a, e.b))
            || self.nodes_down.contains(&e.a)
            || self.nodes_down.contains(&e.b)
    }
}

fn ordered(x: NodeId, y: NodeId) -> (NodeId, NodeId) {
    if x <= y {
        (x, y)
    } else {
        (y, x)
    }
}

/// Shortest-path results from one source.
#[derive(Clone, Debug)]
pub struct PathInfo {
    /// `dist[v]` is the total delay of the shortest path, or `None` if
    /// unreachable.
    pub dist: Vec<Option<SimDuration>>,
    /// `first_hop[v]` is the deterministic first hop on the shortest path
    /// from the source towards `v` (ties broken by smallest predecessor id,
    /// matching an OSPF router-id tie-break), or `None` if unreachable or
    /// `v` is the source.
    pub first_hop: Vec<Option<NodeId>>,
}

impl Graph {
    /// Creates an edgeless graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        Graph { n, edges: Vec::new(), adj: vec![Vec::new(); n] }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All edges, in insertion order.
    pub fn edges(&self) -> &[GraphEdge] {
        &self.edges
    }

    /// Adds an undirected edge. Parallel edges are rejected; the first wins.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `x == y`.
    pub fn add_edge(&mut self, x: NodeId, y: NodeId, delay: SimDuration) -> Option<EdgeId> {
        assert!(x.index() < self.n && y.index() < self.n, "endpoint out of range");
        assert_ne!(x, y, "self-loop");
        let (a, b) = ordered(x, y);
        if self.has_edge(a, b) {
            return None;
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(GraphEdge { a, b, delay });
        self.adj[a.index()].push((b, id));
        self.adj[b.index()].push((a, id));
        Some(id)
    }

    /// Whether an edge exists between `x` and `y`.
    pub fn has_edge(&self, x: NodeId, y: NodeId) -> bool {
        self.adj[x.index()].iter().any(|&(nb, _)| nb == y)
    }

    /// The delay of the `x — y` edge, if present.
    pub fn edge_delay(&self, x: NodeId, y: NodeId) -> Option<SimDuration> {
        self.adj[x.index()]
            .iter()
            .find(|&&(nb, _)| nb == y)
            .map(|&(_, id)| self.edges[id.0 as usize].delay)
    }

    /// Neighbours of `x` in ascending id order.
    pub fn neighbors(&self, x: NodeId) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.adj[x.index()].iter().map(|&(nb, _)| nb).collect();
        v.sort_unstable();
        v
    }

    /// Degree of `x`.
    pub fn degree(&self, x: NodeId) -> usize {
        self.adj[x.index()].len()
    }

    /// Deterministic Dijkstra from `src`, honouring the failure mask.
    pub fn shortest_paths(&self, src: NodeId, mask: &TopoMask) -> PathInfo {
        let n = self.n;
        let mut dist: Vec<Option<SimDuration>> = vec![None; n];
        let mut first_hop: Vec<Option<NodeId>> = vec![None; n];
        let mut done = vec![false; n];
        if mask.nodes_down.contains(&src) {
            return PathInfo { dist, first_hop };
        }
        // (dist, node, first_hop) in a min-heap; ties resolved by node id and
        // then first-hop id, which keeps results independent of insertion
        // order.
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut heap: BinaryHeap<Reverse<(SimDuration, NodeId, Option<NodeId>)>> =
            BinaryHeap::new();
        dist[src.index()] = Some(SimDuration::ZERO);
        heap.push(Reverse((SimDuration::ZERO, src, None)));
        while let Some(Reverse((d, u, fh))) = heap.pop() {
            if done[u.index()] {
                continue;
            }
            done[u.index()] = true;
            first_hop[u.index()] = fh;
            for &(v, eid) in &self.adj[u.index()] {
                let e = &self.edges[eid.0 as usize];
                if mask.blocks(e) || done[v.index()] {
                    continue;
                }
                let nd = d + e.delay;
                let candidate_fh = if u == src { Some(v) } else { fh };
                let better = match dist[v.index()] {
                    None => true,
                    Some(old) => nd < old,
                };
                if better {
                    dist[v.index()] = Some(nd);
                    heap.push(Reverse((nd, v, candidate_fh)));
                } else if dist[v.index()] == Some(nd) && !done[v.index()] {
                    // Equal-cost tie: push the alternative so the heap's
                    // (dist, node, first_hop) ordering settles ties on the
                    // smallest first hop, deterministically.
                    heap.push(Reverse((nd, v, candidate_fh)));
                }
            }
        }
        PathInfo { dist, first_hop }
    }

    /// Whether the graph (minus the mask) is connected over up nodes.
    pub fn is_connected(&self, mask: &TopoMask) -> bool {
        let up: Vec<NodeId> = (0..self.n)
            .map(|i| NodeId(i as u32))
            .filter(|id| !mask.nodes_down.contains(id))
            .collect();
        let Some(&start) = up.first() else { return true };
        let info = self.shortest_paths(start, mask);
        up.iter().all(|id| info.dist[id.index()].is_some())
    }

    /// The largest shortest-path delay between any reachable pair
    /// (the delay diameter), used to size DEFINED's history horizon.
    pub fn delay_diameter(&self, mask: &TopoMask) -> SimDuration {
        let mut max = SimDuration::ZERO;
        for i in 0..self.n {
            let src = NodeId(i as u32);
            if mask.nodes_down.contains(&src) {
                continue;
            }
            let info = self.shortest_paths(src, mask);
            for d in info.dist.iter().flatten() {
                if *d > max {
                    max = *d;
                }
            }
        }
        max
    }

    /// Mean edge delay.
    pub fn mean_delay(&self) -> SimDuration {
        if self.edges.is_empty() {
            return SimDuration::ZERO;
        }
        let total: u64 = self.edges.iter().map(|e| e.delay.0).sum();
        SimDuration(total / self.edges.len() as u64)
    }

    /// Converts the graph into simulator link triples, applying `params_for`
    /// to each edge (e.g. to attach jitter or channel mode).
    pub fn to_links(
        &self,
        mut params_for: impl FnMut(&GraphEdge) -> LinkParams,
    ) -> Vec<(NodeId, NodeId, LinkParams)> {
        self.edges.iter().map(|e| (e.a, e.b, params_for(e))).collect()
    }

    /// The full routing ground truth: `table[src][dst]` is the deterministic
    /// first hop from `src` to `dst` under the mask.
    pub fn ground_truth(&self, mask: &TopoMask) -> Vec<Vec<Option<NodeId>>> {
        (0..self.n)
            .map(|i| self.shortest_paths(NodeId(i as u32), mask).first_hop)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    /// Square with a diagonal: 0-1 (1ms), 1-2 (1ms), 2-3 (1ms), 3-0 (1ms),
    /// 0-2 (5ms).
    fn square() -> Graph {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1), ms(1));
        g.add_edge(NodeId(1), NodeId(2), ms(1));
        g.add_edge(NodeId(2), NodeId(3), ms(1));
        g.add_edge(NodeId(3), NodeId(0), ms(1));
        g.add_edge(NodeId(0), NodeId(2), ms(5));
        g
    }

    #[test]
    fn shortest_paths_basic() {
        let g = square();
        let info = g.shortest_paths(NodeId(0), &TopoMask::default());
        assert_eq!(info.dist[2], Some(ms(2)));
        assert_eq!(info.dist[1], Some(ms(1)));
        // To node 2, the two 2ms paths go via 1 and via 3; the tie-break
        // must be deterministic.
        let via = info.first_hop[2].unwrap();
        assert!(via == NodeId(1) || via == NodeId(3));
        let again = g.shortest_paths(NodeId(0), &TopoMask::default());
        assert_eq!(again.first_hop[2], info.first_hop[2]);
    }

    #[test]
    fn mask_reroutes() {
        let g = square();
        let mut mask = TopoMask::default();
        mask.link_down(NodeId(0), NodeId(1));
        mask.link_down(NodeId(3), NodeId(0));
        let info = g.shortest_paths(NodeId(0), &mask);
        // Only the 5ms diagonal remains.
        assert_eq!(info.dist[2], Some(ms(5)));
        assert_eq!(info.first_hop[2], Some(NodeId(2)));
        assert_eq!(info.dist[1], Some(ms(6)));
    }

    #[test]
    fn node_down_disconnects() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), ms(1));
        g.add_edge(NodeId(1), NodeId(2), ms(1));
        let mut mask = TopoMask::default();
        assert!(g.is_connected(&mask));
        mask.node_down(NodeId(1));
        assert!(!g.is_connected(&mask));
        let info = g.shortest_paths(NodeId(0), &mask);
        assert_eq!(info.dist[2], None);
        assert_eq!(info.first_hop[2], None);
    }

    #[test]
    fn parallel_edges_rejected() {
        let mut g = Graph::new(2);
        assert!(g.add_edge(NodeId(0), NodeId(1), ms(1)).is_some());
        assert!(g.add_edge(NodeId(1), NodeId(0), ms(2)).is_none());
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge_delay(NodeId(0), NodeId(1)), Some(ms(1)));
    }

    #[test]
    fn diameter_and_mean() {
        let g = square();
        assert_eq!(g.delay_diameter(&TopoMask::default()), ms(2));
        assert_eq!(g.mean_delay(), SimDuration((4 * ms(1).0 + ms(5).0) / 5));
    }

    #[test]
    fn ground_truth_covers_all_pairs() {
        let g = square();
        let gt = g.ground_truth(&TopoMask::default());
        for (src, row) in gt.iter().enumerate() {
            for (dst, hop) in row.iter().enumerate() {
                if src == dst {
                    assert!(hop.is_none());
                } else {
                    assert!(hop.is_some(), "{src}->{dst} missing");
                }
            }
        }
    }

    #[test]
    fn mask_unblocks() {
        let _ = square();
        let mut mask = TopoMask::default();
        mask.link_down(NodeId(0), NodeId(1));
        mask.link_up(NodeId(1), NodeId(0));
        assert!(mask.links_down.is_empty());
        mask.node_down(NodeId(2));
        mask.node_up(NodeId(2));
        assert!(mask.nodes_down.is_empty());
    }

    #[test]
    fn to_links_maps_every_edge() {
        let g = square();
        let links = g.to_links(|e| LinkParams::with_delay(e.delay));
        assert_eq!(links.len(), g.edge_count());
        assert!(links.iter().any(|&(a, b, p)| {
            a == NodeId(0) && b == NodeId(2) && p.delay == ms(5)
        }));
    }
}
