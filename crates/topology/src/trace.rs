//! Synthetic network event traces.
//!
//! The paper replays OSPF traces from a Tier-1 ISP's area-0 network — 651
//! events collected over two weeks (Nov 1–14, 2009) — by randomly mapping
//! them onto Rocketfuel topologies (§5.1). The trace itself is proprietary;
//! [`tier1_trace`] synthesises a workload with its published statistics:
//! link-flap events dominate, a few problem links flap repeatedly (heavy
//! tail), and occasional node restarts occur. [`poisson_events`] generates
//! the fixed-rate workloads of Fig. 8d.

use crate::graph::Graph;
use netsim::{DetRng, NodeId, SimDuration, SimTime};

/// One control-plane-visible external event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A bidirectional link failed.
    LinkDown(NodeId, NodeId),
    /// A previously failed link recovered.
    LinkUp(NodeId, NodeId),
    /// A router crashed.
    NodeDown(NodeId),
    /// A previously crashed router restarted.
    NodeUp(NodeId),
}

/// A timestamped external event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetworkEvent {
    /// When the event occurs.
    pub at: SimTime,
    /// What happens.
    pub kind: EventKind,
}

/// Parameters for Tier-1 trace synthesis.
#[derive(Clone, Copy, Debug)]
pub struct Tier1Spec {
    /// Total number of events to generate (the paper's trace has 651).
    pub events: usize,
    /// Duration the trace spans.
    pub duration: SimDuration,
    /// Fraction of events that are node (rather than link) events.
    pub node_event_frac: f64,
    /// Pareto shape for flap-burst sizes; smaller is heavier-tailed.
    pub burst_alpha: f64,
    /// Mean outage length before the matching `up` event.
    pub mean_outage: SimDuration,
}

impl Default for Tier1Spec {
    fn default() -> Self {
        Tier1Spec {
            events: 651,
            // The experiments compress two weeks of wall time; what matters
            // is inter-event spacing relative to convergence time.
            duration: SimDuration::from_secs(6510),
            node_event_frac: 0.08,
            burst_alpha: 1.3,
            mean_outage: SimDuration::from_secs(4),
        }
    }
}

/// Synthesises a Tier-1-like event trace mapped onto `g`.
///
/// Events come in down/up pairs (each pair counts as two events). A small set
/// of "problem links" is chosen per the heavy-tailed burst model and flaps
/// repeatedly, which is the pattern ISP traces show. Events are sorted by
/// time; down/up pairs never interleave per element.
pub fn tier1_trace(g: &Graph, spec: Tier1Spec, seed: u64) -> Vec<NetworkEvent> {
    assert!(g.edge_count() > 0, "graph has no links");
    let mut rng = DetRng::new(seed ^ 0x71E2_0009);
    let mut events: Vec<NetworkEvent> = Vec::with_capacity(spec.events);
    let horizon = spec.duration.as_secs_f64();
    let mut element_free_at: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();

    while events.len() + 1 < spec.events {
        let t0 = rng.gen_f64() * horizon;
        let is_node = rng.gen_bool(spec.node_event_frac);
        // Burst size: how many times this element flaps in a row.
        let burst = rng.gen_pareto(1.0, spec.burst_alpha).min(12.0) as usize;
        if is_node {
            let node = NodeId(rng.gen_index(g.node_count()) as u32);
            let key = 1_000_000 + node.0 as u64;
            let mut t = t0.max(*element_free_at.get(&key).unwrap_or(&0.0));
            for _ in 0..burst {
                if events.len() + 1 >= spec.events {
                    break;
                }
                let outage = rng.gen_exp(1.0 / spec.mean_outage.as_secs_f64());
                events.push(NetworkEvent {
                    at: SimTime::from_millis((t * 1000.0) as u64),
                    kind: EventKind::NodeDown(node),
                });
                t += outage;
                events.push(NetworkEvent {
                    at: SimTime::from_millis((t * 1000.0) as u64),
                    kind: EventKind::NodeUp(node),
                });
                t += rng.gen_exp(1.0 / 30.0);
            }
            element_free_at.insert(key, t);
        } else {
            let e = g.edges()[rng.gen_index(g.edge_count())];
            let key = (e.a.0 as u64) << 32 | e.b.0 as u64;
            let mut t = t0.max(*element_free_at.get(&key).unwrap_or(&0.0));
            for _ in 0..burst {
                if events.len() + 1 >= spec.events {
                    break;
                }
                let outage = rng.gen_exp(1.0 / spec.mean_outage.as_secs_f64());
                events.push(NetworkEvent {
                    at: SimTime::from_millis((t * 1000.0) as u64),
                    kind: EventKind::LinkDown(e.a, e.b),
                });
                t += outage;
                events.push(NetworkEvent {
                    at: SimTime::from_millis((t * 1000.0) as u64),
                    kind: EventKind::LinkUp(e.a, e.b),
                });
                t += rng.gen_exp(1.0 / 30.0);
            }
            element_free_at.insert(key, t);
        }
    }
    events.sort_by_key(|e| e.at);
    events
}

/// Rescales a trace so its last event lands at `duration`, preserving
/// relative spacing. Used to compress the two-week trace into tractable
/// simulated time.
pub fn compress(events: &[NetworkEvent], duration: SimDuration) -> Vec<NetworkEvent> {
    let Some(last) = events.last() else { return Vec::new() };
    if last.at == SimTime::ZERO {
        return events.to_vec();
    }
    let scale = duration.as_secs_f64() / last.at.as_secs_f64();
    events
        .iter()
        .map(|e| NetworkEvent {
            at: SimTime((e.at.0 as f64 * scale) as u64),
            kind: e.kind,
        })
        .collect()
}

/// Generates link-flap events at a fixed average rate (events per second)
/// over `duration` — the workload of Fig. 8d.
///
/// Each generated event is a link-down immediately followed (after
/// `outage`) by the matching link-up; `rate` counts the down events.
pub fn poisson_events(
    g: &Graph,
    rate: f64,
    duration: SimDuration,
    outage: SimDuration,
    seed: u64,
) -> Vec<NetworkEvent> {
    assert!(rate > 0.0);
    assert!(g.edge_count() > 0, "graph has no links");
    let mut rng = DetRng::new(seed ^ 0xF01_5504);
    let mut events = Vec::new();
    let mut t = 0.0;
    loop {
        t += rng.gen_exp(rate);
        let at = SimTime::from_millis((t * 1000.0) as u64);
        if at > SimTime::ZERO + duration {
            break;
        }
        let e = g.edges()[rng.gen_index(g.edge_count())];
        events.push(NetworkEvent { at, kind: EventKind::LinkDown(e.a, e.b) });
        events.push(NetworkEvent { at: at + outage, kind: EventKind::LinkUp(e.a, e.b) });
    }
    events.sort_by_key(|e| e.at);
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical;

    fn graph() -> Graph {
        canonical::grid(4, 4, SimDuration::from_millis(2))
    }

    #[test]
    fn tier1_event_count_matches_spec() {
        let g = graph();
        let ev = tier1_trace(&g, Tier1Spec::default(), 1);
        // Pairs may overshoot by at most one event below the target.
        assert!(ev.len() >= 650 && ev.len() <= 651, "got {}", ev.len());
    }

    #[test]
    fn tier1_sorted_and_paired() {
        let g = graph();
        let ev = tier1_trace(&g, Tier1Spec::default(), 2);
        assert!(ev.windows(2).all(|w| w[0].at <= w[1].at));
        let downs = ev
            .iter()
            .filter(|e| matches!(e.kind, EventKind::LinkDown(..) | EventKind::NodeDown(_)))
            .count();
        let ups = ev.len() - downs;
        assert_eq!(downs, ups);
    }

    #[test]
    fn tier1_down_up_alternate_per_element() {
        let g = graph();
        let ev = tier1_trace(&g, Tier1Spec::default(), 3);
        use std::collections::HashMap;
        let mut state: HashMap<String, bool> = HashMap::new();
        for e in &ev {
            let (key, down) = match e.kind {
                EventKind::LinkDown(a, b) => (format!("l{}:{}", a.0, b.0), true),
                EventKind::LinkUp(a, b) => (format!("l{}:{}", a.0, b.0), false),
                EventKind::NodeDown(n) => (format!("n{}", n.0), true),
                EventKind::NodeUp(n) => (format!("n{}", n.0), false),
            };
            let was_down = state.entry(key.clone()).or_insert(false);
            assert_ne!(*was_down, down, "element {key} got repeated {down}-event");
            *was_down = down;
        }
    }

    #[test]
    fn tier1_deterministic() {
        let g = graph();
        assert_eq!(
            tier1_trace(&g, Tier1Spec::default(), 9),
            tier1_trace(&g, Tier1Spec::default(), 9)
        );
    }

    #[test]
    fn tier1_has_bursts() {
        let g = graph();
        let ev = tier1_trace(&g, Tier1Spec::default(), 4);
        use std::collections::HashMap;
        let mut per_element: HashMap<String, usize> = HashMap::new();
        for e in &ev {
            if let EventKind::LinkDown(a, b) = e.kind {
                *per_element.entry(format!("{}:{}", a.0, b.0)).or_default() += 1;
            }
        }
        let max = per_element.values().copied().max().unwrap_or(0);
        assert!(max >= 3, "expected a flapping problem link, max burst {max}");
    }

    #[test]
    fn compress_rescales() {
        let g = graph();
        let ev = tier1_trace(&g, Tier1Spec::default(), 5);
        let short = compress(&ev, SimDuration::from_secs(60));
        assert_eq!(short.len(), ev.len());
        assert!(short.last().unwrap().at <= SimTime::from_secs(61));
        assert!(short.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn poisson_rate_approximates() {
        let g = graph();
        let ev = poisson_events(&g, 5.0, SimDuration::from_secs(100), SimDuration::from_secs(1), 6);
        let downs = ev.iter().filter(|e| matches!(e.kind, EventKind::LinkDown(..))).count();
        assert!((350..=650).contains(&downs), "got {downs} downs for rate 5/s over 100s");
    }

    #[test]
    fn poisson_empty_graph_panics() {
        let g = Graph::new(2);
        let result = std::panic::catch_unwind(|| {
            poisson_events(&g, 1.0, SimDuration::from_secs(1), SimDuration::from_secs(1), 1)
        });
        assert!(result.is_err());
    }
}
