//! A RIP-like distance-vector control plane reproducing the Quagga 0.96.5
//! timer-refresh bug (paper §4, Figure 5).
//!
//! Each route carries a timeout timer refreshed by matching announcements
//! and a garbage-collection timer started at expiry. The Quagga bug: when an
//! announcement for an already-known destination arrives, the implementation
//! refreshes the route's timeout after matching on the **destination field
//! only**, ignoring the next hop ([`RefreshMode::DestinationOnly`]). With a
//! main and a backup provider for the same destination, the backup's
//! periodic announcements keep refreshing the route *through the dead main
//! router*, leaving a black hole whose appearance depends on announcement
//! timing relative to the timeout — the timing bug DEFINED reproduces
//! deterministically.

use crate::enc::{put_u32, put_u64, put_u8, Reader};
use crate::{ControlPlane, Outbox, Snapshotable, TimerToken};
use netsim::NodeId;
use std::collections::BTreeMap;

/// A route prefix (opaque u32, as in [`crate::bgp`]).
pub type Prefix = u32;

/// The metric value treated as unreachable.
pub const INFINITY: u32 = 16;

const TOK_UPDATE: u64 = 1 << 60;
const TOK_TIMEOUT: u64 = 2 << 60;
const TOK_GC: u64 = 3 << 60;

/// How announcement-to-route matching is performed on refresh.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefreshMode {
    /// Quagga 0.96.5: match on destination only; any announcement for the
    /// destination refreshes the installed route's timer.
    DestinationOnly,
    /// Fixed behaviour: refresh only when the announcement comes from the
    /// installed next hop.
    DestinationAndNextHop,
}

/// RIP configuration (all intervals in virtual-time ticks).
#[derive(Clone, Copy, Debug)]
pub struct RipConfig {
    /// Periodic full-table announcement interval (RFC default 30 s; the
    /// emulation shrinks it to keep runs short).
    pub update_ticks: u64,
    /// Route timeout. Chosen as a small multiple of `update_ticks` so the
    /// refresh race of Figure 5 is exercised.
    pub timeout_ticks: u64,
    /// Garbage-collection interval after timeout.
    pub gc_ticks: u64,
    /// The refresh matching mode (the bug toggle).
    pub refresh: RefreshMode,
    /// Whether to apply split horizon when announcing.
    pub split_horizon: bool,
}

impl RipConfig {
    /// Emulation defaults: update every 4 ticks (1 s), timeout 12 ticks
    /// (3 s), GC 8 ticks, split horizon on.
    pub fn emulation(refresh: RefreshMode) -> Self {
        RipConfig {
            update_ticks: 4,
            timeout_ticks: 12,
            gc_ticks: 8,
            refresh,
            split_horizon: true,
        }
    }
}

/// One installed route.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RipRoute {
    /// Current metric (hop count).
    pub metric: u32,
    /// Next hop, or `None` for directly connected prefixes.
    pub next_hop: Option<NodeId>,
    /// Whether the route is in garbage-collection (metric advertised as
    /// infinity).
    pub garbage: bool,
}

/// RIP wire message: a full-table announcement.
#[derive(Clone, Debug, PartialEq)]
pub struct RipAnnouncement {
    /// `(prefix, metric)` entries.
    pub entries: Vec<(Prefix, u32)>,
}

/// External inputs.
#[derive(Clone, Debug, PartialEq)]
pub enum RipExt {
    /// Attach a directly connected prefix (advertised with metric 1).
    Connect {
        /// The prefix to own.
        prefix: Prefix,
    },
}

/// The RIP control plane for one router.
#[derive(Clone, Debug)]
pub struct RipProcess {
    id: NodeId,
    cfg: RipConfig,
    neighbors: Vec<NodeId>,
    table: BTreeMap<Prefix, RipRoute>,
    /// Timer-refresh events observed, per prefix — the quantity the case
    /// study inspects while stepping.
    refreshes: BTreeMap<Prefix, u64>,
}

impl RipProcess {
    /// Creates a router with the given neighbour set.
    pub fn new(id: NodeId, mut neighbors: Vec<NodeId>, cfg: RipConfig) -> Self {
        neighbors.sort_unstable();
        RipProcess { id, cfg, neighbors, table: BTreeMap::new(), refreshes: BTreeMap::new() }
    }

    /// The current route for `prefix`.
    pub fn route(&self, prefix: Prefix) -> Option<&RipRoute> {
        self.table.get(&prefix)
    }

    /// The full table.
    pub fn table(&self) -> &BTreeMap<Prefix, RipRoute> {
        &self.table
    }

    /// Timer refreshes recorded for `prefix`.
    pub fn refresh_count(&self, prefix: Prefix) -> u64 {
        self.refreshes.get(&prefix).copied().unwrap_or(0)
    }

    /// Applies the fix in place (the case study's patch step).
    pub fn set_refresh_mode(&mut self, mode: RefreshMode) {
        self.cfg.refresh = mode;
    }

    fn announce(&self, out: &mut Outbox<RipAnnouncement>) {
        for &nb in &self.neighbors {
            let entries: Vec<(Prefix, u32)> = self
                .table
                .iter()
                .filter(|(_, r)| {
                    // Split horizon: do not announce a route back to the
                    // neighbour it was learned from.
                    !(self.cfg.split_horizon && r.next_hop == Some(nb))
                })
                .map(|(&p, r)| (p, if r.garbage { INFINITY } else { r.metric }))
                .collect();
            if !entries.is_empty() {
                out.send(nb, RipAnnouncement { entries });
            }
        }
    }

    fn timeout_token(prefix: Prefix) -> TimerToken {
        TimerToken(TOK_TIMEOUT | prefix as u64)
    }

    fn gc_token(prefix: Prefix) -> TimerToken {
        TimerToken(TOK_GC | prefix as u64)
    }

    fn refresh(&mut self, prefix: Prefix, out: &mut Outbox<RipAnnouncement>) {
        *self.refreshes.entry(prefix).or_default() += 1;
        out.arm(Self::timeout_token(prefix), self.cfg.timeout_ticks);
    }

    fn handle_entry(
        &mut self,
        from: NodeId,
        prefix: Prefix,
        adv_metric: u32,
        out: &mut Outbox<RipAnnouncement>,
    ) {
        let metric = (adv_metric + 1).min(INFINITY);
        match self.table.get(&prefix).copied() {
            None => {
                if metric < INFINITY {
                    self.table.insert(
                        prefix,
                        RipRoute { metric, next_hop: Some(from), garbage: false },
                    );
                    self.refresh(prefix, out);
                }
            }
            Some(route) => {
                if route.next_hop.is_none() {
                    return; // Directly connected routes never change.
                }
                let from_next_hop = route.next_hop == Some(from);
                if from_next_hop {
                    // Announcement from the installed gateway: adopt its
                    // metric unconditionally.
                    if metric >= INFINITY {
                        self.start_gc(prefix, out);
                    } else {
                        self.table.insert(
                            prefix,
                            RipRoute { metric, next_hop: Some(from), garbage: false },
                        );
                        self.refresh(prefix, out);
                    }
                } else if metric < route.metric || route.garbage {
                    // Strictly better (or replacing a dying route): switch.
                    self.table.insert(
                        prefix,
                        RipRoute { metric, next_hop: Some(from), garbage: false },
                    );
                    out.cancel(Self::gc_token(prefix));
                    self.refresh(prefix, out);
                } else if metric < INFINITY {
                    // Equal-or-worse announcement from a different gateway.
                    // Correct RIP ignores it; buggy Quagga matches on the
                    // destination alone and refreshes the installed route's
                    // timer anyway.
                    if self.cfg.refresh == RefreshMode::DestinationOnly {
                        self.refresh(prefix, out);
                    }
                }
            }
        }
    }

    fn start_gc(&mut self, prefix: Prefix, out: &mut Outbox<RipAnnouncement>) {
        if let Some(route) = self.table.get_mut(&prefix) {
            if route.next_hop.is_none() || route.garbage {
                return;
            }
            route.garbage = true;
            route.metric = INFINITY;
            out.cancel(Self::timeout_token(prefix));
            out.arm(Self::gc_token(prefix), self.cfg.gc_ticks);
        }
    }
}

impl ControlPlane for RipProcess {
    type Msg = RipAnnouncement;
    type Ext = RipExt;

    fn on_start(&mut self, out: &mut Outbox<RipAnnouncement>) {
        out.arm(TimerToken(TOK_UPDATE), self.cfg.update_ticks);
    }

    fn on_message(&mut self, from: NodeId, msg: &RipAnnouncement, out: &mut Outbox<RipAnnouncement>) {
        for &(prefix, metric) in &msg.entries {
            self.handle_entry(from, prefix, metric, out);
        }
    }

    fn on_external(&mut self, ev: &RipExt, out: &mut Outbox<RipAnnouncement>) {
        match ev {
            RipExt::Connect { prefix } => {
                self.table.insert(
                    *prefix,
                    RipRoute { metric: 1, next_hop: None, garbage: false },
                );
                // Announce eagerly so connectivity spreads without waiting a
                // full period.
                self.announce(out);
            }
        }
    }

    fn on_timer(&mut self, token: TimerToken, out: &mut Outbox<RipAnnouncement>) {
        let tag = token.0 >> 60;
        let prefix = (token.0 & 0xFFFF_FFFF) as Prefix;
        if tag == TOK_UPDATE >> 60 {
            self.announce(out);
            out.arm(TimerToken(TOK_UPDATE), self.cfg.update_ticks);
        } else if tag == TOK_GC >> 60 {
            if self.table.get(&prefix).map(|r| r.garbage).unwrap_or(false) {
                self.table.remove(&prefix);
            }
        } else if tag == TOK_TIMEOUT >> 60 {
            self.start_gc(prefix, out);
        }
    }

}

impl Snapshotable for RipProcess {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_u32(buf, self.id.0);
        put_u64(buf, self.cfg.update_ticks);
        put_u64(buf, self.cfg.timeout_ticks);
        put_u64(buf, self.cfg.gc_ticks);
        put_u8(buf, matches!(self.cfg.refresh, RefreshMode::DestinationOnly) as u8);
        put_u8(buf, self.cfg.split_horizon as u8);
        put_u64(buf, self.neighbors.len() as u64);
        for n in &self.neighbors {
            put_u32(buf, n.0);
        }
        put_u64(buf, self.table.len() as u64);
        for (p, r) in &self.table {
            put_u32(buf, *p);
            put_u32(buf, r.metric);
            put_u32(buf, r.next_hop.map(|n| n.0).unwrap_or(u32::MAX));
            put_u8(buf, r.garbage as u8);
        }
        put_u64(buf, self.refreshes.len() as u64);
        for (p, c) in &self.refreshes {
            put_u32(buf, *p);
            put_u64(buf, *c);
        }
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader::new(bytes);
        let id = NodeId(r.u32()?);
        let cfg = RipConfig {
            update_ticks: r.u64()?,
            timeout_ticks: r.u64()?,
            gc_ticks: r.u64()?,
            refresh: if r.boolean()? {
                RefreshMode::DestinationOnly
            } else {
                RefreshMode::DestinationAndNextHop
            },
            split_horizon: r.boolean()?,
        };
        let n_nbr = r.len()?;
        let mut neighbors = Vec::with_capacity(n_nbr);
        for _ in 0..n_nbr {
            neighbors.push(NodeId(r.u32()?));
        }
        let n_table = r.len()?;
        let mut table = BTreeMap::new();
        for _ in 0..n_table {
            let p = r.u32()?;
            let metric = r.u32()?;
            let nh = r.u32()?;
            let garbage = r.boolean()?;
            table.insert(
                p,
                RipRoute {
                    metric,
                    next_hop: if nh == u32::MAX { None } else { Some(NodeId(nh)) },
                    garbage,
                },
            );
        }
        let n_ref = r.len()?;
        let mut refreshes = BTreeMap::new();
        for _ in 0..n_ref {
            let p = r.u32()?;
            let c = r.u64()?;
            refreshes.insert(p, c);
        }
        Some(RipProcess { id, cfg, neighbors, table, refreshes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NativeAdapter;
    use netsim::{JitterModel, LinkParams, SimBuilder, SimDuration, SimTime, Simulator};
    use topology::canonical;

    const TICK: SimDuration = SimDuration(250_000_000);
    const DEST: Prefix = 77;

    fn fig5_sim(
        refresh: RefreshMode,
        seed: u64,
        jitter: f64,
    ) -> (Simulator<NativeAdapter<RipProcess>>, canonical::Fig5Roles) {
        let (g, roles) = canonical::fig5_rip(SimDuration::from_millis(10));
        let links = g.to_links(|e| {
            LinkParams::with_delay(e.delay).jitter(JitterModel::Uniform { frac: jitter })
        });
        let cfg = RipConfig::emulation(refresh);
        let sim = SimBuilder::new(g.node_count()).links(links).build(seed, move |id| {
            let nbrs = g.neighbors(id);
            NativeAdapter::new(RipProcess::new(id, nbrs, cfg), TICK)
        });
        (sim, roles)
    }

    #[test]
    fn routes_propagate() {
        let (mut sim, roles) = fig5_sim(RefreshMode::DestinationAndNextHop, 1, 0.0);
        sim.schedule_external(SimTime::from_millis(10), roles.dest, RipExt::Connect { prefix: DEST });
        sim.run_until(SimTime::from_secs(10));
        let r1 = sim.process(roles.r1).control_plane().route(DEST).copied().expect("route");
        assert!(r1.next_hop == Some(roles.r2) || r1.next_hop == Some(roles.r3));
        assert_eq!(r1.metric, 3);
        // R2 and R3 learn it directly from dest.
        assert_eq!(
            sim.process(roles.r2).control_plane().route(DEST).unwrap().next_hop,
            Some(roles.dest)
        );
    }

    #[test]
    fn correct_mode_fails_over_after_main_dies() {
        let (mut sim, roles) = fig5_sim(RefreshMode::DestinationAndNextHop, 2, 0.2);
        sim.schedule_external(SimTime::from_millis(10), roles.dest, RipExt::Connect { prefix: DEST });
        sim.run_until(SimTime::from_secs(8));
        // Force the installed route through R2 for a deterministic start.
        let via = sim.process(roles.r1).control_plane().route(DEST).unwrap().next_hop;
        let main = via.expect("has next hop");
        sim.schedule_node_admin(SimTime::from_secs(8), main, false);
        sim.run_until(SimTime::from_secs(30));
        let backup = if main == roles.r2 { roles.r3 } else { roles.r2 };
        let r = sim.process(roles.r1).control_plane().route(DEST).copied().expect("route");
        assert_eq!(r.next_hop, Some(backup), "must fail over to the backup");
        assert!(!r.garbage);
    }

    #[test]
    fn buggy_mode_refreshes_on_foreign_announcements() {
        let (mut sim, roles) = fig5_sim(RefreshMode::DestinationOnly, 3, 0.0);
        sim.schedule_external(SimTime::from_millis(10), roles.dest, RipExt::Connect { prefix: DEST });
        sim.run_until(SimTime::from_secs(10));
        // Both R2's and R3's periodic announcements hit R1; with the bug the
        // non-next-hop ones also refresh.
        let cp = sim.process(roles.r1).control_plane();
        let installed = cp.route(DEST).unwrap().next_hop.unwrap();
        assert!(installed == roles.r2 || installed == roles.r3);
        let refreshes = cp.refresh_count(DEST);
        // In 10s with 1s updates from two providers, correct mode would see
        // ~9 refreshes; buggy mode roughly doubles that.
        assert!(refreshes >= 14, "expected extra refreshes, got {refreshes}");
    }

    #[test]
    fn buggy_mode_black_holes_when_announcements_race_ahead() {
        // With zero jitter the backup's announcements always arrive inside
        // the refresh window, so the stale route never times out: permanent
        // black hole.
        let (mut sim, roles) = fig5_sim(RefreshMode::DestinationOnly, 4, 0.0);
        sim.schedule_external(SimTime::from_millis(10), roles.dest, RipExt::Connect { prefix: DEST });
        sim.run_until(SimTime::from_secs(8));
        let main = sim.process(roles.r1).control_plane().route(DEST).unwrap().next_hop.unwrap();
        sim.schedule_node_admin(SimTime::from_secs(8), main, false);
        sim.run_until(SimTime::from_secs(40));
        let r = sim.process(roles.r1).control_plane().route(DEST).copied().expect("route");
        assert_eq!(r.next_hop, Some(main), "black hole: still pointing at the dead router");
    }

    #[test]
    fn split_horizon_suppresses_echo() {
        let (g, roles) = canonical::fig5_rip(SimDuration::from_millis(10));
        let cfg = RipConfig::emulation(RefreshMode::DestinationAndNextHop);
        let mut rip = RipProcess::new(roles.r2, g.neighbors(roles.r2), cfg);
        let mut out = Outbox::new();
        rip.on_message(
            roles.dest,
            &RipAnnouncement { entries: vec![(DEST, 1)] },
            &mut out,
        );
        let mut out = Outbox::new();
        rip.announce(&mut out);
        // r2's neighbours are r1 and dest; the route learned from dest must
        // not be announced back to dest.
        let to_dest: Vec<_> = out.sends.iter().filter(|(to, _)| *to == roles.dest).collect();
        assert!(to_dest.is_empty(), "split horizon must suppress the echo");
        let to_r1: Vec<_> = out.sends.iter().filter(|(to, _)| *to == roles.r1).collect();
        assert_eq!(to_r1.len(), 1);
    }

    #[test]
    fn gc_removes_expired_routes() {
        let cfg = RipConfig::emulation(RefreshMode::DestinationAndNextHop);
        let mut rip = RipProcess::new(NodeId(0), vec![NodeId(1)], cfg);
        let mut out = Outbox::new();
        rip.on_message(NodeId(1), &RipAnnouncement { entries: vec![(DEST, 1)] }, &mut out);
        assert!(rip.route(DEST).is_some());
        // Timeout fires.
        let mut out = Outbox::new();
        rip.on_timer(RipProcess::timeout_token(DEST), &mut out);
        assert!(rip.route(DEST).unwrap().garbage);
        assert_eq!(rip.route(DEST).unwrap().metric, INFINITY);
        // GC fires.
        let mut out = Outbox::new();
        rip.on_timer(RipProcess::gc_token(DEST), &mut out);
        assert!(rip.route(DEST).is_none());
    }

    #[test]
    fn infinity_announcement_from_gateway_poisons() {
        let cfg = RipConfig::emulation(RefreshMode::DestinationAndNextHop);
        let mut rip = RipProcess::new(NodeId(0), vec![NodeId(1)], cfg);
        let mut out = Outbox::new();
        rip.on_message(NodeId(1), &RipAnnouncement { entries: vec![(DEST, 1)] }, &mut out);
        let mut out = Outbox::new();
        rip.on_message(NodeId(1), &RipAnnouncement { entries: vec![(DEST, INFINITY)] }, &mut out);
        assert!(rip.route(DEST).unwrap().garbage);
    }

    #[test]
    fn better_metric_switches_gateway() {
        let cfg = RipConfig::emulation(RefreshMode::DestinationAndNextHop);
        let mut rip = RipProcess::new(NodeId(0), vec![NodeId(1), NodeId(2)], cfg);
        let mut out = Outbox::new();
        rip.on_message(NodeId(1), &RipAnnouncement { entries: vec![(DEST, 5)] }, &mut out);
        assert_eq!(rip.route(DEST).unwrap().metric, 6);
        let mut out = Outbox::new();
        rip.on_message(NodeId(2), &RipAnnouncement { entries: vec![(DEST, 2)] }, &mut out);
        let r = rip.route(DEST).unwrap();
        assert_eq!(r.metric, 3);
        assert_eq!(r.next_hop, Some(NodeId(2)));
    }

    #[test]
    fn worse_metric_from_other_gateway_ignored_in_correct_mode() {
        let cfg = RipConfig::emulation(RefreshMode::DestinationAndNextHop);
        let mut rip = RipProcess::new(NodeId(0), vec![NodeId(1), NodeId(2)], cfg);
        let mut out = Outbox::new();
        rip.on_message(NodeId(1), &RipAnnouncement { entries: vec![(DEST, 2)] }, &mut out);
        let before = rip.refresh_count(DEST);
        let mut out = Outbox::new();
        rip.on_message(NodeId(2), &RipAnnouncement { entries: vec![(DEST, 2)] }, &mut out);
        assert_eq!(rip.route(DEST).unwrap().next_hop, Some(NodeId(1)));
        assert_eq!(rip.refresh_count(DEST), before, "no refresh from foreign gateway");
    }

    #[test]
    fn snapshot_round_trip_with_routes() {
        let cfg = RipConfig::emulation(RefreshMode::DestinationOnly);
        let mut rip = RipProcess::new(NodeId(0), vec![NodeId(1), NodeId(2)], cfg);
        let mut out = Outbox::new();
        rip.on_external(&RipExt::Connect { prefix: 5 }, &mut out);
        let mut out = Outbox::new();
        rip.on_message(NodeId(1), &RipAnnouncement { entries: vec![(DEST, 2)] }, &mut out);
        let mut buf = Vec::new();
        rip.encode(&mut buf);
        let back = RipProcess::decode(&buf).expect("decodes");
        assert_eq!(back.table(), rip.table());
        assert_eq!(back.refresh_count(DEST), rip.refresh_count(DEST));
        assert_eq!(back.digest(), rip.digest());
        assert!(RipProcess::decode(&[0]).is_none());
    }

    #[test]
    fn patch_in_place_changes_behaviour() {
        let cfg = RipConfig::emulation(RefreshMode::DestinationOnly);
        let mut rip = RipProcess::new(NodeId(0), vec![NodeId(1), NodeId(2)], cfg);
        let mut out = Outbox::new();
        rip.on_message(NodeId(1), &RipAnnouncement { entries: vec![(DEST, 2)] }, &mut out);
        let mut out = Outbox::new();
        rip.on_message(NodeId(2), &RipAnnouncement { entries: vec![(DEST, 2)] }, &mut out);
        let buggy_refreshes = rip.refresh_count(DEST);
        assert_eq!(buggy_refreshes, 2, "bug refreshes on the foreign announcement");
        rip.set_refresh_mode(RefreshMode::DestinationAndNextHop);
        let mut out = Outbox::new();
        rip.on_message(NodeId(2), &RipAnnouncement { entries: vec![(DEST, 2)] }, &mut out);
        assert_eq!(rip.refresh_count(DEST), buggy_refreshes, "patched: no refresh");
    }
}
