//! Runs a [`ControlPlane`] directly on the simulator — the *uninstrumented*
//! baseline ("unmodified XORP" in the paper's comparisons).

use crate::{ControlPlane, Outbox, TimerToken};
use netsim::{NodeId, Process, ProcessCtx, SimDuration, TimerId, TimerKey};
use std::collections::HashMap;

/// Adapter running a control plane natively: messages are delivered in
/// arrival order (whatever the jittered network produces) and virtual-time
/// ticks are mapped onto wall-clock timers of `tick` length.
///
/// This is the baseline configuration every DEFINED experiment compares
/// against: same protocol code, no determinism layer.
#[derive(Debug)]
pub struct NativeAdapter<P: ControlPlane> {
    cp: P,
    tick: SimDuration,
    armed: HashMap<TimerToken, TimerId>,
    /// Reverse map: netsim key → token (key is the token's raw value).
    deliveries: u64,
}

impl<P: ControlPlane> NativeAdapter<P> {
    /// Wraps `cp`, mapping one virtual-time tick to `tick` of simulated
    /// wall-clock time (the paper's beacon interval, 250 ms, by default).
    pub fn new(cp: P, tick: SimDuration) -> Self {
        NativeAdapter { cp, tick, armed: HashMap::new(), deliveries: 0 }
    }

    /// The wrapped control plane.
    pub fn control_plane(&self) -> &P {
        &self.cp
    }

    /// Mutable access (used by debugger-style tests).
    pub fn control_plane_mut(&mut self) -> &mut P {
        &mut self.cp
    }

    /// Messages delivered so far.
    pub fn deliveries(&self) -> u64 {
        self.deliveries
    }

    fn apply(&mut self, ctx: &mut ProcessCtx<'_, P::Msg>, out: Outbox<P::Msg>) {
        for (to, msg) in out.sends {
            ctx.send(to, msg);
        }
        for token in out.cancels {
            if let Some(id) = self.armed.remove(&token) {
                ctx.cancel_timer(id);
            }
        }
        for (token, ticks) in out.arms {
            // Re-arming replaces: cancel any previous instance.
            if let Some(id) = self.armed.remove(&token) {
                ctx.cancel_timer(id);
            }
            let id = ctx.set_timer(self.tick * ticks, TimerKey(token.0));
            self.armed.insert(token, id);
        }
    }
}

impl<P: ControlPlane> Process for NativeAdapter<P> {
    type Msg = P::Msg;
    type Ext = P::Ext;

    fn on_start(&mut self, ctx: &mut ProcessCtx<'_, P::Msg>) {
        let mut out = Outbox::new();
        self.cp.on_start(&mut out);
        self.apply(ctx, out);
    }

    fn on_message(&mut self, ctx: &mut ProcessCtx<'_, P::Msg>, from: NodeId, msg: P::Msg) {
        self.deliveries += 1;
        let mut out = Outbox::new();
        self.cp.on_message(from, &msg, &mut out);
        self.apply(ctx, out);
    }

    fn on_external(&mut self, ctx: &mut ProcessCtx<'_, P::Msg>, ev: P::Ext) {
        let mut out = Outbox::new();
        self.cp.on_external(&ev, &mut out);
        self.apply(ctx, out);
    }

    fn on_timer(&mut self, ctx: &mut ProcessCtx<'_, P::Msg>, id: TimerId, key: TimerKey) {
        let token = TimerToken(key.0);
        // Ignore stale firings from replaced arms.
        if self.armed.get(&token) != Some(&id) {
            return;
        }
        self.armed.remove(&token);
        let mut out = Outbox::new();
        self.cp.on_timer(token, &mut out);
        self.apply(ctx, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{LinkParams, SimBuilder, SimTime};

    /// A control plane that pings its peer on start and counts echoes; its
    /// timer re-arms twice.
    #[derive(Clone, Debug, Default)]
    struct Toy {
        echoes: u32,
        timer_fires: u32,
    }

    impl checkpoint::Snapshotable for Toy {
        fn encode(&self, buf: &mut Vec<u8>) {
            crate::enc::put_u32(buf, self.echoes);
            crate::enc::put_u32(buf, self.timer_fires);
        }
        fn decode(bytes: &[u8]) -> Option<Self> {
            let mut r = crate::enc::Reader::new(bytes);
            Some(Toy { echoes: r.u32()?, timer_fires: r.u32()? })
        }
    }

    impl ControlPlane for Toy {
        type Msg = u8;
        type Ext = ();
        fn on_start(&mut self, out: &mut Outbox<u8>) {
            out.send(NodeId(1), 1);
            out.arm(TimerToken(1), 2);
        }
        fn on_message(&mut self, from: NodeId, msg: &u8, out: &mut Outbox<u8>) {
            if *msg == 1 {
                out.send(from, 2);
            } else {
                self.echoes += 1;
            }
        }
        fn on_external(&mut self, _ev: &(), _out: &mut Outbox<u8>) {}
        fn on_timer(&mut self, token: TimerToken, out: &mut Outbox<u8>) {
            self.timer_fires += 1;
            if self.timer_fires < 3 {
                out.arm(token, 2);
            }
        }
    }

    #[test]
    fn adapter_routes_messages_and_timers() {
        let mut sim = SimBuilder::new(2)
            .link(NodeId(0), NodeId(1), LinkParams::with_delay(SimDuration::from_millis(5)))
            .build(1, |_| NativeAdapter::new(Toy::default(), SimDuration::from_millis(250)));
        sim.run_until(SimTime::from_secs(10));
        assert_eq!(sim.process(NodeId(0)).control_plane().echoes, 1);
        assert_eq!(sim.process(NodeId(0)).control_plane().timer_fires, 3);
        assert_eq!(sim.process(NodeId(1)).control_plane().timer_fires, 3);
        assert!(sim.process(NodeId(1)).deliveries() >= 1);
    }

    #[test]
    fn rearm_replaces_pending_timer() {
        /// Arms token 9 at 4 ticks on start, then re-arms it at 1 tick via an
        /// external; only one fire may happen.
        #[derive(Clone, Debug, Default)]
        struct Rearm {
            fires: u32,
        }
        impl checkpoint::Snapshotable for Rearm {
            fn encode(&self, buf: &mut Vec<u8>) {
                crate::enc::put_u32(buf, self.fires);
            }
            fn decode(bytes: &[u8]) -> Option<Self> {
                let mut r = crate::enc::Reader::new(bytes);
                Some(Rearm { fires: r.u32()? })
            }
        }
        impl ControlPlane for Rearm {
            type Msg = ();
            type Ext = ();
            fn on_start(&mut self, out: &mut Outbox<()>) {
                out.arm(TimerToken(9), 4);
            }
            fn on_message(&mut self, _f: NodeId, _m: &(), _o: &mut Outbox<()>) {}
            fn on_external(&mut self, _ev: &(), out: &mut Outbox<()>) {
                out.arm(TimerToken(9), 1);
            }
            fn on_timer(&mut self, _t: TimerToken, _o: &mut Outbox<()>) {
                self.fires += 1;
            }
        }
        let mut sim = SimBuilder::new(1)
            .build(1, |_| NativeAdapter::new(Rearm::default(), SimDuration::from_millis(250)));
        sim.schedule_external(SimTime::from_millis(100), NodeId(0), ());
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.process(NodeId(0)).control_plane().fires, 1);
    }
}
