//! A BGP-like path-vector control plane reproducing the XORP 0.4 path
//! selection bug (paper §4, Figure 4).
//!
//! The decision process applies three of BGP's rules: shortest AS-path
//! length, then lowest MED *within each neighbouring-AS group*, then lowest
//! IGP distance. Because MED is only compared within a group, the induced
//! pairwise preference is non-transitive, so a correct implementation must
//! re-evaluate **all** candidate paths on every change. XORP 0.4 instead
//! compared each incoming path only against the current best
//! ([`DecisionMode::BuggyIncremental`]), making the selected route depend on
//! message arrival order — the ordering bug DEFINED reproduces
//! deterministically.
//!
//! Topology model: external routers (role [`Role::External`]) receive
//! announcements as external inputs and push them over eBGP to their border
//! router; borders redistribute every eBGP-learned path to all iBGP peers
//! (add-path semantics, so the studied router sees every candidate); every
//! router runs the decision process over its Adj-RIB-In.

use crate::enc::{put_u16, put_u32, put_u64, put_u8, Reader};
use crate::{ControlPlane, Outbox, Snapshotable, TimerToken};
use netsim::NodeId;
use std::collections::BTreeMap;

/// A route prefix (opaque identifier; one u32 per destination network).
pub type Prefix = u32;

/// BGP path attributes relevant to the studied decision rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PathAttrs {
    /// Unique id of this path (used for deterministic final tie-breaks and
    /// withdraws).
    pub route_id: u32,
    /// Length of the AS path.
    pub as_path_len: u8,
    /// The neighbouring AS the path was learned from.
    pub neighbor_as: u16,
    /// Multi-exit discriminator, compared only within a neighbour-AS group.
    pub med: u32,
    /// IGP distance to the exit point.
    pub igp_dist: u32,
}

/// BGP wire messages.
#[derive(Clone, Debug, PartialEq)]
pub enum BgpMsg {
    /// Announce a path for a prefix.
    Update {
        /// Destination prefix.
        prefix: Prefix,
        /// Path attributes.
        attrs: PathAttrs,
    },
    /// Withdraw a previously announced path.
    Withdraw {
        /// Destination prefix.
        prefix: Prefix,
        /// The `route_id` of the withdrawn path.
        route_id: u32,
    },
}

/// External inputs delivered to [`Role::External`] routers.
#[derive(Clone, Debug, PartialEq)]
pub enum BgpExt {
    /// Start announcing a path.
    Announce {
        /// Destination prefix.
        prefix: Prefix,
        /// Path attributes.
        attrs: PathAttrs,
    },
    /// Stop announcing it.
    Withdraw {
        /// Destination prefix.
        prefix: Prefix,
        /// The `route_id` to retract.
        route_id: u32,
    },
}

/// How the decision process is executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecisionMode {
    /// Re-evaluate all candidate paths on every change (post-fix behaviour).
    CorrectFull,
    /// XORP 0.4: compare the incoming path only against the current best.
    BuggyIncremental,
}

/// RFC 2439-style route flap damping, scaled to virtual-time ticks.
///
/// The paper's §3 uses exactly this algorithm to motivate running protocols
/// in a virtual time that "progresses at a rate similar to real wall-clock
/// time": a damped route must be held down for a similar duration whether
/// the daemon runs uninstrumented or under DEFINED. The integration tests
/// measure that fidelity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DampingConfig {
    /// Penalty added when a known path flaps (is withdrawn).
    pub penalty_per_flap: u32,
    /// Suppress the path once its penalty exceeds this.
    pub suppress_threshold: u32,
    /// Reuse the path once decay brings the penalty below this.
    pub reuse_threshold: u32,
    /// Per-tick exponential decay: `penalty -= penalty >> decay_shift`
    /// (integer-only so checkpointed state stays bit-stable).
    pub decay_shift: u8,
}

impl DampingConfig {
    /// Emulation-scale parameters: three quick flaps suppress; the penalty
    /// half-life is ~5.2 ticks (1.3 s at 250 ms beacons).
    pub fn emulation() -> Self {
        DampingConfig {
            penalty_per_flap: 1000,
            suppress_threshold: 2500,
            reuse_threshold: 800,
            decay_shift: 3,
        }
    }

    /// Half-life of the penalty decay, in ticks.
    pub fn half_life_ticks(&self) -> f64 {
        let keep = 1.0 - (1.0 / f64::from(1u32 << self.decay_shift));
        (0.5f64).ln() / keep.ln()
    }
}

/// Damping state of one `(prefix, route_id)` path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct DampState {
    /// Accumulated flap penalty (decays every tick).
    pub penalty: u32,
    /// Whether the path is currently suppressed (excluded from decision).
    pub suppressed: bool,
}

/// Timer token for the per-tick damping decay.
const TOK_DAMP: TimerToken = TimerToken(0xDA << 56);

/// The function a router performs in the Figure 4 scenario.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Role {
    /// An external router of a neighbouring AS, homed onto one border router.
    External {
        /// The border router it peers with.
        border: NodeId,
    },
    /// A border/internal router of the AS under study, iBGP-meshed with
    /// `ibgp_peers`.
    Internal {
        /// All other routers of the AS.
        ibgp_peers: Vec<NodeId>,
    },
}

/// The BGP control plane for one router.
#[derive(Clone, Debug)]
pub struct BgpProcess {
    id: NodeId,
    role: Role,
    mode: DecisionMode,
    /// Candidate paths per prefix, in arrival order (arrival order is what
    /// the buggy mode is sensitive to).
    rib_in: BTreeMap<Prefix, Vec<PathAttrs>>,
    /// Selected best path per prefix.
    best: BTreeMap<Prefix, PathAttrs>,
    /// Decision-process invocations (exposed for the case study's stepping).
    decisions: u64,
    /// Flap damping, if enabled.
    damping: Option<DampingConfig>,
    /// Per-path damping state.
    damp: BTreeMap<(Prefix, u32), DampState>,
}

/// Pairwise preference used by both modes: `true` if `a` beats `b`.
///
/// MED is compared only when both paths come from the same neighbouring AS —
/// exactly the rule that makes the relation non-transitive.
pub fn pairwise_better(a: &PathAttrs, b: &PathAttrs) -> bool {
    if a.as_path_len != b.as_path_len {
        return a.as_path_len < b.as_path_len;
    }
    if a.neighbor_as == b.neighbor_as && a.med != b.med {
        return a.med < b.med;
    }
    if a.igp_dist != b.igp_dist {
        return a.igp_dist < b.igp_dist;
    }
    a.route_id < b.route_id
}

/// The correct, full decision process over a candidate set.
///
/// Returns `None` for an empty set. Implements: shortest AS path; then
/// per-neighbour-AS MED elimination; then lowest IGP distance; then lowest
/// route id.
pub fn full_decision(candidates: &[PathAttrs]) -> Option<PathAttrs> {
    if candidates.is_empty() {
        return None;
    }
    let min_len = candidates.iter().map(|p| p.as_path_len).min().unwrap();
    let shortlist: Vec<&PathAttrs> =
        candidates.iter().filter(|p| p.as_path_len == min_len).collect();
    // Per-neighbour-AS MED elimination.
    let mut med_best: BTreeMap<u16, &PathAttrs> = BTreeMap::new();
    for p in &shortlist {
        med_best
            .entry(p.neighbor_as)
            .and_modify(|cur| {
                if (p.med, p.route_id) < (cur.med, cur.route_id) {
                    *cur = p;
                }
            })
            .or_insert(p);
    }
    med_best
        .values()
        .copied()
        .min_by_key(|p| (p.igp_dist, p.route_id))
        .copied()
}

impl BgpProcess {
    /// Creates a router with the given role and decision mode.
    pub fn new(id: NodeId, role: Role, mode: DecisionMode) -> Self {
        BgpProcess {
            id,
            role,
            mode,
            rib_in: BTreeMap::new(),
            best: BTreeMap::new(),
            decisions: 0,
            damping: None,
            damp: BTreeMap::new(),
        }
    }

    /// Enables route flap damping.
    pub fn with_damping(mut self, cfg: DampingConfig) -> Self {
        self.damping = Some(cfg);
        self
    }

    /// The damping state of a path, if damping is enabled and the path has
    /// flapped.
    pub fn damp_state(&self, prefix: Prefix, route_id: u32) -> Option<DampState> {
        self.damp.get(&(prefix, route_id)).copied()
    }

    /// Whether a path is currently suppressed by damping.
    pub fn is_suppressed(&self, prefix: Prefix, route_id: u32) -> bool {
        self.damp
            .get(&(prefix, route_id))
            .map(|s| s.suppressed)
            .unwrap_or(false)
    }

    /// Candidates of `prefix` that damping currently allows into the
    /// decision process.
    fn usable(&self, prefix: Prefix) -> Vec<PathAttrs> {
        self.rib_in
            .get(&prefix)
            .map(|l| {
                l.iter()
                    .filter(|p| !self.is_suppressed(prefix, p.route_id))
                    .copied()
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The currently selected best path for `prefix`.
    pub fn best_path(&self, prefix: Prefix) -> Option<&PathAttrs> {
        self.best.get(&prefix)
    }

    /// All known candidates for `prefix`, in arrival order.
    pub fn candidates(&self, prefix: Prefix) -> &[PathAttrs] {
        self.rib_in.get(&prefix).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Times the decision process has run.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Switches decision mode in place — the case study's "install the
    /// patch" step, applied through the debugger.
    pub fn set_mode(&mut self, mode: DecisionMode) {
        self.mode = mode;
    }

    /// The configured decision mode.
    pub fn mode(&self) -> DecisionMode {
        self.mode
    }

    fn ingest(&mut self, prefix: Prefix, attrs: PathAttrs) {
        let list = self.rib_in.entry(prefix).or_default();
        if let Some(existing) = list.iter_mut().find(|p| p.route_id == attrs.route_id) {
            *existing = attrs;
        } else {
            list.push(attrs);
        }
        if self.is_suppressed(prefix, attrs.route_id) {
            // A re-announced but still-damped path sits in the Adj-RIB-In
            // without entering the decision until its reuse time.
            return;
        }
        self.decide_incoming(prefix, attrs);
    }

    fn decide_incoming(&mut self, prefix: Prefix, incoming: PathAttrs) {
        self.decisions += 1;
        match self.mode {
            DecisionMode::CorrectFull => {
                let all = self.usable(prefix);
                if let Some(b) = full_decision(&all) {
                    self.best.insert(prefix, b);
                }
            }
            DecisionMode::BuggyIncremental => {
                // The XORP 0.4 mistake: only the incoming path and the
                // current best are compared.
                match self.best.get(&prefix) {
                    None => {
                        self.best.insert(prefix, incoming);
                    }
                    Some(cur) => {
                        if pairwise_better(&incoming, cur) {
                            self.best.insert(prefix, incoming);
                        }
                    }
                }
            }
        }
    }

    fn withdraw(&mut self, prefix: Prefix, route_id: u32) {
        let was_known = self
            .rib_in
            .get(&prefix)
            .map(|l| l.iter().any(|p| p.route_id == route_id))
            .unwrap_or(false);
        if let Some(list) = self.rib_in.get_mut(&prefix) {
            list.retain(|p| p.route_id != route_id);
        }
        // Flap accounting: withdrawing a known path earns a penalty; past
        // the threshold the path is suppressed until the penalty decays.
        if was_known {
            if let Some(cfg) = self.damping {
                let st = self.damp.entry((prefix, route_id)).or_default();
                st.penalty = st.penalty.saturating_add(cfg.penalty_per_flap);
                if st.penalty >= cfg.suppress_threshold {
                    st.suppressed = true;
                }
            }
        }
        let was_best = self.best.get(&prefix).map(|b| b.route_id == route_id).unwrap_or(false);
        if was_best {
            self.best.remove(&prefix);
            self.decisions += 1;
            let remaining = self.usable(prefix);
            match self.mode {
                DecisionMode::CorrectFull => {
                    if let Some(b) = full_decision(&remaining) {
                        self.best.insert(prefix, b);
                    }
                }
                DecisionMode::BuggyIncremental => {
                    // Rescan pairwise in arrival order, mirroring the
                    // incremental implementation's re-selection.
                    let mut best: Option<PathAttrs> = None;
                    for p in remaining {
                        match &best {
                            None => best = Some(p),
                            Some(b) => {
                                if pairwise_better(&p, b) {
                                    best = Some(p);
                                }
                            }
                        }
                    }
                    if let Some(b) = best {
                        self.best.insert(prefix, b);
                    }
                }
            }
        }
    }
}

impl ControlPlane for BgpProcess {
    type Msg = BgpMsg;
    type Ext = BgpExt;

    fn on_start(&mut self, out: &mut Outbox<BgpMsg>) {
        if self.damping.is_some() {
            out.arm(TOK_DAMP, 1);
        }
    }

    fn on_message(&mut self, _from: NodeId, msg: &BgpMsg, out: &mut Outbox<BgpMsg>) {
        match (msg, self.role.clone()) {
            (BgpMsg::Update { prefix, attrs }, Role::Internal { ibgp_peers }) => {
                let known = self
                    .rib_in
                    .get(prefix)
                    .map(|l| l.iter().any(|p| p.route_id == attrs.route_id))
                    .unwrap_or(false);
                self.ingest(*prefix, *attrs);
                // Borders redistribute eBGP-learned paths to iBGP peers once
                // (add-path); iBGP-learned paths are not reflected.
                if !known && _from.index() != usize::MAX && !ibgp_peers.contains(&_from) {
                    for peer in &ibgp_peers {
                        out.send(*peer, BgpMsg::Update { prefix: *prefix, attrs: *attrs });
                    }
                }
            }
            (BgpMsg::Withdraw { prefix, route_id }, Role::Internal { ibgp_peers }) => {
                let known = self
                    .rib_in
                    .get(prefix)
                    .map(|l| l.iter().any(|p| p.route_id == *route_id))
                    .unwrap_or(false);
                self.withdraw(*prefix, *route_id);
                if known && !ibgp_peers.contains(&_from) {
                    for peer in &ibgp_peers {
                        out.send(*peer, BgpMsg::Withdraw { prefix: *prefix, route_id: *route_id });
                    }
                }
            }
            (_, Role::External { .. }) => {
                // External routers only originate; inbound updates ignored.
            }
        }
    }

    fn on_external(&mut self, ev: &BgpExt, out: &mut Outbox<BgpMsg>) {
        if let Role::External { border } = self.role {
            match ev {
                BgpExt::Announce { prefix, attrs } => {
                    out.send(border, BgpMsg::Update { prefix: *prefix, attrs: *attrs });
                }
                BgpExt::Withdraw { prefix, route_id } => {
                    out.send(border, BgpMsg::Withdraw { prefix: *prefix, route_id: *route_id });
                }
            }
        }
    }

    fn on_timer(&mut self, token: TimerToken, out: &mut Outbox<BgpMsg>) {
        if token != TOK_DAMP {
            return;
        }
        let Some(cfg) = self.damping else { return };
        // Decay every penalty; collect the paths whose reuse time arrived.
        let mut reused: Vec<(Prefix, u32)> = Vec::new();
        self.damp.retain(|&(prefix, route_id), st| {
            st.penalty -= st.penalty >> cfg.decay_shift;
            // The shift underestimates decay for tiny penalties; zero the
            // tail so entries are eventually dropped.
            if st.penalty < 16 {
                st.penalty = 0;
            }
            if st.suppressed && st.penalty <= cfg.reuse_threshold {
                st.suppressed = false;
                reused.push((prefix, route_id));
            }
            st.penalty > 0 || st.suppressed
        });
        // A reused path re-enters the decision as if it had just arrived.
        for (prefix, route_id) in reused {
            let cand = self
                .rib_in
                .get(&prefix)
                .and_then(|l| l.iter().find(|p| p.route_id == route_id))
                .copied();
            if let Some(p) = cand {
                self.decide_incoming(prefix, p);
            }
        }
        out.arm(TOK_DAMP, 1);
    }
}

fn put_attrs(buf: &mut Vec<u8>, p: &PathAttrs) {
    put_u32(buf, p.route_id);
    put_u8(buf, p.as_path_len);
    put_u16(buf, p.neighbor_as);
    put_u32(buf, p.med);
    put_u32(buf, p.igp_dist);
}

fn get_attrs(r: &mut Reader<'_>) -> Option<PathAttrs> {
    Some(PathAttrs {
        route_id: r.u32()?,
        as_path_len: r.u8()?,
        neighbor_as: r.u16()?,
        med: r.u32()?,
        igp_dist: r.u32()?,
    })
}

impl Snapshotable for BgpProcess {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_u32(buf, self.id.0);
        match &self.role {
            Role::External { border } => {
                put_u8(buf, 0);
                put_u32(buf, border.0);
            }
            Role::Internal { ibgp_peers } => {
                put_u8(buf, 1);
                put_u64(buf, ibgp_peers.len() as u64);
                for p in ibgp_peers {
                    put_u32(buf, p.0);
                }
            }
        }
        put_u8(buf, matches!(self.mode, DecisionMode::BuggyIncremental) as u8);
        put_u64(buf, self.decisions);
        put_u64(buf, self.rib_in.len() as u64);
        for (prefix, list) in &self.rib_in {
            put_u32(buf, *prefix);
            put_u64(buf, list.len() as u64);
            for p in list {
                put_attrs(buf, p);
            }
        }
        put_u64(buf, self.best.len() as u64);
        for (prefix, p) in &self.best {
            put_u32(buf, *prefix);
            put_attrs(buf, p);
        }
        match &self.damping {
            None => put_u8(buf, 0),
            Some(cfg) => {
                put_u8(buf, 1);
                put_u32(buf, cfg.penalty_per_flap);
                put_u32(buf, cfg.suppress_threshold);
                put_u32(buf, cfg.reuse_threshold);
                put_u8(buf, cfg.decay_shift);
            }
        }
        put_u64(buf, self.damp.len() as u64);
        for (&(prefix, route_id), st) in &self.damp {
            put_u32(buf, prefix);
            put_u32(buf, route_id);
            put_u32(buf, st.penalty);
            put_u8(buf, st.suppressed as u8);
        }
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader::new(bytes);
        let id = NodeId(r.u32()?);
        let role = match r.u8()? {
            0 => Role::External { border: NodeId(r.u32()?) },
            1 => {
                let n = r.len()?;
                let mut peers = Vec::with_capacity(n);
                for _ in 0..n {
                    peers.push(NodeId(r.u32()?));
                }
                Role::Internal { ibgp_peers: peers }
            }
            _ => return None,
        };
        let mode = if r.boolean()? {
            DecisionMode::BuggyIncremental
        } else {
            DecisionMode::CorrectFull
        };
        let decisions = r.u64()?;
        let n_rib = r.len()?;
        let mut rib_in = BTreeMap::new();
        for _ in 0..n_rib {
            let prefix = r.u32()?;
            let n = r.len()?;
            let mut list = Vec::with_capacity(n);
            for _ in 0..n {
                list.push(get_attrs(&mut r)?);
            }
            rib_in.insert(prefix, list);
        }
        let n_best = r.len()?;
        let mut best = BTreeMap::new();
        for _ in 0..n_best {
            let prefix = r.u32()?;
            best.insert(prefix, get_attrs(&mut r)?);
        }
        let damping = match r.u8()? {
            0 => None,
            1 => Some(DampingConfig {
                penalty_per_flap: r.u32()?,
                suppress_threshold: r.u32()?,
                reuse_threshold: r.u32()?,
                decay_shift: r.u8()?,
            }),
            _ => return None,
        };
        let n_damp = r.len()?;
        let mut damp = BTreeMap::new();
        for _ in 0..n_damp {
            let prefix = r.u32()?;
            let route_id = r.u32()?;
            let penalty = r.u32()?;
            let suppressed = r.boolean()?;
            damp.insert((prefix, route_id), DampState { penalty, suppressed });
        }
        Some(BgpProcess { id, role, mode, rib_in, best, decisions, damping, damp })
    }
}

/// The three paths of Figure 4: equal AS-path lengths; `p1`/`p2` share
/// neighbour AS 100; MEDs 10/5/20; IGP distances 10/30/20.
///
/// Correct full decision selects `p3`; the buggy incremental decision
/// selects `p2` when paths arrive in the order `p1, p3, p2`.
pub fn fig4_paths() -> [PathAttrs; 3] {
    [
        PathAttrs { route_id: 1, as_path_len: 3, neighbor_as: 100, med: 10, igp_dist: 10 },
        PathAttrs { route_id: 2, as_path_len: 3, neighbor_as: 100, med: 5, igp_dist: 30 },
        PathAttrs { route_id: 3, as_path_len: 3, neighbor_as: 200, med: 20, igp_dist: 20 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_preferences_are_non_transitive() {
        let [p1, p2, p3] = fig4_paths();
        assert!(pairwise_better(&p2, &p1), "p2 beats p1 on MED");
        assert!(pairwise_better(&p3, &p2), "p3 beats p2 on IGP");
        assert!(pairwise_better(&p1, &p3), "p1 beats p3 on IGP");
    }

    #[test]
    fn full_decision_selects_p3_regardless_of_order() {
        let [p1, p2, p3] = fig4_paths();
        let orders = [
            [p1, p2, p3],
            [p1, p3, p2],
            [p2, p1, p3],
            [p2, p3, p1],
            [p3, p1, p2],
            [p3, p2, p1],
        ];
        for order in orders {
            assert_eq!(full_decision(&order).unwrap().route_id, 3, "order {order:?}");
        }
    }

    #[test]
    fn buggy_decision_depends_on_order() {
        let [p1, p2, p3] = fig4_paths();
        let run = |order: [PathAttrs; 3]| {
            let mut r =
                BgpProcess::new(NodeId(0), Role::Internal { ibgp_peers: vec![] }, DecisionMode::BuggyIncremental);
            for p in order {
                r.ingest(9, p);
            }
            r.best_path(9).unwrap().route_id
        };
        assert_eq!(run([p1, p2, p3]), 3, "lucky order still lands on p3");
        assert_eq!(run([p1, p3, p2]), 2, "the paper's buggy order selects p2");
    }

    #[test]
    fn withdraw_of_best_reselects() {
        let [p1, p2, p3] = fig4_paths();
        let mut r = BgpProcess::new(
            NodeId(0),
            Role::Internal { ibgp_peers: vec![] },
            DecisionMode::CorrectFull,
        );
        for p in [p1, p2, p3] {
            r.ingest(9, p);
        }
        assert_eq!(r.best_path(9).unwrap().route_id, 3);
        r.withdraw(9, 3);
        // Without p3, AS-100 MED elimination keeps p2; p2 vs nothing else.
        assert_eq!(r.best_path(9).unwrap().route_id, 2);
        r.withdraw(9, 2);
        assert_eq!(r.best_path(9).unwrap().route_id, 1);
        r.withdraw(9, 1);
        assert!(r.best_path(9).is_none());
    }

    #[test]
    fn withdraw_of_non_best_keeps_best() {
        let [p1, p2, p3] = fig4_paths();
        let mut r = BgpProcess::new(
            NodeId(0),
            Role::Internal { ibgp_peers: vec![] },
            DecisionMode::CorrectFull,
        );
        for p in [p1, p2, p3] {
            r.ingest(9, p);
        }
        r.withdraw(9, 1);
        assert_eq!(r.best_path(9).unwrap().route_id, 3);
    }

    #[test]
    fn update_replaces_same_route_id() {
        let [p1, _, _] = fig4_paths();
        let mut r = BgpProcess::new(
            NodeId(0),
            Role::Internal { ibgp_peers: vec![] },
            DecisionMode::CorrectFull,
        );
        r.ingest(9, p1);
        let better = PathAttrs { igp_dist: 1, ..p1 };
        r.ingest(9, better);
        assert_eq!(r.candidates(9).len(), 1);
        assert_eq!(r.best_path(9).unwrap().igp_dist, 1);
    }

    #[test]
    fn set_mode_patches_behaviour() {
        let [p1, p2, p3] = fig4_paths();
        let mut r = BgpProcess::new(
            NodeId(0),
            Role::Internal { ibgp_peers: vec![] },
            DecisionMode::BuggyIncremental,
        );
        for p in [p1, p3, p2] {
            r.ingest(9, p);
        }
        assert_eq!(r.best_path(9).unwrap().route_id, 2, "bug manifests");
        r.set_mode(DecisionMode::CorrectFull);
        assert_eq!(r.mode(), DecisionMode::CorrectFull);
        // Re-trigger the decision (as a new update would).
        r.ingest(9, p2);
        assert_eq!(r.best_path(9).unwrap().route_id, 3, "patched decision recovers");
    }

    #[test]
    fn snapshot_round_trip_both_roles() {
        let [p1, p2, p3] = fig4_paths();
        let mut internal = BgpProcess::new(
            NodeId(2),
            Role::Internal { ibgp_peers: vec![NodeId(0), NodeId(1)] },
            DecisionMode::BuggyIncremental,
        );
        for p in [p1, p3, p2] {
            internal.ingest(9, p);
        }
        let mut buf = Vec::new();
        internal.encode(&mut buf);
        let back = BgpProcess::decode(&buf).expect("decodes");
        assert_eq!(back.best_path(9), internal.best_path(9));
        assert_eq!(back.candidates(9), internal.candidates(9));
        assert_eq!(back.digest(), internal.digest());

        let external = BgpProcess::new(
            NodeId(3),
            Role::External { border: NodeId(0) },
            DecisionMode::CorrectFull,
        );
        let mut buf = Vec::new();
        external.encode(&mut buf);
        let back = BgpProcess::decode(&buf).expect("decodes");
        assert_eq!(back.digest(), external.digest());
        assert!(BgpProcess::decode(&[9, 9]).is_none());
    }

    fn flap(r: &mut BgpProcess, prefix: Prefix, attrs: PathAttrs) {
        r.withdraw(prefix, attrs.route_id);
        r.ingest(prefix, attrs);
    }

    fn tick(r: &mut BgpProcess) {
        let mut out = Outbox::new();
        r.on_timer(TOK_DAMP, &mut out);
    }

    #[test]
    fn damping_suppresses_after_repeated_flaps() {
        let [p1, _, p3] = fig4_paths();
        let mut r = BgpProcess::new(
            NodeId(0),
            Role::Internal { ibgp_peers: vec![] },
            DecisionMode::CorrectFull,
        )
        .with_damping(DampingConfig::emulation());
        r.ingest(9, p1);
        r.ingest(9, p3);
        // p1 wins on IGP distance while it behaves.
        assert_eq!(r.best_path(9).unwrap().route_id, 1);
        // Three quick flaps cross the suppress threshold (3 × 1000 ≥ 2500).
        flap(&mut r, 9, p1);
        assert!(!r.is_suppressed(9, 1), "one flap is tolerated");
        flap(&mut r, 9, p1);
        flap(&mut r, 9, p1);
        assert!(r.is_suppressed(9, 1));
        // The decision falls back to the stable alternative.
        assert_eq!(r.best_path(9).unwrap().route_id, 3);
        // The suppressed path sits in the RIB but not in the decision.
        assert_eq!(r.candidates(9).len(), 2);
    }

    #[test]
    fn damping_reuses_after_decay() {
        let cfg = DampingConfig::emulation();
        let [p1, _, p3] = fig4_paths();
        let mut r = BgpProcess::new(
            NodeId(0),
            Role::Internal { ibgp_peers: vec![] },
            DecisionMode::CorrectFull,
        )
        .with_damping(cfg);
        r.ingest(9, p1);
        r.ingest(9, p3);
        for _ in 0..3 {
            flap(&mut r, 9, p1);
        }
        assert!(r.is_suppressed(9, 1));
        assert_eq!(r.best_path(9).unwrap().route_id, 3);
        // Decay ticks until the reuse threshold clears; the path must come
        // back and win the decision again without any new announcement.
        let mut ticks = 0;
        while r.is_suppressed(9, 1) {
            tick(&mut r);
            ticks += 1;
            assert!(ticks < 100, "reuse must happen");
        }
        assert_eq!(r.best_path(9).unwrap().route_id, 1, "reused path wins again");
        // Penalty ~3000 must decay past reuse 800: ln(3000/800)/ln(8/7)
        // ≈ 9.9 ticks; allow the integer decay some slack.
        assert!((6..=16).contains(&ticks), "reuse after {ticks} ticks");
        // The damping state eventually evaporates entirely.
        for _ in 0..60 {
            tick(&mut r);
        }
        assert_eq!(r.damp_state(9, 1), None);
    }

    #[test]
    fn damping_half_life_estimate_matches_shift() {
        let cfg = DampingConfig::emulation();
        // decay_shift 3 → keep 7/8 per tick → half-life ≈ 5.19 ticks.
        assert!((cfg.half_life_ticks() - 5.19).abs() < 0.1);
    }

    #[test]
    fn suppressed_reannouncement_stays_out_of_decision() {
        let [p1, _, p3] = fig4_paths();
        let mut r = BgpProcess::new(
            NodeId(0),
            Role::Internal { ibgp_peers: vec![] },
            DecisionMode::CorrectFull,
        )
        .with_damping(DampingConfig::emulation());
        r.ingest(9, p3);
        r.ingest(9, p1);
        for _ in 0..3 {
            flap(&mut r, 9, p1);
        }
        assert!(r.is_suppressed(9, 1));
        // A fresh announcement of the damped path does not dislodge p3.
        r.ingest(9, p1);
        assert_eq!(r.best_path(9).unwrap().route_id, 3);
    }

    #[test]
    fn damping_state_snapshots_round_trip() {
        let [p1, _, p3] = fig4_paths();
        let mut r = BgpProcess::new(
            NodeId(0),
            Role::Internal { ibgp_peers: vec![] },
            DecisionMode::CorrectFull,
        )
        .with_damping(DampingConfig::emulation());
        r.ingest(9, p1);
        r.ingest(9, p3);
        for _ in 0..3 {
            flap(&mut r, 9, p1);
        }
        let mut buf = Vec::new();
        r.encode(&mut buf);
        let back = BgpProcess::decode(&buf).expect("decodes");
        assert_eq!(back.damp_state(9, 1), r.damp_state(9, 1));
        assert!(back.is_suppressed(9, 1));
        assert_eq!(back.digest(), r.digest());
    }

    #[test]
    fn digest_tracks_rib_changes() {
        let [p1, ..] = fig4_paths();
        let mut r = BgpProcess::new(
            NodeId(0),
            Role::Internal { ibgp_peers: vec![] },
            DecisionMode::CorrectFull,
        );
        let d0 = r.digest();
        r.ingest(9, p1);
        assert_ne!(d0, r.digest());
    }
}
