//! Control-plane protocol implementations and the [`ControlPlane`] interface
//! DEFINED instruments.
//!
//! The paper instruments real routing daemons (XORP's BGP and OSPF modules,
//! Quagga's RIP module) by wrapping their message-send, message-receive, and
//! timer calls. Here the equivalent seam is the [`ControlPlane`] trait: a
//! *pure, deterministic state machine* whose only effects flow through an
//! [`Outbox`]. That purity is what the paper's §2.5 assumes when it requires
//! single-node internal nondeterminism to be removed, and it is what lets the
//! DEFINED-RB shim checkpoint, roll back, and replay a node.
//!
//! Causal marking (paper §3, "interfaces to mark causal relationships") is
//! structural rather than manual: every message pushed into the outbox while
//! `on_message(m)` runs is an immediate causal child of `m`; messages pushed
//! from `on_external` or `on_timer` start new causal chains.
//!
//! Three protocols are provided:
//!
//! * [`ospf`] — link-state routing (hellos, LSA flooding with acks and
//!   retransmission, Dijkstra SPF); the main evaluation workload.
//! * [`bgp`] — path-vector decision process with the XORP 0.4 MED ordering
//!   bug behind [`bgp::DecisionMode`].
//! * [`rip`] — distance-vector with per-route timers and the Quagga 0.96.5
//!   timer-refresh bug behind [`rip::RefreshMode`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod adapter;
pub mod bgp;
pub mod enc;
pub mod ospf;
pub mod rip;

pub use adapter::NativeAdapter;
pub use checkpoint::Snapshotable;
pub use enc::fnv1a;

use netsim::NodeId;
use std::fmt;

/// A protocol-chosen timer discriminator.
///
/// Arming a token that is already armed *replaces* the previous arm (the
/// semantics of per-route protocol timers); cancelling an unarmed token is a
/// no-op.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TimerToken(pub u64);

/// Buffered effects of one control-plane handler invocation.
///
/// All sends buffered while processing message `m` are immediate causal
/// children of `m`; the DEFINED shim uses this to annotate and, on rollback,
/// to know which messages to unsend.
#[derive(Clone, Debug, Default)]
pub struct Outbox<M> {
    /// Messages to transmit, in push order.
    pub sends: Vec<(NodeId, M)>,
    /// Timer arms: `(token, after_ticks)` in virtual-time ticks.
    pub arms: Vec<(TimerToken, u64)>,
    /// Timer cancellations.
    pub cancels: Vec<TimerToken>,
}

impl<M> Outbox<M> {
    /// Creates an empty outbox.
    pub fn new() -> Self {
        Outbox { sends: Vec::new(), arms: Vec::new(), cancels: Vec::new() }
    }

    /// Queues a message to `to`.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.sends.push((to, msg));
    }

    /// Arms (or re-arms) `token` to fire after `after_ticks` virtual-time
    /// ticks. One tick corresponds to one beacon interval (250 ms by
    /// default).
    pub fn arm(&mut self, token: TimerToken, after_ticks: u64) {
        self.arms.push((token, after_ticks));
    }

    /// Cancels `token` if armed.
    pub fn cancel(&mut self, token: TimerToken) {
        self.cancels.push(token);
    }

    /// True if no effects were produced.
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty() && self.arms.is_empty() && self.cancels.is_empty()
    }
}

/// A deterministic control-plane state machine.
///
/// Implementations must be pure: identical call sequences produce identical
/// state and identical outbox contents. All time is virtual (ticks); all
/// randomness must be derived deterministically from state.
///
/// The [`Snapshotable`] supertrait supplies the stable byte encoding the
/// checkpoint substrate diffs at page granularity and restores from on
/// rollback; `encode` followed by `decode` must reproduce the state exactly.
///
/// Control planes and their payloads are `Send`/`Sync`: a pure state
/// machine owns no thread-affine resources, and the bound is what lets the
/// threaded lockstep runtime and the replay farm move whole debugging
/// networks across worker threads.
pub trait ControlPlane: Snapshotable + fmt::Debug + Send {
    /// Wire message type.
    type Msg: Clone + fmt::Debug + PartialEq + Send + Sync;
    /// External (out-of-band) input type, recorded by DEFINED's partial
    /// recorder.
    type Ext: Clone + fmt::Debug + PartialEq + Send + Sync;

    /// Called once at boot; arms initial timers, sends initial messages.
    fn on_start(&mut self, out: &mut Outbox<Self::Msg>);

    /// Handles a delivered message.
    fn on_message(&mut self, from: NodeId, msg: &Self::Msg, out: &mut Outbox<Self::Msg>);

    /// Handles an external input.
    fn on_external(&mut self, ev: &Self::Ext, out: &mut Outbox<Self::Msg>);

    /// Handles an expired timer.
    fn on_timer(&mut self, token: TimerToken, out: &mut Outbox<Self::Msg>);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_collects_in_order() {
        let mut out: Outbox<&str> = Outbox::new();
        assert!(out.is_empty());
        out.send(NodeId(1), "x");
        out.arm(TimerToken(5), 4);
        out.cancel(TimerToken(6));
        assert!(!out.is_empty());
        assert_eq!(out.sends, vec![(NodeId(1), "x")]);
        assert_eq!(out.arms, vec![(TimerToken(5), 4)]);
        assert_eq!(out.cancels, vec![TimerToken(6)]);
    }
}
