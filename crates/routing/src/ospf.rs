//! A link-state routing protocol modelled on the XORP OSPF daemon used in the
//! paper's evaluation (§5.1).
//!
//! Implemented behaviour:
//!
//! * periodic hellos with a dead interval for neighbour liveness (the paper
//!   stresses its runs by shrinking hello/retransmit intervals to 1 s);
//! * router-LSA origination on adjacency change, sequence-numbered flooding
//!   with explicit acks and periodic retransmission of unacked LSAs;
//! * full LSDB exchange when an adjacency forms (standing in for OSPF's
//!   database-description handshake);
//! * Dijkstra SPF over bidirectionally-confirmed links, with the same
//!   deterministic tie-break as [`topology::Graph::shortest_paths`], so
//!   converged tables can be compared against ground truth exactly;
//! * the 1-second flood-delay behaviour of XORP's default configuration:
//!   with [`OspfConfig::immediate_flood`] `false`, received LSAs are queued
//!   and propagated on the next retransmit-timer firing, which is the delay
//!   the authors removed to make DEFINED's overheads visible (§5.2).

use crate::enc::{put_u32, put_u64, put_u8, Reader};
use crate::{ControlPlane, Outbox, Snapshotable, TimerToken};
use netsim::{NodeId, SimDuration};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{RwLock, RwLockReadGuard};
use topology::{Graph, TopoMask};

/// Timer token tags (upper nibble of the token value).
const TOK_HELLO: u64 = 1 << 60;
const TOK_RXMT: u64 = 2 << 60;
const TOK_DEAD: u64 = 3 << 60;

/// Static OSPF configuration.
#[derive(Clone, Copy, Debug)]
pub struct OspfConfig {
    /// Total number of routers in the area (bounds SPF).
    pub n_nodes: usize,
    /// Hello interval in virtual-time ticks (4 ticks = 1 s at 250 ms/tick,
    /// the paper's stress setting).
    pub hello_ticks: u64,
    /// Dead interval in ticks; a neighbour is declared down after this much
    /// hello silence.
    pub dead_ticks: u64,
    /// Retransmit interval in ticks; also the flood-delay period when
    /// `immediate_flood` is off.
    pub rxmt_ticks: u64,
    /// When `false`, LSAs learned from a neighbour are queued and flooded on
    /// the next retransmit tick (XORP's default 1 s propagation delay); when
    /// `true`, they are flooded on receipt (the authors' modification).
    pub immediate_flood: bool,
}

impl OspfConfig {
    /// The paper's stress configuration: 1 s hello, 4 s dead, 1 s retransmit,
    /// flood delay removed.
    pub fn stress(n_nodes: usize) -> Self {
        OspfConfig {
            n_nodes,
            hello_ticks: 4,
            dead_ticks: 16,
            rxmt_ticks: 4,
            immediate_flood: true,
        }
    }

    /// XORP-like defaults: same intervals but with the 1 s flood delay.
    pub fn xorp_default(n_nodes: usize) -> Self {
        OspfConfig { immediate_flood: false, ..OspfConfig::stress(n_nodes) }
    }
}

/// One configured point-to-point interface.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interface {
    /// Neighbour router on this interface.
    pub peer: NodeId,
    /// Link cost; by convention the link's propagation delay in nanoseconds,
    /// so SPF results are comparable with [`topology::Graph`] ground truth.
    pub cost: u64,
}

/// A router LSA: the originator's current adjacencies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lsa {
    /// Originating router.
    pub origin: NodeId,
    /// Strictly increasing per-origin sequence number.
    pub seq: u64,
    /// Up adjacencies `(peer, cost)`, sorted by peer.
    pub links: Vec<(NodeId, u64)>,
}

/// OSPF wire messages.
#[derive(Clone, Debug, PartialEq)]
pub enum OspfMsg {
    /// Liveness probe.
    Hello,
    /// Flooded link-state advertisement.
    Lsa(Lsa),
    /// Acknowledgement of an LSA.
    Ack {
        /// Origin of the acknowledged LSA.
        origin: NodeId,
        /// Sequence number acknowledged.
        seq: u64,
    },
}

/// The OSPF control plane for one router.
#[derive(Debug)]
pub struct OspfProcess {
    id: NodeId,
    cfg: OspfConfig,
    interfaces: Vec<Interface>,
    /// Adjacency state per neighbour.
    nbr_up: BTreeMap<NodeId, bool>,
    /// Installed LSAs by origin.
    lsdb: BTreeMap<NodeId, Lsa>,
    my_seq: u64,
    /// LSAs awaiting flood when `immediate_flood` is off: `(exclude, lsa)`.
    pending_flood: Vec<(NodeId, Lsa)>,
    /// Unacknowledged floods: `(peer, origin) → lsa`.
    unacked: BTreeMap<(NodeId, NodeId), Lsa>,
    /// Computed routing table: destination → first hop. Derived lazily from
    /// the LSDB: installs only mark it dirty, and SPF runs when the table is
    /// actually read (or the state is snapshotted). Under rollback-heavy
    /// replay most LSA deliveries are re-executions whose table is never
    /// consulted, so deferring Dijkstra takes it off the redelivery path
    /// entirely. Interior-mutable (and `Sync`, for the replay farm) so reads
    /// can recompute from `&self`; concurrent forcings race benignly because
    /// the table is a pure function of the LSDB.
    table: RwLock<BTreeMap<NodeId, NodeId>>,
    /// Whether the LSDB changed since `table` was last computed.
    table_dirty: AtomicBool,
    /// Count of adjacency-loss detections (dead-interval expiries); lets the
    /// harness timestamp failure detection.
    detections: u64,
}

impl Clone for OspfProcess {
    fn clone(&self) -> Self {
        OspfProcess {
            id: self.id,
            cfg: self.cfg,
            interfaces: self.interfaces.clone(),
            nbr_up: self.nbr_up.clone(),
            lsdb: self.lsdb.clone(),
            my_seq: self.my_seq,
            pending_flood: self.pending_flood.clone(),
            unacked: self.unacked.clone(),
            table: RwLock::new(self.table.read().expect("spf lock").clone()),
            table_dirty: AtomicBool::new(self.table_dirty.load(Ordering::Acquire)),
            detections: self.detections,
        }
    }
}

impl OspfProcess {
    /// Creates a router with the given interfaces (sorted internally).
    pub fn new(id: NodeId, mut interfaces: Vec<Interface>, cfg: OspfConfig) -> Self {
        interfaces.sort_by_key(|i| i.peer);
        let nbr_up = interfaces.iter().map(|i| (i.peer, false)).collect();
        OspfProcess {
            id,
            cfg,
            interfaces,
            nbr_up,
            lsdb: BTreeMap::new(),
            my_seq: 0,
            pending_flood: Vec::new(),
            unacked: BTreeMap::new(),
            table: RwLock::new(BTreeMap::new()),
            table_dirty: AtomicBool::new(false),
            detections: 0,
        }
    }

    /// Convenience: builds one process per node of `g`, with costs equal to
    /// edge delays in nanoseconds.
    pub fn for_graph(g: &Graph, cfg: OspfConfig) -> impl Fn(NodeId) -> OspfProcess + '_ {
        move |id| {
            let interfaces = g
                .neighbors(id)
                .into_iter()
                .map(|peer| Interface { peer, cost: g.edge_delay(id, peer).unwrap().0 })
                .collect();
            OspfProcess::new(id, interfaces, cfg)
        }
    }

    /// The current routing table (destination → deterministic first hop).
    /// Runs SPF first if the LSDB changed since the last computation, so the
    /// result is always identical to an eager implementation's.
    pub fn routing_table(&self) -> RwLockReadGuard<'_, BTreeMap<NodeId, NodeId>> {
        self.spf_if_dirty();
        self.table.read().expect("spf lock")
    }

    /// Neighbours currently considered up.
    pub fn up_neighbors(&self) -> Vec<NodeId> {
        self.nbr_up.iter().filter(|&(_, &up)| up).map(|(&p, _)| p).collect()
    }

    /// Number of dead-interval detections so far.
    pub fn detections(&self) -> u64 {
        self.detections
    }

    /// The installed LSA for `origin`, if any.
    pub fn lsa(&self, origin: NodeId) -> Option<&Lsa> {
        self.lsdb.get(&origin)
    }

    /// The ground-truth table this router *should* converge to given the
    /// physical graph and failure mask.
    pub fn expected_table(g: &Graph, mask: &TopoMask, src: NodeId) -> BTreeMap<NodeId, NodeId> {
        let info = g.shortest_paths(src, mask);
        let mut t = BTreeMap::new();
        for dst in 0..g.node_count() {
            if dst == src.index() {
                continue;
            }
            if let Some(h) = info.first_hop[dst] {
                t.insert(NodeId(dst as u32), h);
            }
        }
        t
    }

    fn cost_to(&self, peer: NodeId) -> Option<u64> {
        self.interfaces.iter().find(|i| i.peer == peer).map(|i| i.cost)
    }

    fn originate(&mut self, out: &mut Outbox<OspfMsg>) {
        self.my_seq += 1;
        let links: Vec<(NodeId, u64)> = self
            .interfaces
            .iter()
            .filter(|i| *self.nbr_up.get(&i.peer).unwrap_or(&false))
            .map(|i| (i.peer, i.cost))
            .collect();
        let lsa = Lsa { origin: self.id, seq: self.my_seq, links };
        self.lsdb.insert(self.id, lsa.clone());
        self.flood(lsa, None, out);
        self.table_dirty.store(true, Ordering::Release);
    }

    /// Floods `lsa` to all up neighbours except `exclude`, honouring the
    /// flood-delay configuration and registering retransmission state.
    fn flood(&mut self, lsa: Lsa, exclude: Option<NodeId>, out: &mut Outbox<OspfMsg>) {
        if self.cfg.immediate_flood {
            for i in 0..self.interfaces.len() {
                let peer = self.interfaces[i].peer;
                if Some(peer) == exclude || !self.nbr_up[&peer] {
                    continue;
                }
                self.unacked.insert((peer, lsa.origin), lsa.clone());
                out.send(peer, OspfMsg::Lsa(lsa.clone()));
            }
        } else {
            self.pending_flood.push((exclude.unwrap_or(NodeId(u32::MAX)), lsa));
        }
    }

    /// Sends queued floods (flood-delay mode) and retransmits unacked LSAs.
    fn flush_and_retransmit(&mut self, out: &mut Outbox<OspfMsg>) {
        let pending = std::mem::take(&mut self.pending_flood);
        for (exclude, lsa) in pending {
            for i in 0..self.interfaces.len() {
                let peer = self.interfaces[i].peer;
                if peer == exclude || !self.nbr_up[&peer] {
                    continue;
                }
                self.unacked.insert((peer, lsa.origin), lsa.clone());
                out.send(peer, OspfMsg::Lsa(lsa.clone()));
            }
        }
        // Retransmit whatever is still unacked (skip entries queued this
        // very tick would be a refinement; one duplicate is harmless).
        for ((peer, _origin), lsa) in self.unacked.iter() {
            if self.nbr_up[peer] {
                out.send(*peer, OspfMsg::Lsa(lsa.clone()));
            }
        }
    }

    /// Recomputes the routing table from the LSDB if it is stale. The table
    /// is a pure function of the LSDB, so running this at read time (rather
    /// than on every install) is observationally identical.
    fn spf_if_dirty(&self) {
        if !self.table_dirty.load(Ordering::Acquire) {
            return;
        }
        let mut table = self.table.write().expect("spf lock");
        if !self.table_dirty.load(Ordering::Acquire) {
            return; // Another reader recomputed while we waited.
        }
        let mut g = Graph::new(self.cfg.n_nodes);
        for (origin, lsa) in &self.lsdb {
            for &(peer, cost) in &lsa.links {
                if peer.index() >= self.cfg.n_nodes {
                    continue;
                }
                // Only bidirectionally-confirmed links enter SPF.
                let confirmed = self
                    .lsdb
                    .get(&peer)
                    .map(|pl| pl.links.iter().any(|&(q, _)| q == *origin))
                    .unwrap_or(false);
                if confirmed {
                    g.add_edge(*origin, peer, SimDuration(cost));
                }
            }
        }
        *table = Self::expected_table(&g, &TopoMask::default(), self.id);
        self.table_dirty.store(false, Ordering::Release);
    }

    fn adjacency_up(&mut self, peer: NodeId, out: &mut Outbox<OspfMsg>) {
        self.nbr_up.insert(peer, true);
        // Database exchange: push our entire LSDB at the new neighbour.
        let snapshot: Vec<Lsa> = self.lsdb.values().cloned().collect();
        for lsa in snapshot {
            if lsa.origin == self.id {
                continue; // The fresh self-LSA below covers it.
            }
            self.unacked.insert((peer, lsa.origin), lsa.clone());
            out.send(peer, OspfMsg::Lsa(lsa));
        }
        self.originate(out);
    }
}

impl ControlPlane for OspfProcess {
    type Msg = OspfMsg;
    type Ext = ();

    fn on_start(&mut self, out: &mut Outbox<OspfMsg>) {
        for i in &self.interfaces {
            out.send(i.peer, OspfMsg::Hello);
        }
        out.arm(TimerToken(TOK_HELLO), self.cfg.hello_ticks);
        out.arm(TimerToken(TOK_RXMT), self.cfg.rxmt_ticks);
        self.originate(out);
    }

    fn on_message(&mut self, from: NodeId, msg: &OspfMsg, out: &mut Outbox<OspfMsg>) {
        match msg {
            OspfMsg::Hello => {
                if self.cost_to(from).is_none() {
                    return; // Not a configured interface.
                }
                if !self.nbr_up[&from] {
                    self.adjacency_up(from, out);
                }
                out.arm(TimerToken(TOK_DEAD | from.0 as u64), self.cfg.dead_ticks);
            }
            OspfMsg::Lsa(lsa) => {
                out.send(from, OspfMsg::Ack { origin: lsa.origin, seq: lsa.seq });
                let newer = self.lsdb.get(&lsa.origin).map(|cur| lsa.seq > cur.seq).unwrap_or(true);
                if newer {
                    self.lsdb.insert(lsa.origin, lsa.clone());
                    self.flood(lsa.clone(), Some(from), out);
                    self.table_dirty.store(true, Ordering::Release);
                }
            }
            OspfMsg::Ack { origin, seq } => {
                if let Some(stored) = self.unacked.get(&(from, *origin)) {
                    if stored.seq <= *seq {
                        self.unacked.remove(&(from, *origin));
                    }
                }
            }
        }
    }

    fn on_external(&mut self, _ev: &(), _out: &mut Outbox<OspfMsg>) {}

    fn on_timer(&mut self, token: TimerToken, out: &mut Outbox<OspfMsg>) {
        let tag = token.0 >> 60;
        if tag == TOK_HELLO >> 60 {
            for i in &self.interfaces {
                out.send(i.peer, OspfMsg::Hello);
            }
            out.arm(TimerToken(TOK_HELLO), self.cfg.hello_ticks);
        } else if tag == TOK_RXMT >> 60 {
            self.flush_and_retransmit(out);
            out.arm(TimerToken(TOK_RXMT), self.cfg.rxmt_ticks);
        } else if tag == TOK_DEAD >> 60 {
            let peer = NodeId((token.0 & 0xFFFF_FFFF) as u32);
            if self.nbr_up.get(&peer) == Some(&true) {
                self.nbr_up.insert(peer, false);
                self.detections += 1;
                // Drop retransmission state towards the dead neighbour.
                self.unacked.retain(|(p, _), _| *p != peer);
                self.originate(out);
            }
        }
    }
}

fn put_lsa(buf: &mut Vec<u8>, lsa: &Lsa) {
    put_u32(buf, lsa.origin.0);
    put_u64(buf, lsa.seq);
    put_u64(buf, lsa.links.len() as u64);
    for &(p, c) in &lsa.links {
        put_u32(buf, p.0);
        put_u64(buf, c);
    }
}

fn get_lsa(r: &mut Reader<'_>) -> Option<Lsa> {
    let origin = NodeId(r.u32()?);
    let seq = r.u64()?;
    let n = r.len()?;
    let mut links = Vec::with_capacity(n);
    for _ in 0..n {
        let p = NodeId(r.u32()?);
        let c = r.u64()?;
        links.push((p, c));
    }
    Some(Lsa { origin, seq, links })
}

impl Snapshotable for OspfProcess {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_u32(buf, self.id.0);
        put_u64(buf, self.cfg.n_nodes as u64);
        put_u64(buf, self.cfg.hello_ticks);
        put_u64(buf, self.cfg.dead_ticks);
        put_u64(buf, self.cfg.rxmt_ticks);
        put_u8(buf, self.cfg.immediate_flood as u8);
        put_u64(buf, self.interfaces.len() as u64);
        for i in &self.interfaces {
            put_u32(buf, i.peer.0);
            put_u64(buf, i.cost);
        }
        put_u64(buf, self.my_seq);
        put_u64(buf, self.detections);
        put_u64(buf, self.nbr_up.len() as u64);
        for (p, up) in &self.nbr_up {
            put_u32(buf, p.0);
            put_u8(buf, *up as u8);
        }
        put_u64(buf, self.lsdb.len() as u64);
        for lsa in self.lsdb.values() {
            put_lsa(buf, lsa);
        }
        put_u64(buf, self.pending_flood.len() as u64);
        for (ex, lsa) in &self.pending_flood {
            put_u32(buf, ex.0);
            put_lsa(buf, lsa);
        }
        put_u64(buf, self.unacked.len() as u64);
        for ((p, _o), lsa) in &self.unacked {
            put_u32(buf, p.0);
            put_lsa(buf, lsa);
        }
        // Force SPF before snapshotting so the encoding stays a pure
        // function of the LSDB regardless of when the table was last read.
        self.spf_if_dirty();
        let table = self.table.read().expect("spf lock");
        put_u64(buf, table.len() as u64);
        for (d, h) in table.iter() {
            put_u32(buf, d.0);
            put_u32(buf, h.0);
        }
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader::new(bytes);
        let id = NodeId(r.u32()?);
        let cfg = OspfConfig {
            n_nodes: r.u64()? as usize,
            hello_ticks: r.u64()?,
            dead_ticks: r.u64()?,
            rxmt_ticks: r.u64()?,
            immediate_flood: r.boolean()?,
        };
        let n_if = r.len()?;
        let mut interfaces = Vec::with_capacity(n_if);
        for _ in 0..n_if {
            let peer = NodeId(r.u32()?);
            let cost = r.u64()?;
            interfaces.push(Interface { peer, cost });
        }
        let my_seq = r.u64()?;
        let detections = r.u64()?;
        let n_nbr = r.len()?;
        let mut nbr_up = BTreeMap::new();
        for _ in 0..n_nbr {
            let p = NodeId(r.u32()?);
            let up = r.boolean()?;
            nbr_up.insert(p, up);
        }
        let n_lsdb = r.len()?;
        let mut lsdb = BTreeMap::new();
        for _ in 0..n_lsdb {
            let lsa = get_lsa(&mut r)?;
            lsdb.insert(lsa.origin, lsa);
        }
        let n_pending = r.len()?;
        let mut pending_flood = Vec::with_capacity(n_pending);
        for _ in 0..n_pending {
            let ex = NodeId(r.u32()?);
            let lsa = get_lsa(&mut r)?;
            pending_flood.push((ex, lsa));
        }
        let n_unacked = r.len()?;
        let mut unacked = BTreeMap::new();
        for _ in 0..n_unacked {
            let p = NodeId(r.u32()?);
            let lsa = get_lsa(&mut r)?;
            unacked.insert((p, lsa.origin), lsa);
        }
        let n_table = r.len()?;
        let mut table = BTreeMap::new();
        for _ in 0..n_table {
            let d = NodeId(r.u32()?);
            let h = NodeId(r.u32()?);
            table.insert(d, h);
        }
        Some(OspfProcess {
            id,
            cfg,
            interfaces,
            nbr_up,
            lsdb,
            my_seq,
            pending_flood,
            unacked,
            // The encoded table was clean at capture time, so a decoded
            // process re-encodes to the same bytes without re-running SPF.
            table: RwLock::new(table),
            table_dirty: AtomicBool::new(false),
            detections,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NativeAdapter;
    use netsim::{JitterModel, LinkParams, SimBuilder, SimTime, Simulator};
    use topology::canonical;

    const TICK: SimDuration = SimDuration(250_000_000);

    fn build_sim(
        g: &Graph,
        cfg: OspfConfig,
        seed: u64,
        jitter: f64,
    ) -> Simulator<NativeAdapter<OspfProcess>> {
        let links = g.to_links(|e| {
            LinkParams::with_delay(e.delay).jitter(JitterModel::Uniform { frac: jitter })
        });
        let spawn = OspfProcess::for_graph(g, cfg);
        let spawn_owned: Vec<OspfProcess> =
            (0..g.node_count()).map(|i| spawn(NodeId(i as u32))).collect();
        SimBuilder::new(g.node_count()).links(links).build(seed, move |id| {
            NativeAdapter::new(spawn_owned[id.index()].clone(), TICK)
        })
    }

    fn converged(sim: &Simulator<NativeAdapter<OspfProcess>>, g: &Graph, mask: &TopoMask) -> bool {
        (0..g.node_count()).all(|i| {
            let src = NodeId(i as u32);
            if mask.nodes_down.contains(&src) {
                return true;
            }
            let expected = OspfProcess::expected_table(g, mask, src);
            *sim.process(src).control_plane().routing_table() == expected
        })
    }

    #[test]
    fn pair_converges() {
        let g = canonical::line(2, SimDuration::from_millis(5));
        let mut sim = build_sim(&g, OspfConfig::stress(2), 1, 0.0);
        sim.run_until(SimTime::from_secs(10));
        assert!(converged(&sim, &g, &TopoMask::default()));
    }

    #[test]
    fn ring_converges_to_ground_truth() {
        let g = canonical::ring(6, SimDuration::from_millis(3));
        let mut sim = build_sim(&g, OspfConfig::stress(6), 2, 0.2);
        sim.run_until(SimTime::from_secs(20));
        assert!(converged(&sim, &g, &TopoMask::default()));
    }

    #[test]
    fn grid_converges_with_jitter() {
        let g = canonical::grid(3, 3, SimDuration::from_millis(2));
        let mut sim = build_sim(&g, OspfConfig::stress(9), 3, 0.5);
        sim.run_until(SimTime::from_secs(30));
        assert!(converged(&sim, &g, &TopoMask::default()));
    }

    #[test]
    fn link_failure_detected_and_rerouted() {
        let g = canonical::ring(5, SimDuration::from_millis(2));
        let mut sim = build_sim(&g, OspfConfig::stress(5), 4, 0.2);
        sim.run_until(SimTime::from_secs(20));
        assert!(converged(&sim, &g, &TopoMask::default()));
        // Fail link 0-1 and wait out dead interval + reconvergence.
        sim.schedule_link_admin(SimTime::from_secs(20), NodeId(0), NodeId(1), false);
        sim.run_until(SimTime::from_secs(40));
        let mut mask = TopoMask::default();
        mask.link_down(NodeId(0), NodeId(1));
        assert!(converged(&sim, &g, &mask));
        assert!(sim.process(NodeId(0)).control_plane().detections() >= 1);
        assert!(sim.process(NodeId(1)).control_plane().detections() >= 1);
    }

    #[test]
    fn link_recovery_reconverges() {
        let g = canonical::ring(4, SimDuration::from_millis(2));
        let mut sim = build_sim(&g, OspfConfig::stress(4), 5, 0.2);
        sim.schedule_link_admin(SimTime::from_secs(15), NodeId(0), NodeId(1), false);
        sim.schedule_link_admin(SimTime::from_secs(30), NodeId(0), NodeId(1), true);
        sim.run_until(SimTime::from_secs(50));
        assert!(converged(&sim, &g, &TopoMask::default()));
    }

    #[test]
    fn flood_delay_slows_convergence() {
        let g = canonical::line(6, SimDuration::from_millis(2));
        let deadline = SimTime::from_secs(300);

        let time_to_converge = |cfg: OspfConfig| -> f64 {
            let mut sim = build_sim(&g, cfg, 6, 0.0);
            let mut when = None;
            sim.run_while(deadline, |s| {
                if converged(s, &g, &TopoMask::default()) {
                    when = Some(s.now());
                    false
                } else {
                    true
                }
            });
            when.expect("must converge").as_secs_f64()
        };

        let fast = time_to_converge(OspfConfig::stress(6));
        let slow = time_to_converge(OspfConfig::xorp_default(6));
        assert!(
            slow > fast + 0.5,
            "flood delay should slow convergence: fast={fast:.3}s slow={slow:.3}s"
        );
    }

    #[test]
    fn same_seed_same_tables() {
        let g = canonical::grid(2, 3, SimDuration::from_millis(2));
        let run = |seed| {
            let mut sim = build_sim(&g, OspfConfig::stress(6), seed, 0.5);
            sim.run_until(SimTime::from_secs(20));
            (0..6)
                .map(|i| sim.process(NodeId(i)).control_plane().routing_table().clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn expected_table_excludes_self_and_unreachable() {
        let g = canonical::line(3, SimDuration::from_millis(1));
        let mut mask = TopoMask::default();
        mask.link_down(NodeId(1), NodeId(2));
        let t = OspfProcess::expected_table(&g, &mask, NodeId(0));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&NodeId(1)), Some(&NodeId(1)));
    }

    #[test]
    fn snapshot_round_trip_after_convergence() {
        let g = canonical::ring(5, SimDuration::from_millis(2));
        let mut sim = build_sim(&g, OspfConfig::stress(5), 8, 0.3);
        sim.run_until(SimTime::from_secs(15));
        for i in 0..5 {
            let cp = sim.process(NodeId(i)).control_plane();
            let mut buf = Vec::new();
            cp.encode(&mut buf);
            let back = OspfProcess::decode(&buf).expect("decodes");
            let mut buf2 = Vec::new();
            back.encode(&mut buf2);
            assert_eq!(buf, buf2, "node {i} round trip");
            assert_eq!(cp.digest(), back.digest());
            assert_eq!(*cp.routing_table(), *back.routing_table());
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(OspfProcess::decode(&[1, 2, 3]).is_none());
        assert!(OspfProcess::decode(&[]).is_none());
    }

    #[test]
    fn digest_changes_with_state() {
        let g = canonical::line(2, SimDuration::from_millis(1));
        let cfg = OspfConfig::stress(2);
        let spawn = OspfProcess::for_graph(&g, cfg);
        let a = spawn(NodeId(0));
        let mut b = spawn(NodeId(0));
        assert_eq!(a.digest(), b.digest());
        let mut out = Outbox::new();
        b.on_start(&mut out);
        assert_ne!(a.digest(), b.digest());
    }
}
