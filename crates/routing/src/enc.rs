//! Tiny stable byte-encoding helpers for protocol state.
//!
//! The checkpoint substrate diffs state at page granularity and restores
//! states by decoding, so encodings must be deterministic, layout-stable,
//! and round-trippable. Rather than pull in serde plus a format crate, these
//! helpers provide the primitives the protocols need.

pub use checkpoint::fnv1a;

/// Appends a `u8`.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Appends a `u16` little-endian.
pub fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32` little-endian.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` little-endian.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// A cursor for decoding what the `put_*` helpers wrote.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Option<u8> {
        let v = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(v)
    }

    /// Reads a `u16`.
    pub fn u16(&mut self) -> Option<u16> {
        let v = u16::from_le_bytes(self.buf.get(self.pos..self.pos + 2)?.try_into().ok()?);
        self.pos += 2;
        Some(v)
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        let v = u32::from_le_bytes(self.buf.get(self.pos..self.pos + 4)?.try_into().ok()?);
        self.pos += 4;
        Some(v)
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        let v = u64::from_le_bytes(self.buf.get(self.pos..self.pos + 8)?.try_into().ok()?);
        self.pos += 8;
        Some(v)
    }

    /// Reads a length prefix.
    ///
    /// Every encoded element occupies at least one byte, so a count larger
    /// than the bytes remaining is corrupt; rejecting it here keeps
    /// `Vec::with_capacity(len)` in decoders from turning garbage input
    /// into a giant allocation.
    #[allow(clippy::len_without_is_empty)] // Decodes a length prefix; not a container.
    pub fn len(&mut self) -> Option<usize> {
        let n = self.u64()? as usize;
        if n > self.remaining() {
            return None;
        }
        Some(n)
    }

    /// Reads a `bool` encoded as one byte.
    pub fn boolean(&mut self) -> Option<bool> {
        Some(self.u8()? != 0)
    }

    /// Reads exactly `n` raw bytes (for length-prefixed nested encodings).
    pub fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let v = self.buf.get(self.pos..self.pos.checked_add(n)?)?;
        self.pos += n;
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_distinguishes() {
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
    }

    #[test]
    fn round_trip_all_primitives() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u16(&mut buf, 300);
        put_u32(&mut buf, 70_000);
        put_u64(&mut buf, u64::MAX - 3);
        put_u8(&mut buf, 1);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8(), Some(7));
        assert_eq!(r.u16(), Some(300));
        assert_eq!(r.u32(), Some(70_000));
        assert_eq!(r.u64(), Some(u64::MAX - 3));
        assert_eq!(r.boolean(), Some(true));
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.u8(), None, "reading past the end fails cleanly");
    }

    #[test]
    fn len_caps_on_corrupt_input() {
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX);
        assert_eq!(Reader::new(&buf).len(), None);
    }
}
