//! Cumulative distribution functions, the presentation format of every
//! figure in the paper.

/// An empirical CDF over `f64` samples.
///
/// # Examples
///
/// ```
/// use defined_bench::cdf::Cdf;
///
/// let c = Cdf::new(vec![3.0, 1.0, 2.0, 4.0]);
/// assert_eq!(c.median(), Some(2.0));
/// assert_eq!(c.fraction_at(3.0), 0.75);
/// assert_eq!(c.max(), Some(4.0));
/// ```
#[derive(Clone, Debug)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples (NaNs are dropped).
    pub fn new(mut samples: Vec<f64>) -> Self {
        samples.retain(|x| x.is_finite());
        samples.sort_by(f64::total_cmp);
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The `p`-th percentile (`0 <= p <= 100`), or `None` when empty.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let rank = (p / 100.0 * (self.sorted.len() - 1) as f64).floor() as usize;
        Some(self.sorted[rank.min(self.sorted.len() - 1)])
    }

    /// Median.
    pub fn median(&self) -> Option<f64> {
        self.percentile(50.0)
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
        }
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Fraction of samples `<= x`.
    pub fn fraction_at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|&v| v <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// Downsampled `(value, cumulative fraction)` curve with at most
    /// `points` points, suitable for plotting or table output.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() {
            return Vec::new();
        }
        let n = self.sorted.len();
        let step = (n.max(points) / points.max(1)).max(1);
        let mut out = Vec::new();
        let mut i = 0;
        while i < n {
            out.push((self.sorted[i], (i + 1) as f64 / n as f64));
            i += step;
        }
        if out.last().map(|&(v, _)| v) != self.sorted.last().copied() {
            out.push((self.sorted[n - 1], 1.0));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_on_known_data() {
        let c = Cdf::new((1..=100).map(|i| i as f64).collect());
        assert_eq!(c.len(), 100);
        assert_eq!(c.median(), Some(50.0));
        assert_eq!(c.percentile(0.0), Some(1.0));
        assert_eq!(c.percentile(100.0), Some(100.0));
        assert_eq!(c.max(), Some(100.0));
        assert!((c.mean().unwrap() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn fraction_at_boundaries() {
        let c = Cdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.fraction_at(0.5), 0.0);
        assert_eq!(c.fraction_at(2.0), 0.5);
        assert_eq!(c.fraction_at(10.0), 1.0);
    }

    #[test]
    fn empty_and_nan_handling() {
        let c = Cdf::new(vec![f64::NAN, f64::INFINITY]);
        assert!(c.is_empty());
        assert_eq!(c.median(), None);
        assert!(c.curve(10).is_empty());
        assert_eq!(c.fraction_at(1.0), 0.0);
    }

    #[test]
    fn curve_is_monotonic_and_bounded() {
        let c = Cdf::new((0..1000).map(|i| (i % 97) as f64).collect());
        let curve = c.curve(20);
        assert!(curve.len() <= 22);
        assert!(curve.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(curve.last().unwrap().1, 1.0);
    }
}
