//! Data generators for every figure of the evaluation (paper §5, Figs. 6–8).
//!
//! Each generator returns a [`FigureData`] whose series carry the same
//! semantics as the paper's panels. Absolute values come from this
//! reproduction's simulator and cost model; EXPERIMENTS.md compares the
//! *shapes* against the paper.

use crate::cdf::Cdf;
use crate::ospf_run::OspfRunner;
use checkpoint::{CostModel, ForkTiming, Strategy, PAGE_SIZE};
use defined_core::{DefinedConfig, LockstepNet, OrderingMode};
use netsim::{NodeId, SimDuration, SimTime};
use routing::ospf::{OspfConfig, OspfProcess};
use std::fmt::Write as _;
use topology::trace::{self, EventKind, NetworkEvent, Tier1Spec};
use topology::{brite, rocketfuel, Graph, TopoMask};

/// One plotted series.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

/// One figure panel's data.
#[derive(Clone, Debug)]
pub struct FigureData {
    /// Figure id, e.g. `"6a"`.
    pub id: &'static str,
    /// Panel title.
    pub title: String,
    /// X-axis label.
    pub xlabel: String,
    /// Y-axis label.
    pub ylabel: String,
    /// The series.
    pub series: Vec<Series>,
}

impl FigureData {
    /// Renders the panel as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== Figure {} — {} ==", self.id, self.title);
        let _ = writeln!(out, "   x: {} | y: {}", self.xlabel, self.ylabel);
        for s in &self.series {
            let _ = writeln!(out, "  series: {}", s.label);
            for &(x, y) in &s.points {
                let _ = writeln!(out, "    {x:>12.6}  {y:>10.6}");
            }
        }
        out
    }

    /// Compact one-line summary per series: median/mean/max of the
    /// *measured* quantity (the x axis for CDF panels, y otherwise).
    pub fn summary(&self) -> String {
        let is_cdf = self.ylabel == "cumulative fraction";
        let mut out = String::new();
        for s in &self.series {
            let vals: Vec<f64> =
                s.points.iter().map(|p| if is_cdf { p.0 } else { p.1 }).collect();
            let c = Cdf::new(vals);
            let _ = writeln!(
                out,
                "  fig{} {:<24} n={} median={:.4} mean={:.4} max={:.4}  [{}]",
                self.id,
                s.label,
                c.len(),
                c.median().unwrap_or(f64::NAN),
                c.mean().unwrap_or(f64::NAN),
                c.max().unwrap_or(f64::NAN),
                if is_cdf { &self.xlabel } else { &self.ylabel },
            );
        }
        out
    }
}

/// Workload scale: `quick` shrinks topologies/event counts for CI runs.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Use smaller topologies and fewer events.
    pub quick: bool,
}

impl Scale {
    fn sprintlink(&self) -> Graph {
        if self.quick {
            rocketfuel::build(rocketfuel::Isp::Ebone)
        } else {
            rocketfuel::build(rocketfuel::Isp::Sprintlink)
        }
    }

    fn fig6_events(&self) -> usize {
        if self.quick {
            10
        } else {
            40
        }
    }

    fn fig8_sizes(&self) -> Vec<usize> {
        if self.quick {
            vec![20, 40]
        } else {
            vec![20, 40, 60, 80]
        }
    }

    fn fig8_events(&self) -> usize {
        if self.quick {
            4
        } else {
            10
        }
    }
}

fn cdf_series(label: &str, samples: Vec<f64>, points: usize) -> Series {
    Series { label: label.to_string(), points: Cdf::new(samples).curve(points) }
}

/// Builds a link-event-only trace (down/up pairs that keep the graph
/// connected), Tier-1-flavoured.
fn link_trace(g: &Graph, events: usize, seed: u64) -> Vec<NetworkEvent> {
    let spec = Tier1Spec { events: events * 3, node_event_frac: 0.0, ..Tier1Spec::default() };
    let all = trace::tier1_trace(g, spec, seed);
    let mut mask = TopoMask::default();
    let mut out = Vec::new();
    for e in all {
        match e.kind {
            EventKind::LinkDown(a, b) => {
                mask.link_down(a, b);
                if g.is_connected(&mask) && out.len() < events {
                    out.push(e);
                } else {
                    mask.link_up(a, b);
                }
            }
            EventKind::LinkUp(a, b)
                if mask.links_down.contains(&(a.min(b), a.max(b))) && out.len() < events => {
                    mask.link_up(a, b);
                    out.push(e);
                }
            _ => {}
        }
        if out.len() >= events {
            break;
        }
    }
    out
}

const WARMUP: SimDuration = SimDuration(15_000_000_000);
const SPACING: SimDuration = SimDuration(3_000_000_000);
const EVENT_DEADLINE: SimDuration = SimDuration(30_000_000_000);

fn production_cfg() -> DefinedConfig {
    DefinedConfig {
        strategy: Strategy::MemIntercept,
        fork_timing: ForkTiming::PreForkTouch,
        commit_horizon: Some(SimDuration::from_secs(2)),
        ..DefinedConfig::default()
    }
}

/// Figures 6a + 6b: control overhead and convergence-time CDFs on the
/// Sprintlink topology with a Tier-1-style workload, XORP vs DEFINED-RB.
pub fn fig6ab(scale: Scale) -> (FigureData, FigureData) {
    let g = scale.sprintlink();
    let n = g.node_count();
    let events = link_trace(&g, scale.fig6_events(), 61);
    // The paper removes XORP's 1 s flood delay to make overheads visible.
    let ospf = OspfConfig::stress(n);

    let mut base = OspfRunner::baseline(&g, ospf, 1, 0.3);
    let bstats = base.replay_trace(&g, &events, WARMUP, SPACING, EVENT_DEADLINE);

    let mut rb = OspfRunner::rb(&g, ospf, production_cfg(), 1, 0.3);
    let rstats = rb.replay_trace(&g, &events, WARMUP, SPACING, EVENT_DEADLINE);

    let flat = |stats: &crate::ospf_run::TraceStats| -> Vec<f64> {
        stats
            .pkts_per_node
            .iter()
            .flat_map(|per_node| per_node.iter().map(|&p| p as f64))
            .collect()
    };
    let fig6a = FigureData {
        id: "6a",
        title: "control message overhead (packets per node per event)".into(),
        xlabel: "packets per node".into(),
        ylabel: "cumulative fraction".into(),
        series: vec![
            cdf_series("XORP", flat(&bstats), 40),
            cdf_series("DEFINED-RB", flat(&rstats), 40),
        ],
    };
    let conv = |stats: &crate::ospf_run::TraceStats| -> Vec<f64> {
        stats.convergence.iter().flatten().copied().collect()
    };
    let fig6b = FigureData {
        id: "6b",
        title: "convergence time (1 s flood delay removed)".into(),
        xlabel: "convergence time [s]".into(),
        ylabel: "cumulative fraction".into(),
        series: vec![
            cdf_series("XORP", conv(&bstats), 40),
            cdf_series("DEFINED-RB", conv(&rstats), 40),
        ],
    };
    (fig6a, fig6b)
}

/// Figure 6c: DEFINED-LS per-step response time CDF.
pub fn fig6c(scale: Scale) -> FigureData {
    let g = scale.sprintlink();
    let n = g.node_count();
    let cfg = DefinedConfig::recording();
    let f = OspfProcess::for_graph(&g, OspfConfig::stress(n));
    let spawn: Vec<OspfProcess> = (0..n).map(|i| f(NodeId(i as u32))).collect();
    let spawn2 = spawn.clone();
    let mut net = defined_core::RbNetwork::new(&g, cfg.clone(), 3, 0.3, move |id| {
        spawn[id.index()].clone()
    });
    // A short production run with one failure event in the middle.
    let e = g.edges()[g.edge_count() / 2];
    net.schedule_link(SimTime::from_secs(4), e.a, e.b, false);
    net.run_until(SimTime::from_secs(if scale.quick { 8 } else { 15 }));
    let (rec, _) = net.into_recording();
    let mut ls = LockstepNet::new(&g, cfg, rec, move |id| spawn2[id.index()].clone());
    ls.run_to_end();
    // Steady state: skip the synchronized cold-boot flood of the first two
    // groups, which the paper's converged testbed never replays.
    FigureData {
        id: "6c",
        title: "DEFINED-LS response time per step".into(),
        xlabel: "response time [s]".into(),
        ylabel: "cumulative fraction".into(),
        series: vec![cdf_series("DEFINED-LS", ls.steady_step_times(2), 40)],
    }
}

/// Collects rollback and checkpoint shape samples from a high-jitter RB run.
fn node_level_samples(
    scale: Scale,
) -> (Vec<defined_core::rb::RollbackSample>, Vec<defined_core::rb::CheckpointSample>) {
    let g = scale.sprintlink();
    let n = g.node_count();
    let cfg = DefinedConfig {
        strategy: Strategy::MemIntercept,
        commit_horizon: Some(SimDuration::from_secs(2)),
        ..DefinedConfig::default()
    };
    let f = OspfProcess::for_graph(&g, OspfConfig::stress(n));
    let spawn: Vec<OspfProcess> = (0..n).map(|i| f(NodeId(i as u32))).collect();
    let mut net = defined_core::RbNetwork::new(&g, cfg, 7, 0.95, move |id| {
        spawn[id.index()].clone()
    });
    let e = g.edges()[1];
    net.schedule_link(SimTime::from_secs(5), e.a, e.b, false);
    net.schedule_link(SimTime::from_secs(9), e.a, e.b, true);
    net.run_until(SimTime::from_secs(if scale.quick { 10 } else { 20 }));
    (net.rollback_samples(), net.checkpoint_samples())
}

/// Figure 7a: rollback overhead CDF, memory interception (MI) vs fork (FK).
///
/// Shapes (state size, dirty pages, replay depth) are measured from a real
/// instrumented run; per-sample costs come from the calibrated
/// [`CostModel`], with the real Criterion microbenchmarks reported
/// separately by `benches/fig7_node.rs`.
pub fn fig7a(scale: Scale) -> FigureData {
    let (rollbacks, _) = node_level_samples(scale);
    let m = CostModel::default();
    let mi: Vec<f64> = rollbacks
        .iter()
        .map(|s| {
            m.rollback_ns(s.state_bytes, Some(s.dirty_pages.max(1)), s.replayed, 20_000) as f64
                / 1e6
        })
        .collect();
    let fk: Vec<f64> = rollbacks
        .iter()
        .map(|s| m.rollback_ns(s.state_bytes, None, s.replayed, 20_000) as f64 / 1e6)
        .collect();
    FigureData {
        id: "7a",
        title: "rollback overhead".into(),
        xlabel: "processing time [ms]".into(),
        ylabel: "cumulative fraction".into(),
        series: vec![
            cdf_series("DEFINED-RB(MI)", mi, 40),
            cdf_series("DEFINED-RB(FK)", fk, 40),
        ],
    }
}

/// Figure 7b: non-rollback per-packet overhead CDF — XORP baseline vs
/// touch-memory (TM), pre-fork (PF), and fork-on-arrival (TF).
pub fn fig7b(scale: Scale) -> FigureData {
    let (_, ckpts) = node_level_samples(scale);
    let m = CostModel::default();
    // Baseline packet processing cost: proportional to state touched.
    let base = |s: &defined_core::rb::CheckpointSample| {
        0.02 + (s.state_bytes as f64 / PAGE_SIZE as f64) * 0.0004
    };
    let with = |timing: ForkTiming| -> Vec<f64> {
        ckpts
            .iter()
            .map(|s| base(s) + m.checkpoint_ns(timing, s.state_bytes, None) as f64 / 1e6)
            .collect()
    };
    FigureData {
        id: "7b",
        title: "non-rollback overhead per packet".into(),
        xlabel: "processing time [ms]".into(),
        ylabel: "cumulative fraction".into(),
        series: vec![
            cdf_series("XORP", ckpts.iter().map(base).collect(), 40),
            cdf_series("DEFINED-RB(TM)", with(ForkTiming::PreForkTouch), 40),
            cdf_series("DEFINED-RB(PF)", with(ForkTiming::PreFork), 40),
            cdf_series("DEFINED-RB(TF)", with(ForkTiming::OnArrival), 40),
        ],
    }
}

/// Figure 7c: memory overhead CDF — virtual (VM) vs physical (PM) vs bare
/// process. Page sharing is measured, not modelled.
pub fn fig7c(scale: Scale) -> FigureData {
    let g = scale.sprintlink();
    let n = g.node_count();
    let cfg = DefinedConfig {
        strategy: Strategy::MemIntercept,
        commit_horizon: Some(SimDuration::from_secs(4)),
        ..DefinedConfig::default()
    };
    let f = OspfProcess::for_graph(&g, OspfConfig::stress(n));
    let spawn: Vec<OspfProcess> = (0..n).map(|i| f(NodeId(i as u32))).collect();
    let mut net = defined_core::RbNetwork::new(&g, cfg, 9, 0.4, move |id| {
        spawn[id.index()].clone()
    });
    let horizon = SimTime::from_secs(if scale.quick { 10 } else { 20 });
    let mut vm = Vec::new();
    let mut pm = Vec::new();
    let mut bare = Vec::new();
    let mut next_sample = SimTime::from_secs(2);
    while net.sim().now() < horizon {
        net.run_until(next_sample);
        for i in 0..n {
            let stats = net.sim().process(NodeId(i as u32)).checkpoint_stats();
            let per_image = stats.virtual_bytes as f64 / stats.retained.max(1) as f64;
            let mb = 1024.0 * 1024.0;
            bare.push(per_image / mb);
            vm.push((per_image + stats.virtual_bytes as f64) / mb);
            pm.push((per_image + stats.physical_bytes as f64) / mb);
        }
        next_sample += SimDuration::from_secs(1);
    }
    FigureData {
        id: "7c",
        title: "memory overhead".into(),
        xlabel: "memory [MB]".into(),
        ylabel: "cumulative fraction".into(),
        series: vec![
            cdf_series("XORP", bare, 40),
            cdf_series("DEFINED-RB(PM)", pm, 40),
            cdf_series("DEFINED-RB(VM)", vm, 40),
        ],
    }
}

/// Per-size run for Fig. 8a/8b: returns (mean packets per node per event,
/// mean convergence seconds).
fn fig8_run(n: usize, ordering: Option<OrderingMode>, events: usize, seed: u64) -> (f64, f64) {
    let g = brite::barabasi_albert(n, 2, 80 + n as u64);
    let ospf = OspfConfig::stress(n);
    let trace = link_trace(&g, events, seed);
    let stats = match ordering {
        None => {
            let mut r = OspfRunner::baseline(&g, ospf, seed, 0.3);
            r.replay_trace(&g, &trace, WARMUP, SPACING, EVENT_DEADLINE)
        }
        Some(mode) => {
            let cfg = DefinedConfig { ordering: mode, ..production_cfg() };
            let mut r = OspfRunner::rb(&g, ospf, cfg, seed, 0.3);
            r.replay_trace(&g, &trace, WARMUP, SPACING, EVENT_DEADLINE)
        }
    };
    let pkts: Vec<f64> = stats
        .pkts_per_node
        .iter()
        .flat_map(|v| v.iter().map(|&p| p as f64))
        .collect();
    let mean_pkts = Cdf::new(pkts).mean().unwrap_or(0.0);
    let conv: Vec<f64> = stats.convergence.iter().flatten().copied().collect();
    let mean_conv = Cdf::new(conv).mean().unwrap_or(f64::NAN);
    (mean_pkts, mean_conv)
}

/// Figures 8a + 8b: scalability over network size — control packets and
/// convergence time for random ordering (RO), optimised ordering (OO), and
/// the XORP baseline.
pub fn fig8ab(scale: Scale) -> (FigureData, FigureData) {
    let mut pkt_series: Vec<Series> = ["DEFINED-RB(RO)", "DEFINED-RB(OO)", "XORP"]
        .iter()
        .map(|l| Series { label: l.to_string(), points: Vec::new() })
        .collect();
    let mut conv_series = pkt_series.clone();
    for &n in &scale.fig8_sizes() {
        let (ro_p, ro_c) = fig8_run(n, Some(OrderingMode::Random), scale.fig8_events(), 31);
        let (oo_p, oo_c) = fig8_run(n, Some(OrderingMode::Optimized), scale.fig8_events(), 31);
        let (bl_p, bl_c) = fig8_run(n, None, scale.fig8_events(), 31);
        for (s, v) in pkt_series.iter_mut().zip([ro_p, oo_p, bl_p]) {
            s.points.push((n as f64, v));
        }
        for (s, v) in conv_series.iter_mut().zip([ro_c, oo_c, bl_c]) {
            s.points.push((n as f64, v));
        }
    }
    (
        FigureData {
            id: "8a",
            title: "control overhead vs network size".into(),
            xlabel: "number of nodes".into(),
            ylabel: "packets per node per event".into(),
            series: pkt_series,
        },
        FigureData {
            id: "8b",
            title: "convergence time vs network size".into(),
            xlabel: "number of nodes".into(),
            ylabel: "convergence time [s]".into(),
            series: conv_series,
        },
    )
}

/// Figure 8c: DEFINED-LS response time per step vs network size.
pub fn fig8c(scale: Scale) -> FigureData {
    let mut points = Vec::new();
    for &n in &scale.fig8_sizes() {
        let g = brite::barabasi_albert(n, 2, 80 + n as u64);
        let cfg = DefinedConfig::recording();
        let f = OspfProcess::for_graph(&g, OspfConfig::stress(n));
        let spawn: Vec<OspfProcess> = (0..n).map(|i| f(NodeId(i as u32))).collect();
        let spawn2 = spawn.clone();
        let mut net = defined_core::RbNetwork::new(&g, cfg.clone(), 13, 0.3, move |id| {
            spawn[id.index()].clone()
        });
        let e = g.edges()[0];
        net.schedule_link(SimTime::from_secs(3), e.a, e.b, false);
        net.run_until(SimTime::from_secs(if scale.quick { 6 } else { 10 }));
        let (rec, _) = net.into_recording();
        let mut ls = LockstepNet::new(&g, cfg, rec, move |id| spawn2[id.index()].clone());
        ls.run_to_end();
        let mean = Cdf::new(ls.steady_step_times(2)).mean().unwrap_or(0.0);
        points.push((n as f64, mean));
    }
    FigureData {
        id: "8c",
        title: "DEFINED-LS response time vs network size".into(),
        xlabel: "number of nodes".into(),
        ylabel: "response time per step [s]".into(),
        series: vec![Series { label: "DEFINED-LS".into(), points }],
    }
}

/// Figure 8d: DEFINED-RB convergence time vs event rate.
pub fn fig8d(scale: Scale) -> FigureData {
    let g = if scale.quick {
        brite::barabasi_albert(20, 2, 99)
    } else {
        scale.sprintlink()
    };
    let n = g.node_count();
    let rates: Vec<f64> = if scale.quick { vec![2.0, 6.0, 10.0] } else { vec![2.0, 4.0, 6.0, 8.0, 10.0] };
    let mut points = Vec::new();
    for &rate in &rates {
        let window = SimDuration::from_secs(5);
        let raw = trace::poisson_events(&g, rate, window, SimDuration::from_millis(800), 17);
        // Keep only events that preserve connectivity.
        let mut mask = TopoMask::default();
        let mut events = Vec::new();
        for e in raw {
            match e.kind {
                EventKind::LinkDown(a, b) => {
                    mask.link_down(a, b);
                    if g.is_connected(&mask) {
                        events.push(e);
                    } else {
                        mask.link_up(a, b);
                    }
                }
                EventKind::LinkUp(a, b)
                    if mask.links_down.contains(&(a.min(b), a.max(b))) => {
                        mask.link_up(a, b);
                        events.push(e);
                    }
                _ => {}
            }
        }
        let cfg = production_cfg();
        let ospf = OspfConfig::stress(n);
        let f = OspfProcess::for_graph(&g, ospf);
        let spawn: Vec<OspfProcess> = (0..n).map(|i| f(NodeId(i as u32))).collect();
        let mut net = defined_core::RbNetwork::new(&g, cfg, 23, 0.3, move |id| {
            spawn[id.index()].clone()
        });
        let start = SimTime::ZERO + WARMUP;
        for e in &events {
            match e.kind {
                EventKind::LinkDown(a, b) => net.schedule_link(start + (e.at - SimTime::ZERO), a, b, false),
                EventKind::LinkUp(a, b) => net.schedule_link(start + (e.at - SimTime::ZERO), a, b, true),
                _ => {}
            }
        }
        net.run_until(start);
        // After the burst ends, measure how long the network takes to settle
        // onto the final ground truth — the convergence figure under load.
        let burst_end = start + window + SimDuration::from_millis(800);
        net.run_until(burst_end);
        let deadline = burst_end + SimDuration::from_secs(30);
        let mut converged_at = None;
        let mut checks = 0u32;
        while net.sim_mut().step_until(deadline).is_some() {
            checks += 1;
            if !checks.is_multiple_of(8) {
                continue;
            }
            let ok = (0..n).all(|i| {
                let id = NodeId(i as u32);
                let expected = OspfProcess::expected_table(&g, &mask, id);
                *net.control_plane(id).routing_table() == expected
            });
            if ok {
                converged_at = Some(net.sim().now());
                break;
            }
        }
        // Saturating: a network already converged at the first post-burst
        // check reports 0, not a debug-build underflow panic.
        let conv = converged_at
            .map(|c| c.saturating_sub(burst_end).as_secs_f64())
            .unwrap_or(30.0);
        // Report settle time plus the mean per-event spacing contribution,
        // mirroring the paper's "convergence time" under sustained load.
        points.push((rate, conv + 1.0 / rate));
    }
    FigureData {
        id: "8d",
        title: "convergence time vs event rate".into(),
        xlabel: "events per second".into(),
        ylabel: "convergence time [s]".into(),
        series: vec![Series { label: "DEFINED-RB".into(), points }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUICK: Scale = Scale { quick: true };

    #[test]
    fn fig6ab_shapes() {
        let (a, b) = fig6ab(QUICK);
        assert_eq!(a.series.len(), 2);
        assert_eq!(b.series.len(), 2);
        assert!(a.series.iter().all(|s| !s.points.is_empty()));
        assert!(b.series.iter().all(|s| !s.points.is_empty()));
        // RB overhead should be in the same ballpark as the baseline for
        // most nodes (medians within 3x).
        let med = |s: &Series| {
            let c = Cdf::new(s.points.iter().map(|p| p.0).collect());
            c.median().unwrap()
        };
        let xorp = med(&a.series[0]);
        let rb = med(&a.series[1]);
        assert!(rb <= xorp * 3.0 + 4.0, "xorp={xorp} rb={rb}");
        let _ = a.render();
        let _ = a.summary();
    }

    #[test]
    fn fig6c_steps_under_a_second() {
        let f = fig6c(QUICK);
        assert_eq!(f.series.len(), 1);
        assert!(!f.series[0].points.is_empty());
        assert!(f.series[0].points.iter().all(|&(x, _)| x < 1.0));
    }

    #[test]
    fn fig7a_mi_cheaper_than_fk() {
        let f = fig7a(QUICK);
        let med = |s: &Series| Cdf::new(s.points.iter().map(|p| p.0).collect()).median().unwrap();
        let mi = med(&f.series[0]);
        let fk = med(&f.series[1]);
        assert!(mi < fk, "MI ({mi} ms) must beat FK ({fk} ms)");
        assert!((0.05..5.0).contains(&mi), "MI median {mi} ms near paper's 0.6 ms");
    }

    #[test]
    fn fig7b_ordering_xorp_tm_pf_tf() {
        let f = fig7b(QUICK);
        let med: Vec<f64> = f
            .series
            .iter()
            .map(|s| Cdf::new(s.points.iter().map(|p| p.0).collect()).median().unwrap())
            .collect();
        assert!(med[0] < med[1], "XORP < TM");
        assert!(med[1] < med[2], "TM < PF");
        assert!(med[2] < med[3], "PF < TF");
        assert!(med[3] < 1.5, "all under ~1 ms as in the paper, got {}", med[3]);
    }

    #[test]
    fn fig7c_pm_much_smaller_than_vm() {
        let f = fig7c(QUICK);
        let med = |s: &Series| Cdf::new(s.points.iter().map(|p| p.0).collect()).median().unwrap();
        let bare = med(&f.series[0]);
        let pm = med(&f.series[1]);
        let vm = med(&f.series[2]);
        assert!(vm > pm, "VM ({vm}) must exceed PM ({pm})");
        // The paper reports < 2% physical inflation; allow slack for the
        // much smaller simulated state.
        assert!(pm < bare * 2.0 + 0.5, "PM {pm} vs bare {bare}");
    }
}
