//! Benchmark harness regenerating every figure of the DEFINED evaluation
//! (paper §5).
//!
//! Each `figN*` function in [`figures`] produces the data series of one
//! figure panel; the `figures` binary prints them as text tables, and the
//! Criterion benches under `benches/` measure the underlying primitives.
//! EXPERIMENTS.md records paper-vs-measured shapes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cdf;
pub mod figures;
pub mod ospf_run;

pub use cdf::Cdf;
pub use figures::{FigureData, Scale, Series};
