//! OSPF workload runners: drive a trace against a baseline or RB-instrumented
//! network and measure the paper's §5 metrics.

use defined_core::{DefinedConfig, RbMetrics, RbNetwork};
use netsim::{NodeId, SimDuration, SimTime, Simulator};
use routing::ospf::{OspfConfig, OspfProcess};
use routing::NativeAdapter;
use topology::trace::{EventKind, NetworkEvent};
use topology::{Graph, TopoMask};

/// Which execution substrate carries the protocol.
pub enum OspfRunner {
    /// Uninstrumented (the paper's "unmodified XORP").
    Baseline(Simulator<NativeAdapter<OspfProcess>>),
    /// Instrumented with DEFINED-RB.
    Rb(RbNetwork<OspfProcess>),
}

/// Per-event measurements collected while replaying a trace.
#[derive(Clone, Debug, Default)]
pub struct TraceStats {
    /// For each event, packets sent per node during its convergence window.
    pub pkts_per_node: Vec<Vec<u64>>,
    /// Convergence time (seconds) per event; `None` if the deadline passed.
    pub convergence: Vec<Option<f64>>,
    /// Aggregated RB metrics at the end (zeroed for baseline runs).
    pub rb: RbMetrics,
}

impl OspfRunner {
    /// Builds a baseline runner.
    pub fn baseline(g: &Graph, ospf: OspfConfig, seed: u64, jitter: f64) -> Self {
        let f = OspfProcess::for_graph(g, ospf);
        let spawn: Vec<OspfProcess> =
            (0..g.node_count()).map(|i| f(NodeId(i as u32))).collect();
        OspfRunner::Baseline(defined_core::harness::baseline_network(
            g,
            SimDuration::from_millis(250),
            seed,
            jitter,
            move |id| spawn[id.index()].clone(),
        ))
    }

    /// Builds an RB-instrumented runner.
    pub fn rb(g: &Graph, ospf: OspfConfig, cfg: DefinedConfig, seed: u64, jitter: f64) -> Self {
        let f = OspfProcess::for_graph(g, ospf);
        let spawn: Vec<OspfProcess> =
            (0..g.node_count()).map(|i| f(NodeId(i as u32))).collect();
        OspfRunner::Rb(RbNetwork::new(g, cfg, seed, jitter, move |id| {
            spawn[id.index()].clone()
        }))
    }

    fn now(&self) -> SimTime {
        match self {
            OspfRunner::Baseline(s) => s.now(),
            OspfRunner::Rb(n) => n.sim().now(),
        }
    }

    fn step(&mut self, deadline: SimTime) -> bool {
        match self {
            OspfRunner::Baseline(s) => s.step_until(deadline).is_some(),
            OspfRunner::Rb(n) => n.sim_mut().step_until(deadline).is_some(),
        }
    }

    fn run_until(&mut self, deadline: SimTime) {
        match self {
            OspfRunner::Baseline(s) => s.run_until(deadline),
            OspfRunner::Rb(n) => n.run_until(deadline),
        }
    }

    fn table_matches(&self, g: &Graph, mask: &TopoMask) -> bool {
        let n = g.node_count();
        (0..n).all(|i| {
            let id = NodeId(i as u32);
            if mask.nodes_down.contains(&id) {
                return true;
            }
            let expected = OspfProcess::expected_table(g, mask, id);
            let actual = match self {
                OspfRunner::Baseline(s) => s.process(id).control_plane().routing_table(),
                OspfRunner::Rb(net) => net.control_plane(id).routing_table(),
            };
            *actual == expected
        })
    }

    fn schedule(&mut self, t: SimTime, ev: &NetworkEvent) {
        match ev.kind {
            EventKind::LinkDown(a, b) => match self {
                OspfRunner::Baseline(s) => s.schedule_link_admin(t, a, b, false),
                OspfRunner::Rb(n) => n.schedule_link(t, a, b, false),
            },
            EventKind::LinkUp(a, b) => match self {
                OspfRunner::Baseline(s) => s.schedule_link_admin(t, a, b, true),
                OspfRunner::Rb(n) => n.schedule_link(t, a, b, true),
            },
            EventKind::NodeDown(x) => match self {
                OspfRunner::Baseline(s) => s.schedule_node_admin(t, x, false),
                OspfRunner::Rb(n) => n.schedule_node(t, x, false),
            },
            EventKind::NodeUp(x) => match self {
                OspfRunner::Baseline(s) => s.schedule_node_admin(t, x, true),
                OspfRunner::Rb(n) => n.schedule_node(t, x, true),
            },
        }
    }

    /// Per-node protocol packets sent since build (DEFINED control traffic
    /// included for RB; beacon flood traffic excluded so the comparison
    /// isolates event-driven overhead, as Fig. 6a does).
    fn pkt_counts(&self, n: usize) -> Vec<u64> {
        match self {
            OspfRunner::Baseline(s) => {
                (0..n).map(|i| s.metrics().node(NodeId(i as u32)).msgs_sent).collect()
            }
            OspfRunner::Rb(net) => (0..n)
                .map(|i| {
                    let m = net.node_metrics(NodeId(i as u32));
                    m.app_msgs_sent + m.unsend_msgs
                })
                .collect(),
        }
    }

    /// Aggregated RB metrics (zero for baseline).
    pub fn rb_metrics(&self) -> RbMetrics {
        match self {
            OspfRunner::Baseline(_) => RbMetrics::default(),
            OspfRunner::Rb(n) => n.total_metrics(),
        }
    }

    /// Consumes the runner, extracting the RB network when instrumented.
    pub fn into_rb(self) -> Option<RbNetwork<OspfProcess>> {
        match self {
            OspfRunner::Baseline(_) => None,
            OspfRunner::Rb(n) => Some(n),
        }
    }

    /// Replays `events` with per-event measurement.
    ///
    /// Each event is injected once the network has stabilised from the
    /// previous one (or `spacing` has elapsed); convergence is declared when
    /// every routing table matches the post-event ground truth, checked
    /// every few simulator steps. `deadline_per_event` bounds the wait.
    pub fn replay_trace(
        &mut self,
        g: &Graph,
        events: &[NetworkEvent],
        warmup: SimDuration,
        spacing: SimDuration,
        deadline_per_event: SimDuration,
    ) -> TraceStats {
        let n = g.node_count();
        let mut stats = TraceStats::default();
        let mut mask = TopoMask::default();
        self.run_until(SimTime::ZERO + warmup);
        let mut t = self.now();
        for ev in events {
            // Apply the event to the ground-truth mask.
            match ev.kind {
                EventKind::LinkDown(a, b) => mask.link_down(a, b),
                EventKind::LinkUp(a, b) => mask.link_up(a, b),
                EventKind::NodeDown(x) => mask.node_down(x),
                EventKind::NodeUp(x) => mask.node_up(x),
            }
            if !g.is_connected(&mask) {
                // Convergence to a partitioned truth is ill-defined for this
                // harness; revert and skip.
                match ev.kind {
                    EventKind::LinkDown(a, b) => mask.link_up(a, b),
                    EventKind::NodeDown(x) => mask.node_up(x),
                    _ => {}
                }
                continue;
            }
            t += spacing;
            self.schedule(t, ev);
            let before = self.pkt_counts(n);
            let deadline = t + deadline_per_event;
            let mut converged_at = None;
            let mut checks = 0u32;
            while self.step(deadline) {
                if self.now() < t {
                    continue;
                }
                checks += 1;
                if checks.is_multiple_of(8) && self.table_matches(g, &mask) {
                    converged_at = Some(self.now());
                    break;
                }
            }
            if converged_at.is_none() && self.table_matches(g, &mask) {
                converged_at = Some(self.now());
            }
            let after = self.pkt_counts(n);
            stats.pkts_per_node.push(
                before.iter().zip(after.iter()).map(|(b, a)| a - b).collect(),
            );
            stats
                .convergence
                .push(converged_at.map(|c| c.saturating_sub(t).as_secs_f64()));
            t = self.now().max(t);
        }
        stats.rb = self.rb_metrics();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::canonical;

    fn small_trace(g: &Graph) -> Vec<NetworkEvent> {
        let e = g.edges()[0];
        vec![
            NetworkEvent { at: SimTime::ZERO, kind: EventKind::LinkDown(e.a, e.b) },
            NetworkEvent { at: SimTime::ZERO, kind: EventKind::LinkUp(e.a, e.b) },
        ]
    }

    #[test]
    fn baseline_trace_replay_converges() {
        let g = canonical::ring(5, SimDuration::from_millis(3));
        let mut r = OspfRunner::baseline(&g, OspfConfig::stress(5), 1, 0.2);
        let stats = r.replay_trace(
            &g,
            &small_trace(&g),
            SimDuration::from_secs(12),
            SimDuration::from_secs(2),
            SimDuration::from_secs(30),
        );
        assert_eq!(stats.convergence.len(), 2);
        assert!(stats.convergence.iter().all(|c| c.is_some()), "{:?}", stats.convergence);
        assert!(stats.pkts_per_node[0].iter().sum::<u64>() > 0);
    }

    #[test]
    fn rb_trace_replay_converges_with_bounded_overhead() {
        let g = canonical::ring(5, SimDuration::from_millis(3));
        let cfg = DefinedConfig::production(SimDuration::from_secs(1));
        let mut r = OspfRunner::rb(&g, OspfConfig::stress(5), cfg, 2, 0.2);
        let stats = r.replay_trace(
            &g,
            &small_trace(&g),
            SimDuration::from_secs(12),
            SimDuration::from_secs(2),
            SimDuration::from_secs(30),
        );
        assert!(stats.convergence.iter().all(|c| c.is_some()), "{:?}", stats.convergence);
        assert_eq!(stats.rb.window_violations, 0);
    }
}
