//! Prints the data behind every figure of the DEFINED evaluation.
//!
//! Usage:
//!
//! ```text
//! figures [--full] [6a 6b 6c 7a 7b 7c 8a 8b 8c 8d]
//! ```
//!
//! With no figure ids, all panels are generated. `--full` uses the paper's
//! topology sizes (Sprintlink 43 nodes, BRITE 20–80); the default quick mode
//! shrinks the workloads so the whole suite finishes in about a minute.

use defined_bench::figures::{self, FigureData, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let wanted: Vec<&str> = args.iter().filter(|a| !a.starts_with("--")).map(|s| s.as_str()).collect();
    let scale = Scale { quick: !full };
    let all = wanted.is_empty();
    let want = |id: &str| all || wanted.contains(&id);

    let mut rendered: Vec<FigureData> = Vec::new();
    if want("6a") || want("6b") {
        let (a, b) = figures::fig6ab(scale);
        if want("6a") {
            rendered.push(a);
        }
        if want("6b") {
            rendered.push(b);
        }
    }
    if want("6c") {
        rendered.push(figures::fig6c(scale));
    }
    if want("7a") {
        rendered.push(figures::fig7a(scale));
    }
    if want("7b") {
        rendered.push(figures::fig7b(scale));
    }
    if want("7c") {
        rendered.push(figures::fig7c(scale));
    }
    if want("8a") || want("8b") {
        let (a, b) = figures::fig8ab(scale);
        if want("8a") {
            rendered.push(a);
        }
        if want("8b") {
            rendered.push(b);
        }
    }
    if want("8c") {
        rendered.push(figures::fig8c(scale));
    }
    if want("8d") {
        rendered.push(figures::fig8d(scale));
    }

    for f in &rendered {
        println!("{}", f.render());
    }
    println!("===== summaries =====");
    for f in &rendered {
        print!("{}", f.summary());
    }
}
