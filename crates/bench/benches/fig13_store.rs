//! Fig. 13 (this reproduction's addition): cost of the durable `.drec`
//! store — the CRC-framed serialisation and the validating, recovering
//! open — relative to the raw in-memory codec.
//!
//! One stressed OSPF run over the Ebone topology supplies a real
//! recording; per iteration we measure (a) writing it into the store
//! format in memory, (b) opening the store — a full structural walk with
//! every frame CRC checked plus `Recording` reconstruction — against the
//! raw `Recording::from_bytes` decode, and (c) opening a torn copy, i.e.
//! the recovery path that truncates to the last sync point. Everything
//! runs over `VecIo`, so the numbers isolate format overhead from disk
//! and fsync latency (policy `Never`; the `OnSync` cost is one
//! `fdatasync` per sync point and belongs to the device, not the code).
//!
//! The raw codec is not a like-for-like baseline on *size*: a finished
//! store additionally persists one `COMMITS` frame per node — the full
//! reference commit logs `verify` replays against — and on a stressed
//! run those dwarf the partial recording itself (the printed size line
//! shows the ratio). The per-byte costs are what matter: the CRC pass
//! touches every byte once, so store encode/decode must stay within a
//! small constant factor of the raw codec per byte written — durable
//! recording is never the reason to skip `--out`.

use criterion::{criterion_group, criterion_main, Criterion};
use defined_core::recorder::Recording;
use defined_core::{DefinedConfig, RbNetwork};
use defined_store::{open_bytes, write_recording, FsyncPolicy, StoreMeta, VecIo};
use netsim::{NodeId, SimTime};
use routing::ospf::{OspfConfig, OspfProcess};
use topology::rocketfuel;

fn ebone_recording() -> (Recording<()>, Vec<Vec<defined_core::recorder::CommitRecord>>) {
    let g = rocketfuel::build(rocketfuel::Isp::Ebone);
    let n = g.node_count();
    let procs: Vec<OspfProcess> = {
        let f = OspfProcess::for_graph(&g, OspfConfig::stress(n));
        (0..n).map(|i| f(NodeId(i as u32))).collect()
    };
    let spawn = move |id: NodeId| procs[id.index()].clone();
    let mut net = RbNetwork::new(&g, DefinedConfig::default(), 11, 0.3, spawn);
    net.run_until(SimTime::from_secs(3));
    net.into_recording()
}

fn bench_store(c: &mut Criterion) {
    let (rec, logs) = ebone_recording();
    let meta = StoreMeta { n_nodes: rec.n_nodes, source: rec.source, scenario: "fig13".into() };
    let upto = rec.last_group;
    let store_bytes = write_recording(
        VecIo::new(),
        &meta,
        &rec,
        &logs,
        upto,
        8,
        FsyncPolicy::Never,
    )
    .expect("VecIo cannot fail")
    .bytes;
    let raw_bytes = rec.to_bytes();
    // Tear off the closing segment so the open exercises recovery.
    let torn = &store_bytes[..store_bytes.len() * 2 / 3];

    eprintln!(
        "fig13_store: store {} bytes vs raw {} bytes for the same recording",
        store_bytes.len(),
        raw_bytes.len()
    );
    let mut group = c.benchmark_group("fig13_store");
    group.sample_size(20);
    group.bench_function("write-store", |b| {
        b.iter(|| {
            write_recording(VecIo::new(), &meta, &rec, &logs, upto, 8, FsyncPolicy::Never)
                .expect("VecIo cannot fail")
                .bytes
                .len()
        });
    });
    group.bench_function("open-store", |b| {
        b.iter(|| open_bytes::<()>(&store_bytes).expect("valid store").recording.ticks.len());
    });
    group.bench_function("open-store-torn", |b| {
        b.iter(|| open_bytes::<()>(torn).expect("recoverable").info.recovered_tail_bytes);
    });
    group.bench_function("raw-decode-baseline", |b| {
        b.iter(|| Recording::<()>::from_bytes(&raw_bytes).expect("valid recording").ticks.len());
    });
    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
