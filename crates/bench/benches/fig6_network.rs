//! Network-level benchmarks behind Fig. 6: simulation throughput of the
//! baseline vs the RB-instrumented network, and LS replay speed, on the
//! Ebone-scale topology.

use criterion::{criterion_group, criterion_main, Criterion};
use defined_core::{DefinedConfig, LockstepNet, RbNetwork};
use netsim::{NodeId, SimDuration, SimTime};
use routing::ospf::{OspfConfig, OspfProcess};
use topology::rocketfuel::{self, Isp};

fn spawners() -> (topology::Graph, Vec<OspfProcess>) {
    let g = rocketfuel::build(Isp::Ebone);
    let n = g.node_count();
    let f = OspfProcess::for_graph(&g, OspfConfig::stress(n));
    let spawn = (0..n).map(|i| f(NodeId(i as u32))).collect();
    drop(f);
    (g, spawn)
}

fn bench_production(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_production_run");
    group.sample_size(10);

    group.bench_function("baseline_2s", |b| {
        b.iter(|| {
            let (g, spawn) = spawners();
            let mut sim = defined_core::harness::baseline_network(
                &g,
                SimDuration::from_millis(250),
                1,
                0.3,
                move |id| spawn[id.index()].clone(),
            );
            sim.run_until(SimTime::from_secs(2));
            sim.metrics().total_sent()
        });
    });

    group.bench_function("defined_rb_2s", |b| {
        b.iter(|| {
            let (g, spawn) = spawners();
            let cfg = DefinedConfig {
                strategy: checkpoint::Strategy::MemIntercept,
                commit_horizon: Some(SimDuration::from_secs(2)),
                ..DefinedConfig::default()
            };
            let mut net = RbNetwork::new(&g, cfg, 1, 0.3, move |id| spawn[id.index()].clone());
            net.run_until(SimTime::from_secs(2));
            net.total_metrics().app_msgs_sent
        });
    });
    group.finish();
}

fn bench_ls_replay(c: &mut Criterion) {
    let (g, spawn) = spawners();
    let cfg = DefinedConfig::recording();
    let s1 = spawn.clone();
    let mut net = RbNetwork::new(&g, cfg.clone(), 2, 0.3, move |id| s1[id.index()].clone());
    net.run_until(SimTime::from_secs(3));
    let (rec, _) = net.into_recording();

    let mut group = c.benchmark_group("fig6_ls_replay");
    group.sample_size(10);
    group.bench_function("replay_recording", |b| {
        b.iter(|| {
            let spawn = spawn.clone();
            let mut ls =
                LockstepNet::new(&g, cfg.clone(), rec.clone(), move |id| spawn[id.index()].clone());
            ls.run_to_end();
            ls.step_times().len()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_production, bench_ls_replay);
criterion_main!(benches);
