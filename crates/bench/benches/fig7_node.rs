//! Real microbenchmarks behind Fig. 7: checkpoint and restore costs of the
//! FK / MI / clone strategies over a converged, realistically-sized OSPF
//! state, plus per-packet processing under the three fork timings.

use checkpoint::{Checkpointer, Snapshotable, Strategy};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use defined_core::snapshot::NodeSnapshot;
use netsim::{NodeId, SimDuration, SimTime};
use routing::ospf::{OspfConfig, OspfMsg, OspfProcess};
use routing::{ControlPlane, Outbox};
use topology::rocketfuel::{self, Isp};

/// Runs the baseline protocol to convergence and returns one node's state.
fn converged_state() -> OspfProcess {
    let g = rocketfuel::build(Isp::Ebone);
    let n = g.node_count();
    let f = OspfProcess::for_graph(&g, OspfConfig::stress(n));
    let spawn: Vec<OspfProcess> = (0..n).map(|i| f(NodeId(i as u32))).collect();
    let mut sim = defined_core::harness::baseline_network(
        &g,
        SimDuration::from_millis(250),
        1,
        0.2,
        move |id| spawn[id.index()].clone(),
    );
    sim.run_until(SimTime::from_secs(12));
    sim.process(NodeId(0)).control_plane().clone()
}

fn bench_checkpoint(c: &mut Criterion) {
    let cp = converged_state();
    let snap = NodeSnapshot::new(cp);
    let mut group = c.benchmark_group("fig7_checkpoint");
    group.sample_size(30);

    group.bench_function("clone", |b| {
        let mut store = Checkpointer::new(Strategy::CloneState);
        b.iter(|| store.checkpoint(&snap));
    });
    group.bench_function("fork_full_image", |b| {
        let mut store = Checkpointer::new(Strategy::Fork);
        b.iter(|| store.checkpoint(&snap));
    });
    group.bench_function("mem_intercept_diff", |b| {
        let mut store = Checkpointer::new(Strategy::MemIntercept);
        store.checkpoint(&snap); // Base image so diffs are incremental.
        b.iter(|| store.checkpoint(&snap));
    });
    group.finish();
}

fn bench_restore(c: &mut Criterion) {
    let cp = converged_state();
    let snap = NodeSnapshot::new(cp);
    let mut group = c.benchmark_group("fig7_restore");
    group.sample_size(30);

    for (name, strategy) in [
        ("clone", Strategy::CloneState),
        ("fork_full_image", Strategy::Fork),
        ("mem_intercept", Strategy::MemIntercept),
    ] {
        let mut store = Checkpointer::new(strategy);
        let id = store.checkpoint(&snap);
        group.bench_function(name, |b| {
            b.iter(|| store.restore(id).expect("restores"));
        });
    }
    group.finish();
}

fn bench_packet_processing(c: &mut Criterion) {
    let cp = converged_state();
    let mut group = c.benchmark_group("fig7_per_packet");
    group.sample_size(30);

    let hello = OspfMsg::Hello;
    let from = cp.up_neighbors().first().copied().unwrap_or(NodeId(1));

    // XORP: bare processing.
    group.bench_function("xorp_bare", |b| {
        b.iter_batched(
            || cp.clone(),
            |mut state| {
                let mut out = Outbox::new();
                state.on_message(from, &hello, &mut out);
                state
            },
            BatchSize::SmallInput,
        );
    });

    // TF: the full checkpoint lands on the critical path before processing.
    group.bench_function("tf_fork_on_arrival", |b| {
        let mut store = Checkpointer::new(Strategy::Fork);
        b.iter_batched(
            || NodeSnapshot::new(cp.clone()),
            |mut snap| {
                store.checkpoint(&snap);
                let mut out = Outbox::new();
                snap.cp.on_message(from, &hello, &mut out);
                snap
            },
            BatchSize::SmallInput,
        );
    });

    // PF/TM: the checkpoint happened during idle; the critical path pays
    // only the residual (bookkeeping + dirty-page diff for MI).
    group.bench_function("pf_prefork_residual", |b| {
        let mut store = Checkpointer::new(Strategy::MemIntercept);
        store.checkpoint(&NodeSnapshot::new(cp.clone()));
        b.iter_batched(
            || NodeSnapshot::new(cp.clone()),
            |mut snap| {
                // Residual: incremental dirty-page diff against the prefork.
                store.checkpoint(&snap);
                let mut out = Outbox::new();
                snap.cp.on_message(from, &hello, &mut out);
                snap
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("tm_touch_memory", |b| {
        b.iter_batched(
            || NodeSnapshot::new(cp.clone()),
            |mut snap| {
                let mut out = Outbox::new();
                snap.cp.on_message(from, &hello, &mut out);
                snap
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_encode(c: &mut Criterion) {
    let cp = converged_state();
    let mut group = c.benchmark_group("fig7_encode");
    group.sample_size(50);
    group.bench_function("encode_state", |b| {
        let mut buf = Vec::with_capacity(1 << 16);
        b.iter(|| {
            buf.clear();
            cp.encode(&mut buf);
            buf.len()
        });
    });
    group.bench_function("decode_state", |b| {
        let mut buf = Vec::new();
        cp.encode(&mut buf);
        b.iter(|| OspfProcess::decode(&buf).expect("decodes"));
    });
    group.finish();
}

criterion_group!(benches, bench_checkpoint, bench_restore, bench_packet_processing, bench_encode);
criterion_main!(benches);
