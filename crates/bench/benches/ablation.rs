//! Ablation benchmarks (DESIGN.md §6): design knobs the paper mentions but
//! does not sweep — checkpoint granularity (§3), beacon interval (§5.3), and
//! causal-chain bound (§2.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use defined_core::config::CapturePolicy;
use defined_core::{DefinedConfig, RbNetwork};
use netsim::{NodeId, SimDuration, SimTime};
use routing::ospf::{OspfConfig, OspfProcess};
use topology::canonical;

fn run(cfg: DefinedConfig, jitter: f64) -> defined_core::RbMetrics {
    let g = canonical::ring(8, SimDuration::from_millis(4));
    let f = OspfProcess::for_graph(&g, OspfConfig::stress(8));
    let spawn: Vec<OspfProcess> = (0..8).map(|i| f(NodeId(i as u32))).collect();
    let mut net = RbNetwork::new(&g, cfg, 3, jitter, move |id| spawn[id.index()].clone());
    net.run_until(SimTime::from_secs(4));
    net.total_metrics()
}

fn bench_checkpoint_every(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_checkpoint_every");
    group.sample_size(10);
    let policies = [
        ("1", CapturePolicy::Every(1)),
        ("4", CapturePolicy::Every(4)),
        ("16", CapturePolicy::Every(16)),
        ("auto", CapturePolicy::auto()),
    ];
    for (label, policy) in policies {
        group.bench_with_input(BenchmarkId::from_parameter(label), &policy, |b, &policy| {
            b.iter(|| {
                let cfg = DefinedConfig {
                    capture: policy,
                    strategy: checkpoint::Strategy::MemIntercept,
                    commit_horizon: Some(SimDuration::from_secs(2)),
                    ..DefinedConfig::default()
                };
                run(cfg, 0.8).rollbacks
            });
        });
    }
    group.finish();
}

fn bench_beacon_interval(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_beacon_interval");
    group.sample_size(10);
    for ms in [125u64, 250, 500] {
        group.bench_with_input(BenchmarkId::from_parameter(ms), &ms, |b, &ms| {
            b.iter(|| {
                let cfg = DefinedConfig {
                    beacon_interval: SimDuration::from_millis(ms),
                    commit_horizon: Some(SimDuration::from_secs(2)),
                    ..DefinedConfig::default()
                };
                run(cfg, 0.6).rollbacks
            });
        });
    }
    group.finish();
}

fn bench_chain_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_chain_bound");
    group.sample_size(10);
    for bound in [4u32, 24, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(bound), &bound, |b, &bound| {
            b.iter(|| {
                let cfg = DefinedConfig {
                    chain_bound: bound,
                    commit_horizon: Some(SimDuration::from_secs(2)),
                    ..DefinedConfig::default()
                };
                run(cfg, 0.6).rollbacks
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_checkpoint_every, bench_beacon_interval, bench_chain_bound);
criterion_main!(benches);
