//! Fig. 10 (new for this reproduction): the replay farm — parallel
//! exploration throughput and checkpoint-seeded bisection probes.
//!
//! Two claims under test:
//!
//! 1. **Parallel sweeps scale.** An ordering sweep is a set of independent
//!    deterministic replays; with `jobs >= 2` the farm must beat the serial
//!    sweep wall-clock while returning the identical earliest-salt answer
//!    (determinism is asserted by `tests/farm_determinism.rs`; this bench
//!    records the speed side).
//! 2. **Checkpoint-seeded probes are sublinear.** A bisection probe seeded
//!    from the nearest retained group-boundary image re-executes at most
//!    one checkpoint interval, so a whole bisection costs far less than
//!    the from-zero probes of cyclic debugging (each O(prefix length)).
//!
//! Benchmarks:
//!
//! * `fig10_explore/sweep/serial|jobs2|jobs4` — a full 8-salt ordering
//!   sweep (predicate never matches, so every salt replays).
//! * `fig10_explore/bisect/from_zero` — binary search with fresh
//!   from-event-zero replays per probe (the pre-farm engine).
//! * `fig10_explore/bisect/seeded` — the same search over one
//!   checkpoint-seeded probe session (`FarmConfig::serial`).
//! * `fig10_explore/bisect/seeded_jobs2` — speculative 2-way rounds on two
//!   workers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use defined_core::bisect::first_bad_group_farm;
use defined_core::explore::explore_orderings_farm;
use defined_core::{DefinedConfig, FarmConfig, LockstepNet, RbNetwork};
use netsim::{NodeId, SimDuration, SimTime};
use routing::ospf::{OspfConfig, OspfProcess};
use topology::canonical;

/// Records an OSPF ring run and returns the replay inputs.
fn recorded(secs: u64) -> (topology::Graph, defined_core::recorder::Recording<()>, Vec<OspfProcess>) {
    let g = canonical::ring(5, SimDuration::from_millis(4));
    let procs: Vec<OspfProcess> = {
        let f = OspfProcess::for_graph(&g, OspfConfig::stress(5));
        (0..5).map(|i| f(NodeId(i))).collect()
    };
    let spawn = procs.clone();
    let mut net =
        RbNetwork::new(&g, DefinedConfig::default(), 11, 0.4, move |id| spawn[id.index()].clone());
    net.run_until(SimTime::from_secs(secs));
    let (rec, _) = net.into_recording();
    (g, rec, procs)
}

fn bench_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_explore/sweep");
    group.sample_size(10);
    let (g, rec, procs) = recorded(6);
    let cfg = DefinedConfig::default();
    let spawn = |id: NodeId| procs[id.index()].clone();
    // Never matches: the sweep replays all 8 salts, so the measurement is
    // pure probe throughput (a found-early sweep would cut off the farm's
    // and the serial engine's work identically).
    let never = |_: &LockstepNet<OspfProcess>| false;
    for jobs in [1usize, 2, 4] {
        let label = if jobs == 1 { "serial".to_string() } else { format!("jobs{jobs}") };
        let farm = FarmConfig::with_jobs(jobs);
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let hit =
                    explore_orderings_farm(&g, &cfg, &rec, spawn, 0..8u64, never, &farm);
                assert!(hit.is_none());
            });
        });
    }
    group.finish();
}

fn bench_bisect(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_explore/bisect");
    group.sample_size(10);
    let (g, rec, procs) = recorded(24);
    let cfg = DefinedConfig::default();
    let spawn = |id: NodeId| procs[id.index()].clone();
    // A monotone predicate with a mid-run answer: node 2's committed log
    // has reached the length it first attains around the middle group.
    let target_len = {
        let mut ls = LockstepNet::new(&g, cfg.clone(), rec.clone(), spawn);
        ls.run_to_group_start(rec.last_group / 2);
        ls.logs()[2].len()
    };
    assert!(target_len > 0);
    let bad = move |ls: &LockstepNet<OspfProcess>| ls.logs()[2].len() >= target_len;

    // Baseline: every probe replays its whole prefix from event zero — the
    // pre-farm engine, i.e. cyclic debugging with a binary search driver.
    group.bench_function(BenchmarkId::from_parameter("from_zero"), |b| {
        b.iter(|| {
            let mut replays = 0usize;
            let mut probe = |g_up: u64| -> bool {
                replays += 1;
                let mut ls = LockstepNet::new(&g, cfg.clone(), rec.clone(), spawn);
                ls.run_to_group_start(g_up + 1);
                bad(&ls)
            };
            assert!(probe(rec.last_group));
            let (mut lo, mut hi) = (1u64, rec.last_group);
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if probe(mid) {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            lo
        });
    });

    // The farm's checkpoint-seeded session: identical probe schedule, each
    // probe re-executes at most one checkpoint interval.
    for (label, farm) in [
        ("seeded", FarmConfig::serial()),
        ("seeded_jobs2", FarmConfig::with_jobs(2)),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                first_bad_group_farm(&g, &cfg, &rec, spawn, bad, &farm)
                    .expect("predicate fires")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sweep, bench_bisect);
criterion_main!(benches);
