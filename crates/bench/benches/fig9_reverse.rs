//! Fig. 9 (new for this reproduction): reverse-step latency versus run
//! length.
//!
//! The claim under test is the headline property of checkpointed reverse
//! execution: a backward step restores the nearest whole-network checkpoint
//! and re-executes at most one checkpoint interval of events, so its
//! latency is bounded by the *checkpoint interval* — it must stay flat as
//! the recorded run grows 10×. A cyclic-debugging baseline (re-replaying
//! from event zero, what DDB/MIO-style tools avoid the same way) is
//! measured alongside for contrast: it grows linearly with run length.
//!
//! Benchmarks:
//!
//! * `fig9_reverse/reverse_step/<secs>s` — one `reverse_step(1)` +
//!   `step(1)` pair at the end of a recording of the given length.
//! * `fig9_reverse/goto_mid/<secs>s` — a long backward jump to the middle.
//! * `fig9_reverse/replay_from_zero/<secs>s` — the baseline: rebuild and
//!   replay the prefix from scratch.

use checkpoint::{RetentionPolicy, Strategy};
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::cell::RefCell;
use std::rc::Rc;
use defined_core::debugger::{Debugger, StepGranularity};
use defined_core::{DefinedConfig, LockstepNet, RbNetwork};
use netsim::{NodeId, SimDuration, SimTime};
use routing::ospf::{OspfConfig, OspfProcess};
use topology::canonical;

/// Checkpoint cadence used throughout (events). Rewind work is bounded by
/// this, whatever the run length.
const INTERVAL: u64 = 32;

/// Records an OSPF ring run of `secs` simulated seconds and returns the
/// replay inputs.
fn recorded(secs: u64) -> (topology::Graph, defined_core::recorder::Recording<()>, Vec<OspfProcess>) {
    let g = canonical::ring(5, SimDuration::from_millis(4));
    let procs: Vec<OspfProcess> = {
        let f = OspfProcess::for_graph(&g, OspfConfig::stress(5));
        (0..5).map(|i| f(NodeId(i))).collect()
    };
    let spawn = procs.clone();
    let mut net =
        RbNetwork::new(&g, DefinedConfig::default(), 11, 0.4, move |id| spawn[id.index()].clone());
    net.run_until(SimTime::from_secs(secs));
    let (rec, _) = net.into_recording();
    (g, rec, procs)
}

fn debugger_at_end(
    g: &topology::Graph,
    rec: &defined_core::recorder::Recording<()>,
    procs: &[OspfProcess],
) -> (Debugger<OspfProcess>, u64) {
    let procs = procs.to_vec();
    let ls = LockstepNet::new(g, DefinedConfig::default(), rec.clone(), move |id: NodeId| {
        procs[id.index()].clone()
    });
    let mut dbg = Debugger::new(ls);
    dbg.enable_time_travel(INTERVAL, Strategy::MemIntercept, RetentionPolicy::default());
    dbg.run_to_end();
    let end = dbg.delivered();
    (dbg, end)
}

fn bench_reverse(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_reverse");
    group.sample_size(20);
    // 4 s vs 40 s of recorded execution: a 10× growth in run length.
    for secs in [4u64, 40] {
        let (g, rec, procs) = recorded(secs);
        let (mut dbg, end) = debugger_at_end(&g, &rec, &procs);
        assert!(end > 100, "run long enough to be interesting");

        group.bench_function(BenchmarkId::new("reverse_step", format!("{secs}s")), |b| {
            b.iter(|| {
                // Back one, forward one: position-stable across iterations,
                // each rewind restores a checkpoint and replays < INTERVAL
                // events regardless of `end`.
                dbg.reverse_step(1).expect("time travel on");
                dbg.step(StepGranularity::Event).expect("forward replay");
                assert!(dbg.last_rewind_replayed() < INTERVAL);
            });
        });

        // A long backward jump: end → end/2. The unmeasured setup walks
        // back to the end; only the backward jump itself is timed — it
        // restores one checkpoint and replays < INTERVAL events however
        // far it travels.
        let (dbg, end) = debugger_at_end(&g, &rec, &procs);
        let dbg = Rc::new(RefCell::new(dbg));
        group.bench_function(BenchmarkId::new("goto_mid", format!("{secs}s")), |b| {
            let setup_dbg = Rc::clone(&dbg);
            let run_dbg = Rc::clone(&dbg);
            b.iter_batched(
                move || {
                    setup_dbg.borrow_mut().goto(end).expect("forward");
                },
                move |()| {
                    let mut d = run_dbg.borrow_mut();
                    d.goto(end / 2).expect("reachable");
                    assert!(d.last_rewind_replayed() < INTERVAL);
                },
                BatchSize::PerIteration,
            );
        });

        // Baseline: cyclic debugging. Reproducing "one event earlier" by
        // replaying from event zero costs O(run length).
        group.bench_function(BenchmarkId::new("replay_from_zero", format!("{secs}s")), |b| {
            b.iter(|| {
                let procs = procs.to_vec();
                let mut ls =
                    LockstepNet::new(&g, DefinedConfig::default(), rec.clone(), move |id: NodeId| {
                        procs[id.index()].clone()
                    });
                for _ in 0..end - 1 {
                    ls.step_event();
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reverse);
criterion_main!(benches);
