//! Scalability benchmarks behind Fig. 8: RB run cost vs network size and vs
//! ordering function, on BRITE-style graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use defined_core::config::CapturePolicy;
use defined_core::{DefinedConfig, OrderingMode, RbNetwork};
use netsim::{NodeId, SimDuration, SimTime};
use routing::ospf::{OspfConfig, OspfProcess};
use topology::brite;

fn rb_run(n: usize, ordering: OrderingMode, seconds: u64) -> u64 {
    let g = brite::barabasi_albert(n, 2, 80 + n as u64);
    let f = OspfProcess::for_graph(&g, OspfConfig::stress(n));
    let spawn: Vec<OspfProcess> = (0..n).map(|i| f(NodeId(i as u32))).collect();
    let cfg = DefinedConfig {
        ordering,
        strategy: checkpoint::Strategy::MemIntercept,
        // The production capture cadence: adapt the checkpoint interval to
        // the observed rollback churn instead of capturing every delivery.
        capture: CapturePolicy::auto(),
        commit_horizon: Some(SimDuration::from_secs(2)),
        ..DefinedConfig::default()
    };
    let mut net = RbNetwork::new(&g, cfg, 5, 0.3, move |id| spawn[id.index()].clone());
    net.run_until(SimTime::from_secs(seconds));
    net.total_metrics().rollbacks
}

fn bench_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_size");
    group.sample_size(10);
    for n in [20usize, 40] {
        group.bench_with_input(BenchmarkId::new("rb_oo_2s", n), &n, |b, &n| {
            b.iter(|| rb_run(n, OrderingMode::Optimized, 2));
        });
    }
    group.finish();
}

fn bench_ordering(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_ordering");
    group.sample_size(10);
    group.bench_function("optimized", |b| b.iter(|| rb_run(20, OrderingMode::Optimized, 2)));
    group.bench_function("random", |b| b.iter(|| rb_run(20, OrderingMode::Random, 2)));
    group.finish();
}

criterion_group!(benches, bench_sizes, bench_ordering);
criterion_main!(benches);
