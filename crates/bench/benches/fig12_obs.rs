//! Fig. 12 (this reproduction's addition): observability overhead on the
//! record + replay workflow.
//!
//! One stressed OSPF run over the Ebone topology is recorded and replayed
//! per iteration — the full hot path the obs substrate instruments (RB
//! production with GVT sampling, wire encode/decode, lockstep waves) —
//! with metric collection on and off (`defined_obs::set_enabled`). The
//! target is <3% overhead for the always-on default: collection is relaxed
//! atomics behind per-call-site handles, so the two timings should be
//! within noise of each other. The compiled-out (`obs-off` feature) leg
//! can only be cheaper than "off" and needs no bench of its own.
//!
//! On a single-core host both points still run serially (this is the
//! 1-CPU serial path the acceptance criterion names); a skip note flags
//! that sharded-replay imbalance metrics are then unexercised.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use defined_core::{DefinedConfig, LockstepNet, RbNetwork};
use netsim::{NodeId, SimTime};
use routing::ospf::{OspfConfig, OspfProcess};
use topology::rocketfuel;

fn bench_obs_overhead(c: &mut Criterion) {
    if std::thread::available_parallelism().map_or(1, |p| p.get()) < 2 {
        eprintln!(
            "fig12_obs: single-core host — measuring the serial path only; \
             per-shard metrics (ls.shard*) stay cold"
        );
    }
    let g = rocketfuel::build(rocketfuel::Isp::Ebone);
    let n = g.node_count();
    let procs: Vec<OspfProcess> = {
        let f = OspfProcess::for_graph(&g, OspfConfig::stress(n));
        (0..n).map(|i| f(NodeId(i as u32))).collect()
    };

    let mut group = c.benchmark_group("fig12_obs");
    group.sample_size(10);
    for enabled in [true, false] {
        let label = if enabled { "metrics-on" } else { "metrics-off" };
        group.bench_with_input(BenchmarkId::from_parameter(label), &enabled, |b, &enabled| {
            defined_obs::set_enabled(enabled);
            b.iter(|| {
                let spawn = {
                    let procs = procs.clone();
                    move |id: NodeId| procs[id.index()].clone()
                };
                let mut net =
                    RbNetwork::new(&g, DefinedConfig::default(), 11, 0.3, spawn.clone());
                net.run_until(SimTime::from_secs(3));
                let (recording, _) = net.into_recording();
                let mut ls = LockstepNet::new(&g, DefinedConfig::default(), recording, spawn);
                ls.run_to_end();
                ls.logs().iter().map(|l| l.len()).sum::<usize>()
            });
            defined_obs::set_enabled(true);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
