//! Fig. 11 (this reproduction's addition): lockstep replay throughput vs
//! shard count on a Rocketfuel PoP graph.
//!
//! A single recording of an OSPF run over the Ebone topology is replayed
//! with the wave engine split 1-, 2-, and 4-way (`ShardedNet`). The replayed
//! event count is fixed — it is printed once so the timings read directly
//! as events/sec — and the outputs are byte-identical by construction
//! (`tests/shard_determinism.rs`), so only the wall clock varies. On a
//! single-core host the sharded points still run (the scoped workers are
//! real threads) but measure coordination overhead, not speed-up; a skip
//! note says so.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use defined_core::recorder::Recording;
use defined_core::{DefinedConfig, LockstepNet, RbNetwork};
use netsim::{NodeId, SimTime};
use routing::ospf::{OspfConfig, OspfProcess};
use topology::{rocketfuel, Graph};

/// Records ~3 simulated seconds of stressed OSPF on Ebone (25 PoPs).
fn record_ebone() -> (Graph, Vec<OspfProcess>, Recording<<OspfProcess as routing::ControlPlane>::Ext>) {
    let g = rocketfuel::build(rocketfuel::Isp::Ebone);
    let n = g.node_count();
    let procs: Vec<OspfProcess> = {
        let f = OspfProcess::for_graph(&g, OspfConfig::stress(n));
        (0..n).map(|i| f(NodeId(i as u32))).collect()
    };
    let spawn = {
        let procs = procs.clone();
        move |id: NodeId| procs[id.index()].clone()
    };
    let mut net = RbNetwork::new(&g, DefinedConfig::default(), 11, 0.3, spawn);
    net.run_until(SimTime::from_secs(3));
    let (recording, _) = net.into_recording();
    (g, procs, recording)
}

fn bench_shards(c: &mut Criterion) {
    if std::thread::available_parallelism().map_or(1, |p| p.get()) < 2 {
        eprintln!(
            "fig11_shard: single-core host — shards > 1 measure thread-exchange \
             overhead only, not speed-up"
        );
    }
    let (g, procs, recording) = record_ebone();
    let events: usize = {
        let spawn = |id: NodeId| procs[id.index()].clone();
        let mut ls = LockstepNet::new(&g, DefinedConfig::default(), recording.clone(), spawn);
        ls.run_to_end();
        ls.logs().iter().map(|l| l.len()).sum()
    };
    eprintln!("fig11_shard: {events} committed events per replay (divide by the time per iter)");

    let mut group = c.benchmark_group("fig11_shard");
    group.sample_size(10);
    for shards in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(shards), &shards, |b, &shards| {
            b.iter(|| {
                let spawn = |id: NodeId| procs[id.index()].clone();
                let mut ls =
                    LockstepNet::new(&g, DefinedConfig::default(), recording.clone(), spawn)
                        .with_shards(shards);
                ls.run_to_end();
                ls.logs().iter().map(|l| l.len()).sum::<usize>()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shards);
criterion_main!(benches);
