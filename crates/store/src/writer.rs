//! Appending a recording to a store: framing, sync points, fsync policy.

use crate::format::{encode_header, kind, StoreError, StoreMeta};
use crate::io::StoreIo;
use defined_core::recorder::{CommitRecord, DropByIndex, ExtRecord, MuteRecord, Recording, TickRecord};
use defined_core::wire::Wire;
use defined_obs as obs;
use routing::enc::{put_u32, put_u64, put_u8};
use std::marker::PhantomData;

/// When the writer flushes to durable storage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` at every sync point and at finish — a crash loses at most
    /// one inter-sync window. The default.
    #[default]
    OnSync,
    /// Never `fsync`; durability is whatever the OS got around to. For
    /// tests and throughput experiments.
    Never,
}

/// Streams one recording into a [`StoreIo`] sink, append-only.
///
/// Layout contract (enforced by construction): header → meta → sync(0) →
/// data frames interleaved with sync points → \[commits × n_nodes →
/// finish\]. `finish` consumes the writer, so appending after the
/// terminal frame is unrepresentable.
pub struct StoreWriter<X, Io: StoreIo> {
    io: Io,
    policy: FsyncPolicy,
    n_nodes: usize,
    data_frames: u64,
    n_ext: u64,
    n_drops: u64,
    n_mutes: u64,
    n_ticks: u64,
    last_sync: u64,
    tombstoned: bool,
    _ext: PhantomData<fn() -> X>,
}

impl<X: Wire, Io: StoreIo> StoreWriter<X, Io> {
    /// Starts a store: writes the header, the meta frame, and the initial
    /// group-0 sync point.
    pub fn create(io: Io, meta: &StoreMeta, policy: FsyncPolicy) -> Result<Self, StoreError> {
        let mut w = StoreWriter {
            io,
            policy,
            n_nodes: meta.n_nodes,
            data_frames: 0,
            n_ext: 0,
            n_drops: 0,
            n_mutes: 0,
            n_ticks: 0,
            last_sync: 0,
            tombstoned: false,
            _ext: PhantomData,
        };
        let mut header = Vec::with_capacity(crate::format::HEADER_LEN);
        encode_header(&mut header);
        w.io.write_all(&header)?;
        obs::counter!("store.bytes_written").add(header.len() as u64);
        let mut payload = Vec::new();
        meta.encode(&mut payload);
        w.frame(kind::META, &payload)?;
        w.sync_point(0)?;
        Ok(w)
    }

    /// Appends one external event.
    pub fn append_ext(&mut self, e: &ExtRecord<X>) -> Result<(), StoreError> {
        let mut payload = Vec::new();
        e.encode(&mut payload);
        self.data_frames += 1;
        self.n_ext += 1;
        self.frame(kind::EXT, &payload)
    }

    /// Appends one committed message loss.
    pub fn append_drop(&mut self, d: &DropByIndex) -> Result<(), StoreError> {
        let mut payload = Vec::new();
        d.encode(&mut payload);
        self.data_frames += 1;
        self.n_drops += 1;
        self.frame(kind::DROP, &payload)
    }

    /// Appends one death cut.
    pub fn append_mute(&mut self, m: &MuteRecord) -> Result<(), StoreError> {
        let mut payload = Vec::new();
        m.encode(&mut payload);
        self.data_frames += 1;
        self.n_mutes += 1;
        self.frame(kind::MUTE, &payload)
    }

    /// Appends one delivered beacon tick.
    pub fn append_tick(&mut self, t: &TickRecord) -> Result<(), StoreError> {
        let mut payload = Vec::new();
        t.encode(&mut payload);
        self.data_frames += 1;
        self.n_ticks += 1;
        self.frame(kind::TICK, &payload)
    }

    /// Writes a sync point declaring everything up to and including
    /// `group` durable, flushing per the fsync policy. Recovery truncates
    /// a torn tail back to the latest of these.
    pub fn sync_point(&mut self, group: u64) -> Result<(), StoreError> {
        debug_assert!(group >= self.last_sync, "sync points must be monotone");
        debug_assert!(!self.tombstoned, "no sync points after a reset tombstone");
        self.last_sync = group;
        let mut payload = Vec::new();
        put_u64(&mut payload, group);
        put_u64(&mut payload, self.data_frames); // Self-check tally.
        self.frame(kind::SYNC, &payload)?;
        obs::counter!("store.sync_points").add(1);
        if self.policy == FsyncPolicy::OnSync {
            self.io.sync()?;
            obs::counter!("store.fsync").add(1);
        }
        Ok(())
    }

    /// Group of the most recent sync point.
    pub fn synced_group(&self) -> u64 {
        self.last_sync
    }

    /// Appends a retraction tombstone: every data frame written so far is
    /// superseded by whatever follows. The escape hatch for streamed runs
    /// whose canonical recording disowns already-durable frames (a node
    /// restart discards its pre-crash committed log, DESIGN.md §7) — an
    /// append-only file cannot unwrite, so the writer tombstones the
    /// stream and re-appends the authoritative content before finishing.
    /// Self-check tallies restart from zero; no sync point may follow
    /// (torn-tail recovery must land on a pre-reset prefix).
    pub fn reset(&mut self) -> Result<(), StoreError> {
        self.frame(kind::RESET, &[])?;
        self.tombstoned = true;
        self.n_ext = 0;
        self.n_drops = 0;
        self.n_mutes = 0;
        self.n_ticks = 0;
        Ok(())
    }

    /// Closes the store: one commits frame per node, the terminal finish
    /// frame (with self-check counts), and a final flush. Consuming
    /// `self` makes append-after-finish a type error.
    ///
    /// `commits` must hold exactly one log per node — anything else is a
    /// caller bug, not a file-corruption condition, hence the assert.
    pub fn finish(
        mut self,
        last_group: u64,
        upto: u64,
        commits: &[Vec<CommitRecord>],
    ) -> Result<Io, StoreError> {
        assert_eq!(commits.len(), self.n_nodes, "one commit log per node");
        for (node, log) in commits.iter().enumerate() {
            let mut payload = Vec::new();
            put_u32(&mut payload, node as u32);
            put_u64(&mut payload, log.len() as u64);
            for r in log {
                r.encode(&mut payload);
            }
            self.frame(kind::COMMITS, &payload)?;
        }
        let mut payload = Vec::new();
        put_u64(&mut payload, last_group);
        put_u64(&mut payload, upto);
        put_u64(&mut payload, self.n_ext);
        put_u64(&mut payload, self.n_drops);
        put_u64(&mut payload, self.n_mutes);
        put_u64(&mut payload, self.n_ticks);
        self.frame(kind::FINISH, &payload)?;
        if self.policy == FsyncPolicy::OnSync {
            self.io.sync()?;
            obs::counter!("store.fsync").add(1);
        }
        Ok(self.io)
    }

    /// Emits one CRC-framed record in a single `write_all`, so injected
    /// per-write faults tear the file exactly at (or inside) one frame.
    fn frame(&mut self, kind: u8, payload: &[u8]) -> Result<(), StoreError> {
        let mut buf = Vec::with_capacity(crate::format::FRAME_OVERHEAD + payload.len());
        put_u8(&mut buf, kind);
        put_u32(&mut buf, payload.len() as u32);
        buf.extend_from_slice(payload);
        let crc = crate::crc::crc32(&buf);
        put_u32(&mut buf, crc);
        self.io.write_all(&buf)?;
        obs::counter!("store.bytes_written").add(buf.len() as u64);
        Ok(())
    }
}

/// Writes a complete in-memory recording to `io` with a sync point every
/// `sync_every` groups, returning the sink.
///
/// The live engine streams frames as production progresses instead; this
/// helper is the offline path (tests, conversions) and produces the same
/// layout.
pub fn write_recording<X: Wire, Io: StoreIo>(
    io: Io,
    meta: &StoreMeta,
    rec: &Recording<X>,
    commits: &[Vec<CommitRecord>],
    upto: u64,
    sync_every: u64,
    policy: FsyncPolicy,
) -> Result<Io, StoreError> {
    let mut w = StoreWriter::<X, Io>::create(io, meta, policy)?;
    let step = sync_every.max(1);
    let (mut ei, mut ti) = (0usize, 0usize);
    let mut g = 0u64;
    while g < rec.last_group {
        g = (g + step).min(rec.last_group);
        while ei < rec.externals.len() && rec.externals[ei].group <= g {
            w.append_ext(&rec.externals[ei])?;
            ei += 1;
        }
        while ti < rec.ticks.len() && rec.ticks[ti].group <= g {
            w.append_tick(&rec.ticks[ti])?;
            ti += 1;
        }
        w.sync_point(g)?;
    }
    // Externals may legitimately carry groups past the last completed
    // group (inputs that arrived as the run was winding down).
    for e in &rec.externals[ei..] {
        w.append_ext(e)?;
    }
    for t in &rec.ticks[ti..] {
        w.append_tick(t)?;
    }
    for d in &rec.drops {
        w.append_drop(d)?;
    }
    for m in &rec.mutes {
        w.append_mute(m)?;
    }
    w.finish(rec.last_group, upto, commits)
}
