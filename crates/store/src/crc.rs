//! CRC-32 (IEEE 802.3): the frame checksum of the `.drec` format.
//!
//! Hand-rolled because the build host is offline — no `crc32fast`. The
//! reflected-polynomial table variant below is the classic byte-at-a-time
//! formulation; it is not the throughput bottleneck of the store (frame
//! encoding and fsync are), so no slicing-by-8 heroics.

/// Reflected CRC-32 polynomial (IEEE 802.3 / zlib / PNG).
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` (init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF` — the
/// standard zlib/PNG parameterisation).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::crc32;

    /// The standard check value: CRC-32("123456789") = 0xCBF43926.
    #[test]
    fn matches_the_reference_vectors() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        // Any single-bit flip changes the checksum (spot check).
        let base = crc32(b"defined-store");
        let mut buf = b"defined-store".to_vec();
        for i in 0..buf.len() * 8 {
            buf[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&buf), base, "flip at bit {i} went undetected");
            buf[i / 8] ^= 1 << (i % 8);
        }
    }
}
