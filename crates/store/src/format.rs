//! The `.drec` on-disk layout: header, frame kinds, and the typed error
//! taxonomy every read path reports through. DESIGN.md §12 documents the
//! format and its recovery invariants in full.

use netsim::NodeId;
use routing::enc::{put_u16, put_u32, put_u64, Reader};

/// File magic: the first four bytes of every `.drec` store.
pub const MAGIC: [u8; 4] = *b"DREC";

/// Current format version, stored little-endian after the magic.
pub const VERSION: u16 = 1;

/// Fixed header length: magic (4) + version (2) + reserved (2) + CRC-32 of
/// the preceding eight bytes (4).
pub const HEADER_LEN: usize = 12;

/// Per-frame overhead: kind (1) + payload length (4) + CRC-32 (4).
pub const FRAME_OVERHEAD: usize = 9;

/// Sanity cap on a single frame's declared payload length. A frame longer
/// than this is corrupt by fiat — the cap keeps a flipped length byte from
/// ever driving a giant allocation or a multi-gigabyte scan-ahead.
pub const MAX_FRAME_LEN: u32 = 1 << 28;

/// Frame kind bytes. The writer's layout contract: `META`, a `SYNC` at
/// group 0, data frames (`EXT`/`DROP`/`MUTE`/`TICK`) interleaved with
/// further `SYNC`s, then — only when the run closed cleanly — an optional
/// `RESET` tombstone plus replacement data frames, one `COMMITS` frame
/// per node, and a single terminal `FINISH`.
pub(crate) mod kind {
    /// Run metadata (node count, beacon source, scenario name).
    pub const META: u8 = 0;
    /// One [`ExtRecord`](defined_core::recorder::ExtRecord).
    pub const EXT: u8 = 1;
    /// One [`DropByIndex`](defined_core::recorder::DropByIndex).
    pub const DROP: u8 = 2;
    /// One [`MuteRecord`](defined_core::recorder::MuteRecord) (death cut).
    pub const MUTE: u8 = 3;
    /// One [`TickRecord`](defined_core::recorder::TickRecord).
    pub const TICK: u8 = 4;
    /// Durability point: everything before it is recoverable.
    pub const SYNC: u8 = 5;
    /// One node's committed delivery log.
    pub const COMMITS: u8 = 6;
    /// Terminal frame: run summary + self-check counts.
    pub const FINISH: u8 = 7;
    /// Retraction tombstone: every data frame before it is superseded by
    /// the frames that follow. An append-only file cannot unwrite, so
    /// when finalisation discovers streamed frames the canonical
    /// recording no longer contains (a node restart discards its
    /// pre-crash committed log), the writer tombstones the stream and
    /// appends the authoritative content. Only ever followed by data
    /// frames and the closing segment, never by a sync point — so a torn
    /// tail still recovers to a pre-reset (streamed) prefix.
    pub const RESET: u8 = 8;
    /// Highest assigned kind byte.
    pub const MAX: u8 = RESET;
}

/// Why a structurally complete region of a store failed validation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CorruptReason {
    /// The stored frame checksum does not match the frame bytes.
    BadCrc,
    /// The frame kind byte names no known record type.
    UnknownKind(u8),
    /// The declared payload length exceeds [`MAX_FRAME_LEN`].
    OversizedFrame(u32),
    /// A CRC-valid frame's payload failed to decode (names the frame type).
    BadPayload(&'static str),
    /// Bytes present beyond the terminal finish frame.
    TrailingData,
    /// A self-check tally (sync point or finish summary) disagrees with
    /// the frames actually present (names the check).
    CountMismatch(&'static str),
}

impl std::fmt::Display for CorruptReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorruptReason::BadCrc => write!(f, "frame checksum mismatch"),
            CorruptReason::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            CorruptReason::OversizedFrame(n) => {
                write!(f, "declared frame length {n} exceeds the {MAX_FRAME_LEN}-byte cap")
            }
            CorruptReason::BadPayload(what) => write!(f, "undecodable {what} payload"),
            CorruptReason::TrailingData => write!(f, "trailing bytes after the finish frame"),
            CorruptReason::CountMismatch(what) => write!(f, "{what} self-check count mismatch"),
        }
    }
}

/// Everything that can go wrong opening, scanning, or writing a store.
/// Every reader path returns one of these — never a panic — and each
/// variant says what a caller can do about it.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying I/O failed (writer paths, file opens).
    Io(std::io::Error),
    /// The input is shorter than the fixed header.
    TooShort {
        /// Actual byte length presented.
        len: usize,
    },
    /// The input does not start with the `DREC` magic — not a store.
    BadMagic,
    /// A store of an unsupported format version.
    BadVersion(u16),
    /// The header bytes fail their own checksum.
    CorruptHeader,
    /// Mid-file corruption: a structurally complete frame at `offset` is
    /// invalid. Unlike a torn tail this is never auto-recovered — the
    /// damage is inside the durable region, so the caller must decide.
    Corrupt {
        /// Byte offset of the offending frame.
        offset: usize,
        /// What failed.
        reason: CorruptReason,
    },
    /// The file is torn before its first sync point — nothing recoverable.
    NoSyncPoint {
        /// Byte offset where the valid prefix ends.
        offset: usize,
    },
    /// Strict-mode rejection of an unfinished (crash-recovered) store:
    /// the data is valid up to `synced_group`, but the run never closed.
    Unfinished {
        /// Last durable sync point's group.
        synced_group: u64,
        /// Bytes past that sync point that recovery would discard.
        dropped_bytes: u64,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O failed: {e}"),
            StoreError::TooShort { len } => {
                write!(f, "{len} byte(s) is shorter than the {HEADER_LEN}-byte store header")
            }
            StoreError::BadMagic => write!(f, "not a recording store (bad magic)"),
            StoreError::BadVersion(v) => {
                write!(f, "store format version {v} is not supported (this build reads {VERSION})")
            }
            StoreError::CorruptHeader => write!(f, "store header fails its checksum"),
            StoreError::Corrupt { offset, reason } => {
                write!(f, "corrupt frame at byte {offset}: {reason}")
            }
            StoreError::NoSyncPoint { offset } => {
                write!(f, "torn before the first sync point (valid prefix ends at byte {offset})")
            }
            StoreError::Unfinished { synced_group, dropped_bytes } => write!(
                f,
                "store is unfinished: recoverable to sync point at group {synced_group}, \
                 discarding {dropped_bytes} tail byte(s)"
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Run metadata carried in the store's first frame — enough to identify
/// and replay the recording without out-of-band context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreMeta {
    /// Nodes in the recorded network.
    pub n_nodes: usize,
    /// The initially configured beacon source
    /// ([`Recording::source`](defined_core::recorder::Recording::source)).
    pub source: NodeId,
    /// Name of the scenario that produced the run (empty when unknown).
    pub scenario: String,
}

/// Upper bound on a credible node count in a meta frame. The meta payload
/// is CRC-protected, so this only guards against a hand-crafted hostile
/// file turning `Vec::with_capacity(n_nodes)` into an allocation bomb.
const MAX_NODES: u64 = 1 << 24;

impl StoreMeta {
    pub(crate) fn encode(&self, buf: &mut Vec<u8>) {
        put_u64(buf, self.n_nodes as u64);
        put_u32(buf, self.source.0);
        put_u64(buf, self.scenario.len() as u64);
        buf.extend_from_slice(self.scenario.as_bytes());
    }

    pub(crate) fn decode(r: &mut Reader<'_>) -> Option<Self> {
        let n_nodes = r.u64()?;
        if n_nodes == 0 || n_nodes > MAX_NODES {
            return None;
        }
        let source = NodeId(r.u32()?);
        let name_len = r.len()?;
        let scenario = String::from_utf8(r.bytes(name_len)?.to_vec()).ok()?;
        Some(StoreMeta { n_nodes: n_nodes as usize, source, scenario })
    }
}

/// Encodes the fixed file header (magic, version, reserved, header CRC).
pub(crate) fn encode_header(buf: &mut Vec<u8>) {
    buf.extend_from_slice(&MAGIC);
    put_u16(buf, VERSION);
    put_u16(buf, 0); // Reserved.
    let crc = crate::crc::crc32(&buf[buf.len() - 8..]);
    put_u32(buf, crc);
}

/// Validates the fixed header, returning the format version.
pub(crate) fn check_header(bytes: &[u8]) -> Result<u16, StoreError> {
    if bytes.len() < HEADER_LEN {
        return Err(StoreError::TooShort { len: bytes.len() });
    }
    if bytes[..4] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let stored = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if crate::crc::crc32(&bytes[..8]) != stored {
        return Err(StoreError::CorruptHeader);
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
    if version != VERSION {
        return Err(StoreError::BadVersion(version));
    }
    Ok(version)
}

/// Whether `bytes` begin with the store magic — the cheap sniff the engine
/// uses to tell a `.drec` store from a legacy raw recording.
pub fn is_store(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC
}
