//! Opening a store: structural walk, CRC validation, torn-tail recovery,
//! and reconstruction of the in-memory [`Recording`].
//!
//! The contract every path here honours: **recover or return a typed
//! error, never panic, never hand back a silently wrong recording.** A
//! torn tail (crash/kill mid-append) truncates back to the last valid
//! sync point; a structurally complete but invalid frame — bad CRC,
//! unknown kind, impossible length, undecodable payload — is mid-file
//! corruption and yields a [`StoreError::Corrupt`] naming the offset.

use crate::format::{check_header, kind, CorruptReason, StoreError, StoreMeta, FRAME_OVERHEAD, HEADER_LEN, MAX_FRAME_LEN, VERSION};
use defined_core::recorder::{CommitRecord, DropByIndex, ExtRecord, MuteRecord, Recording, TickRecord};
use defined_core::wire::Wire;
use defined_obs as obs;
use netsim::NodeId;
use routing::enc::Reader;
use std::ops::Range;

/// One structurally valid frame located by the walk.
struct RawFrame {
    /// Byte offset of the frame's kind byte.
    offset: usize,
    kind: u8,
    payload: Range<usize>,
}

impl RawFrame {
    /// Byte offset just past this frame (payload + trailing CRC).
    fn end(&self) -> usize {
        self.payload.end + 4
    }
}

/// How the frame walk ended.
enum End {
    /// A terminal finish frame closed the store.
    Finished,
    /// Bytes ran out without a finish frame — torn or still being
    /// written. `valid_end` is where the last complete frame stopped.
    Unfinished { valid_end: usize },
}

/// Walks the frame sequence, validating structure and CRCs. Returns every
/// complete valid frame plus how the file ended. Mid-file corruption is an
/// error; running out of bytes is not (that is the recovery path's job).
fn walk(bytes: &[u8]) -> Result<(Vec<RawFrame>, End), StoreError> {
    check_header(bytes)?;
    let mut frames = Vec::new();
    let mut pos = HEADER_LEN;
    loop {
        let rem = bytes.len() - pos;
        if rem < FRAME_OVERHEAD {
            // Clean boundary (rem == 0) still lacks a finish frame, so it
            // is torn/unfinished all the same.
            return Ok((frames, End::Unfinished { valid_end: pos }));
        }
        let kind_byte = bytes[pos];
        let len = u32::from_le_bytes(bytes[pos + 1..pos + 5].try_into().expect("4 bytes"));
        if len > MAX_FRAME_LEN {
            return Err(StoreError::Corrupt {
                offset: pos,
                reason: CorruptReason::OversizedFrame(len),
            });
        }
        let end = pos + FRAME_OVERHEAD + len as usize;
        if end > bytes.len() {
            // The declared frame overruns the file: a torn append. (A
            // flipped length byte can land here too — callers that must
            // distinguish use strict mode, which rejects any recovery.)
            return Ok((frames, End::Unfinished { valid_end: pos }));
        }
        let stored = u32::from_le_bytes(bytes[end - 4..end].try_into().expect("4 bytes"));
        if crate::crc::crc32(&bytes[pos..end - 4]) != stored {
            return Err(StoreError::Corrupt { offset: pos, reason: CorruptReason::BadCrc });
        }
        if kind_byte > kind::MAX {
            return Err(StoreError::Corrupt {
                offset: pos,
                reason: CorruptReason::UnknownKind(kind_byte),
            });
        }
        let finish = kind_byte == kind::FINISH;
        frames.push(RawFrame { offset: pos, kind: kind_byte, payload: pos + 5..pos + 5 + len as usize });
        if finish {
            if end < bytes.len() {
                return Err(StoreError::Corrupt {
                    offset: end,
                    reason: CorruptReason::TrailingData,
                });
            }
            return Ok((frames, End::Finished));
        }
        pos = end;
    }
}

/// A validated store skeleton: the logical frames (torn tail already
/// truncated), the decoded meta, and the self-check bookkeeping.
struct Structure {
    frames: Vec<RawFrame>,
    meta: StoreMeta,
    finished: bool,
    synced_group: u64,
    recovered_tail_bytes: u64,
    n_ext: u64,
    n_drops: u64,
    n_mutes: u64,
    n_ticks: u64,
    /// `(last_group, upto)` from the finish frame, when finished.
    summary: Option<(u64, u64)>,
}

fn corrupt(offset: usize, reason: CorruptReason) -> StoreError {
    StoreError::Corrupt { offset, reason }
}

/// Full structural validation: walk, recover a torn tail to the last sync
/// point, verify every self-check tally, and decode the meta frame.
fn validate(bytes: &[u8]) -> Result<Structure, StoreError> {
    let (mut frames, end) = walk(bytes)?;
    let finished = matches!(end, End::Finished);
    let mut recovered_tail_bytes = 0u64;
    if let End::Unfinished { valid_end } = end {
        let last_sync = frames.iter().rposition(|f| f.kind == kind::SYNC);
        match last_sync {
            None => return Err(StoreError::NoSyncPoint { offset: valid_end }),
            Some(i) => {
                let durable_end = frames[i].end();
                frames.truncate(i + 1);
                recovered_tail_bytes = (bytes.len() - durable_end) as u64;
            }
        }
    }
    // The meta frame leads, exactly once.
    let Some(first) = frames.first() else {
        return Err(StoreError::NoSyncPoint { offset: HEADER_LEN });
    };
    if first.kind != kind::META {
        return Err(corrupt(first.offset, CorruptReason::BadPayload("meta")));
    }
    let mut r = Reader::new(&bytes[first.payload.clone()]);
    let meta = match StoreMeta::decode(&mut r) {
        Some(m) if r.remaining() == 0 => m,
        _ => return Err(corrupt(first.offset, CorruptReason::BadPayload("meta"))),
    };
    if frames.iter().skip(1).any(|f| f.kind == kind::META) {
        let dup = frames.iter().skip(1).find(|f| f.kind == kind::META).expect("just found");
        return Err(corrupt(dup.offset, CorruptReason::CountMismatch("meta frame")));
    }

    // Sync self-checks: payload carries the group and the number of data
    // frames written so far; both must agree with what is actually here,
    // and the groups must be monotone.
    let mut data_frames = 0u64;
    let (mut n_ext, mut n_drops, mut n_mutes, mut n_ticks) = (0u64, 0u64, 0u64, 0u64);
    let mut synced_group = 0u64;
    let mut saw_sync = false;
    let mut saw_reset = false;
    for f in &frames {
        match f.kind {
            kind::EXT => {
                n_ext += 1;
                data_frames += 1;
            }
            kind::DROP => {
                n_drops += 1;
                data_frames += 1;
            }
            kind::MUTE => {
                n_mutes += 1;
                data_frames += 1;
            }
            kind::TICK => {
                n_ticks += 1;
                data_frames += 1;
            }
            kind::SYNC => {
                let mut r = Reader::new(&bytes[f.payload.clone()]);
                let (group, counted) = match (r.u64(), r.u64()) {
                    (Some(g), Some(c)) if r.remaining() == 0 => (g, c),
                    _ => return Err(corrupt(f.offset, CorruptReason::BadPayload("sync point"))),
                };
                // A sync point after a reset tombstone would let recovery
                // land on a half-retracted prefix; the writer never emits
                // one, so its presence is corruption.
                if counted != data_frames || (saw_sync && group < synced_group) || saw_reset {
                    return Err(corrupt(f.offset, CorruptReason::CountMismatch("sync point")));
                }
                synced_group = group;
                saw_sync = true;
            }
            kind::RESET => {
                // Everything streamed so far is retracted; the tallies —
                // like the content — restart from the authoritative
                // frames that follow.
                n_ext = 0;
                n_drops = 0;
                n_mutes = 0;
                n_ticks = 0;
                saw_reset = true;
            }
            _ => {}
        }
    }

    // Commits frames: only meaningful in a finished store, where there
    // must be exactly one per node, contiguous, in node order, directly
    // before the finish frame. In a recovered (unfinished) prefix the
    // closing segment never made it, so any commits frames are ignored.
    let mut summary = None;
    if finished {
        let fin = frames.last().expect("finished walk ends on a finish frame");
        let commit_idxs: Vec<usize> =
            (0..frames.len()).filter(|&i| frames[i].kind == kind::COMMITS).collect();
        if commit_idxs.len() != meta.n_nodes {
            return Err(corrupt(fin.offset, CorruptReason::CountMismatch("commit logs")));
        }
        let first_commit = frames.len() - 1 - meta.n_nodes;
        for (want, &i) in (0..meta.n_nodes).zip(&commit_idxs) {
            if i != first_commit + want {
                return Err(corrupt(frames[i].offset, CorruptReason::CountMismatch("commit logs")));
            }
            let mut r = Reader::new(&bytes[frames[i].payload.clone()]);
            if r.u32() != Some(want as u32) {
                return Err(corrupt(frames[i].offset, CorruptReason::CountMismatch("commit logs")));
            }
        }
        let mut r = Reader::new(&bytes[fin.payload.clone()]);
        let fields: Option<[u64; 6]> = (|| {
            let v = [r.u64()?, r.u64()?, r.u64()?, r.u64()?, r.u64()?, r.u64()?];
            (r.remaining() == 0).then_some(v)
        })();
        let Some([last_group, upto, f_ext, f_drops, f_mutes, f_ticks]) = fields else {
            return Err(corrupt(fin.offset, CorruptReason::BadPayload("finish")));
        };
        if (f_ext, f_drops, f_mutes, f_ticks) != (n_ext, n_drops, n_mutes, n_ticks) {
            return Err(corrupt(fin.offset, CorruptReason::CountMismatch("finish summary")));
        }
        summary = Some((last_group, upto));
    }

    Ok(Structure {
        frames,
        meta,
        finished,
        synced_group,
        recovered_tail_bytes,
        n_ext,
        n_drops,
        n_mutes,
        n_ticks,
        summary,
    })
}

/// What a structural scan of a store reveals — everything knowable without
/// the protocol's payload type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScanInfo {
    /// Scenario name from the meta frame (empty when unknown).
    pub scenario: String,
    /// Nodes in the recorded network.
    pub n_nodes: usize,
    /// The initially configured beacon source.
    pub source: NodeId,
    /// Store format version.
    pub version: u16,
    /// Whether the store closed cleanly with a finish frame. `false`
    /// means a torn tail was recovered back to the last sync point.
    pub finished: bool,
    /// Valid frames in the logical store (after any recovery truncation).
    pub frames: usize,
    /// Group of the last durable sync point.
    pub synced_group: u64,
    /// Bytes past the last sync point that recovery discarded (0 for a
    /// finished store).
    pub recovered_tail_bytes: u64,
    /// External-event frames present (after any retraction tombstone).
    pub n_ext: u64,
    /// Drop frames present (after any retraction tombstone).
    pub n_drops: u64,
    /// Death-cut frames present (after any retraction tombstone).
    pub n_mutes: u64,
    /// Tick frames present (after any retraction tombstone).
    pub n_ticks: u64,
}

impl From<&Structure> for ScanInfo {
    fn from(s: &Structure) -> Self {
        ScanInfo {
            scenario: s.meta.scenario.clone(),
            n_nodes: s.meta.n_nodes,
            source: s.meta.source,
            version: VERSION,
            finished: s.finished,
            frames: s.frames.len(),
            synced_group: s.synced_group,
            recovered_tail_bytes: s.recovered_tail_bytes,
            n_ext: s.n_ext,
            n_drops: s.n_drops,
            n_mutes: s.n_mutes,
            n_ticks: s.n_ticks,
        }
    }
}

/// Structurally validates a store without decoding protocol payloads:
/// header, every frame CRC, self-check tallies, torn-tail recovery. This
/// is the protocol-independent integrity check behind `defined-dbg
/// verify`.
pub fn scan(bytes: &[u8]) -> Result<ScanInfo, StoreError> {
    validate(bytes).map(|s| ScanInfo::from(&s))
}

/// A store opened for replay: the reconstructed recording plus, when the
/// run closed cleanly, its stored reference commit logs.
pub struct Recovered<X> {
    /// The recording, canonicalised exactly as
    /// [`RbNetwork::into_recording`](defined_core::harness::RbNetwork::into_recording)
    /// produces it.
    pub recording: Recording<X>,
    /// Per-node committed logs (trimmed to `upto` at write time); present
    /// iff the store is finished.
    pub commits: Option<Vec<Vec<CommitRecord>>>,
    /// The comparison horizon the commit logs were trimmed to; present
    /// iff the store is finished.
    pub upto: Option<u64>,
    /// The structural scan that accompanied the open.
    pub info: ScanInfo,
}

/// Opens a store and reconstructs the [`Recording`], recovering a torn
/// tail back to the last sync point (reported via
/// `info.recovered_tail_bytes` and the `store.recovered_tail_bytes`
/// counter). Any mid-file corruption is a typed error.
pub fn open_bytes<X: Wire>(bytes: &[u8]) -> Result<Recovered<X>, StoreError> {
    let s = validate(bytes)?;
    obs::counter!("wire.bytes_decoded").add(bytes.len() as u64);
    let mut externals: Vec<ExtRecord<X>> = Vec::new();
    let mut drops: Vec<DropByIndex> = Vec::new();
    let mut mutes: Vec<MuteRecord> = Vec::new();
    let mut ticks: Vec<TickRecord> = Vec::new();
    let mut commits: Vec<Vec<CommitRecord>> = Vec::new();
    for f in &s.frames {
        let mut r = Reader::new(&bytes[f.payload.clone()]);
        match f.kind {
            kind::EXT => match ExtRecord::<X>::decode(&mut r) {
                Some(e) if r.remaining() == 0 => externals.push(e),
                _ => return Err(corrupt(f.offset, CorruptReason::BadPayload("external event"))),
            },
            kind::DROP => match DropByIndex::decode(&mut r) {
                Some(d) if r.remaining() == 0 => drops.push(d),
                _ => return Err(corrupt(f.offset, CorruptReason::BadPayload("drop"))),
            },
            kind::MUTE => match MuteRecord::decode(&mut r) {
                Some(m) if r.remaining() == 0 => mutes.push(m),
                _ => return Err(corrupt(f.offset, CorruptReason::BadPayload("death cut"))),
            },
            kind::TICK => match TickRecord::decode(&mut r) {
                Some(t) if r.remaining() == 0 => ticks.push(t),
                _ => return Err(corrupt(f.offset, CorruptReason::BadPayload("tick"))),
            },
            kind::RESET => {
                // Retraction tombstone: the frames before it were
                // superseded at finalisation (restart scenarios); the
                // authoritative content follows.
                externals.clear();
                drops.clear();
                mutes.clear();
                ticks.clear();
            }
            kind::COMMITS if s.finished => {
                let log = (|| {
                    let _node = r.u32()?;
                    let n = r.len()?;
                    let mut log = Vec::with_capacity(n);
                    for _ in 0..n {
                        log.push(CommitRecord::decode(&mut r)?);
                    }
                    (r.remaining() == 0).then_some(log)
                })();
                match log {
                    Some(log) => commits.push(log),
                    None => {
                        return Err(corrupt(f.offset, CorruptReason::BadPayload("commit log")))
                    }
                }
            }
            _ => {}
        }
    }
    let (last_group, upto) = match s.summary {
        Some((last_group, upto)) => (last_group, upto),
        // Recovered prefix: durable exactly up to the last sync point.
        None => (s.synced_group, 0),
    };
    if s.recovered_tail_bytes > 0 {
        obs::counter!("store.recovered_tail_bytes").add(s.recovered_tail_bytes);
    }
    // Canonicalise exactly as `RbNetwork::into_recording` does, so a
    // store round trip is byte-identical to the in-memory recording.
    externals.sort_by_key(|e| (e.group, e.node, e.ext_seq));
    drops.sort_by_key(|d| (d.sender, d.idx));
    drops.dedup();
    ticks.retain(|t| t.group <= last_group);
    ticks.sort_by_key(|t| (t.group, t.node));
    let recording = Recording {
        n_nodes: s.meta.n_nodes,
        source: s.meta.source,
        externals,
        drops,
        mutes,
        ticks,
        last_group,
    };
    Ok(Recovered {
        recording,
        commits: s.finished.then_some(commits),
        upto: s.finished.then_some(upto),
        info: ScanInfo::from(&s),
    })
}

/// Strict open: like [`open_bytes`], but refuses a store that needed
/// recovery — any torn tail becomes [`StoreError::Unfinished`]. This is
/// what `verify` uses, so a flipped length byte that masquerades as a
/// torn tail can never pass verification.
pub fn open_bytes_strict<X: Wire>(bytes: &[u8]) -> Result<Recovered<X>, StoreError> {
    let r = open_bytes::<X>(bytes)?;
    if !r.info.finished {
        return Err(StoreError::Unfinished {
            synced_group: r.info.synced_group,
            dropped_bytes: r.info.recovered_tail_bytes,
        });
    }
    Ok(r)
}
