//! `defined-store`: the append-only, crash-safe on-disk recording format.
//!
//! A `.drec` store is a versioned header followed by length-prefixed,
//! CRC-32-framed records (reusing the [`Wire`](defined_core::wire::Wire)
//! codecs of the in-memory [`Recording`](defined_core::recorder::Recording)),
//! punctuated by periodic **sync points** that bound what a crash can
//! lose. Opening a store recovers a torn tail back to the last valid sync
//! point; mid-file corruption (bit flip, bad length, bad CRC) is a typed
//! [`StoreError`] — never a panic, never a silently wrong replay.
//!
//! The writer runs over an injectable [`StoreIo`] so the recovery
//! guarantees are *demonstrated* by fault injection ([`FaultyIo`]:
//! failed, short, and silently-dropped writes), not assumed. DESIGN.md
//! §12 specifies the layout and the recovery invariants.

#![warn(missing_docs)]

mod crc;
mod format;
mod io;
mod reader;
mod writer;

pub use crc::crc32;
pub use format::{is_store, CorruptReason, StoreError, StoreMeta, HEADER_LEN, MAGIC, MAX_FRAME_LEN, VERSION};
pub use io::{FaultMode, FaultyIo, FileIo, StoreIo, VecIo};
pub use reader::{open_bytes, open_bytes_strict, scan, Recovered, ScanInfo};
pub use writer::{write_recording, FsyncPolicy, StoreWriter};

#[cfg(test)]
mod tests {
    use super::*;
    use defined_core::recorder::{DropByIndex, ExtRecord, Recording, TickRecord};
    use netsim::NodeId;

    fn sample() -> (StoreMeta, Recording<u64>) {
        let meta =
            StoreMeta { n_nodes: 3, source: NodeId(0), scenario: "unit-sample".to_string() };
        let rec = Recording {
            n_nodes: 3,
            source: NodeId(0),
            externals: vec![
                ExtRecord { node: NodeId(1), ext_seq: 1, group: 2, payload: 11u64 },
                ExtRecord { node: NodeId(2), ext_seq: 1, group: 5, payload: 22u64 },
                ExtRecord { node: NodeId(0), ext_seq: 1, group: 9, payload: 33u64 },
            ],
            drops: vec![DropByIndex { sender: NodeId(2), idx: 4 }],
            mutes: vec![],
            ticks: vec![
                TickRecord { node: NodeId(0), group: 1, source: NodeId(0) },
                TickRecord { node: NodeId(1), group: 4, source: NodeId(0) },
            ],
            last_group: 8,
        };
        (meta, rec)
    }

    fn write_sample(sync_every: u64) -> (Recording<u64>, Vec<u8>) {
        let (meta, rec) = sample();
        let commits = vec![Vec::new(), Vec::new(), Vec::new()];
        let io = write_recording(VecIo::new(), &meta, &rec, &commits, rec.last_group, sync_every, FsyncPolicy::Never)
            .expect("VecIo cannot fail");
        (rec, io.bytes)
    }

    #[test]
    fn round_trips_a_recording() {
        let (rec, bytes) = write_sample(2);
        assert!(is_store(&bytes));
        let opened = open_bytes::<u64>(&bytes).expect("valid store");
        assert_eq!(opened.recording, rec);
        assert!(opened.info.finished);
        assert_eq!(opened.info.scenario, "unit-sample");
        assert_eq!(opened.upto, Some(8));
        assert_eq!(opened.commits.as_deref().map(<[_]>::len), Some(3));
        let info = scan(&bytes).expect("scan");
        assert_eq!(info.n_ext, 3);
        assert_eq!(info.n_ticks, 2);
        assert_eq!(info.recovered_tail_bytes, 0);
    }

    #[test]
    fn torn_tail_recovers_to_the_last_sync_point() {
        let (rec, bytes) = write_sample(2);
        // Chop the closing segment: everything after the header plus a
        // few frames. Walk forward to a byte that keeps ≥ 1 sync point
        // but loses the finish frame.
        let cut = bytes.len() - 10;
        let opened = open_bytes::<u64>(&bytes[..cut]).expect("recoverable");
        assert!(!opened.info.finished);
        assert!(opened.info.recovered_tail_bytes > 0);
        assert!(opened.commits.is_none());
        assert!(opened.recording.last_group <= rec.last_group);
        // Strict mode refuses what plain open recovers.
        match open_bytes_strict::<u64>(&bytes[..cut]) {
            Err(StoreError::Unfinished { .. }) => {}
            other => panic!("expected Unfinished, got {:?}", other.map(|r| r.info)),
        }
    }

    #[test]
    fn torn_before_any_sync_point_is_unrecoverable() {
        let (_, bytes) = write_sample(2);
        match open_bytes::<u64>(&bytes[..HEADER_LEN + 3]) {
            Err(StoreError::NoSyncPoint { .. }) => {}
            other => panic!("expected NoSyncPoint, got {:?}", other.map(|r| r.info)),
        }
    }

    #[test]
    fn mid_file_flip_is_a_typed_error_not_a_recovery() {
        let (_, mut bytes) = write_sample(2);
        // Flip a byte inside an early frame payload (well before the
        // tail): the CRC catches it as corruption, not a torn tail.
        bytes[HEADER_LEN + 6] ^= 0x40;
        match open_bytes::<u64>(&bytes) {
            Err(StoreError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {:?}", other.map(|r| r.info)),
        }
    }

    #[test]
    fn header_damage_is_typed() {
        let (_, bytes) = write_sample(4);
        assert!(matches!(open_bytes::<u64>(&bytes[..5]), Err(StoreError::TooShort { len: 5 })));
        let mut b = bytes.clone();
        b[0] = b'X';
        assert!(matches!(open_bytes::<u64>(&b), Err(StoreError::BadMagic)));
        assert!(!is_store(&b));
        let mut b = bytes.clone();
        b[4] = 0xEE; // Version field — header CRC no longer matches.
        assert!(matches!(open_bytes::<u64>(&b), Err(StoreError::CorruptHeader)));
        let mut b = bytes;
        b[10] ^= 0x01; // CRC field itself.
        assert!(matches!(open_bytes::<u64>(&b), Err(StoreError::CorruptHeader)));
    }

    #[test]
    fn trailing_garbage_after_finish_is_corrupt() {
        let (_, mut bytes) = write_sample(2);
        bytes.push(0);
        assert!(matches!(
            open_bytes::<u64>(&bytes),
            Err(StoreError::Corrupt { reason: CorruptReason::TrailingData, .. })
        ));
    }

    #[test]
    fn injected_kill_recovers_like_a_real_crash() {
        let (meta, rec) = sample();
        let commits = vec![Vec::new(); 3];
        // Learn the full length, then replay the same writes through a
        // KillAfter sink that silently stops persisting partway.
        let full = write_recording(VecIo::new(), &meta, &rec, &commits, 8, 1, FsyncPolicy::Never)
            .expect("VecIo cannot fail")
            .bytes;
        let budget = full.len() * 2 / 3;
        let io = FaultyIo::new(FaultMode::KillAfter { bytes: budget });
        let io = write_recording(io, &meta, &rec, &commits, 8, 1, FsyncPolicy::Never)
            .expect("KillAfter reports success");
        let persisted = io.into_bytes();
        assert_eq!(persisted.len(), budget);
        let opened = open_bytes::<u64>(&persisted).expect("recover the durable prefix");
        assert!(!opened.info.finished);
        assert!(opened.recording.last_group < rec.last_group || opened.info.recovered_tail_bytes > 0);
    }

    #[test]
    fn injected_write_failure_surfaces_as_io_error() {
        let (meta, rec) = sample();
        let commits = vec![Vec::new(); 3];
        let io = FaultyIo::new(FaultMode::FailWrite { nth: 4 });
        match write_recording(io, &meta, &rec, &commits, 8, 2, FsyncPolicy::Never) {
            Err(StoreError::Io(_)) => {}
            Err(other) => panic!("expected Io, got {other}"),
            Ok(_) => panic!("expected the injected failure to surface"),
        }
    }

    #[test]
    fn reset_tombstone_retracts_streamed_frames() {
        // Simulate a streamed run whose finalisation discovers the
        // canonical recording disowns what was streamed (restart case):
        // stream one set of frames, tombstone, append the authoritative
        // set. The finished store must open to the post-reset content
        // only, while a pre-finish tear still recovers the streamed set.
        let (meta, rec) = sample();
        let stale = TickRecord { node: NodeId(2), group: 3, source: NodeId(0) };
        let mut w = StoreWriter::<u64, VecIo>::create(VecIo::new(), &meta, FsyncPolicy::Never)
            .expect("create");
        w.append_tick(&stale).expect("stale tick");
        w.append_ext(&rec.externals[0]).expect("stale ext");
        w.sync_point(4).expect("sync");
        w.reset().expect("tombstone");
        for e in &rec.externals {
            w.append_ext(e).expect("ext");
        }
        for t in &rec.ticks {
            w.append_tick(t).expect("tick");
        }
        for d in &rec.drops {
            w.append_drop(d).expect("drop");
        }
        let commits = vec![Vec::new(); 3];
        let io = w.finish(rec.last_group, rec.last_group, &commits).expect("finish");
        let bytes = io.bytes;

        let opened = open_bytes::<u64>(&bytes).expect("finished store opens");
        assert!(opened.info.finished);
        assert_eq!(opened.recording, rec, "only post-reset content survives");
        assert_eq!(opened.info.n_ticks, rec.ticks.len() as u64, "tallies restart at the reset");

        // Tear off the closing segment: recovery lands on the last sync
        // point, *before* the tombstone, so the streamed frames are back.
        let cut = bytes.len() - 10;
        let torn = open_bytes::<u64>(&bytes[..cut]).expect("torn store recovers");
        assert!(!torn.info.finished);
        assert_eq!(torn.recording.last_group, 4);
        assert_eq!(torn.recording.ticks, vec![stale]);
    }

    #[test]
    fn errors_render_actionable_messages() {
        let msgs = [
            StoreError::BadMagic.to_string(),
            StoreError::BadVersion(9).to_string(),
            StoreError::Corrupt { offset: 17, reason: CorruptReason::BadCrc }.to_string(),
            StoreError::NoSyncPoint { offset: 12 }.to_string(),
            StoreError::Unfinished { synced_group: 6, dropped_bytes: 40 }.to_string(),
        ];
        for m in &msgs {
            assert!(!m.is_empty());
        }
        assert!(msgs[1].contains('9'));
        assert!(msgs[2].contains("17"));
        assert!(msgs[4].contains("group 6"));
    }
}
