//! The injectable I/O layer under the store writer.
//!
//! Everything the writer does to a byte sink goes through [`StoreIo`], so
//! the same writer code runs against a real file ([`FileIo`]), an
//! in-memory buffer ([`VecIo`]), or a fault injector ([`FaultyIo`]) that
//! fails the Nth write, short-writes it, or silently stops persisting —
//! the crash simulations the recovery tests are built on.

use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

/// A byte sink the [`StoreWriter`](crate::writer::StoreWriter) appends to.
///
/// The writer issues exactly one `write_all` per frame, so an injected
/// fault on the Nth write tears the file at the Nth frame boundary (or
/// inside it, for short writes) — precisely the shapes a real crash
/// leaves behind.
pub trait StoreIo {
    /// Appends `buf` in full, or reports why it could not.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Flushes everything written so far to durable storage.
    fn sync(&mut self) -> io::Result<()>;
}

/// Writers consume their sink; going through `&mut` lets a caller keep
/// ownership — essential with [`FaultyIo`], where the interesting bytes
/// are the ones persisted *before* the injected failure.
impl<T: StoreIo + ?Sized> StoreIo for &mut T {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        (**self).write_all(buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        (**self).sync()
    }
}

/// Real-file backend: appends to a freshly created file, `sync` is
/// `fdatasync`.
pub struct FileIo {
    file: File,
}

impl FileIo {
    /// Creates (truncating) the store file at `path`.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(FileIo { file: File::create(path)? })
    }
}

impl StoreIo for FileIo {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.file.write_all(buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }
}

/// In-memory backend for tests and round trips; `sync` is a no-op.
#[derive(Default)]
pub struct VecIo {
    /// Everything written so far.
    pub bytes: Vec<u8>,
}

impl VecIo {
    /// An empty in-memory sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StoreIo for VecIo {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.bytes.extend_from_slice(buf);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// The fault to inject. Write calls are counted from 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultMode {
    /// The `nth` write call persists nothing and returns an error.
    FailWrite {
        /// 1-based index of the failing write call.
        nth: usize,
    },
    /// The `nth` write call persists only its first `keep` bytes, then
    /// returns an error — a torn write.
    ShortWrite {
        /// 1-based index of the failing write call.
        nth: usize,
        /// Bytes of that write that do reach the sink.
        keep: usize,
    },
    /// Every write call reports success, but only the first `bytes` bytes
    /// are actually persisted — the kernel-page-cache lie a power loss
    /// exposes. `sync` also (silently) succeeds; what survives is exactly
    /// the byte budget.
    KillAfter {
        /// Total byte budget that reaches durable storage.
        bytes: usize,
    },
}

/// A [`StoreIo`] that injects one configured fault, retaining what a
/// crashed process would actually have left on disk.
pub struct FaultyIo {
    mode: FaultMode,
    writes: usize,
    persisted: Vec<u8>,
}

impl FaultyIo {
    /// A sink that will misbehave per `mode`.
    pub fn new(mode: FaultMode) -> Self {
        FaultyIo { mode, writes: 0, persisted: Vec::new() }
    }

    /// The bytes that actually made it to "disk".
    pub fn persisted(&self) -> &[u8] {
        &self.persisted
    }

    /// Consumes the sink, yielding the persisted bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.persisted
    }
}

impl StoreIo for FaultyIo {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.writes += 1;
        match self.mode {
            FaultMode::FailWrite { nth } if self.writes == nth => {
                Err(io::Error::other("injected write failure"))
            }
            FaultMode::ShortWrite { nth, keep } if self.writes == nth => {
                self.persisted.extend_from_slice(&buf[..keep.min(buf.len())]);
                Err(io::Error::new(io::ErrorKind::WriteZero, "injected short write"))
            }
            FaultMode::KillAfter { bytes } => {
                let room = bytes.saturating_sub(self.persisted.len());
                self.persisted.extend_from_slice(&buf[..room.min(buf.len())]);
                Ok(()) // The page cache accepted it; durability is a lie.
            }
            _ => {
                self.persisted.extend_from_slice(buf);
                Ok(())
            }
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fail_write_drops_the_nth_call_entirely() {
        let mut io = FaultyIo::new(FaultMode::FailWrite { nth: 2 });
        io.write_all(b"aa").unwrap();
        assert!(io.write_all(b"bb").is_err());
        io.write_all(b"cc").unwrap();
        assert_eq!(io.persisted(), b"aacc");
    }

    #[test]
    fn short_write_keeps_a_prefix() {
        let mut io = FaultyIo::new(FaultMode::ShortWrite { nth: 1, keep: 3 });
        assert!(io.write_all(b"hello").is_err());
        assert_eq!(io.persisted(), b"hel");
    }

    #[test]
    fn kill_after_lies_about_success() {
        let mut io = FaultyIo::new(FaultMode::KillAfter { bytes: 4 });
        io.write_all(b"abc").unwrap();
        io.write_all(b"def").unwrap();
        io.sync().unwrap();
        assert_eq!(io.persisted(), b"abcd");
    }
}
