//! Chrome trace-event capture: completed spans become `"ph": "X"`
//! (complete) events that `about:tracing` / Perfetto render as a
//! per-thread flamegraph — one lane per worker shard.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Hard cap on buffered events: a runaway trace degrades to dropped
/// events (counted in `obs.trace_dropped`), never unbounded memory.
const TRACE_CAP: usize = 1 << 20;

/// One completed span occurrence.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Span name (the metric name).
    pub name: &'static str,
    /// Emitting thread's small stable id (0 = first observed thread).
    pub tid: u64,
    /// Start offset from the obs epoch, microseconds.
    pub ts_us: f64,
    /// Duration, microseconds.
    pub dur_us: f64,
}

fn sink() -> &'static Mutex<Vec<TraceEvent>> {
    static SINK: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
    &SINK
}

/// Small per-thread lane id: threads are numbered in order of their
/// first traced span, so shard workers get distinct, stable lanes.
fn thread_lane() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static LANE: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    LANE.with(|l| *l)
}

/// Buffers one completed span (called from [`crate::SpanGuard::drop`]).
pub(crate) fn push(name: &'static str, start: Instant, dur_ns: u64) {
    let ts = start.duration_since(crate::epoch()).as_nanos() as f64 / 1e3;
    let ev = TraceEvent { name, tid: thread_lane(), ts_us: ts, dur_us: dur_ns as f64 / 1e3 };
    let mut buf = sink().lock().unwrap();
    if buf.len() < TRACE_CAP {
        buf.push(ev);
    } else {
        drop(buf);
        crate::counter!("obs.trace_dropped").add(1);
    }
}

/// Drains every buffered event, in emission order per thread.
pub fn take_events() -> Vec<TraceEvent> {
    std::mem::take(&mut *sink().lock().unwrap())
}

/// Renders events as a Chrome trace (JSON array of complete events) for
/// `about:tracing` / Perfetto. Stable field order; pid is always 0.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut w = crate::json::Writer::new();
    w.arr(|w| {
        for ev in events {
            w.obj(|w| {
                w.key("name").str(ev.name);
                w.key("ph").str("X");
                w.key("pid").num(0);
                w.key("tid").num(ev.tid);
                w.key("ts").float3(ev.ts_us);
                w.key("dur").float3(ev.dur_us);
            });
        }
    });
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_emit_trace_events_only_while_tracing() {
        let _serial = crate::test_guard();
        crate::set_enabled(true);
        let _ = take_events();
        {
            let _g = crate::span!("test.trace_off");
        }
        assert!(take_events().is_empty(), "tracing off: no events");
        crate::set_tracing(true);
        {
            let _g = crate::span!("test.trace_on");
        }
        std::thread::scope(|s| {
            s.spawn(|| {
                let _g = crate::span!("test.trace_worker");
            });
        });
        crate::set_tracing(false);
        let events = take_events();
        assert_eq!(events.len(), 2, "{events:?}");
        assert_eq!(events[0].name, "test.trace_on");
        let worker = &events[1];
        assert_eq!(worker.name, "test.trace_worker");
        assert_ne!(worker.tid, events[0].tid, "worker threads get their own lane");

        let json = chrome_trace_json(&events);
        let v = crate::json::parse(&json).expect("valid trace JSON");
        match v {
            crate::json::Value::Arr(items) => {
                assert_eq!(items.len(), 2);
                assert_eq!(
                    items[0].get("ph"),
                    Some(&crate::json::Value::Str("X".into()))
                );
                assert!(items[0].get("ts").is_some() && items[0].get("dur").is_some());
            }
            other => panic!("trace must be an array: {other:?}"),
        }
    }
}
