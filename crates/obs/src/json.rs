//! A dependency-free JSON writer and reader, just big enough for the
//! profile dump and trace formats this crate emits — and for the
//! `defined-dbg check-profile` CI validation step to read them back.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Streaming JSON writer with correct string escaping and comma placement.
pub struct Writer {
    out: String,
    need_comma: bool,
}

impl Default for Writer {
    fn default() -> Self {
        Writer::new()
    }
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer { out: String::new(), need_comma: false }
    }

    fn pre_value(&mut self) {
        if self.need_comma {
            self.out.push(',');
        }
        self.need_comma = true;
    }

    /// Writes `{...}`, with `f` emitting the members.
    pub fn obj(&mut self, f: impl FnOnce(&mut Writer)) -> &mut Self {
        self.pre_value();
        self.out.push('{');
        self.need_comma = false;
        f(self);
        self.out.push('}');
        self.need_comma = true;
        self
    }

    /// Writes `[...]`, with `f` emitting the elements.
    pub fn arr(&mut self, f: impl FnOnce(&mut Writer)) -> &mut Self {
        self.pre_value();
        self.out.push('[');
        self.need_comma = false;
        f(self);
        self.out.push(']');
        self.need_comma = true;
        self
    }

    /// Writes an object key; the next emitted value is its value.
    pub fn key(&mut self, k: &str) -> &mut Self {
        self.pre_value();
        write_escaped(&mut self.out, k);
        self.out.push(':');
        self.need_comma = false;
        self
    }

    /// Writes an unsigned integer value.
    pub fn num(&mut self, v: u64) -> &mut Self {
        self.pre_value();
        let _ = write!(self.out, "{v}");
        self
    }

    /// Writes a float value with fixed 3-decimal formatting (trace
    /// timestamps in microseconds).
    pub fn float3(&mut self, v: f64) -> &mut Self {
        self.pre_value();
        let _ = write!(self.out, "{v:.3}");
        self
    }

    /// Writes a string value.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.pre_value();
        write_escaped(&mut self.out, s);
        self
    }

    /// The document produced so far.
    pub fn finish(self) -> String {
        self.out
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (held as f64; the emitted integers round-trip to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on an object, `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The numeric value as u64, `None` for other kinds.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

/// Parses one JSON document (trailing whitespace allowed).
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}"))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(b, pos, "null").map(|_| Value::Null),
        Some(b't') => expect(b, pos, "true").map(|_| Value::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|_| Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                map.insert(key, parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(map));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(Value::Num),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_produces_valid_nested_documents() {
        let mut w = Writer::new();
        w.obj(|w| {
            w.key("version").num(1);
            w.key("name").str("a \"quoted\"\nthing");
            w.key("items").arr(|w| {
                w.num(1).num(2);
                w.obj(|w| {
                    w.key("ts").float3(1.23456);
                });
            });
            w.key("empty").obj(|_| {});
        });
        let text = w.finish();
        let v = parse(&text).expect("round-trips");
        assert_eq!(v.get("version").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("name"), Some(&Value::Str("a \"quoted\"\nthing".into())));
        match v.get("items") {
            Some(Value::Arr(items)) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[2].get("ts"), Some(&Value::Num(1.235)));
            }
            other => panic!("items: {other:?}"),
        }
        assert_eq!(v.get("empty"), Some(&Value::Obj(BTreeMap::new())));
    }

    #[test]
    fn parser_handles_scalars_and_rejects_garbage() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1.5").unwrap(), Value::Num(-1.5));
        assert_eq!(parse("\"\\u0041\"").unwrap(), Value::Str("A".into()));
        assert_eq!(parse("[]").unwrap(), Value::Arr(vec![]));
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn as_u64_rejects_non_numbers_and_negatives() {
        assert_eq!(Value::Str("7".into()).as_u64(), None);
        assert_eq!(Value::Num(-3.0).as_u64(), None);
        assert_eq!(Value::Null.get("x"), None);
    }
}
