//! Determinism-safe observability for the DEFINED replay stack: spans,
//! monotonic counters, and log2-bucketed histograms behind a cheap
//! thread-safe registry, plus Chrome trace-event output (DESIGN.md §11).
//!
//! # The determinism-safety rule
//!
//! Replay correctness (Theorem 1) requires that observing an execution
//! never perturbs it — Ronsse's classic re-run invariant. This crate is
//! the *only* layer of the workspace allowed to read the wall clock
//! ([`std::time::Instant`]), and nothing it measures ever flows back into
//! an `OrderKey`, a scheduling decision, or any committed byte:
//!
//! * instrumented code calls [`counter!`]/[`span!`]/[`hist!`] and gets
//!   nothing back it could branch on — [`SpanGuard`] is opaque and
//!   counters are write-only from the hot path's point of view;
//! * all switches ([`set_enabled`], [`set_tracing`]) gate only whether
//!   measurements are *recorded*, so commit logs, transcripts, and farm
//!   reports are byte-identical with observability on, off, or compiled
//!   out (`tests/obs_determinism.rs` proves it; the `off` cargo feature
//!   is the compiled-out leg).
//!
//! # Naming scheme
//!
//! Metric names are `<subsystem>.<what>` with the subsystem prefixes
//! `ls.` (lockstep waves), `farm.` (probe workers), `ckpt.` (checkpoint
//! store), `gvt.`/`rb.` (virtual-time bound, rollbacks), and `wire.`
//! (codec bytes). Durations are nanoseconds; sizes are bytes. Counters
//! are monotone except the gauge-style readings set via [`Counter::set`]
//! (`gvt.bound`, `gvt.floor`, `rb.rollbacks`), which record the latest
//! observation of an already-monotone quantity.
//!
//! # Example
//!
//! ```
//! let _guard = defined_obs::span!("ls.wave");
//! defined_obs::counter!("ls.delivered").add(3);
//! defined_obs::hist!("farm.queue_wait_ns").record(1500);
//! let snap = defined_obs::global().snapshot();
//! assert!(snap.counter("ls.delivered") >= 3);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod json;
mod registry;
mod trace;

pub use registry::{
    bucket_floor, bucket_index, Counter, HistSnapshot, Histogram, Registry, Snapshot,
    SpanSnapshot, SpanStat,
};
pub use trace::{chrome_trace_json, take_events, TraceEvent};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Whether metric collection is active (default: on). Purely a recording
/// switch — flipping it never changes any replayed byte.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether span guards additionally emit Chrome trace events (default:
/// off — the event buffer costs memory, metrics don't).
static TRACING: AtomicBool = AtomicBool::new(false);

/// Compile-time kill switch: with the `off` feature every collection
/// check is a constant `false` the optimiser erases.
pub const COMPILED: bool = cfg!(not(feature = "off"));

/// Whether metric collection is currently recording.
#[inline]
pub fn enabled() -> bool {
    COMPILED && ENABLED.load(Ordering::Relaxed)
}

/// Turns metric collection on or off at runtime.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether Chrome trace-event capture is currently recording.
#[inline]
pub fn tracing() -> bool {
    enabled() && TRACING.load(Ordering::Relaxed)
}

/// Turns Chrome trace-event capture on or off at runtime.
pub fn set_tracing(on: bool) {
    TRACING.store(on, Ordering::Relaxed);
}

/// The process-wide registry every [`counter!`]/[`span!`]/[`hist!`] call
/// site records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// The instant the obs layer first observed — trace timestamps are
/// offsets from it, so a whole run renders from microsecond 0.
pub(crate) fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// A live span: started by [`span!`], it records its elapsed wall time
/// into a [`SpanStat`] (and, when tracing, a [`TraceEvent`]) on drop.
/// Inert when collection is off — no clock is read at all.
#[must_use = "a span measures the scope it is bound to; dropping it immediately measures nothing"]
pub struct SpanGuard {
    live: Option<(Instant, &'static SpanStat, &'static str)>,
}

impl SpanGuard {
    /// Starts a span against `stat` (called via the [`span!`] macro).
    #[inline]
    pub fn enter(name: &'static str, stat: &'static SpanStat) -> SpanGuard {
        if !enabled() {
            return SpanGuard { live: None };
        }
        // The epoch must pre-date the start for the trace offset math.
        let _ = epoch();
        SpanGuard { live: Some((Instant::now(), stat, name)) }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((start, stat, name)) = self.live.take() {
            let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            stat.record(ns);
            if tracing() {
                trace::push(name, start, ns);
            }
        }
    }
}

/// A wall-clock stopwatch owned by the obs layer, for measuring waits
/// that are not a single lexical scope (e.g. how long a farm probe sat
/// queued before a worker claimed it). Inert when collection is off.
/// Like [`SpanGuard`], it hands the instrumented code nothing it could
/// branch on.
#[derive(Clone, Copy)]
pub struct Stopwatch {
    start: Option<Instant>,
}

impl Stopwatch {
    /// Starts a stopwatch (reads the clock only when collection is on).
    #[inline]
    pub fn start() -> Stopwatch {
        if !enabled() {
            return Stopwatch { start: None };
        }
        let _ = epoch();
        Stopwatch { start: Some(Instant::now()) }
    }

    /// Records the elapsed nanoseconds into `hist` without stopping the
    /// watch; may be called repeatedly (and from other threads).
    #[inline]
    pub fn lap(&self, hist: &Histogram) {
        if let Some(start) = self.start {
            hist.record(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
    }
}

/// Returns the process-wide [`Counter`] named `$name`, resolving the
/// registry handle once per call site.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::global().counter($name))
    }};
}

/// Returns the process-wide [`Histogram`] named `$name`, resolving the
/// registry handle once per call site.
#[macro_export]
macro_rules! hist {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::global().histogram($name))
    }};
}

/// Opens a [`SpanGuard`] named `$name` over the enclosing scope.
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::SpanStat> =
            ::std::sync::OnceLock::new();
        $crate::SpanGuard::enter($name, HANDLE.get_or_init(|| $crate::global().span_stat($name)))
    }};
}

/// Serialises tests that flip the process-wide switches — without it,
/// a test disabling collection would race tests asserting it records.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switches_toggle() {
        let _serial = test_guard();
        // The default build compiles instrumentation in.
        assert!(std::hint::black_box(COMPILED), "tests run without the `off` feature");
        set_enabled(true);
        assert!(enabled());
        set_tracing(true);
        assert!(tracing());
        set_tracing(false);
        assert!(!tracing());
        set_enabled(false);
        assert!(!enabled());
        assert!(!tracing(), "tracing is subordinate to the metrics switch");
        set_enabled(true);
    }

    #[test]
    fn macros_record_into_the_global_registry() {
        let _serial = test_guard();
        set_enabled(true);
        counter!("test.lib_counter").add(2);
        hist!("test.lib_hist").record(100);
        {
            let _g = span!("test.lib_span");
        }
        let snap = global().snapshot();
        assert!(snap.counter("test.lib_counter") >= 2);
        assert!(snap.histograms.contains_key("test.lib_hist"));
        assert!(snap.spans.get("test.lib_span").is_some_and(|s| s.count >= 1));
    }

    #[test]
    fn disabled_call_sites_record_nothing() {
        let _serial = test_guard();
        set_enabled(false);
        counter!("test.disabled_counter").add(5);
        {
            let _g = span!("test.disabled_span");
        }
        set_enabled(true);
        let snap = global().snapshot();
        assert_eq!(snap.counter("test.disabled_counter"), 0);
        assert!(snap.spans.get("test.disabled_span").is_none_or(|s| s.count == 0));
    }
}
