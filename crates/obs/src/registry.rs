//! The metric registry: named counters, span aggregates, and log2
//! histograms, each a leaked `'static` cell so hot paths hold plain
//! references and never touch the registry lock after the first call.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A write-only metric cell: monotone by convention ([`Counter::add`]),
/// with [`Counter::set`] for gauge-style latest-value readings of
/// quantities that are already monotone at the source (the GVT bound).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` when collection is enabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Overwrites the value when collection is enabled (gauge reading).
    #[inline]
    pub fn set(&self, v: u64) {
        if crate::enabled() {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Aggregated wall-time of one span name: call count, total, and max,
/// all in nanoseconds.
#[derive(Debug, Default)]
pub struct SpanStat {
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl SpanStat {
    /// Folds one timed interval in (called by [`crate::SpanGuard`]).
    #[inline]
    pub fn record(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
    }

    fn snapshot(&self) -> SpanSnapshot {
        SpanSnapshot {
            count: self.count.load(Ordering::Relaxed),
            total_ns: self.total_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i >= 1`
/// holds values in `[2^(i-1), 2^i)` — so every `u64` lands somewhere.
pub const HIST_BUCKETS: usize = 65;

/// A log2-bucketed histogram: O(1) lock-free recording, 65 fixed
/// power-of-two buckets, plus exact count/sum/max.
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// The bucket index `v` falls into: 0 for 0, else `floor(log2 v) + 1`.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// The smallest value bucket `i` covers (its rendered label).
pub fn bucket_floor(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [(); HIST_BUCKETS].map(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one sample when collection is enabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistSnapshot {
        let mut buckets = BTreeMap::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.insert(i, n);
            }
        }
        HistSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Point-in-time value of one [`SpanStat`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Completed span count.
    pub count: u64,
    /// Summed duration, nanoseconds.
    pub total_ns: u64,
    /// Longest single span, nanoseconds.
    pub max_ns: u64,
}

/// Point-in-time value of one [`Histogram`]: only non-empty buckets are
/// carried, keyed by [`bucket_index`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum over samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// Non-empty buckets: `bucket index -> sample count`.
    pub buckets: BTreeMap<usize, u64>,
}

impl HistSnapshot {
    /// Approximate quantile (`q` in `[0, 1]`): the floor of the bucket
    /// the q-th sample falls in — exact to within one power of two.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (&i, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_floor(i);
            }
        }
        self.max
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// A consistent-enough copy of every metric at one instant. Mergeable:
/// snapshots from per-thread or per-phase registries fold together with
/// [`Snapshot::merge`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Span aggregates by name.
    pub spans: BTreeMap<String, SpanSnapshot>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistSnapshot>,
}

impl Snapshot {
    /// The counter's value, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Folds `other` in: counters and histogram buckets add, span and
    /// histogram maxima take the max — the same result as if both
    /// snapshots' samples had been recorded into one registry.
    pub fn merge(&mut self, other: &Snapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, s) in &other.spans {
            let e = self.spans.entry(k.clone()).or_default();
            e.count += s.count;
            e.total_ns += s.total_ns;
            e.max_ns = e.max_ns.max(s.max_ns);
        }
        for (k, h) in &other.histograms {
            let e = self.histograms.entry(k.clone()).or_default();
            e.count += h.count;
            e.sum += h.sum;
            e.max = e.max.max(h.max);
            for (&i, &n) in &h.buckets {
                *e.buckets.entry(i).or_insert(0) += n;
            }
        }
    }

    /// Renders the human `profile:` summary: spans by descending total
    /// time, then counters and histograms alphabetically. Deterministic
    /// given the metric values.
    pub fn render_profile(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "profile: {} span(s), {} counter(s), {} histogram(s)\n",
            self.spans.len(),
            self.counters.len(),
            self.histograms.len()
        );
        let mut spans: Vec<_> = self.spans.iter().collect();
        spans.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(b.0)));
        for (name, s) in spans {
            let _ = writeln!(
                out,
                "  span  {name:<28} calls {:<10} total {:<12} max {}",
                s.count,
                fmt_ns(s.total_ns),
                fmt_ns(s.max_ns)
            );
        }
        for (name, v) in &self.counters {
            let _ = writeln!(out, "  count {name:<28} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "  hist  {name:<28} count {:<10} p50 ~{:<10} max {}",
                h.count,
                h.quantile(0.5),
                h.max
            );
        }
        out
    }

    /// Serialises the snapshot as the stable JSON document DESIGN.md §11
    /// specifies (`version`, `counters`, `spans`, `histograms`).
    pub fn to_json(&self) -> String {
        let mut w = crate::json::Writer::new();
        w.obj(|w| {
            w.key("version").num(1);
            w.key("counters").obj(|w| {
                for (k, v) in &self.counters {
                    w.key(k).num(*v);
                }
            });
            w.key("spans").obj(|w| {
                for (k, s) in &self.spans {
                    w.key(k).obj(|w| {
                        w.key("count").num(s.count);
                        w.key("total_ns").num(s.total_ns);
                        w.key("max_ns").num(s.max_ns);
                    });
                }
            });
            w.key("histograms").obj(|w| {
                for (k, h) in &self.histograms {
                    w.key(k).obj(|w| {
                        w.key("count").num(h.count);
                        w.key("sum").num(h.sum);
                        w.key("max").num(h.max);
                        w.key("buckets").obj(|w| {
                            for (&i, &n) in &h.buckets {
                                w.key(&i.to_string()).num(n);
                            }
                        });
                    });
                }
            });
        });
        w.finish()
    }
}

/// Renders nanoseconds with an adaptive unit (`ns`, `µs`, `ms`, `s`).
fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns}ns"),
        10_000..=9_999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        10_000_000..=9_999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

struct Inner {
    counters: BTreeMap<&'static str, &'static Counter>,
    spans: BTreeMap<&'static str, &'static SpanStat>,
    hists: BTreeMap<&'static str, &'static Histogram>,
}

/// A named-metric registry. Lookup leaks one cell per distinct name (the
/// metric namespace is a small static set), so call sites cache plain
/// `&'static` handles and recording is a relaxed atomic op.
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry. Most callers want [`crate::global`] instead.
    pub fn new() -> Self {
        Registry {
            inner: Mutex::new(Inner {
                counters: BTreeMap::new(),
                spans: BTreeMap::new(),
                hists: BTreeMap::new(),
            }),
        }
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &'static str) -> &'static Counter {
        let mut inner = self.inner.lock().unwrap();
        inner.counters.entry(name).or_insert_with(|| Box::leak(Box::default()))
    }

    /// The span aggregate named `name`, created on first use.
    pub fn span_stat(&self, name: &'static str) -> &'static SpanStat {
        let mut inner = self.inner.lock().unwrap();
        inner.spans.entry(name).or_insert_with(|| Box::leak(Box::default()))
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &'static str) -> &'static Histogram {
        let mut inner = self.inner.lock().unwrap();
        inner.hists.entry(name).or_insert_with(|| Box::leak(Box::default()))
    }

    /// Copies every metric out. Individual loads are relaxed — within one
    /// thread's recorded history the values are exact; concurrent writers
    /// may land between loads, which profiling tolerates.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().unwrap();
        Snapshot {
            counters: inner.counters.iter().map(|(k, c)| (k.to_string(), c.get())).collect(),
            spans: inner.spans.iter().map(|(k, s)| (k.to_string(), s.snapshot())).collect(),
            histograms: inner.hists.iter().map(|(k, h)| (k.to_string(), h.snapshot())).collect(),
        }
    }

    /// Zeroes every metric (names stay registered). Benches use this to
    /// isolate phases; the CLI never needs it.
    pub fn reset(&self) {
        let inner = self.inner.lock().unwrap();
        inner.counters.values().for_each(|c| c.reset());
        inner.spans.values().for_each(|s| s.reset());
        inner.hists.values().for_each(|h| h.reset());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..HIST_BUCKETS {
            // The floor of every bucket maps back into that bucket.
            assert_eq!(bucket_index(bucket_floor(i)), i, "bucket {i}");
        }
        // Bucket floors are the exact lower boundary: one less falls below.
        for i in 2..HIST_BUCKETS {
            assert_eq!(bucket_index(bucket_floor(i) - 1), i - 1, "bucket {i}");
        }
    }

    #[test]
    fn histogram_counts_sum_and_quantiles() {
        let _serial = crate::test_guard();
        crate::set_enabled(true);
        let h = Histogram::default();
        for v in [0, 1, 1, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1105);
        assert_eq!(s.max, 1000);
        assert_eq!(s.buckets[&0], 1);
        assert_eq!(s.buckets[&1], 2);
        assert_eq!(s.buckets[&2], 1);
        assert_eq!(s.buckets[&7], 1, "100 lands in [64, 128)");
        assert_eq!(s.buckets[&10], 1, "1000 lands in [512, 1024)");
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.quantile(0.5), 1, "3rd of 6 samples is a 1");
        assert_eq!(s.quantile(1.0), 512, "floor of the top bucket");
        assert_eq!(s.mean(), 184);
        assert_eq!(HistSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn registry_snapshot_reset_round_trip() {
        let _serial = crate::test_guard();
        crate::set_enabled(true);
        let r = Registry::new();
        r.counter("a").add(7);
        r.counter("a").add(1);
        r.span_stat("s").record(10);
        r.span_stat("s").record(30);
        r.histogram("h").record(5);
        let snap = r.snapshot();
        assert_eq!(snap.counter("a"), 8);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.spans["s"], SpanSnapshot { count: 2, total_ns: 40, max_ns: 30 });
        assert_eq!(snap.histograms["h"].count, 1);
        r.reset();
        let snap = r.snapshot();
        assert_eq!(snap.counter("a"), 0);
        assert_eq!(snap.spans["s"], SpanSnapshot::default());
        assert_eq!(snap.histograms["h"].count, 0);
    }

    #[test]
    fn snapshots_merge_across_threads() {
        let _serial = crate::test_guard();
        crate::set_enabled(true);
        // Two registries fed from different threads, merged afterwards:
        // the fold must equal one registry fed with both sample streams.
        let (a, b) = (Registry::new(), Registry::new());
        std::thread::scope(|s| {
            s.spawn(|| {
                a.counter("n").add(10);
                a.span_stat("w").record(100);
                for v in 0..50 {
                    a.histogram("h").record(v);
                }
            });
            s.spawn(|| {
                b.counter("n").add(5);
                b.counter("only_b").add(1);
                b.span_stat("w").record(300);
                for v in 50..100 {
                    b.histogram("h").record(v);
                }
            });
        });
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counter("n"), 15);
        assert_eq!(merged.counter("only_b"), 1);
        assert_eq!(merged.spans["w"], SpanSnapshot { count: 2, total_ns: 400, max_ns: 300 });
        let reference = Registry::new();
        for v in 0..100 {
            reference.histogram("h").record(v);
        }
        assert_eq!(merged.histograms["h"], reference.snapshot().histograms["h"]);
    }

    #[test]
    fn profile_rendering_is_deterministic_and_ordered() {
        let _serial = crate::test_guard();
        crate::set_enabled(true);
        let r = Registry::new();
        r.span_stat("fast").record(10);
        r.span_stat("slow").record(1_000_000);
        r.counter("c.x").add(3);
        r.histogram("h.y").record(9);
        let text = r.snapshot().render_profile();
        assert!(text.starts_with("profile: 2 span(s), 1 counter(s), 1 histogram(s)\n"), "{text}");
        let slow = text.find("slow").unwrap();
        let fast = text.find("fast").unwrap();
        assert!(slow < fast, "spans sort by descending total time:\n{text}");
        assert_eq!(text, r.snapshot().render_profile());
    }

    #[test]
    fn ns_formatting_picks_units() {
        assert_eq!(fmt_ns(0), "0ns");
        assert_eq!(fmt_ns(9_999), "9999ns");
        assert_eq!(fmt_ns(150_000), "150.0µs");
        assert_eq!(fmt_ns(25_000_000), "25.0ms");
        assert_eq!(fmt_ns(3_200_000_000), "3200.0ms");
        assert_eq!(fmt_ns(32_000_000_000), "32.00s");
    }
}
