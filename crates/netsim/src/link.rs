//! Link model: propagation delay, jitter, loss, and administrative state.

use crate::process::NodeId;
use crate::rng::DetRng;
use crate::time::SimDuration;

/// Directed link identifier `(src, dst)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LinkKey {
    /// Transmitting endpoint.
    pub src: NodeId,
    /// Receiving endpoint.
    pub dst: NodeId,
}

/// Random per-packet delay variation applied on top of the base delay.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum JitterModel {
    /// No jitter; delivery delay is exactly the base delay.
    None,
    /// Uniform jitter in `[0, frac * base_delay]`.
    Uniform {
        /// Fraction of the base delay used as the jitter range.
        frac: f64,
    },
    /// Truncated-normal jitter with `std = frac * base_delay`, clamped at 0.
    Normal {
        /// Fraction of the base delay used as the standard deviation.
        frac: f64,
    },
}

impl JitterModel {
    /// Samples a jitter offset for a packet on a link with `base` delay.
    pub fn sample(&self, base: SimDuration, rng: &mut DetRng) -> SimDuration {
        match *self {
            JitterModel::None => SimDuration::ZERO,
            JitterModel::Uniform { frac } => {
                let max = base.as_secs_f64() * frac;
                SimDuration::from_secs_f64(rng.gen_f64() * max)
            }
            JitterModel::Normal { frac } => {
                let std = base.as_secs_f64() * frac;
                SimDuration::from_secs_f64(rng.gen_normal(0.0, std).max(0.0))
            }
        }
    }
}

/// Packet loss model for datagram-mode links.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LossModel {
    /// No losses.
    None,
    /// Independent per-packet loss with the given probability.
    Bernoulli {
        /// Loss probability in `[0, 1]`.
        p: f64,
    },
}

/// Delivery semantics of a link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChannelMode {
    /// Independent per-packet delay draws; packets may reorder and be lost.
    /// Models UDP/raw-IP control channels in the production network.
    Datagram,
    /// Reliable in-order delivery: no loss, and a packet is never delivered
    /// before one sent earlier on the same directed link. Models the TCP
    /// channels DEFINED-LS mandates (§2.3).
    Fifo,
}

/// Static parameters of one directed link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkParams {
    /// Base propagation delay.
    pub delay: SimDuration,
    /// Per-packet jitter model.
    pub jitter: JitterModel,
    /// Loss model (ignored in [`ChannelMode::Fifo`]).
    pub loss: LossModel,
    /// Delivery semantics.
    pub mode: ChannelMode,
}

impl LinkParams {
    /// Datagram link with the given base delay and no jitter or loss.
    pub fn with_delay(delay: SimDuration) -> Self {
        LinkParams {
            delay,
            jitter: JitterModel::None,
            loss: LossModel::None,
            mode: ChannelMode::Datagram,
        }
    }

    /// Sets the jitter model.
    pub fn jitter(mut self, jitter: JitterModel) -> Self {
        self.jitter = jitter;
        self
    }

    /// Sets the loss model.
    pub fn loss(mut self, loss: LossModel) -> Self {
        self.loss = loss;
        self
    }

    /// Sets the channel mode.
    pub fn mode(mut self, mode: ChannelMode) -> Self {
        self.mode = mode;
        self
    }
}

/// Runtime state of a directed link.
#[derive(Clone, Debug)]
pub(crate) struct Link {
    pub params: LinkParams,
    /// Administrative state; down links drop every packet.
    pub up: bool,
    /// Packets sent on this link so far (drives per-link sequence numbers).
    pub sent: u64,
    /// For FIFO mode: the latest delivery time scheduled so far.
    pub last_delivery: crate::time::SimTime,
}

impl Link {
    pub fn new(params: LinkParams) -> Self {
        Link {
            params,
            up: true,
            sent: 0,
            last_delivery: crate::time::SimTime::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_jitter_is_zero() {
        let mut rng = DetRng::new(4);
        let j = JitterModel::None.sample(SimDuration::from_millis(10), &mut rng);
        assert_eq!(j, SimDuration::ZERO);
    }

    #[test]
    fn uniform_jitter_within_bounds() {
        let mut rng = DetRng::new(4);
        let base = SimDuration::from_millis(10);
        for _ in 0..1000 {
            let j = JitterModel::Uniform { frac: 0.5 }.sample(base, &mut rng);
            assert!(j <= SimDuration::from_millis(5));
        }
    }

    #[test]
    fn normal_jitter_non_negative() {
        let mut rng = DetRng::new(4);
        let base = SimDuration::from_millis(10);
        for _ in 0..1000 {
            let j = JitterModel::Normal { frac: 0.3 }.sample(base, &mut rng);
            assert!(j.as_secs_f64() >= 0.0);
        }
    }

    #[test]
    fn builder_chains() {
        let p = LinkParams::with_delay(SimDuration::from_millis(2))
            .jitter(JitterModel::Uniform { frac: 0.1 })
            .loss(LossModel::Bernoulli { p: 0.01 })
            .mode(ChannelMode::Fifo);
        assert_eq!(p.mode, ChannelMode::Fifo);
        assert_eq!(p.delay, SimDuration::from_millis(2));
    }
}
