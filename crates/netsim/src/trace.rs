//! Execution tracing: an optional, append-only log of everything the
//! simulator did, used by tests and by the DEFINED recorder.

use crate::process::{NodeId, TimerKey};
use crate::time::SimTime;

/// What happened.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceKind {
    /// A message left `src` towards `dst` (link sequence number attached).
    Send {
        /// Transmitting node.
        src: NodeId,
        /// Receiving node.
        dst: NodeId,
        /// Per-directed-link sequence number of this packet.
        link_seq: u64,
    },
    /// A message was delivered to `dst`'s process.
    Deliver {
        /// Transmitting node.
        src: NodeId,
        /// Receiving node.
        dst: NodeId,
        /// Per-directed-link sequence number of this packet.
        link_seq: u64,
    },
    /// A message was dropped (loss model, down link, or down node).
    Drop {
        /// Transmitting node.
        src: NodeId,
        /// Intended receiver.
        dst: NodeId,
        /// Per-directed-link sequence number of this packet.
        link_seq: u64,
    },
    /// A timer fired at `node`.
    TimerFire {
        /// Node whose timer fired.
        node: NodeId,
        /// Application discriminator of the timer.
        key: TimerKey,
    },
    /// A bidirectional link changed administrative state.
    LinkChange {
        /// One endpoint.
        a: NodeId,
        /// Other endpoint.
        b: NodeId,
        /// New state.
        up: bool,
    },
    /// A node changed administrative state.
    NodeChange {
        /// The node.
        node: NodeId,
        /// New state.
        up: bool,
    },
    /// An external input was delivered to `node`.
    External {
        /// Receiving node.
        node: NodeId,
    },
}

/// One timestamped trace record.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// When it happened.
    pub time: SimTime,
    /// What happened.
    pub kind: TraceKind,
}

/// An in-memory trace log. Disabled by default; enabling it costs one `Vec`
/// push per simulator action.
#[derive(Clone, Debug, Default)]
pub struct TraceLog {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl TraceLog {
    /// Creates a disabled log.
    pub fn new() -> Self {
        TraceLog::default()
    }

    /// Enables or disables recording.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    pub(crate) fn record(&mut self, time: SimTime, kind: TraceKind) {
        if self.enabled {
            self.events.push(TraceEvent { time, kind });
        }
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Drops all recorded events.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Number of events matching a predicate.
    pub fn count(&self, pred: impl Fn(&TraceEvent) -> bool) -> usize {
        self.events.iter().filter(|e| pred(e)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::new();
        log.record(SimTime::ZERO, TraceKind::External { node: NodeId(0) });
        assert!(log.events().is_empty());
    }

    #[test]
    fn enabled_log_records_in_order() {
        let mut log = TraceLog::new();
        log.set_enabled(true);
        assert!(log.is_enabled());
        log.record(SimTime::from_millis(1), TraceKind::External { node: NodeId(0) });
        log.record(
            SimTime::from_millis(2),
            TraceKind::TimerFire { node: NodeId(1), key: TimerKey(9) },
        );
        assert_eq!(log.events().len(), 2);
        assert_eq!(log.events()[0].time, SimTime::from_millis(1));
        assert_eq!(
            log.count(|e| matches!(e.kind, TraceKind::TimerFire { .. })),
            1
        );
        log.clear();
        assert!(log.events().is_empty());
    }
}
