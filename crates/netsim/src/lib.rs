//! Deterministic discrete-event network simulator.
//!
//! `netsim` is the testbed substrate for the DEFINED reproduction. The paper
//! evaluated on Emulab with real routing daemons; here, a discrete-event
//! simulation provides the same degrees of freedom DEFINED cares about —
//! message orderings, delays, jitter, losses, and failures — while staying
//! fully reproducible from a seed.
//!
//! The central abstractions are:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual wall clock.
//! * [`DetRng`] — a self-contained splitmix64/xoshiro256++ generator so that
//!   determinism never depends on an external crate's algorithm choices.
//! * [`Process`] — the state machine a node runs (a routing daemon, or the
//!   DEFINED shim wrapping one).
//! * [`Simulator`] — the event loop: links with delay/jitter/loss, timers,
//!   failure injection, tracing, and per-node metrics.
//!
//! Nondeterminism enters *only* through the network RNG seed (link jitter and
//! loss draws). Per-node process RNGs are seeded by node id, modelling the
//! paper's assumption (§2.5) that single-node internal nondeterminism has
//! already been removed.
//!
//! # Examples
//!
//! ```
//! use netsim::{LinkParams, Process, ProcessCtx, NodeId, SimBuilder, SimDuration};
//!
//! #[derive(Clone, Debug)]
//! struct Ping;
//!
//! #[derive(Default)]
//! struct Echo {
//!     got: usize,
//! }
//!
//! impl Process for Echo {
//!     type Msg = Ping;
//!     type Ext = ();
//!     fn on_start(&mut self, ctx: &mut ProcessCtx<'_, Ping>) {
//!         if ctx.id() == NodeId(0) {
//!             ctx.send(NodeId(1), Ping);
//!         }
//!     }
//!     fn on_message(&mut self, _ctx: &mut ProcessCtx<'_, Ping>, _from: NodeId, _msg: Ping) {
//!         self.got += 1;
//!     }
//! }
//!
//! let mut sim = SimBuilder::new(2)
//!     .link(NodeId(0), NodeId(1), LinkParams::with_delay(SimDuration::from_millis(5)))
//!     .build(7, |_| Echo::default());
//! sim.run_until(netsim::SimTime::from_millis(100));
//! assert_eq!(sim.process(NodeId(1)).got, 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod event;
mod link;
mod metrics;
mod process;
mod rng;
mod sim;
mod time;
mod trace;

pub use event::QueueStats;
pub use link::{ChannelMode, JitterModel, LinkKey, LinkParams, LossModel};
pub use metrics::{Metrics, NodeMetrics};
pub use process::{Action, NodeId, Process, ProcessCtx, TimerId, TimerKey};
pub use rng::DetRng;
pub use sim::{DropRecord, SimBuilder, Simulator, SteppedEvent};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceEvent, TraceKind, TraceLog};
