//! The [`Process`] trait — the state machine a simulated node runs — and the
//! [`ProcessCtx`] handed to its handlers.

use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};
use std::fmt;

/// Identifier of a simulated node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Opaque handle identifying one armed timer instance.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TimerId(pub u64);

/// Application-chosen discriminator carried by a timer.
///
/// Protocols use this to tell their timers apart (hello timer, retransmit
/// timer, per-route timeout, ...). The value is opaque to the simulator.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct TimerKey(pub u64);

/// An action emitted by a process handler, applied by the simulator after the
/// handler returns.
#[derive(Debug)]
pub enum Action<M> {
    /// Send `msg` to node `to` over the connecting link.
    Send {
        /// Destination node.
        to: NodeId,
        /// Payload.
        msg: M,
        /// Extra delay before the packet enters the link, modelling local
        /// processing overhead (e.g. checkpointing cost).
        extra_delay: SimDuration,
        /// Control-channel packet: delivered at the link's base delay with
        /// no jitter and no stochastic loss (still dropped by down links and
        /// down nodes). Models a reliable transport whose delay variance is
        /// absorbed into the deterministic estimate.
        control: bool,
    },
    /// Arm a timer that fires after `delay`.
    SetTimer {
        /// Handle assigned at arm time.
        id: TimerId,
        /// Fire after this much simulated time.
        delay: SimDuration,
        /// Application discriminator, echoed back on fire.
        key: TimerKey,
    },
    /// Cancel a previously armed timer. Cancelling an already-fired or
    /// unknown timer is a no-op.
    CancelTimer(TimerId),
}

/// Context handed to every [`Process`] handler.
///
/// Reads (time, identity, neighbours, RNG) happen directly; writes (sends,
/// timer operations) are buffered as [`Action`]s and applied by the simulator
/// once the handler returns, which keeps handlers free of borrow gymnastics
/// and makes the emitted action list observable in tests.
pub struct ProcessCtx<'a, M> {
    pub(crate) node: NodeId,
    pub(crate) now: SimTime,
    pub(crate) neighbors: &'a [NodeId],
    pub(crate) rng: &'a mut DetRng,
    pub(crate) actions: Vec<Action<M>>,
    pub(crate) next_timer_id: &'a mut u64,
}

impl<'a, M> ProcessCtx<'a, M> {
    /// Identity of the node running this handler.
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Nodes reachable over currently-up links, in ascending id order.
    pub fn neighbors(&self) -> &[NodeId] {
        self.neighbors
    }

    /// This node's deterministic RNG (seeded from the node id, *not* the run
    /// seed, so node-local randomness is identical across runs).
    pub fn rng(&mut self) -> &mut DetRng {
        self.rng
    }

    /// Sends `msg` to `to`. Silently dropped if no up link exists at
    /// delivery-scheduling time.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.actions.push(Action::Send {
            to,
            msg,
            extra_delay: SimDuration::ZERO,
            control: false,
        });
    }

    /// Sends `msg` to `to` after holding it locally for `extra_delay`,
    /// modelling processing overhead on the critical path.
    pub fn send_delayed(&mut self, to: NodeId, msg: M, extra_delay: SimDuration) {
        self.actions.push(Action::Send { to, msg, extra_delay, control: false });
    }

    /// Sends `msg` to `to` on the control channel: base link delay, no
    /// jitter, no stochastic loss (down links and nodes still drop it).
    ///
    /// DEFINED's own infrastructure traffic (beacon floods, anti-messages)
    /// uses this so that elections and retractions are deterministic
    /// functions of the recorded external events rather than of per-packet
    /// network noise.
    pub fn send_control(&mut self, to: NodeId, msg: M) {
        self.actions.push(Action::Send {
            to,
            msg,
            extra_delay: SimDuration::ZERO,
            control: true,
        });
    }

    /// Arms a timer firing after `delay`, returning its handle.
    pub fn set_timer(&mut self, delay: SimDuration, key: TimerKey) -> TimerId {
        let id = TimerId(*self.next_timer_id);
        *self.next_timer_id += 1;
        self.actions.push(Action::SetTimer { id, delay, key });
        id
    }

    /// Cancels a previously armed timer.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.actions.push(Action::CancelTimer(id));
    }

    /// Number of actions buffered so far (useful in tests).
    pub fn pending_actions(&self) -> usize {
        self.actions.len()
    }
}

/// A node-local state machine driven by the simulator.
///
/// All handlers are synchronous and must not block; outputs go through the
/// [`ProcessCtx`]. The associated `Ext` type carries protocol-level external
/// inputs (e.g. an eBGP route announcement) injected by the test harness.
pub trait Process {
    /// Message payload exchanged between nodes.
    type Msg: Clone + fmt::Debug;
    /// External (out-of-band) input type.
    type Ext: Clone + fmt::Debug;

    /// Called once when the node boots (simulation start or node restart).
    fn on_start(&mut self, ctx: &mut ProcessCtx<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Called for every delivered message.
    fn on_message(&mut self, ctx: &mut ProcessCtx<'_, Self::Msg>, from: NodeId, msg: Self::Msg);

    /// Called for every injected external input.
    fn on_external(&mut self, ctx: &mut ProcessCtx<'_, Self::Msg>, ev: Self::Ext) {
        let _ = (ctx, ev);
    }

    /// Called when an armed, uncancelled timer fires.
    fn on_timer(&mut self, ctx: &mut ProcessCtx<'_, Self::Msg>, id: TimerId, key: TimerKey) {
        let _ = (ctx, id, key);
    }

    /// Called when an adjacent link changes administrative state.
    ///
    /// Protocols that rely purely on hello timeouts can ignore this; it
    /// models carrier-loss interrupts available on real routers.
    fn on_link_change(&mut self, ctx: &mut ProcessCtx<'_, Self::Msg>, peer: NodeId, up: bool) {
        let _ = (ctx, peer, up);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_buffers_actions_in_order() {
        let mut rng = DetRng::new(1);
        let mut next_id = 0;
        let neighbors = vec![NodeId(1), NodeId(2)];
        let mut ctx: ProcessCtx<'_, &'static str> = ProcessCtx {
            node: NodeId(0),
            now: SimTime::from_millis(5),
            neighbors: &neighbors,
            rng: &mut rng,
            actions: Vec::new(),
            next_timer_id: &mut next_id,
        };
        ctx.send(NodeId(1), "a");
        let t = ctx.set_timer(SimDuration::from_millis(10), TimerKey(7));
        ctx.cancel_timer(t);
        assert_eq!(ctx.pending_actions(), 3);
        match &ctx.actions[0] {
            Action::Send { to, msg, extra_delay, control } => {
                assert_eq!(*to, NodeId(1));
                assert_eq!(*msg, "a");
                assert_eq!(*extra_delay, SimDuration::ZERO);
                assert!(!control);
            }
            other => panic!("unexpected action {other:?}"),
        }
        match &ctx.actions[1] {
            Action::SetTimer { id, delay, key } => {
                assert_eq!(*id, t);
                assert_eq!(*delay, SimDuration::from_millis(10));
                assert_eq!(*key, TimerKey(7));
            }
            other => panic!("unexpected action {other:?}"),
        }
        match &ctx.actions[2] {
            Action::CancelTimer(id) => assert_eq!(*id, t),
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn timer_ids_are_unique_and_monotonic() {
        let mut rng = DetRng::new(1);
        let mut next_id = 0;
        let neighbors: Vec<NodeId> = Vec::new();
        let mut ctx: ProcessCtx<'_, ()> = ProcessCtx {
            node: NodeId(0),
            now: SimTime::ZERO,
            neighbors: &neighbors,
            rng: &mut rng,
            actions: Vec::new(),
            next_timer_id: &mut next_id,
        };
        let a = ctx.set_timer(SimDuration::ZERO, TimerKey(0));
        let b = ctx.set_timer(SimDuration::ZERO, TimerKey(0));
        assert!(b.0 > a.0);
    }
}
