//! Simulated time: nanosecond-resolution instants and durations.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the simulated wall clock, in nanoseconds since start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The zero instant (simulation start).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `s` seconds after start.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Creates an instant `ms` milliseconds after start.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant `us` microseconds after start.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Returns the instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the instant as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating difference between two instants.
    pub fn saturating_sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `s` seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration of `ms` milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration of `us` microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration of `ns` nanoseconds.
    pub fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiplies the duration by a fraction, rounding to nanoseconds.
    pub fn mul_f64(self, f: f64) -> Self {
        SimDuration::from_secs_f64(self.as_secs_f64() * f)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(2).0, 2_000_000_000);
        assert_eq!(SimTime::from_millis(3).0, 3_000_000);
        assert_eq!(SimTime::from_micros(5).0, 5_000);
        assert_eq!(SimDuration::from_secs(1).as_secs_f64(), 1.0);
        assert_eq!(SimDuration::from_millis(250).as_millis_f64(), 250.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(t - SimTime::from_millis(10), SimDuration::from_millis(5));
        assert_eq!(SimDuration::from_millis(4) * 3, SimDuration::from_millis(12));
        assert_eq!(SimDuration::from_millis(12) / 4, SimDuration::from_millis(3));
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(
            SimTime::from_millis(1).saturating_sub(SimTime::from_millis(5)),
            SimDuration::ZERO
        );
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(
            SimDuration::from_millis(1) - SimDuration::from_millis(2),
            SimDuration::ZERO
        );
    }

    #[test]
    fn from_secs_f64_clamps_and_rounds() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(0.001), SimDuration::from_millis(1));
        assert_eq!(SimDuration::from_millis(10).mul_f64(0.5), SimDuration::from_millis(5));
    }
}
