//! Simulated time: nanosecond-resolution instants and durations.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the simulated wall clock, in nanoseconds since start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The zero instant (simulation start).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `s` seconds after start, saturating at
    /// [`SimTime::MAX`] — untrusted inputs (e.g. a `.scn` file's
    /// `duration 99999999999s`) must not be able to overflow-panic a debug
    /// build.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s.saturating_mul(1_000_000_000))
    }

    /// Creates an instant `ms` milliseconds after start (saturating).
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms.saturating_mul(1_000_000))
    }

    /// Creates an instant `us` microseconds after start (saturating).
    pub fn from_micros(us: u64) -> Self {
        SimTime(us.saturating_mul(1_000))
    }

    /// Returns the instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the instant as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating difference between two instants.
    pub fn saturating_sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Difference between two instants, or `None` when `other` is later —
    /// for call sites where "the other event has not happened yet" is a
    /// representable state rather than a logic error.
    pub fn checked_sub(self, other: SimTime) -> Option<SimDuration> {
        Some(SimDuration(self.0.checked_sub(other.0)?))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `s` seconds, saturating at the largest
    /// representable duration (see [`SimTime::from_secs`]).
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s.saturating_mul(1_000_000_000))
    }

    /// Creates a duration of `ms` milliseconds (saturating).
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms.saturating_mul(1_000_000))
    }

    /// Creates a duration of `us` microseconds (saturating).
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us.saturating_mul(1_000))
    }

    /// Creates a duration of `ns` nanoseconds.
    pub fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiplies the duration by a fraction, rounding to nanoseconds.
    pub fn mul_f64(self, f: f64) -> Self {
        SimDuration::from_secs_f64(self.as_secs_f64() * f)
    }

    /// Saturating difference between two durations.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Difference between two durations, or `None` on underflow.
    pub fn checked_sub(self, other: SimDuration) -> Option<SimDuration> {
        Some(SimDuration(self.0.checked_sub(other.0)?))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

/// Plain subtraction panics on underflow in debug builds. Use it only
/// where an earlier-minus-later difference is a genuine logic error; where
/// "not yet" is representable (convergence times, scheduling deltas),
/// reach for [`SimTime::saturating_sub`] or [`SimTime::checked_sub`].
impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

/// Duration subtraction saturates at zero: "no time left" is the natural
/// floor for every scheduling computation in the workspace.
impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(2).0, 2_000_000_000);
        assert_eq!(SimTime::from_millis(3).0, 3_000_000);
        assert_eq!(SimTime::from_micros(5).0, 5_000);
        assert_eq!(SimDuration::from_secs(1).as_secs_f64(), 1.0);
        assert_eq!(SimDuration::from_millis(250).as_millis_f64(), 250.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(t - SimTime::from_millis(10), SimDuration::from_millis(5));
        assert_eq!(SimDuration::from_millis(4) * 3, SimDuration::from_millis(12));
        assert_eq!(SimDuration::from_millis(12) / 4, SimDuration::from_millis(3));
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(
            SimTime::from_millis(1).saturating_sub(SimTime::from_millis(5)),
            SimDuration::ZERO
        );
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(
            SimDuration::from_millis(1) - SimDuration::from_millis(2),
            SimDuration::ZERO
        );
    }

    /// Constructors saturate instead of overflowing — with overflow checks
    /// on (debug builds / the debug-profile CI job), `u64::MAX` seconds
    /// must produce `MAX`, not a panic.
    #[test]
    fn constructors_saturate_on_overflow() {
        assert_eq!(SimTime::from_secs(u64::MAX), SimTime::MAX);
        assert_eq!(SimTime::from_millis(u64::MAX), SimTime::MAX);
        assert_eq!(SimTime::from_micros(u64::MAX), SimTime::MAX);
        assert_eq!(SimDuration::from_secs(u64::MAX).0, u64::MAX);
        assert_eq!(SimDuration::from_millis(u64::MAX).0, u64::MAX);
        assert_eq!(SimDuration::from_micros(u64::MAX).0, u64::MAX);
        // In-range values are exact, not merely clamped.
        assert_eq!(SimTime::from_secs(3).0, 3_000_000_000);
    }

    #[test]
    fn checked_sub_reports_underflow() {
        let a = SimTime::from_millis(5);
        let b = SimTime::from_millis(9);
        assert_eq!(b.checked_sub(a), Some(SimDuration::from_millis(4)));
        assert_eq!(a.checked_sub(b), None);
        let d = SimDuration::from_millis(5);
        let e = SimDuration::from_millis(9);
        assert_eq!(e.checked_sub(d), Some(SimDuration::from_millis(4)));
        assert_eq!(d.checked_sub(e), None);
        assert_eq!(d.saturating_sub(e), SimDuration::ZERO);
    }

    #[test]
    fn from_secs_f64_clamps_and_rounds() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(0.001), SimDuration::from_millis(1));
        assert_eq!(SimDuration::from_millis(10).mul_f64(0.5), SimDuration::from_millis(5));
    }
}
