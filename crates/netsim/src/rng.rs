//! Deterministic pseudorandom number generation.
//!
//! The whole reproduction hinges on bit-exact determinism, so the generator is
//! implemented here (splitmix64 seeding into xoshiro256++) instead of relying
//! on `rand`, whose default algorithms are allowed to change across versions.

/// A deterministic xoshiro256++ generator seeded via splitmix64.
///
/// Cloning produces an identical stream; [`DetRng::split`] derives an
/// independent child stream, which is how per-node RNGs are created from a
/// run seed.
#[derive(Clone, Debug)]
pub struct DetRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// Derives an independent child generator.
    ///
    /// The child stream is a deterministic function of the parent state, and
    /// the parent advances, so successive splits yield distinct children.
    pub fn split(&mut self) -> DetRng {
        let seed = self.next_u64() ^ 0xA076_1D64_78BD_642F;
        DetRng::new(seed)
    }

    /// Returns the next 64 uniformly random bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Debiased multiply-shift (Lemire). The retry loop terminates with
        // overwhelming probability; span is tiny compared to 2^64.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(span as u128);
        let mut l = m as u64;
        if l < span {
            let t = span.wrapping_neg() % span;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(span as u128);
                l = m as u64;
            }
        }
        lo + (m >> 64) as u64
    }

    /// Returns a uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        self.gen_range(0, n as u64) as usize
    }

    /// Returns a uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Samples a normal distribution via Box–Muller.
    pub fn gen_normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = self.gen_f64().max(1e-300);
        let u2 = self.gen_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Samples an exponential distribution with the given rate (events per
    /// unit time).
    ///
    /// # Panics
    ///
    /// Panics if `rate <= 0`.
    pub fn gen_exp(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "rate must be positive");
        let u = (1.0 - self.gen_f64()).max(1e-300);
        -u.ln() / rate
    }

    /// Samples a Pareto distribution with scale `xm` and shape `alpha`.
    ///
    /// Used for heavy-tailed inter-arrival times in synthetic traces.
    pub fn gen_pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        let u = (1.0 - self.gen_f64()).max(1e-300);
        xm / u.powf(1.0 / alpha)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_index(i + 1);
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.gen_index(items.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_streams_are_independent_and_deterministic() {
        let mut parent1 = DetRng::new(9);
        let mut parent2 = DetRng::new(9);
        let mut c1 = parent1.split();
        let mut c2 = parent2.split();
        for _ in 0..100 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
        // A second split must give a different stream than the first.
        let mut c3 = parent1.split();
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = DetRng::new(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = DetRng::new(3);
        for _ in 0..10_000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn normal_mean_is_close() {
        let mut r = DetRng::new(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.gen_normal(5.0, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean was {mean}");
    }

    #[test]
    fn exp_mean_is_close() {
        let mut r = DetRng::new(13);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.gen_exp(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean was {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = DetRng::new(17);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = DetRng::new(19);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
