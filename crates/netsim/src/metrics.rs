//! Per-node and aggregate counters collected during a run.

use crate::process::NodeId;

/// Counters for a single node.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeMetrics {
    /// Messages this node handed to the link layer.
    pub msgs_sent: u64,
    /// Messages delivered to this node's process.
    pub msgs_received: u64,
    /// Messages addressed to this node that were dropped in flight.
    pub msgs_dropped: u64,
    /// Timer firings delivered to this node's process.
    pub timers_fired: u64,
    /// External inputs delivered to this node's process.
    pub externals: u64,
}

/// Metrics for every node in the simulation.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    nodes: Vec<NodeMetrics>,
}

impl Metrics {
    pub(crate) fn new(n: usize) -> Self {
        Metrics { nodes: vec![NodeMetrics::default(); n] }
    }

    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut NodeMetrics {
        &mut self.nodes[id.index()]
    }

    /// Counters for one node.
    pub fn node(&self, id: NodeId) -> &NodeMetrics {
        &self.nodes[id.index()]
    }

    /// Iterator over `(node, counters)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &NodeMetrics)> {
        self.nodes.iter().enumerate().map(|(i, m)| (NodeId(i as u32), m))
    }

    /// Sum of messages sent across all nodes.
    pub fn total_sent(&self) -> u64 {
        self.nodes.iter().map(|m| m.msgs_sent).sum()
    }

    /// Sum of messages received across all nodes.
    pub fn total_received(&self) -> u64 {
        self.nodes.iter().map(|m| m.msgs_received).sum()
    }

    /// Sum of in-flight drops across all nodes.
    pub fn total_dropped(&self) -> u64 {
        self.nodes.iter().map(|m| m.msgs_dropped).sum()
    }

    /// Resets every counter to zero (used between trace events when
    /// measuring per-event overhead, as Fig. 6a does).
    pub fn reset(&mut self) {
        for m in &mut self.nodes {
            *m = NodeMetrics::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_aggregate_nodes() {
        let mut m = Metrics::new(3);
        m.node_mut(NodeId(0)).msgs_sent = 2;
        m.node_mut(NodeId(1)).msgs_sent = 3;
        m.node_mut(NodeId(2)).msgs_received = 4;
        m.node_mut(NodeId(2)).msgs_dropped = 1;
        assert_eq!(m.total_sent(), 5);
        assert_eq!(m.total_received(), 4);
        assert_eq!(m.total_dropped(), 1);
        assert_eq!(m.iter().count(), 3);
        m.reset();
        assert_eq!(m.total_sent(), 0);
    }
}
