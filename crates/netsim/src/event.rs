//! The deterministic event queue.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A queued entry: fire time plus a monotonically increasing push sequence
/// for a stable, deterministic tie-break.
#[derive(Debug)]
pub(crate) struct Scheduled<E> {
    pub time: SimTime,
    pub seq: u64,
    pub payload: E,
}

/// Min-heap event queue with FIFO tie-breaking at equal timestamps.
#[derive(Debug)]
pub(crate) struct EventQueue<E> {
    heap: BinaryHeap<Reverse<HeapEntry<E>>>,
    next_seq: u64,
    pushed: u64,
    popped: u64,
}

#[derive(Debug)]
struct HeapEntry<E>(Scheduled<E>);

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.0.time == other.0.time && self.0.seq == other.0.seq
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.0.time, self.0.seq).cmp(&(other.0.time, other.0.seq))
    }
}

/// Counters describing queue activity; exposed for diagnostics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Total events ever pushed.
    pub pushed: u64,
    /// Total events ever popped.
    pub popped: u64,
    /// Events currently pending.
    pub pending: usize,
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            pushed: 0,
            popped: 0,
        }
    }

    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        self.heap.push(Reverse(HeapEntry(Scheduled { time, seq, payload })));
    }

    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let out = self.heap.pop().map(|Reverse(HeapEntry(s))| s);
        if out.is_some() {
            self.popped += 1;
        }
        out
    }

    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(HeapEntry(s))| s.time)
    }

    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn stats(&self) -> QueueStats {
        QueueStats {
            pushed: self.pushed,
            popped: self.popped,
            pending: self.heap.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(5), "c");
        q.push(SimTime::from_millis(1), "a");
        q.push(SimTime::from_millis(3), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|s| s.payload).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(2);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|s| s.payload).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn stats_track_activity() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        q.pop();
        let s = q.stats();
        assert_eq!(s.pushed, 2);
        assert_eq!(s.popped, 1);
        assert_eq!(s.pending, 1);
        assert!(!q.is_empty());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_millis(9), ());
        q.push(SimTime::from_millis(4), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(4)));
    }
}
