//! The event loop: builds a network of [`Process`] nodes and runs it.

use crate::event::{EventQueue, QueueStats};
use crate::link::{ChannelMode, Link, LinkKey, LinkParams, LossModel};
use crate::metrics::Metrics;
use crate::process::{Action, NodeId, Process, ProcessCtx, TimerId, TimerKey};
use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceKind, TraceLog};
use std::collections::{BTreeMap, HashSet};

/// Seed base for per-node process RNGs.
///
/// Deliberately *not* mixed with the run seed: node-local randomness is
/// identical across runs, modelling the paper's assumption that single-node
/// internal nondeterminism has been removed (§2.5). Only the network RNG
/// (jitter, loss) varies with the run seed.
const NODE_SEED_BASE: u64 = 0xDEF1_AED0_5EED_0000;

/// Record of one in-flight packet drop, keyed by directed link and the
/// per-link packet sequence number. The DEFINED recorder persists these so a
/// debugging run can replay losses exactly (paper §2.3, footnote 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DropRecord {
    /// The directed link the packet was crossing.
    pub link: LinkKey,
    /// Per-directed-link sequence number of the dropped packet.
    pub link_seq: u64,
}

/// Summary of one processed event, returned by [`Simulator::step_until`].
#[derive(Clone, Debug, PartialEq)]
pub enum SteppedEvent {
    /// A message reached a process.
    Deliver {
        /// Sender.
        src: NodeId,
        /// Receiver.
        dst: NodeId,
    },
    /// A message died in flight (down link or down node).
    Dropped {
        /// Sender.
        src: NodeId,
        /// Intended receiver.
        dst: NodeId,
    },
    /// A timer fired.
    TimerFire {
        /// Owning node.
        node: NodeId,
        /// Application discriminator.
        key: TimerKey,
    },
    /// A link changed administrative state.
    LinkChange {
        /// One endpoint.
        a: NodeId,
        /// Other endpoint.
        b: NodeId,
        /// New state.
        up: bool,
    },
    /// A node changed administrative state.
    NodeChange {
        /// The node.
        node: NodeId,
        /// New state.
        up: bool,
    },
    /// An external input was handed to a process.
    External {
        /// Receiving node.
        node: NodeId,
    },
    /// A link's loss model changed.
    LossChange {
        /// One endpoint.
        a: NodeId,
        /// Other endpoint.
        b: NodeId,
    },
}

enum Ev<M, X> {
    Deliver { src: NodeId, dst: NodeId, link_seq: u64, msg: M, control: bool },
    Timer { node: NodeId, id: TimerId, key: TimerKey },
    LinkAdmin { a: NodeId, b: NodeId, up: bool },
    NodeAdmin { node: NodeId, up: bool },
    External { node: NodeId, ev: X },
    LossAdmin { a: NodeId, b: NodeId, loss: LossModel },
}

struct NodeSlot<P> {
    process: P,
    up: bool,
    rng: DetRng,
}

/// Declarative description of the network, consumed by [`SimBuilder::build`].
pub struct SimBuilder {
    n: usize,
    links: Vec<(NodeId, NodeId, LinkParams)>,
}

impl SimBuilder {
    /// Starts a builder for a network of `n` nodes (ids `0..n`).
    pub fn new(n: usize) -> Self {
        SimBuilder { n, links: Vec::new() }
    }

    /// Adds a bidirectional link (two directed links with equal parameters).
    pub fn link(mut self, a: NodeId, b: NodeId, params: LinkParams) -> Self {
        self.links.push((a, b, params));
        self
    }

    /// Adds every `(a, b, params)` triple as a bidirectional link.
    pub fn links(mut self, it: impl IntoIterator<Item = (NodeId, NodeId, LinkParams)>) -> Self {
        self.links.extend(it);
        self
    }

    /// Instantiates the simulator. `seed` drives only network nondeterminism
    /// (jitter and loss); `spawn` creates each node's process.
    ///
    /// # Panics
    ///
    /// Panics if a link references a node id `>= n`.
    pub fn build<P, F>(self, seed: u64, mut spawn: F) -> Simulator<P>
    where
        P: Process,
        F: FnMut(NodeId) -> P + 'static,
    {
        let mut links = BTreeMap::new();
        for &(a, b, params) in &self.links {
            assert!(a.index() < self.n && b.index() < self.n, "link endpoint out of range");
            links.insert(LinkKey { src: a, dst: b }, Link::new(params));
            links.insert(LinkKey { src: b, dst: a }, Link::new(params));
        }
        let nodes: Vec<NodeSlot<P>> = (0..self.n)
            .map(|i| NodeSlot {
                process: spawn(NodeId(i as u32)),
                up: true,
                rng: DetRng::new(NODE_SEED_BASE | i as u64),
            })
            .collect();
        let mut sim = Simulator {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            nodes,
            links,
            neighbors: Vec::new(),
            net_rng: DetRng::new(seed),
            metrics: Metrics::new(self.n),
            trace: TraceLog::new(),
            next_timer_id: 0,
            armed: HashSet::new(),
            spawn: Box::new(spawn),
            drops: Vec::new(),
            forced_drops: None,
            collect_drop_payloads: false,
            dropped_payloads: Vec::new(),
        };
        sim.rebuild_neighbors();
        for i in 0..sim.nodes.len() {
            sim.with_ctx(NodeId(i as u32), |p, ctx| p.on_start(ctx));
        }
        sim
    }
}

/// A running simulation over processes of type `P`.
pub struct Simulator<P: Process> {
    now: SimTime,
    queue: EventQueue<Ev<P::Msg, P::Ext>>,
    nodes: Vec<NodeSlot<P>>,
    links: BTreeMap<LinkKey, Link>,
    neighbors: Vec<Vec<NodeId>>,
    net_rng: DetRng,
    metrics: Metrics,
    trace: TraceLog,
    next_timer_id: u64,
    armed: HashSet<TimerId>,
    spawn: Box<dyn FnMut(NodeId) -> P>,
    drops: Vec<DropRecord>,
    forced_drops: Option<HashSet<DropRecord>>,
    collect_drop_payloads: bool,
    dropped_payloads: Vec<(LinkKey, u64, P::Msg)>,
}

impl<P: Process> Simulator<P> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Immutable access to a node's process.
    pub fn process(&self, id: NodeId) -> &P {
        &self.nodes[id.index()].process
    }

    /// Mutable access to a node's process (for debugger-style state edits).
    pub fn process_mut(&mut self, id: NodeId) -> &mut P {
        &mut self.nodes[id.index()].process
    }

    /// Whether the node is administratively up.
    pub fn node_up(&self, id: NodeId) -> bool {
        self.nodes[id.index()].up
    }

    /// Whether the directed link is present and administratively up.
    pub fn link_up(&self, src: NodeId, dst: NodeId) -> bool {
        self.links.get(&LinkKey { src, dst }).map(|l| l.up).unwrap_or(false)
    }

    /// Base parameters of the directed link, if it exists.
    pub fn link_params(&self, src: NodeId, dst: NodeId) -> Option<LinkParams> {
        self.links.get(&LinkKey { src, dst }).map(|l| l.params)
    }

    /// Per-node counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable counters (e.g. to reset between trace events).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// The trace log.
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Mutable trace log (enable/clear).
    pub fn trace_mut(&mut self) -> &mut TraceLog {
        &mut self.trace
    }

    /// Event-queue statistics.
    pub fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }

    /// All in-flight drops observed so far.
    pub fn drops(&self) -> &[DropRecord] {
        &self.drops
    }

    /// Switches loss into replay mode: a packet is dropped iff its
    /// `(link, link_seq)` appears in `set`. Used by the debugging network to
    /// reproduce recorded production losses.
    pub fn set_forced_drops(&mut self, set: HashSet<DropRecord>) {
        self.forced_drops = Some(set);
    }

    /// Enables capture of dropped payloads, which DEFINED's recorder uses to
    /// map losses back to the messages that suffered them.
    pub fn set_collect_drop_payloads(&mut self, on: bool) {
        self.collect_drop_payloads = on;
    }

    /// Dropped payloads captured so far (see
    /// [`Simulator::set_collect_drop_payloads`]).
    pub fn dropped_payloads(&self) -> &[(LinkKey, u64, P::Msg)] {
        &self.dropped_payloads
    }

    /// Schedules an external input for `node` at absolute time `t`.
    pub fn schedule_external(&mut self, t: SimTime, node: NodeId, ev: P::Ext) {
        self.queue.push(t, Ev::External { node, ev });
    }

    /// Schedules both directions of the `a — b` link to go down/up at `t`.
    pub fn schedule_link_admin(&mut self, t: SimTime, a: NodeId, b: NodeId, up: bool) {
        self.queue.push(t, Ev::LinkAdmin { a, b, up });
    }

    /// Schedules node `node` to crash (`up = false`) or restart with a fresh
    /// process (`up = true`) at `t`.
    pub fn schedule_node_admin(&mut self, t: SimTime, node: NodeId, up: bool) {
        self.queue.push(t, Ev::NodeAdmin { node, up });
    }

    /// Schedules `count` down/up cycles of the `a — b` link: the link goes
    /// down at `start + k * period` and comes back `down_for` later, for
    /// `k` in `0..count`.
    ///
    /// # Panics
    ///
    /// Panics unless `down_for < period` (each flap must recover before the
    /// next begins).
    pub fn schedule_link_flap(
        &mut self,
        start: SimTime,
        a: NodeId,
        b: NodeId,
        down_for: SimDuration,
        period: SimDuration,
        count: u32,
    ) {
        assert!(down_for < period, "flap down time must be shorter than its period");
        for k in 0..count {
            let down_at = start + period * k as u64;
            self.schedule_link_admin(down_at, a, b, false);
            self.schedule_link_admin(down_at + down_for, a, b, true);
        }
    }

    /// Schedules every link with exactly one endpoint in `side` to go down
    /// (`up = false`) or up (`up = true`) at `t` — a bisection partition of
    /// the network, or its heal. Returns the affected undirected pairs so
    /// callers can report or re-heal the exact cut.
    pub fn schedule_partition(&mut self, t: SimTime, side: &[NodeId], up: bool) -> Vec<(NodeId, NodeId)> {
        let inside: HashSet<NodeId> = side.iter().copied().collect();
        let mut cut = Vec::new();
        for key in self.links.keys() {
            if key.src < key.dst && inside.contains(&key.src) != inside.contains(&key.dst) {
                cut.push((key.src, key.dst));
            }
        }
        for &(a, b) in &cut {
            self.schedule_link_admin(t, a, b, up);
        }
        cut
    }

    /// Schedules both directions of the `a — b` link to switch to `loss` at
    /// `t` — a message-loss window is one such event installing a Bernoulli
    /// model and a second one restoring [`LossModel::None`].
    pub fn schedule_link_loss(&mut self, t: SimTime, a: NodeId, b: NodeId, loss: LossModel) {
        self.queue.push(t, Ev::LossAdmin { a, b, loss });
    }

    /// Runs until the queue is exhausted or the next event is after
    /// `deadline`; leaves `now == deadline` unless exhausted earlier.
    pub fn run_until(&mut self, deadline: SimTime) {
        while self.step_until(deadline).is_some() {}
        if self.now < deadline && deadline != SimTime::MAX {
            self.now = deadline;
        }
    }

    /// Runs until `keep_going` returns false or `deadline` passes. The
    /// predicate is evaluated after every processed event.
    pub fn run_while(
        &mut self,
        deadline: SimTime,
        mut keep_going: impl FnMut(&Simulator<P>) -> bool,
    ) {
        while keep_going(self) {
            if self.step_until(deadline).is_none() {
                break;
            }
        }
    }

    /// Processes the next event if it is due at or before `deadline`.
    ///
    /// Returns a summary of what happened, or `None` when the queue is empty
    /// or the next event lies beyond the deadline. Cancelled timers are
    /// skipped transparently.
    pub fn step_until(&mut self, deadline: SimTime) -> Option<SteppedEvent> {
        loop {
            let t = self.queue.peek_time()?;
            if t > deadline {
                return None;
            }
            let ev = self.queue.pop().expect("peeked");
            self.now = ev.time;
            match ev.payload {
                Ev::Deliver { src, dst, link_seq, msg, control } => {
                    let key = LinkKey { src, dst };
                    // Loss is decided at delivery time so that a replay set
                    // installed after `build()` still governs packets sent
                    // from `on_start`. Control packets never suffer
                    // stochastic loss.
                    let mode = self.links.get(&key).map(|l| l.params.mode);
                    let lost = if control {
                        false
                    } else {
                        match (&self.forced_drops, mode) {
                            (_, Some(ChannelMode::Fifo)) | (_, None) => false,
                            (Some(set), _) => set.contains(&DropRecord { link: key, link_seq }),
                            (None, Some(_)) => match self.links[&key].params.loss {
                                LossModel::None => false,
                                LossModel::Bernoulli { p } => self.net_rng.gen_bool(p),
                            },
                        }
                    };
                    let link_up = self.link_up(src, dst);
                    let node_up = self.nodes[dst.index()].up;
                    if lost || !link_up || !node_up {
                        self.record_drop(key, link_seq, &msg);
                        self.trace.record(self.now, TraceKind::Drop { src, dst, link_seq });
                        return Some(SteppedEvent::Dropped { src, dst });
                    }
                    self.metrics.node_mut(dst).msgs_received += 1;
                    self.trace.record(self.now, TraceKind::Deliver { src, dst, link_seq });
                    self.with_ctx(dst, |p, ctx| p.on_message(ctx, src, msg));
                    return Some(SteppedEvent::Deliver { src, dst });
                }
                Ev::Timer { node, id, key } => {
                    if !self.armed.remove(&id) || !self.nodes[node.index()].up {
                        continue; // Cancelled or owner down: skip silently.
                    }
                    self.metrics.node_mut(node).timers_fired += 1;
                    self.trace.record(self.now, TraceKind::TimerFire { node, key });
                    self.with_ctx(node, |p, ctx| p.on_timer(ctx, id, key));
                    return Some(SteppedEvent::TimerFire { node, key });
                }
                Ev::LinkAdmin { a, b, up } => {
                    self.set_link_state(a, b, up);
                    self.trace.record(self.now, TraceKind::LinkChange { a, b, up });
                    if self.nodes[a.index()].up {
                        self.with_ctx(a, |p, ctx| p.on_link_change(ctx, b, up));
                    }
                    if self.nodes[b.index()].up {
                        self.with_ctx(b, |p, ctx| p.on_link_change(ctx, a, up));
                    }
                    return Some(SteppedEvent::LinkChange { a, b, up });
                }
                Ev::NodeAdmin { node, up } => {
                    self.trace.record(self.now, TraceKind::NodeChange { node, up });
                    if up {
                        self.nodes[node.index()].up = true;
                        self.nodes[node.index()].process = (self.spawn)(node);
                        self.with_ctx(node, |p, ctx| p.on_start(ctx));
                    } else {
                        self.nodes[node.index()].up = false;
                    }
                    return Some(SteppedEvent::NodeChange { node, up });
                }
                Ev::External { node, ev } => {
                    if !self.nodes[node.index()].up {
                        continue;
                    }
                    self.metrics.node_mut(node).externals += 1;
                    self.trace.record(self.now, TraceKind::External { node });
                    self.with_ctx(node, |p, ctx| p.on_external(ctx, ev));
                    return Some(SteppedEvent::External { node });
                }
                Ev::LossAdmin { a, b, loss } => {
                    for key in [LinkKey { src: a, dst: b }, LinkKey { src: b, dst: a }] {
                        if let Some(l) = self.links.get_mut(&key) {
                            l.params.loss = loss;
                        }
                    }
                    return Some(SteppedEvent::LossChange { a, b });
                }
            }
        }
    }

    fn set_link_state(&mut self, a: NodeId, b: NodeId, up: bool) {
        for key in [LinkKey { src: a, dst: b }, LinkKey { src: b, dst: a }] {
            if let Some(l) = self.links.get_mut(&key) {
                l.up = up;
            }
        }
        self.rebuild_neighbors();
    }

    fn rebuild_neighbors(&mut self) {
        let n = self.nodes.len();
        let mut adj = vec![Vec::new(); n];
        for (key, link) in &self.links {
            if link.up {
                adj[key.src.index()].push(key.dst);
            }
        }
        for v in &mut adj {
            v.sort_unstable();
        }
        self.neighbors = adj;
    }

    /// Runs `f` with a fresh context for `node`, then applies the buffered
    /// actions.
    fn with_ctx(&mut self, node: NodeId, f: impl FnOnce(&mut P, &mut ProcessCtx<'_, P::Msg>)) {
        let idx = node.index();
        let slot = &mut self.nodes[idx];
        let mut ctx = ProcessCtx {
            node,
            now: self.now,
            neighbors: &self.neighbors[idx],
            rng: &mut slot.rng,
            actions: Vec::new(),
            next_timer_id: &mut self.next_timer_id,
        };
        f(&mut slot.process, &mut ctx);
        let actions = ctx.actions;
        self.apply_actions(node, actions);
    }

    fn apply_actions(&mut self, node: NodeId, actions: Vec<Action<P::Msg>>) {
        for action in actions {
            match action {
                Action::Send { to, msg, extra_delay, control } => {
                    self.do_send(node, to, msg, extra_delay, control)
                }
                Action::SetTimer { id, delay, key } => {
                    self.armed.insert(id);
                    self.queue.push(self.now + delay, Ev::Timer { node, id, key });
                }
                Action::CancelTimer(id) => {
                    self.armed.remove(&id);
                }
            }
        }
    }

    fn do_send(
        &mut self,
        src: NodeId,
        dst: NodeId,
        msg: P::Msg,
        extra_delay: SimDuration,
        control: bool,
    ) {
        let key = LinkKey { src, dst };
        let Some(link) = self.links.get_mut(&key) else {
            // No such link: the send is silently discarded (recorded as a
            // drop so tests can notice miswired protocols).
            self.drops.push(DropRecord { link: key, link_seq: u64::MAX });
            return;
        };
        let link_seq = link.sent;
        link.sent += 1;
        self.metrics.node_mut(src).msgs_sent += 1;
        self.trace.record(self.now, TraceKind::Send { src, dst, link_seq });
        if !link.up {
            self.record_drop(key, link_seq, &msg);
            self.trace.record(self.now, TraceKind::Drop { src, dst, link_seq });
            return;
        }
        let params = link.params;
        let jitter = if control {
            SimDuration::ZERO
        } else {
            params.jitter.sample(params.delay, &mut self.net_rng)
        };
        let mut deliver_at = self.now + extra_delay + params.delay + jitter;
        if params.mode == ChannelMode::Fifo {
            let link = self.links.get_mut(&key).expect("link exists");
            if deliver_at < link.last_delivery {
                deliver_at = link.last_delivery;
            }
            link.last_delivery = deliver_at;
        }
        self.queue.push(deliver_at, Ev::Deliver { src, dst, link_seq, msg, control });
    }

    fn record_drop(&mut self, key: LinkKey, link_seq: u64, msg: &P::Msg) {
        self.drops.push(DropRecord { link: key, link_seq });
        self.metrics.node_mut(key.dst).msgs_dropped += 1;
        if self.collect_drop_payloads {
            self.dropped_payloads.push((key, link_seq, msg.clone()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::JitterModel;
    use crate::time::SimDuration;

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    /// Node 0 pings everyone on start; everyone pongs back.
    #[derive(Default)]
    struct PingPong {
        pings: Vec<(NodeId, u32)>,
        pongs: Vec<(NodeId, u32)>,
        timer_fired: u32,
        link_events: u32,
    }

    impl Process for PingPong {
        type Msg = Msg;
        type Ext = u32;

        fn on_start(&mut self, ctx: &mut ProcessCtx<'_, Msg>) {
            if ctx.id() == NodeId(0) {
                for (i, &nb) in ctx.neighbors().to_vec().iter().enumerate() {
                    ctx.send(nb, Msg::Ping(i as u32));
                }
            }
        }

        fn on_message(&mut self, ctx: &mut ProcessCtx<'_, Msg>, from: NodeId, msg: Msg) {
            match msg {
                Msg::Ping(x) => {
                    self.pings.push((from, x));
                    ctx.send(from, Msg::Pong(x));
                }
                Msg::Pong(x) => self.pongs.push((from, x)),
            }
        }

        fn on_external(&mut self, ctx: &mut ProcessCtx<'_, Msg>, ev: u32) {
            // Externals trigger a ping to the first neighbour.
            if let Some(&nb) = ctx.neighbors().first() {
                ctx.send(nb, Msg::Ping(ev));
            }
        }

        fn on_timer(&mut self, _ctx: &mut ProcessCtx<'_, Msg>, _id: TimerId, _key: TimerKey) {
            self.timer_fired += 1;
        }

        fn on_link_change(&mut self, _ctx: &mut ProcessCtx<'_, Msg>, _peer: NodeId, _up: bool) {
            self.link_events += 1;
        }
    }

    fn triangle(seed: u64) -> Simulator<PingPong> {
        let d = LinkParams::with_delay(SimDuration::from_millis(10));
        SimBuilder::new(3)
            .link(NodeId(0), NodeId(1), d)
            .link(NodeId(1), NodeId(2), d)
            .link(NodeId(0), NodeId(2), d)
            .build(seed, |_| PingPong::default())
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut sim = triangle(1);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.process(NodeId(1)).pings.len(), 1);
        assert_eq!(sim.process(NodeId(2)).pings.len(), 1);
        assert_eq!(sim.process(NodeId(0)).pongs.len(), 2);
        assert_eq!(sim.metrics().total_sent(), 4);
        assert_eq!(sim.metrics().total_received(), 4);
    }

    #[test]
    fn identical_seeds_identical_runs() {
        let mut a = triangle(77);
        let mut b = triangle(77);
        a.trace_mut().set_enabled(true);
        b.trace_mut().set_enabled(true);
        a.run_until(SimTime::from_secs(1));
        b.run_until(SimTime::from_secs(1));
        assert_eq!(a.trace().events(), b.trace().events());
    }

    #[test]
    fn jitter_reorders_across_seeds() {
        // With heavy jitter, two seeds should produce different delivery
        // orders at node 2 when nodes 0 and 1 both send to it.
        #[derive(Default)]
        struct Sink {
            order: Vec<NodeId>,
        }
        impl Process for Sink {
            type Msg = u8;
            type Ext = ();
            fn on_start(&mut self, ctx: &mut ProcessCtx<'_, u8>) {
                if ctx.id() != NodeId(2) {
                    for i in 0..20 {
                        ctx.send(NodeId(2), i);
                    }
                }
            }
            fn on_message(&mut self, _ctx: &mut ProcessCtx<'_, u8>, from: NodeId, _m: u8) {
                self.order.push(from);
            }
        }
        let build = |seed| {
            let p = LinkParams::with_delay(SimDuration::from_millis(10))
                .jitter(JitterModel::Uniform { frac: 1.0 });
            let mut sim = SimBuilder::new(3)
                .link(NodeId(0), NodeId(2), p)
                .link(NodeId(1), NodeId(2), p)
                .build(seed, |_| Sink::default());
            sim.run_until(SimTime::from_secs(1));
            sim.process(NodeId(2)).order.clone()
        };
        let o1 = build(1);
        let o2 = build(2);
        assert_eq!(o1.len(), 40);
        assert_ne!(o1, o2, "expected different interleavings across seeds");
    }

    #[test]
    fn fifo_mode_preserves_order_despite_jitter() {
        #[derive(Default)]
        struct Sink {
            got: Vec<u8>,
        }
        impl Process for Sink {
            type Msg = u8;
            type Ext = ();
            fn on_start(&mut self, ctx: &mut ProcessCtx<'_, u8>) {
                if ctx.id() == NodeId(0) {
                    for i in 0..50 {
                        ctx.send(NodeId(1), i);
                    }
                }
            }
            fn on_message(&mut self, _ctx: &mut ProcessCtx<'_, u8>, _from: NodeId, m: u8) {
                self.got.push(m);
            }
        }
        let p = LinkParams::with_delay(SimDuration::from_millis(10))
            .jitter(JitterModel::Uniform { frac: 2.0 })
            .mode(ChannelMode::Fifo);
        let mut sim = SimBuilder::new(2)
            .link(NodeId(0), NodeId(1), p)
            .build(5, |_| Sink::default());
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.process(NodeId(1)).got, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn loss_drops_packets_and_records_them() {
        #[derive(Default)]
        struct Sink {
            got: usize,
        }
        impl Process for Sink {
            type Msg = u8;
            type Ext = ();
            fn on_start(&mut self, ctx: &mut ProcessCtx<'_, u8>) {
                if ctx.id() == NodeId(0) {
                    for i in 0..200 {
                        ctx.send(NodeId(1), (i % 256) as u8);
                    }
                }
            }
            fn on_message(&mut self, _ctx: &mut ProcessCtx<'_, u8>, _from: NodeId, _m: u8) {
                self.got += 1;
            }
        }
        let p = LinkParams::with_delay(SimDuration::from_millis(1))
            .loss(LossModel::Bernoulli { p: 0.3 });
        let mut sim = SimBuilder::new(2)
            .link(NodeId(0), NodeId(1), p)
            .build(9, |_| Sink::default());
        sim.run_until(SimTime::from_secs(1));
        let got = sim.process(NodeId(1)).got;
        assert!(got < 200, "some packets must drop");
        assert_eq!(got + sim.drops().len(), 200);
    }

    #[test]
    fn forced_drops_replay_exactly() {
        #[derive(Default)]
        struct Sink {
            got: Vec<u64>,
        }
        impl Process for Sink {
            type Msg = u64;
            type Ext = ();
            fn on_start(&mut self, ctx: &mut ProcessCtx<'_, u64>) {
                if ctx.id() == NodeId(0) {
                    for i in 0..100u64 {
                        ctx.send(NodeId(1), i);
                    }
                }
            }
            fn on_message(&mut self, _ctx: &mut ProcessCtx<'_, u64>, _from: NodeId, m: u64) {
                self.got.push(m);
            }
        }
        let p = LinkParams::with_delay(SimDuration::from_millis(1))
            .loss(LossModel::Bernoulli { p: 0.2 });
        let mut rec = SimBuilder::new(2)
            .link(NodeId(0), NodeId(1), p)
            .build(13, |_| Sink::default());
        rec.run_until(SimTime::from_secs(1));
        let recorded: HashSet<DropRecord> = rec.drops().iter().copied().collect();
        let survivors = rec.process(NodeId(1)).got.clone();

        // Replay with a different seed but forced drops: same survivor set.
        let mut rep = SimBuilder::new(2)
            .link(NodeId(0), NodeId(1), p)
            .build(999, |_| Sink::default());
        rep.set_forced_drops(recorded);
        rep.run_until(SimTime::from_secs(1));
        assert_eq!(rep.process(NodeId(1)).got, survivors);
    }

    #[test]
    fn timers_fire_and_cancel() {
        struct T {
            fired: Vec<TimerKey>,
        }
        impl Process for T {
            type Msg = ();
            type Ext = ();
            fn on_start(&mut self, ctx: &mut ProcessCtx<'_, ()>) {
                ctx.set_timer(SimDuration::from_millis(10), TimerKey(1));
                let c = ctx.set_timer(SimDuration::from_millis(20), TimerKey(2));
                ctx.cancel_timer(c);
                ctx.set_timer(SimDuration::from_millis(30), TimerKey(3));
            }
            fn on_message(&mut self, _ctx: &mut ProcessCtx<'_, ()>, _from: NodeId, _m: ()) {}
            fn on_timer(&mut self, _ctx: &mut ProcessCtx<'_, ()>, _id: TimerId, key: TimerKey) {
                self.fired.push(key);
            }
        }
        let mut sim = SimBuilder::new(1).build(1, |_| T { fired: Vec::new() });
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.process(NodeId(0)).fired, vec![TimerKey(1), TimerKey(3)]);
    }

    #[test]
    fn link_down_drops_in_flight_and_notifies() {
        let mut sim = triangle(3);
        sim.schedule_link_admin(SimTime::from_millis(1), NodeId(0), NodeId(1), false);
        sim.run_until(SimTime::from_secs(1));
        // Ping from 0 to 1 was in flight (sent at t=0, 10ms delay) when the
        // link dropped at 1ms, so node 1 never saw it.
        assert_eq!(sim.process(NodeId(1)).pings.len(), 0);
        assert!(sim.process(NodeId(0)).link_events >= 1);
        assert!(sim.process(NodeId(1)).link_events >= 1);
    }

    #[test]
    fn node_restart_resets_state() {
        let mut sim = triangle(3);
        sim.run_until(SimTime::from_millis(100));
        assert!(!sim.process(NodeId(1)).pings.is_empty());
        sim.schedule_node_admin(SimTime::from_millis(200), NodeId(1), false);
        sim.schedule_node_admin(SimTime::from_millis(300), NodeId(1), true);
        sim.run_until(SimTime::from_secs(1));
        assert!(sim.node_up(NodeId(1)));
        assert!(sim.process(NodeId(1)).pings.is_empty(), "restart spawns fresh state");
    }

    #[test]
    fn externals_reach_processes() {
        let mut sim = triangle(3);
        sim.schedule_external(SimTime::from_millis(50), NodeId(2), 42);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.metrics().node(NodeId(2)).externals, 1);
        // The external made node 2 ping its first neighbour (node 0).
        assert!(sim.process(NodeId(0)).pings.iter().any(|&(from, x)| from == NodeId(2) && x == 42));
    }

    #[test]
    fn down_node_drops_deliveries() {
        let mut sim = triangle(3);
        sim.schedule_node_admin(SimTime::from_millis(1), NodeId(1), false);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.process(NodeId(1)).pings.len(), 0);
        assert!(sim.metrics().node(NodeId(1)).msgs_dropped >= 1);
    }

    /// Control-channel sends arrive at exactly the base delay, independent
    /// of the seed, while ordinary sends jitter.
    #[test]
    fn control_sends_are_jitter_free() {
        #[derive(Default)]
        struct Sink {
            arrivals: Vec<(SimTime, u8)>,
        }
        impl Process for Sink {
            type Msg = u8;
            type Ext = ();
            fn on_start(&mut self, ctx: &mut ProcessCtx<'_, u8>) {
                if ctx.id() == NodeId(0) {
                    for i in 0..10 {
                        ctx.send_control(NodeId(1), i);
                        ctx.send(NodeId(1), 100 + i);
                    }
                }
            }
            fn on_message(&mut self, ctx: &mut ProcessCtx<'_, u8>, _from: NodeId, m: u8) {
                self.arrivals.push((ctx.now(), m));
            }
        }
        let run = |seed| {
            let p = LinkParams::with_delay(SimDuration::from_millis(10))
                .jitter(JitterModel::Uniform { frac: 1.0 });
            let mut sim =
                SimBuilder::new(2).link(NodeId(0), NodeId(1), p).build(seed, |_| Sink::default());
            sim.run_until(SimTime::from_secs(1));
            sim.process(NodeId(1)).arrivals.clone()
        };
        let a = run(1);
        let b = run(2);
        let control = |v: &[(SimTime, u8)]| -> Vec<(SimTime, u8)> {
            v.iter().copied().filter(|&(_, m)| m < 100).collect()
        };
        let data = |v: &[(SimTime, u8)]| -> Vec<(SimTime, u8)> {
            v.iter().copied().filter(|&(_, m)| m >= 100).collect()
        };
        // Control arrivals: exactly the 10 ms base delay, identical across
        // seeds.
        assert_eq!(control(&a), control(&b));
        assert!(control(&a).iter().all(|&(t, _)| t == SimTime::from_millis(10)));
        // Data arrivals: seed-dependent.
        assert_ne!(data(&a), data(&b));
    }

    /// Control-channel sends are exempt from stochastic loss but still die
    /// on a down link.
    #[test]
    fn control_sends_skip_loss_but_not_down_links() {
        #[derive(Default)]
        struct Sink {
            got: usize,
        }
        impl Process for Sink {
            type Msg = u8;
            type Ext = ();
            fn on_external(&mut self, ctx: &mut ProcessCtx<'_, u8>, _ev: ()) {
                if ctx.id() == NodeId(0) {
                    ctx.send_control(NodeId(1), 1);
                }
            }
            fn on_message(&mut self, _ctx: &mut ProcessCtx<'_, u8>, _from: NodeId, _m: u8) {
                self.got += 1;
            }
        }
        let p = LinkParams::with_delay(SimDuration::from_millis(1))
            .loss(LossModel::Bernoulli { p: 0.9 });
        let mut sim =
            SimBuilder::new(2).link(NodeId(0), NodeId(1), p).build(3, |_| Sink::default());
        for i in 0..100u64 {
            sim.schedule_external(SimTime::from_millis(i * 2), NodeId(0), ());
        }
        sim.run_until(SimTime::from_millis(250));
        assert_eq!(sim.process(NodeId(1)).got, 100, "90% loss must not touch control");
        // But an administratively down link drops control packets too.
        sim.schedule_link_admin(SimTime::from_millis(300), NodeId(0), NodeId(1), false);
        sim.schedule_external(SimTime::from_millis(301), NodeId(0), ());
        sim.run_until(SimTime::from_millis(400));
        assert_eq!(sim.process(NodeId(1)).got, 100, "down link still drops control");
    }

    #[test]
    fn link_flap_schedules_paired_transitions() {
        let mut sim = triangle(6);
        // Three 100 ms outages every 300 ms starting at 1 s.
        sim.schedule_link_flap(
            SimTime::from_secs(1),
            NodeId(0),
            NodeId(1),
            SimDuration::from_millis(100),
            SimDuration::from_millis(300),
            3,
        );
        sim.trace_mut().set_enabled(true);
        sim.run_until(SimTime::from_secs(3));
        let changes: Vec<(SimTime, bool)> = sim
            .trace()
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                TraceKind::LinkChange { a, b, up } if a == NodeId(0) && b == NodeId(1) => {
                    Some((e.time, up))
                }
                _ => None,
            })
            .collect();
        assert_eq!(changes.len(), 6, "three down/up pairs: {changes:?}");
        assert!(changes.iter().step_by(2).all(|&(_, up)| !up));
        assert!(changes.iter().skip(1).step_by(2).all(|&(_, up)| up));
        assert_eq!(changes[0].0, SimTime::from_secs(1));
        assert_eq!(changes[1].0, SimTime::from_millis(1100));
        assert_eq!(changes[4].0, SimTime::from_millis(1600));
        assert!(sim.link_up(NodeId(0), NodeId(1)), "link restored after the last flap");
    }

    #[test]
    #[should_panic(expected = "flap down time")]
    fn link_flap_rejects_overlapping_cycles() {
        let mut sim = triangle(1);
        sim.schedule_link_flap(
            SimTime::ZERO,
            NodeId(0),
            NodeId(1),
            SimDuration::from_millis(300),
            SimDuration::from_millis(300),
            2,
        );
    }

    #[test]
    fn partition_cuts_exactly_the_crossing_links() {
        let mut sim = triangle(2);
        let cut = sim.schedule_partition(SimTime::from_millis(5), &[NodeId(0)], false);
        assert_eq!(cut, vec![(NodeId(0), NodeId(1)), (NodeId(0), NodeId(2))]);
        sim.run_until(SimTime::from_millis(10));
        assert!(!sim.link_up(NodeId(0), NodeId(1)));
        assert!(!sim.link_up(NodeId(0), NodeId(2)));
        assert!(sim.link_up(NodeId(1), NodeId(2)), "intra-side link untouched");
        let healed = sim.schedule_partition(SimTime::from_millis(20), &[NodeId(0)], true);
        assert_eq!(healed, cut);
        sim.run_until(SimTime::from_millis(30));
        assert!(sim.link_up(NodeId(0), NodeId(1)));
        assert!(sim.link_up(NodeId(0), NodeId(2)));
    }

    #[test]
    fn loss_window_drops_only_inside_the_window() {
        #[derive(Default)]
        struct Sink {
            got: usize,
        }
        impl Process for Sink {
            type Msg = u8;
            type Ext = ();
            fn on_external(&mut self, ctx: &mut ProcessCtx<'_, u8>, _ev: ()) {
                if ctx.id() == NodeId(0) {
                    ctx.send(NodeId(1), 1);
                }
            }
            fn on_message(&mut self, _ctx: &mut ProcessCtx<'_, u8>, _from: NodeId, _m: u8) {
                self.got += 1;
            }
        }
        let p = LinkParams::with_delay(SimDuration::from_micros(100));
        let mut sim =
            SimBuilder::new(2).link(NodeId(0), NodeId(1), p).build(3, |_| Sink::default());
        // 100 sends before, 100 inside, 100 after a total-loss window.
        for i in 0..300u64 {
            sim.schedule_external(SimTime::from_millis(i), NodeId(0), ());
        }
        sim.schedule_link_loss(
            SimTime::from_millis(100),
            NodeId(0),
            NodeId(1),
            LossModel::Bernoulli { p: 1.0 },
        );
        sim.schedule_link_loss(SimTime::from_millis(200), NodeId(0), NodeId(1), LossModel::None);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.process(NodeId(1)).got, 200, "only the window's packets die");
        assert_eq!(sim.drops().len(), 100);
    }

    #[test]
    fn run_while_stops_on_predicate() {
        let mut sim = triangle(4);
        let mut steps = 0;
        sim.run_while(SimTime::from_secs(1), |_| {
            steps += 1;
            steps <= 2
        });
        assert_eq!(steps, 3);
    }
}
