//! Execution-path exploration (paper §4, discussion).
//!
//! DEFINED's determinism means some interleavings never occur in an
//! instrumented network — a bug that depends on them is masked (which also
//! *protects* the production network from it). The paper notes a
//! troubleshooter can apply *different ordering functions* in DEFINED-LS to
//! examine the other execution paths. [`explore_orderings`] does exactly
//! that: it replays the same partial recording under a sweep of salted
//! ordering functions until a predicate (e.g. "the bug manifested") holds.

use crate::config::{DefinedConfig, OrderingMode};
use crate::ls::LockstepNet;
use crate::recorder::Recording;
use netsim::NodeId;
use routing::ControlPlane;
use topology::Graph;

/// Replays `recording` under [`OrderingMode::Permuted`] for each salt in
/// `salts`, returning the first `(salt, finished network)` whose final state
/// satisfies `predicate`.
///
/// Each replay is a complete, valid execution of the recorded external
/// events — just under a different (still deterministic) schedule.
pub fn explore_orderings<P, F, S>(
    graph: &Graph,
    base_cfg: &DefinedConfig,
    recording: &Recording<P::Ext>,
    spawn: S,
    salts: impl IntoIterator<Item = u64>,
    predicate: F,
) -> Option<(u64, LockstepNet<P>)>
where
    P: ControlPlane,
    P::Ext: Clone,
    S: Fn(NodeId) -> P,
    F: Fn(&LockstepNet<P>) -> bool,
{
    for salt in salts {
        let cfg = DefinedConfig { ordering: OrderingMode::Permuted(salt), ..base_cfg.clone() };
        let mut ls = LockstepNet::new(graph, cfg, recording.clone(), &spawn);
        ls.run_to_end();
        if predicate(&ls) {
            return Some((salt, ls));
        }
    }
    None
}

/// Convenience: counts how many of the given salts satisfy the predicate —
/// a rough measure of how order-dependent an outcome is.
pub fn ordering_sensitivity<P, F, S>(
    graph: &Graph,
    base_cfg: &DefinedConfig,
    recording: &Recording<P::Ext>,
    spawn: S,
    salts: impl IntoIterator<Item = u64>,
    predicate: F,
) -> (usize, usize)
where
    P: ControlPlane,
    P::Ext: Clone,
    S: Fn(NodeId) -> P,
    F: Fn(&LockstepNet<P>) -> bool,
{
    let mut hits = 0;
    let mut total = 0;
    for salt in salts {
        total += 1;
        let cfg = DefinedConfig { ordering: OrderingMode::Permuted(salt), ..base_cfg.clone() };
        let mut ls = LockstepNet::new(graph, cfg, recording.clone(), &spawn);
        ls.run_to_end();
        if predicate(&ls) {
            hits += 1;
        }
    }
    (hits, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::RbNetwork;
    use netsim::{SimDuration, SimTime};
    use routing::bgp::{fig4_paths, BgpExt, BgpProcess, DecisionMode, Role};
    use topology::canonical;

    const PREFIX: u32 = 9;

    fn processes(roles: &canonical::Fig4Roles) -> Vec<BgpProcess> {
        let internal = [roles.r1, roles.r2, roles.r3];
        (0..6u32)
            .map(|i| {
                let id = NodeId(i);
                if id == roles.er1 || id == roles.er2 {
                    BgpProcess::new(id, Role::External { border: roles.r1 }, DecisionMode::BuggyIncremental)
                } else if id == roles.er3 {
                    BgpProcess::new(id, Role::External { border: roles.r2 }, DecisionMode::BuggyIncremental)
                } else {
                    let peers = internal.iter().copied().filter(|&p| p != id).collect();
                    BgpProcess::new(id, Role::Internal { ibgp_peers: peers }, DecisionMode::BuggyIncremental)
                }
            })
            .collect()
    }

    /// §4's discussion, end to end: even if the production ordering masks
    /// the MED bug, sweeping ordering functions in the debugging network
    /// finds an execution path where it manifests.
    #[test]
    fn exploration_finds_the_masked_bgp_bug() {
        let (graph, roles) =
            canonical::fig4_bgp(SimDuration::from_millis(8), SimDuration::from_millis(12));
        let cfg = DefinedConfig::default();
        let procs = processes(&roles);
        let mut net = RbNetwork::new(&graph, cfg.clone(), 1, 0.5, move |id| {
            procs[id.index()].clone()
        });
        let [p1, p2, p3] = fig4_paths();
        for (er, p) in [(roles.er1, p1), (roles.er2, p2), (roles.er3, p3)] {
            net.inject_external(
                SimTime::from_millis(700),
                er,
                BgpExt::Announce { prefix: PREFIX, attrs: p },
            );
        }
        net.run_until(SimTime::from_secs(4));
        let (rec, _) = net.into_recording();

        let roles2 = roles;
        let found = explore_orderings(
            &graph,
            &cfg,
            &rec,
            |id| processes(&roles2)[id.index()].clone(),
            0..32u64,
            |ls| {
                ls.control_plane(roles2.r3).best_path(PREFIX).map(|p| p.route_id) == Some(2)
            },
        );
        let (salt, ls) = found.expect("some ordering must trigger the bug");
        assert_eq!(ls.control_plane(roles.r3).best_path(PREFIX).unwrap().route_id, 2);
        // And sensitivity should show the bug is genuinely order-dependent:
        // some orderings select the correct p3.
        let (correct_hits, total) = ordering_sensitivity(
            &graph,
            &cfg,
            &rec,
            |id| processes(&roles2)[id.index()].clone(),
            0..32u64,
            |ls| {
                ls.control_plane(roles2.r3).best_path(PREFIX).map(|p| p.route_id) == Some(3)
            },
        );
        assert!(correct_hits > 0 && correct_hits < total, "mixed outcomes across orderings");
        let _ = salt;
    }
}
