//! Execution-path exploration (paper §4, discussion).
//!
//! DEFINED's determinism means some interleavings never occur in an
//! instrumented network — a bug that depends on them is masked (which also
//! *protects* the production network from it). The paper notes a
//! troubleshooter can apply *different ordering functions* in DEFINED-LS to
//! examine the other execution paths. [`explore_orderings`] does exactly
//! that: it replays the same partial recording under a sweep of salted
//! ordering functions until a predicate (e.g. "the bug manifested") holds.
//!
//! Each salted replay is independent, so the sweep runs on the replay farm
//! ([`crate::farm`]): [`explore_orderings_farm`] fans the salts across a
//! worker pool and still returns the *earliest* matching salt in the given
//! sequence — not the first to finish — so the parallel answer is
//! byte-identical to the serial one. The serial entry points below are the
//! farm at `jobs = 1`.

use crate::config::{DefinedConfig, OrderingMode};
use crate::farm::{self, FarmConfig, JobPanic};
use crate::ls::LockstepNet;
use crate::recorder::Recording;
use netsim::NodeId;
use routing::ControlPlane;
use topology::Graph;

/// Replays `recording` under [`OrderingMode::Permuted`] for each salt in
/// `salts`, returning the first `(salt, finished network)` whose final state
/// satisfies `predicate`.
///
/// Each replay is a complete, valid execution of the recorded external
/// events — just under a different (still deterministic) schedule.
///
/// Serial wrapper over [`explore_orderings_farm`] at [`FarmConfig::serial`].
pub fn explore_orderings<P, F, S>(
    graph: &Graph,
    base_cfg: &DefinedConfig,
    recording: &Recording<P::Ext>,
    spawn: S,
    salts: impl IntoIterator<Item = u64>,
    predicate: F,
) -> Option<(u64, LockstepNet<P>)>
where
    P: ControlPlane,
    P::Ext: Sync,
    S: Fn(NodeId) -> P + Sync,
    F: Fn(&LockstepNet<P>) -> bool + Sync,
{
    explore_orderings_farm(graph, base_cfg, recording, spawn, salts, predicate, &FarmConfig::serial())
}

/// [`explore_orderings`] on the replay farm: the salts are evaluated by
/// `farm.jobs` workers, and the result is the match *earliest in the salt
/// sequence* — identical to the serial sweep for every job count. Salts
/// past the earliest match are skipped once it is known.
///
/// The salt sequence is consumed lazily in bounded batches, so an
/// unbounded sweep (`0..`) terminates at the first match just as the
/// serial loop always has; only one batch of salts is ever materialised.
pub fn explore_orderings_farm<P, F, S>(
    graph: &Graph,
    base_cfg: &DefinedConfig,
    recording: &Recording<P::Ext>,
    spawn: S,
    salts: impl IntoIterator<Item = u64>,
    predicate: F,
    farm: &FarmConfig,
) -> Option<(u64, LockstepNet<P>)>
where
    P: ControlPlane,
    P::Ext: Sync,
    S: Fn(NodeId) -> P + Sync,
    F: Fn(&LockstepNet<P>) -> bool + Sync,
{
    let mut salts = salts.into_iter();
    let jobs = farm.jobs.max(1);
    // Batches are processed in sequence order, so the first batch with a
    // hit contains the globally earliest one; within a batch `sweep_min`
    // guarantees the earliest index. Jobs=1 gets a batch of 1 — exactly
    // the serial lazy loop.
    let batch_len = if jobs == 1 { 1 } else { jobs * 8 };
    loop {
        let batch: Vec<u64> = salts.by_ref().take(batch_len).collect();
        if batch.is_empty() {
            return None;
        }
        let hit = farm::sweep_min(jobs, batch.len(), |i| {
            let ls = salted_replay(graph, base_cfg, recording, &spawn, batch[i], farm.shards);
            predicate(&ls).then_some(ls)
        });
        if let Some((i, ls)) = hit {
            return Some((batch[i], ls));
        }
    }
}

/// Convenience: counts how many of the given salts satisfy the predicate —
/// a rough measure of how order-dependent an outcome is.
///
/// Serial wrapper over [`ordering_sensitivity_farm`] at
/// [`FarmConfig::serial`].
pub fn ordering_sensitivity<P, F, S>(
    graph: &Graph,
    base_cfg: &DefinedConfig,
    recording: &Recording<P::Ext>,
    spawn: S,
    salts: impl IntoIterator<Item = u64>,
    predicate: F,
) -> (usize, usize)
where
    P: ControlPlane,
    P::Ext: Sync,
    S: Fn(NodeId) -> P + Sync,
    F: Fn(&LockstepNet<P>) -> bool + Sync,
{
    ordering_sensitivity_farm(graph, base_cfg, recording, spawn, salts, predicate, &FarmConfig::serial())
}

/// [`ordering_sensitivity`] on the replay farm. Every salt is evaluated
/// (no early exit — the count needs them all, so pass a *finite*
/// sequence); the tally is a pure function of the salt sequence,
/// independent of `farm.jobs`.
pub fn ordering_sensitivity_farm<P, F, S>(
    graph: &Graph,
    base_cfg: &DefinedConfig,
    recording: &Recording<P::Ext>,
    spawn: S,
    salts: impl IntoIterator<Item = u64>,
    predicate: F,
    farm: &FarmConfig,
) -> (usize, usize)
where
    P: ControlPlane,
    P::Ext: Sync,
    S: Fn(NodeId) -> P + Sync,
    F: Fn(&LockstepNet<P>) -> bool + Sync,
{
    let salts: Vec<u64> = salts.into_iter().collect();
    let eval = |i: usize| {
        let ls = salted_replay(graph, base_cfg, recording, &spawn, salts[i], farm.shards);
        predicate(&ls)
    };
    let hits = farm::settle(farm::map_indexed(farm.jobs, salts.len(), eval), eval);
    (hits.iter().filter(|&&h| h).count(), salts.len())
}

/// Maps *every* salt of a finite sequence to `project(replay)` on the
/// replay farm, in salt order — one full sweep that yields whatever
/// per-ordering observation the caller wants (an outcome string, a digest,
/// a metric). Strictly one replay per salt, so a caller needing both
/// "first match" and "how many match" pays a single sweep instead of two.
/// The result vector is a pure function of the salt sequence, independent
/// of `farm.jobs`.
///
/// Each probe is supervised: a replay that panics (twice) under some salt
/// comes back as `Err(JobPanic)` in its slot instead of taking down the
/// sweep, so one poisoned ordering cannot mask the rest of the survey.
pub fn ordering_survey_farm<P, T, F, S>(
    graph: &Graph,
    base_cfg: &DefinedConfig,
    recording: &Recording<P::Ext>,
    spawn: S,
    salts: impl IntoIterator<Item = u64>,
    project: F,
    farm: &FarmConfig,
) -> Vec<Result<T, JobPanic>>
where
    P: ControlPlane,
    P::Ext: Sync,
    T: Send,
    S: Fn(NodeId) -> P + Sync,
    F: Fn(&LockstepNet<P>) -> T + Sync,
{
    let salts: Vec<u64> = salts.into_iter().collect();
    farm::map_indexed(farm.jobs, salts.len(), |i| {
        let ls = salted_replay(graph, base_cfg, recording, &spawn, salts[i], farm.shards);
        project(&ls)
    })
}

/// One complete replay under the salted permuted ordering, executed across
/// `shards` worker shards (shard-count invariant by the [`WaveEngine`]
/// contract, so a sharded sweep answers exactly as a serial one).
///
/// [`WaveEngine`]: crate::shard::WaveEngine
fn salted_replay<P, S>(
    graph: &Graph,
    base_cfg: &DefinedConfig,
    recording: &Recording<P::Ext>,
    spawn: &S,
    salt: u64,
    shards: usize,
) -> LockstepNet<P>
where
    P: ControlPlane,
    S: Fn(NodeId) -> P,
{
    let cfg = DefinedConfig { ordering: OrderingMode::Permuted(salt), ..base_cfg.clone() };
    let mut ls = LockstepNet::new(graph, cfg, recording.clone(), spawn).with_shards(shards);
    ls.run_to_end();
    ls
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::RbNetwork;
    use netsim::{SimDuration, SimTime};
    use routing::bgp::{fig4_paths, BgpExt, BgpProcess, DecisionMode, Role};
    use topology::canonical;

    const PREFIX: u32 = 9;

    fn processes(roles: &canonical::Fig4Roles) -> Vec<BgpProcess> {
        let internal = [roles.r1, roles.r2, roles.r3];
        (0..6u32)
            .map(|i| {
                let id = NodeId(i);
                if id == roles.er1 || id == roles.er2 {
                    BgpProcess::new(id, Role::External { border: roles.r1 }, DecisionMode::BuggyIncremental)
                } else if id == roles.er3 {
                    BgpProcess::new(id, Role::External { border: roles.r2 }, DecisionMode::BuggyIncremental)
                } else {
                    let peers = internal.iter().copied().filter(|&p| p != id).collect();
                    BgpProcess::new(id, Role::Internal { ibgp_peers: peers }, DecisionMode::BuggyIncremental)
                }
            })
            .collect()
    }

    fn fig4_recording() -> (Graph, canonical::Fig4Roles, Recording<BgpExt>) {
        let (graph, roles) =
            canonical::fig4_bgp(SimDuration::from_millis(8), SimDuration::from_millis(12));
        let cfg = DefinedConfig::default();
        let procs = processes(&roles);
        let mut net = RbNetwork::new(&graph, cfg, 1, 0.5, move |id| procs[id.index()].clone());
        let [p1, p2, p3] = fig4_paths();
        for (er, p) in [(roles.er1, p1), (roles.er2, p2), (roles.er3, p3)] {
            net.inject_external(
                SimTime::from_millis(700),
                er,
                BgpExt::Announce { prefix: PREFIX, attrs: p },
            );
        }
        net.run_until(SimTime::from_secs(4));
        let (rec, _) = net.into_recording();
        (graph, roles, rec)
    }

    /// §4's discussion, end to end: even if the production ordering masks
    /// the MED bug, sweeping ordering functions in the debugging network
    /// finds an execution path where it manifests.
    #[test]
    fn exploration_finds_the_masked_bgp_bug() {
        let (graph, roles, rec) = fig4_recording();
        let cfg = DefinedConfig::default();
        let roles2 = roles;
        let found = explore_orderings(
            &graph,
            &cfg,
            &rec,
            |id| processes(&roles2)[id.index()].clone(),
            0..32u64,
            |ls| {
                ls.control_plane(roles2.r3).best_path(PREFIX).map(|p| p.route_id) == Some(2)
            },
        );
        let (salt, ls) = found.expect("some ordering must trigger the bug");
        assert_eq!(ls.control_plane(roles.r3).best_path(PREFIX).unwrap().route_id, 2);
        // And sensitivity should show the bug is genuinely order-dependent:
        // some orderings select the correct p3.
        let (correct_hits, total) = ordering_sensitivity(
            &graph,
            &cfg,
            &rec,
            |id| processes(&roles2)[id.index()].clone(),
            0..32u64,
            |ls| {
                ls.control_plane(roles2.r3).best_path(PREFIX).map(|p| p.route_id) == Some(3)
            },
        );
        assert!(correct_hits > 0 && correct_hits < total, "mixed outcomes across orderings");
        let _ = salt;
    }

    /// The farm returns the identical earliest salt and final state for
    /// every worker count, and the identical sensitivity tally.
    #[test]
    fn farm_sweeps_are_job_count_invariant() {
        let (graph, roles, rec) = fig4_recording();
        let cfg = DefinedConfig::default();
        let roles2 = roles;
        let spawn = |id: NodeId| processes(&roles2)[id.index()].clone();
        let bug = |ls: &LockstepNet<BgpProcess>| {
            ls.control_plane(roles2.r3).best_path(PREFIX).map(|p| p.route_id) == Some(2)
        };
        let serial = explore_orderings(&graph, &cfg, &rec, spawn, 0..32u64, bug)
            .expect("bug reachable");
        let serial_digest = crate::order::debug_digest(&serial.1.logs());
        let serial_sense = ordering_sensitivity(&graph, &cfg, &rec, spawn, 0..32u64, bug);
        for jobs in [2usize, 8] {
            let farm = FarmConfig::with_jobs(jobs);
            let (salt, ls) =
                explore_orderings_farm(&graph, &cfg, &rec, spawn, 0..32u64, bug, &farm)
                    .expect("bug reachable");
            assert_eq!(salt, serial.0, "jobs={jobs}: earliest salt changed");
            assert_eq!(
                crate::order::debug_digest(&ls.logs()),
                serial_digest,
                "jobs={jobs}: final execution changed"
            );
            assert_eq!(
                ordering_sensitivity_farm(&graph, &cfg, &rec, spawn, 0..32u64, bug, &farm),
                serial_sense,
                "jobs={jobs}: sensitivity tally changed"
            );
        }
    }
}
