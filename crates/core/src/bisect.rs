//! Automated fault localisation over a recording.
//!
//! The case studies (§4) end with the troubleshooter using DEFINED-LS's
//! stepping "to find the exact point at which XORP begins behaving
//! incorrectly". Because replays are deterministic, that search can be
//! mechanised: [`first_bad_group`] binary-searches the earliest group whose
//! replay prefix already exhibits the bug, and [`first_bad_event`] then
//! steps through that group event by event to name the exact delivery.
//!
//! A probe of "groups `1..=g`" is a replay positioned at the *exact* start
//! of group `g + 1` ([`LockstepNet::run_to_group_start`]). Determinism
//! (Theorem 1) is what makes the probes comparable at all — and it is also
//! what lets the probes run on the replay farm ([`crate::farm`]):
//! [`first_bad_group_farm`] probes `k` midpoints per round across a worker
//! pool, each probe seeded from the nearest retained checkpoint instead of
//! event zero, and still converges to the same group as the serial binary
//! search (the probe schedule is fixed by the speculation width, so the
//! report does not depend on the worker count). The serial entry points are
//! the farm at [`FarmConfig::serial`].

use crate::config::DefinedConfig;
use crate::farm::{self, FarmConfig, ProbeSession, SessionPool};
use crate::ls::{LockstepNet, LsEvent};
use crate::recorder::Recording;
use crate::wire::Wire;
use netsim::NodeId;
use routing::ControlPlane;
use topology::Graph;

/// Result of a group-level bisection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BisectReport {
    /// The earliest group whose replay prefix satisfies the bug predicate.
    pub first_bad_group: u64,
    /// Prefix probes performed. `≈ log2(groups)` for the serial search;
    /// k-way speculation trades more probes for fewer (parallel) rounds.
    /// A pure function of the recording and the speculation width — never
    /// of the worker count.
    pub replays: usize,
    /// Evidence that the predicate is *not* monotone over prefixes, when
    /// the probes happened to expose it: a group whose prefix was observed
    /// bad (`.0`) together with a *later* group whose prefix was observed
    /// healthy (`.1`). Bisection assumes monotonicity; when this is
    /// `Some`, `first_bad_group` narrows one bad region but is not a
    /// trustworthy "first" — treat it as a warning. Detection is
    /// best-effort over the probes the search actually ran (a pure
    /// function of the recording and the speculation width, so reports
    /// stay job-count invariant).
    pub oscillation: Option<(u64, u64)>,
}

/// Binary-searches the earliest group `g` such that replaying groups
/// `1..=g` makes `bad` true.
///
/// Assumes the predicate is *monotone* over prefixes (once the bug has
/// manifested it stays manifested), which holds for state corruption like a
/// wrong best path or a stuck stale route. Returns `None` when even the
/// full replay is healthy, and on degenerate recordings with no groups
/// (`last_group == 0`) — there is no prefix to blame.
///
/// Serial wrapper over [`first_bad_group_farm`] at [`FarmConfig::serial`]:
/// one worker, classic binary search, checkpoint-seeded probes.
pub fn first_bad_group<P, S, F>(
    graph: &Graph,
    cfg: &DefinedConfig,
    recording: &Recording<P::Ext>,
    spawn: S,
    bad: F,
) -> Option<BisectReport>
where
    P: ControlPlane,
    P::Msg: Wire,
    P::Ext: Wire + Sync,
    S: Fn(NodeId) -> P + Sync,
    F: Fn(&LockstepNet<P>) -> bool + Sync,
{
    first_bad_group_farm(graph, cfg, recording, spawn, bad, &FarmConfig::serial())
}

/// [`first_bad_group`] on the replay farm: speculative k-way bisection.
///
/// Each round probes `farm.speculation` midpoints that split the open
/// interval into equal parts; the round's outcomes narrow the interval to
/// the segment between the last healthy and the first bad midpoint. With
/// `speculation = 1` this *is* the serial binary search, probe for probe.
/// Probes are distributed over `farm.jobs` workers and each worker seeds
/// its replay from the nearest checkpoint its session retains
/// ([`ProbeSession`]), so a probe costs one checkpoint interval of
/// re-execution rather than a from-zero replay.
///
/// The returned [`BisectReport`] is identical for every `farm.jobs` value,
/// and identical to the serial search whenever `speculation == 1`
/// (`first_bad_group` is always the same; `replays` additionally depends
/// on the speculation width).
pub fn first_bad_group_farm<P, S, F>(
    graph: &Graph,
    cfg: &DefinedConfig,
    recording: &Recording<P::Ext>,
    spawn: S,
    bad: F,
    farm: &FarmConfig,
) -> Option<BisectReport>
where
    P: ControlPlane,
    P::Msg: Wire,
    P::Ext: Wire + Sync,
    S: Fn(NodeId) -> P + Sync,
    F: Fn(&LockstepNet<P>) -> bool + Sync,
{
    let pool: SessionPool<P> = SessionPool::new();
    bisect_with_pool(&pool, graph, cfg, recording, &spawn, &bad, farm)
}

/// Group bisection plus event localisation in one call, sharing the probe
/// sessions between the two phases: the event-level scan reuses a session
/// whose timeline already holds checkpoints near the located group from
/// the bisection probes, so reaching the group boundary costs one
/// checkpoint interval of re-execution instead of a from-zero replay —
/// this is where the farm's seeding pays off for the event search.
///
/// Returns the report and, when a single delivery inside the located
/// group establishes the predicate, that event with the network frozen at
/// it.
#[allow(clippy::type_complexity)]
pub fn localise_fault_farm<P, S, F>(
    graph: &Graph,
    cfg: &DefinedConfig,
    recording: &Recording<P::Ext>,
    spawn: S,
    bad: F,
    farm: &FarmConfig,
) -> Option<(BisectReport, Option<(LsEvent, LockstepNet<P>)>)>
where
    P: ControlPlane,
    P::Msg: Wire,
    P::Ext: Wire + Sync,
    S: Fn(NodeId) -> P + Sync,
    F: Fn(&LockstepNet<P>) -> bool + Sync,
{
    let pool: SessionPool<P> = SessionPool::new();
    let report = bisect_with_pool(&pool, graph, cfg, recording, &spawn, &bad, farm)?;
    let session = pool.take().unwrap_or_else(|| {
        ProbeSession::new(graph, cfg.clone(), recording.clone(), &spawn, farm)
    });
    let event = scan_group_for_event(session, report.first_bad_group, &bad);
    Some((report, event))
}

fn bisect_with_pool<P, S, F>(
    pool: &SessionPool<P>,
    graph: &Graph,
    cfg: &DefinedConfig,
    recording: &Recording<P::Ext>,
    spawn: &S,
    bad: &F,
    farm: &FarmConfig,
) -> Option<BisectReport>
where
    P: ControlPlane,
    P::Msg: Wire,
    P::Ext: Wire + Sync,
    S: Fn(NodeId) -> P + Sync,
    F: Fn(&LockstepNet<P>) -> bool + Sync,
{
    // A probe-only / empty recording has no group to blame.
    if recording.last_group == 0 {
        return None;
    }
    let probe = |g: u64| -> bool {
        let mut session = pool.take().unwrap_or_else(|| {
            ProbeSession::new(graph, cfg.clone(), recording.clone(), &spawn, farm)
        });
        let hit = session.probe_prefix(g, bad);
        pool.put(session);
        hit
    };
    let mut replays = 1usize;
    if !farm::supervised(|| probe(recording.last_group)) {
        return None;
    }
    // Every probe outcome the search observes, for the oscillation check
    // below. A round always evaluates *all* its points (no early exit), so
    // healthy points above the narrowed interval are observed too.
    let mut observed: Vec<(u64, bool)> = vec![(recording.last_group, true)];
    // Invariant: bad(hi) is known true; the answer lies in [lo, hi].
    let (mut lo, mut hi) = (1u64, recording.last_group);
    while lo < hi {
        let span = hi - lo;
        let k = (farm.speculation.max(1) as u64).min(span);
        // k distinct probe points inside [lo, hi - 1], splitting the open
        // interval into k + 1 near-equal segments. k = 1 gives the serial
        // midpoint lo + span / 2.
        let points: Vec<u64> = (1..=k).map(|i| lo + span * i / (k + 1)).collect();
        let eval = |i: usize| probe(points[i]);
        let outcomes = farm::settle(farm::map_indexed(farm.jobs, points.len(), eval), eval);
        replays += points.len();
        observed.extend(points.iter().copied().zip(outcomes.iter().copied()));
        match outcomes.iter().position(|&b| b) {
            Some(0) => hi = points[0],
            Some(i) => {
                lo = points[i - 1] + 1;
                hi = points[i];
            }
            None => lo = *points.last().expect("k >= 1") + 1,
        }
    }
    // Monotonicity spot check over everything the search saw: a healthy
    // prefix *above* some bad prefix means the predicate oscillates and
    // `lo` is merely *a* bad onset, not necessarily the first.
    let min_bad = observed.iter().filter(|&&(_, b)| b).map(|&(g, _)| g).min();
    let oscillation = min_bad.and_then(|mb| {
        observed
            .iter()
            .filter(|&&(g, b)| !b && g > mb)
            .map(|&(g, _)| g)
            .max()
            .map(|healthy| (mb, healthy))
    });
    Some(BisectReport { first_bad_group: lo, replays, oscillation })
}

/// Steps through the first bad group one event at a time and returns the
/// exact delivery after which `bad` first holds, together with the network
/// frozen at that point for inspection.
///
/// `first_bad_group` must come from [`first_bad_group`] (or be otherwise
/// known); the replay runs healthy to the exact group boundary, then probes
/// after every single event of the group — including its first. Returns
/// `None` if the predicate never fires strictly inside the group (the
/// check precedes the probe, so an event of group `g + 1` can never be
/// credited to group `g`).
pub fn first_bad_event<P, S, F>(
    graph: &Graph,
    cfg: &DefinedConfig,
    recording: &Recording<P::Ext>,
    spawn: S,
    first_bad_group: u64,
    bad: F,
) -> Option<(LsEvent, LockstepNet<P>)>
where
    P: ControlPlane,
    P::Msg: Wire,
    P::Ext: Wire + Sync,
    S: Fn(NodeId) -> P + Sync,
    F: Fn(&LockstepNet<P>) -> bool + Sync,
{
    first_bad_event_farm(graph, cfg, recording, spawn, first_bad_group, bad, &FarmConfig::serial())
}

/// [`first_bad_event`] with an explicit farm configuration. Stepping
/// inside the group is inherently sequential, so `farm.jobs` does not
/// apply; a *standalone* call replays the healthy prefix once from event
/// zero (a fresh session has only its position-0 anchor to seed from).
/// When the group came out of [`first_bad_group_farm`], prefer
/// [`localise_fault_farm`], which reuses the bisection's probe sessions —
/// their retained checkpoints make reaching the boundary cost one
/// checkpoint interval instead of the whole prefix.
pub fn first_bad_event_farm<P, S, F>(
    graph: &Graph,
    cfg: &DefinedConfig,
    recording: &Recording<P::Ext>,
    spawn: S,
    first_bad_group: u64,
    bad: F,
    farm: &FarmConfig,
) -> Option<(LsEvent, LockstepNet<P>)>
where
    P: ControlPlane,
    P::Msg: Wire,
    P::Ext: Wire + Sync,
    S: Fn(NodeId) -> P + Sync,
    F: Fn(&LockstepNet<P>) -> bool + Sync,
{
    let session =
        ProbeSession::new(graph, cfg.clone(), recording.clone(), &spawn, farm);
    scan_group_for_event(session, first_bad_group, bad)
}

/// Positions `session` at the exact start of `group` (seeded from
/// whatever checkpoints it retains) and steps the group's events one by
/// one, returning the first after which `bad` holds. The boundary check
/// precedes the probe, so an event of a later group is never credited to
/// `group`.
fn scan_group_for_event<P, F>(
    mut session: ProbeSession<P>,
    group: u64,
    bad: F,
) -> Option<(LsEvent, LockstepNet<P>)>
where
    P: ControlPlane,
    P::Msg: Wire,
    P::Ext: Wire,
    F: Fn(&LockstepNet<P>) -> bool,
{
    session.goto_group_start(group);
    let mut ls = session.into_net();
    loop {
        let ev = ls.step_event()?;
        if ev.group > group {
            return None; // The predicate never fired inside the group.
        }
        if bad(&ls) {
            return Some((ev, ls));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::RbNetwork;
    use netsim::{SimDuration, SimTime};
    use routing::ospf::{OspfConfig, OspfProcess};
    use routing::rip::{RefreshMode, RipConfig, RipExt, RipProcess};
    use topology::canonical;

    const DEST: u32 = 7;

    fn spawner(
        g: &topology::Graph,
        mode: RefreshMode,
    ) -> impl Fn(NodeId) -> RipProcess + 'static {
        let g = g.clone();
        move |id: NodeId| {
            RipProcess::new(id, g.neighbors(id), RipConfig::emulation(mode))
        }
    }

    /// Records the Fig. 5 black-hole production run: the destination prefix
    /// is attached behind R2 (main) and R3 (backup); R2 dies mid-run.
    fn record_run(
        mode: RefreshMode,
    ) -> (topology::Graph, canonical::Fig5Roles, crate::recorder::Recording<RipExt>) {
        let (g, roles) = canonical::fig5_rip(SimDuration::from_millis(10));
        let cfg = DefinedConfig::default();
        let mut net = RbNetwork::new(&g, cfg, 2, 0.6, spawner(&g, mode));
        net.inject_external(SimTime::from_millis(100), roles.dest, RipExt::Connect { prefix: DEST });
        net.schedule_node(SimTime::from_secs(8), roles.r2, false);
        net.run_until(SimTime::from_secs(26));
        let (rec, _) = net.into_recording();
        (g, roles, rec)
    }

    /// The group in which R2 fell silent, read off its death cut.
    fn death_group(rec: &crate::recorder::Recording<RipExt>, r2: NodeId) -> u64 {
        rec.mutes
            .iter()
            .find(|m| m.node == r2)
            .expect("R2 died, so it has a death cut")
            .allowed
            .iter()
            .map(|k| k.group())
            .max()
            .unwrap_or(0)
    }

    /// Group-level bisection localises the Quagga black hole (Fig. 5) to
    /// the first group where the stale route has outlived its timeout, in a
    /// logarithmic number of replays.
    #[test]
    fn bisects_the_rip_black_hole() {
        let (g, roles, rec) = record_run(RefreshMode::DestinationOnly);
        let cfg = DefinedConfig::default();
        let (r1, r2) = (roles.r1, roles.r2);
        let dead_at = death_group(&rec, r2);
        assert!(dead_at > 20, "death cut sanity: {dead_at}");
        // Black hole: well past R2's death plus the route timeout, R1 still
        // forwards through the corpse.
        let horizon = dead_at + 20;
        let bad = move |ls: &LockstepNet<RipProcess>| {
            ls.current_group() > horizon
                && ls.control_plane(r1).route(DEST).and_then(|r| r.next_hop) == Some(r2)
        };
        let report = first_bad_group(&g, &cfg, &rec, spawner(&g, RefreshMode::DestinationOnly), bad)
            .expect("the black hole must manifest in the replay");
        assert!(
            report.first_bad_group >= horizon,
            "bad group {} must lie at or past the horizon {horizon}",
            report.first_bad_group,
        );
        let log2 = 64 - rec.last_group.leading_zeros() as usize;
        assert!(
            report.replays <= log2 + 2,
            "bisection must stay logarithmic: {} replays for {} groups",
            report.replays,
            rec.last_group,
        );
    }

    /// Speculative parallel bisection agrees with the serial search on the
    /// located group, for every job count and speculation width, and its
    /// report is invariant in the job count.
    #[test]
    fn farm_bisection_matches_serial() {
        let (g, roles, rec) = record_run(RefreshMode::DestinationOnly);
        let cfg = DefinedConfig::default();
        let r1 = roles.r1;
        let has_route = move |ls: &LockstepNet<RipProcess>| {
            ls.control_plane(r1).route(DEST).is_some()
        };
        let spawn = spawner(&g, RefreshMode::DestinationOnly);
        let serial = first_bad_group(&g, &cfg, &rec, &spawn, has_route)
            .expect("the route is eventually installed");
        for (jobs, speculation) in [(1, 3), (2, 2), (2, 3), (8, 8)] {
            let farm = FarmConfig { jobs, speculation, ..FarmConfig::serial() };
            let report = first_bad_group_farm(&g, &cfg, &rec, &spawn, has_route, &farm)
                .expect("same predicate, same recording");
            assert_eq!(
                report.first_bad_group, serial.first_bad_group,
                "jobs={jobs} speculation={speculation}"
            );
            // Same schedule at a different job count → identical report.
            let farm1 = FarmConfig { jobs: 1, speculation, ..FarmConfig::serial() };
            assert_eq!(
                first_bad_group_farm(&g, &cfg, &rec, &spawn, has_route, &farm1),
                Some(report),
                "speculation={speculation}: report depends on job count"
            );
        }
        // speculation = 1 reproduces the serial report exactly.
        let farm = FarmConfig { jobs: 4, speculation: 1, ..FarmConfig::serial() };
        assert_eq!(
            first_bad_group_farm(&g, &cfg, &rec, &spawn, has_route, &farm),
            Some(serial),
        );
    }

    /// Regression: death cuts are event *identities*, not
    /// ordering-dependent keys — a crashed node still boots and delivers
    /// its recorded pre-crash events when the recording is replayed under
    /// a different (salted) ordering, as exploration sweeps do. Before the
    /// fix, no `OrderKey` matched under `Permuted` (the `rank` component
    /// differs), so the node absorbed everything including its `Start`.
    #[test]
    fn death_cuts_survive_ordering_sweeps() {
        use crate::config::OrderingMode;
        let (g, roles, rec) = record_run(RefreshMode::DestinationOnly);
        let spawn = spawner(&g, RefreshMode::DestinationOnly);
        let delivered_at_r2 = |ordering: OrderingMode| {
            let cfg = DefinedConfig { ordering, ..DefinedConfig::default() };
            let mut ls: LockstepNet<RipProcess> =
                LockstepNet::new(&g, cfg, rec.clone(), &spawn);
            ls.run_to_end();
            ls.logs()[roles.r2.index()].len()
        };
        let production = delivered_at_r2(OrderingMode::Optimized);
        assert!(production > 0, "R2 committed events before dying");
        for salt in [0, 1, 7] {
            let swept = delivered_at_r2(OrderingMode::Permuted(salt));
            assert!(
                swept > 0,
                "salt {salt}: the crashed node was erased from the salted replay"
            );
        }
    }

    /// Event-level localisation pins the exact delivery that installs R1's
    /// route — a message handled at R1.
    #[test]
    fn localises_the_install_event() {
        let (g, roles, rec) = record_run(RefreshMode::DestinationOnly);
        let cfg = DefinedConfig::default();
        let r1 = roles.r1;
        let has_route = move |ls: &LockstepNet<RipProcess>| {
            ls.control_plane(r1).route(DEST).is_some()
        };
        let report =
            first_bad_group(&g, &cfg, &rec, spawner(&g, RefreshMode::DestinationOnly), has_route)
                .expect("the route is eventually installed");
        let (ev, ls) = first_bad_event(
            &g,
            &cfg,
            &rec,
            spawner(&g, RefreshMode::DestinationOnly),
            report.first_bad_group,
            has_route,
        )
        .expect("the installing event exists inside the group");
        assert_eq!(ev.node, r1, "the install happens at R1: {ev:?}");
        assert_eq!(ev.group, report.first_bad_group, "the event lies inside the bad group");
        assert_eq!(ev.record.ann.class, crate::order::EventClass::Message);
        assert!(ls.control_plane(r1).route(DEST).is_some());
    }

    /// A healthy replay (fixed comparison mode) yields no bad group.
    #[test]
    fn healthy_replay_bisects_to_none() {
        let (g, roles, rec) = record_run(RefreshMode::DestinationAndNextHop);
        let cfg = DefinedConfig::default();
        let (r1, r2) = (roles.r1, roles.r2);
        let dead_at = death_group(&rec, r2);
        let horizon = dead_at + 20;
        let report = first_bad_group(
            &g,
            &cfg,
            &rec,
            spawner(&g, RefreshMode::DestinationAndNextHop),
            move |ls| {
                ls.current_group() > horizon
                    && ls.control_plane(r1).route(DEST).and_then(|r| r.next_hop) == Some(r2)
            },
        );
        assert_eq!(report, None, "the patched protocol has no bad group");
    }

    fn ospf_recording() -> (topology::Graph, crate::recorder::Recording<()>, Vec<OspfProcess>) {
        let g = canonical::ring(4, SimDuration::from_millis(4));
        let procs: Vec<OspfProcess> = {
            let f = OspfProcess::for_graph(&g, OspfConfig::stress(4));
            (0..4).map(|i| f(NodeId(i))).collect()
        };
        let spawn = procs.clone();
        let mut net = RbNetwork::new(&g, DefinedConfig::default(), 7, 0.4, move |id| {
            spawn[id.index()].clone()
        });
        net.run_until(SimTime::from_secs(4));
        let (rec, _) = net.into_recording();
        (g, rec, procs)
    }

    /// Regression for the boundary off-by-one: a predicate that first fires
    /// exactly at a group boundary (it observes the group counter, not any
    /// event inside the group) bisects to the boundary group, and the
    /// event-level search correctly reports that *no event inside that
    /// group* triggered it — instead of crediting the first event of the
    /// next group.
    #[test]
    fn boundary_predicate_is_not_credited_to_the_previous_group() {
        let (g, rec, procs) = ospf_recording();
        let cfg = DefinedConfig::default();
        let spawn = |id: NodeId| procs[id.index()].clone();
        let boundary = rec.last_group / 2;
        assert!(boundary >= 2);
        // True exactly when the replay has reached group `boundary`:
        // probe(g) evaluates at the start of group g + 1, so the earliest
        // bad prefix is g = boundary - 1.
        let pred = move |ls: &LockstepNet<OspfProcess>| ls.current_group() >= boundary;
        let report = first_bad_group(&g, &cfg, &rec, spawn, pred).expect("fires by the end");
        assert_eq!(report.first_bad_group, boundary - 1);
        // No event of group boundary - 1 made it true — the group counter
        // ticked over *after* the group's last event. Before the fix the
        // probe ran ahead of the boundary check and blamed the first event
        // of group `boundary`.
        assert!(
            first_bad_event(&g, &cfg, &rec, spawn, report.first_bad_group, pred).is_none()
        );
    }

    /// Regression for the unprobed first event: when the culprit is the
    /// very first delivery of the bad group, the event-level search names
    /// it — not the delivery after it.
    #[test]
    fn first_event_of_the_bad_group_is_probed() {
        let (g, rec, procs) = ospf_recording();
        let cfg = DefinedConfig::default();
        let spawn = |id: NodeId| procs[id.index()].clone();
        // Reference replay: find the first delivered event of some interior
        // group and the per-node log length it produces.
        let mut reference = LockstepNet::new(&g, cfg.clone(), rec.clone(), spawn);
        let target_group = rec.last_group / 2;
        reference.run_to_group_start(target_group);
        let first_ev = reference.step_event().expect("group has events");
        assert_eq!(first_ev.group, target_group);
        let node = first_ev.node;
        let len = reference.logs()[node.index()].len();
        // Predicate: that node's committed log has reached the length the
        // first event of `target_group` produces. Monotone by construction.
        let pred = move |ls: &LockstepNet<OspfProcess>| ls.logs()[node.index()].len() >= len;
        let report = first_bad_group(&g, &cfg, &rec, spawn, pred).expect("fires");
        assert_eq!(report.first_bad_group, target_group);
        let (ev, _) = first_bad_event(&g, &cfg, &rec, spawn, target_group, pred)
            .expect("the culprit is inside the group");
        assert_eq!(ev, first_ev, "the *first* event of the group is the culprit");
    }

    /// Degenerate recordings: no groups at all → `None` (group 1 does not
    /// exist); a single-group recording bisects within group 1.
    #[test]
    fn degenerate_recordings_bisect_cleanly() {
        let n_nodes = 3;
        let g = canonical::line(n_nodes, SimDuration::from_millis(2));
        let cfg = DefinedConfig::default();
        let f = OspfProcess::for_graph(&g, OspfConfig::stress(n_nodes));
        let spawn = move |id: NodeId| f(id);
        let empty: Recording<()> = Recording {
            n_nodes,
            source: NodeId(0),
            externals: vec![],
            drops: vec![],
            mutes: vec![],
            ticks: vec![],
            last_group: 0,
        };
        assert_eq!(
            first_bad_group(&g, &cfg, &empty, &spawn, |_| true),
            None,
            "an empty recording has no group to blame"
        );
        let single = Recording { last_group: 1, ..empty };
        let report = first_bad_group(&g, &cfg, &single, &spawn, |_| true)
            .expect("a trivially-true predicate is bad from group 1");
        assert_eq!(report.first_bad_group, 1);
        assert_eq!(report.replays, 1, "probe(last) alone settles a one-group search");
        assert_eq!(first_bad_group(&g, &cfg, &single, &spawn, |_| false), None);
    }

    /// A predicate that oscillates (bad in an early window, healthy again,
    /// bad at the end) violates the documented monotonicity assumption —
    /// the report must carry the observed evidence instead of silently
    /// presenting `first_bad_group` as trustworthy, and it must do so
    /// identically under every job count.
    #[test]
    fn oscillating_predicates_are_flagged() {
        let (g, rec, procs) = ospf_recording();
        let cfg = DefinedConfig::default();
        let spawn = |id: NodeId| procs[id.index()].clone();
        let last = rec.last_group;
        assert!(last >= 12, "recording long enough: {last}");
        let (w_lo, w_hi) = (last / 6, last / 2);
        let pred = move |ls: &LockstepNet<OspfProcess>| {
            let cg = ls.current_group();
            (cg >= w_lo && cg < w_hi) || cg >= last
        };
        let farm = FarmConfig { speculation: 4, ..FarmConfig::serial() };
        let report = first_bad_group_farm(&g, &cfg, &rec, spawn, pred, &farm)
            .expect("the full prefix is bad");
        let (bad_g, healthy_g) =
            report.oscillation.expect("the speculative round saw the healthy gap");
        assert!(bad_g < healthy_g, "witness order: bad {bad_g} < healthy {healthy_g}");
        let farm2 = FarmConfig { jobs: 2, speculation: 4, ..FarmConfig::serial() };
        assert_eq!(
            first_bad_group_farm(&g, &cfg, &rec, spawn, pred, &farm2),
            Some(report),
            "oscillation evidence must be job-count invariant"
        );
        // A genuinely monotone predicate is never flagged.
        let mono = move |ls: &LockstepNet<OspfProcess>| ls.current_group() >= w_hi;
        let clean = first_bad_group(&g, &cfg, &rec, spawn, mono).expect("fires");
        assert_eq!(clean.oscillation, None);
    }

    /// A probe that panics transiently (here: on its very first call) is
    /// retried under supervision; the bisection completes without hanging
    /// and reaches the same answer as the clean run. The panicked probe's
    /// session is simply lost — the pool replenishes on demand.
    #[test]
    fn bisection_tolerates_transient_probe_panics() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let (g, rec, procs) = ospf_recording();
        let cfg = DefinedConfig::default();
        let spawn = |id: NodeId| procs[id.index()].clone();
        let boundary = rec.last_group / 2;
        let clean = move |ls: &LockstepNet<OspfProcess>| ls.current_group() >= boundary;
        let expected = first_bad_group(&g, &cfg, &rec, spawn, clean).expect("fires");
        let tripped = AtomicBool::new(false);
        let flaky = |ls: &LockstepNet<OspfProcess>| {
            if !tripped.swap(true, Ordering::SeqCst) {
                panic!("deliberately flaky probe");
            }
            clean(ls)
        };
        let farm = FarmConfig { jobs: 2, speculation: 2, ..FarmConfig::serial() };
        let report =
            first_bad_group_farm(&g, &cfg, &rec, spawn, flaky, &farm).expect("still fires");
        assert_eq!(report.first_bad_group, expected.first_bad_group);
    }
}
