//! Automated fault localisation over a recording.
//!
//! The case studies (§4) end with the troubleshooter using DEFINED-LS's
//! stepping "to find the exact point at which XORP begins behaving
//! incorrectly". Because replays are deterministic, that search can be
//! mechanised: [`first_bad_group`] binary-searches the earliest group whose
//! replay prefix already exhibits the bug, and [`first_bad_event`] then
//! steps through that group event by event to name the exact delivery.
//!
//! Each probe is a fresh complete replay of a prefix — exactly what a human
//! at the debugger would do, minus the tedium. Determinism (Theorem 1) is
//! what makes the probes comparable at all.

use crate::config::DefinedConfig;
use crate::ls::{LockstepNet, LsEvent};
use crate::recorder::Recording;
use netsim::NodeId;
use routing::ControlPlane;
use topology::Graph;

/// Result of a group-level bisection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BisectReport {
    /// The earliest group whose replay prefix satisfies the bug predicate.
    pub first_bad_group: u64,
    /// Complete prefix replays performed (≈ `log2(groups)`).
    pub replays: usize,
}

fn replay_prefix<P, S>(
    graph: &Graph,
    cfg: &DefinedConfig,
    recording: &Recording<P::Ext>,
    spawn: &S,
    upto_group: u64,
) -> LockstepNet<P>
where
    P: ControlPlane,
    P::Ext: Clone,
    S: Fn(NodeId) -> P,
{
    let mut ls = LockstepNet::new(graph, cfg.clone(), recording.clone(), spawn);
    ls.run_until_group(upto_group + 1);
    ls
}

/// Binary-searches the earliest group `g` such that replaying groups
/// `1..=g` makes `bad` true.
///
/// Assumes the predicate is *monotone* over prefixes (once the bug has
/// manifested it stays manifested), which holds for state corruption like a
/// wrong best path or a stuck stale route. Returns `None` when even the
/// full replay is healthy.
pub fn first_bad_group<P, S, F>(
    graph: &Graph,
    cfg: &DefinedConfig,
    recording: &Recording<P::Ext>,
    spawn: S,
    bad: F,
) -> Option<BisectReport>
where
    P: ControlPlane,
    P::Ext: Clone,
    S: Fn(NodeId) -> P,
    F: Fn(&LockstepNet<P>) -> bool,
{
    let mut replays = 0;
    let mut probe = |g: u64| -> bool {
        replays += 1;
        let ls = replay_prefix(graph, cfg, recording, &spawn, g);
        bad(&ls)
    };
    if !probe(recording.last_group) {
        return None;
    }
    // Invariant: bad(hi) is known true, bad(lo - 1)... lo is the lowest
    // still-possible answer.
    let (mut lo, mut hi) = (1u64, recording.last_group);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if probe(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(BisectReport { first_bad_group: lo, replays })
}

/// Steps through the first bad group one event at a time and returns the
/// exact delivery after which `bad` first holds, together with the network
/// frozen at that point for inspection.
///
/// `first_bad_group` must come from [`first_bad_group`] (or be otherwise
/// known); the replay runs healthy up to the group boundary, then probes
/// after every single event.
pub fn first_bad_event<P, S, F>(
    graph: &Graph,
    cfg: &DefinedConfig,
    recording: &Recording<P::Ext>,
    spawn: S,
    first_bad_group: u64,
    bad: F,
) -> Option<(LsEvent, LockstepNet<P>)>
where
    P: ControlPlane,
    P::Ext: Clone,
    S: Fn(NodeId) -> P,
    F: Fn(&LockstepNet<P>) -> bool,
{
    let mut ls = LockstepNet::new(graph, cfg.clone(), recording.clone(), &spawn);
    ls.run_until_group(first_bad_group);
    loop {
        let ev = ls.step_event()?;
        if bad(&ls) {
            return Some((ev, ls));
        }
        if ls.current_group() > first_bad_group {
            return None; // The predicate never fired inside the group.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::RbNetwork;
    use netsim::{SimDuration, SimTime};
    use routing::rip::{RefreshMode, RipConfig, RipExt, RipProcess};
    use topology::canonical;

    const DEST: u32 = 7;

    fn spawner(
        g: &topology::Graph,
        mode: RefreshMode,
    ) -> impl Fn(NodeId) -> RipProcess + 'static {
        let g = g.clone();
        move |id: NodeId| {
            RipProcess::new(id, g.neighbors(id), RipConfig::emulation(mode))
        }
    }

    /// Records the Fig. 5 black-hole production run: the destination prefix
    /// is attached behind R2 (main) and R3 (backup); R2 dies mid-run.
    fn record_run(
        mode: RefreshMode,
    ) -> (topology::Graph, canonical::Fig5Roles, crate::recorder::Recording<RipExt>) {
        let (g, roles) = canonical::fig5_rip(SimDuration::from_millis(10));
        let cfg = DefinedConfig::default();
        let mut net = RbNetwork::new(&g, cfg, 2, 0.6, spawner(&g, mode));
        net.inject_external(SimTime::from_millis(100), roles.dest, RipExt::Connect { prefix: DEST });
        net.schedule_node(SimTime::from_secs(8), roles.r2, false);
        net.run_until(SimTime::from_secs(26));
        let (rec, _) = net.into_recording();
        (g, roles, rec)
    }

    /// The group in which R2 fell silent, read off its death cut.
    fn death_group(rec: &crate::recorder::Recording<RipExt>, r2: NodeId) -> u64 {
        rec.mutes
            .iter()
            .find(|m| m.node == r2)
            .expect("R2 died, so it has a death cut")
            .allowed
            .iter()
            .map(|k| k.group())
            .max()
            .unwrap_or(0)
    }

    /// Group-level bisection localises the Quagga black hole (Fig. 5) to
    /// the first group where the stale route has outlived its timeout, in a
    /// logarithmic number of replays.
    #[test]
    fn bisects_the_rip_black_hole() {
        let (g, roles, rec) = record_run(RefreshMode::DestinationOnly);
        let cfg = DefinedConfig::default();
        let (r1, r2) = (roles.r1, roles.r2);
        let dead_at = death_group(&rec, r2);
        assert!(dead_at > 20, "death cut sanity: {dead_at}");
        // Black hole: well past R2's death plus the route timeout, R1 still
        // forwards through the corpse.
        let horizon = dead_at + 20;
        let bad = move |ls: &LockstepNet<RipProcess>| {
            ls.current_group() > horizon
                && ls.control_plane(r1).route(DEST).and_then(|r| r.next_hop) == Some(r2)
        };
        let report = first_bad_group(&g, &cfg, &rec, spawner(&g, RefreshMode::DestinationOnly), bad)
            .expect("the black hole must manifest in the replay");
        assert!(
            report.first_bad_group >= horizon,
            "bad group {} must lie at or past the horizon {horizon}",
            report.first_bad_group,
        );
        let log2 = 64 - rec.last_group.leading_zeros() as usize;
        assert!(
            report.replays <= log2 + 2,
            "bisection must stay logarithmic: {} replays for {} groups",
            report.replays,
            rec.last_group,
        );
    }

    /// Event-level localisation pins the exact delivery that installs R1's
    /// route — a message handled at R1.
    #[test]
    fn localises_the_install_event() {
        let (g, roles, rec) = record_run(RefreshMode::DestinationOnly);
        let cfg = DefinedConfig::default();
        let r1 = roles.r1;
        let has_route = move |ls: &LockstepNet<RipProcess>| {
            ls.control_plane(r1).route(DEST).is_some()
        };
        let report =
            first_bad_group(&g, &cfg, &rec, spawner(&g, RefreshMode::DestinationOnly), has_route)
                .expect("the route is eventually installed");
        let (ev, ls) = first_bad_event(
            &g,
            &cfg,
            &rec,
            spawner(&g, RefreshMode::DestinationOnly),
            report.first_bad_group,
            has_route,
        )
        .expect("the installing event exists inside the group");
        assert_eq!(ev.node, r1, "the install happens at R1: {ev:?}");
        assert_eq!(ev.record.ann.class, crate::order::EventClass::Message);
        assert!(ls.control_plane(r1).route(DEST).is_some());
    }

    /// A healthy replay (fixed comparison mode) yields no bad group.
    #[test]
    fn healthy_replay_bisects_to_none() {
        let (g, roles, rec) = record_run(RefreshMode::DestinationAndNextHop);
        let cfg = DefinedConfig::default();
        let (r1, r2) = (roles.r1, roles.r2);
        let dead_at = death_group(&rec, r2);
        let horizon = dead_at + 20;
        let report = first_bad_group(
            &g,
            &cfg,
            &rec,
            spawner(&g, RefreshMode::DestinationAndNextHop),
            move |ls| {
                ls.current_group() > horizon
                    && ls.control_plane(r1).route(DEST).and_then(|r| r.next_hop) == Some(r2)
            },
        );
        assert_eq!(report, None, "the patched protocol has no bad group");
    }
}
