//! DEFINED-LS: the lockstep debugging network (paper §2.3).
//!
//! [`LockstepNet`] replays a partial [`Recording`] group by group. Within a
//! group, execution proceeds in sub-cycles that alternate the paper's
//! *transmission* and *processing* phases: every message materialised in
//! sub-cycle `c` has causal chain depth `c+1` and is delivered — sorted by
//! the same ordering function the production network used — in sub-cycle
//! `c+1`. Because the production order key leads with `(group, chain)`, the
//! lockstep delivery order *is* the production committed order, which is how
//! Theorem 1 (reproducibility) holds by construction here.
//!
//! Recorded message losses are replayed by committed send index
//! (footnote 4), and recorded external events are injected at the start of
//! the group they were tagged with.
//!
//! The engine exposes single-event stepping for the interactive debugger and
//! a timed model ([`LsTiming`]) that estimates per-step response time for
//! Figs. 6c and 8c.

use crate::config::DefinedConfig;
use crate::order::{Annotation, MsgId};
use crate::recorder::{CommitRecord, Recording};
use crate::shard::{DeliveryCtx, LsNode, LsPayload, Pending, ShardedWaves, WaveEngine};
use crate::snapshot::NodeSnapshot;
use crate::wire::Wire;
use checkpoint::Snapshotable;
use defined_obs as obs;
use netsim::NodeId;
use routing::enc::{put_u32, put_u64, put_u8, Reader};
use routing::ControlPlane;
use std::collections::{BTreeMap, HashSet};
use topology::Graph;

/// Parameters of the response-time model (Fig. 6c / 8c).
#[derive(Clone, Copy, Debug)]
pub struct LsTiming {
    /// Cost of delivering one event to the control plane (ns), covering the
    /// debugger bookkeeping the paper's implementation pays per event.
    pub per_delivery_ns: u64,
    /// Fixed per-phase coordination cost (ns) of the distributed semaphore
    /// beyond propagation (syscalls, TCP handling).
    pub barrier_base_ns: u64,
    /// The coordinator node (markers and GO messages flow to/from it).
    pub coordinator: NodeId,
}

impl Default for LsTiming {
    fn default() -> Self {
        LsTiming {
            per_delivery_ns: 2_000_000, // 2 ms per delivered event
            barrier_base_ns: 5_000_000, // 5 ms per barrier round
            coordinator: NodeId(0),
        }
    }
}

/// The deliveries staged for one lockstep sub-cycle.
type Wave<P> = Vec<Pending<<P as ControlPlane>::Msg, <P as ControlPlane>::Ext>>;

/// One delivered event, as reported to the debugger.
#[derive(Clone, Debug, PartialEq)]
pub struct LsEvent {
    /// The node that processed the event.
    pub node: NodeId,
    /// Group being replayed.
    pub group: u64,
    /// Sub-cycle (causal chain depth) within the group.
    pub chain: u32,
    /// The committed record (key, annotation, payload digest).
    pub record: CommitRecord,
}

/// A [`LockstepNet`] whose waves execute across worker shards — the two
/// are the same type: sharding is a property of the installed
/// [`WaveEngine`], selected with [`LockstepNet::with_shards`], and by the
/// engine contract it changes only cost, never results (DESIGN.md §10).
pub type ShardedNet<P> = LockstepNet<P>;

/// The lockstep debugging network.
pub struct LockstepNet<P: ControlPlane> {
    cfg: DefinedConfig,
    recording: Recording<P::Ext>,
    drops: HashSet<(NodeId, u64)>,
    /// Recorded beacon delivery schedule: group → [(node, announcing
    /// source)]. A node missing from a group's list skipped that tick in
    /// production (it was partitioned from the source).
    ticks: BTreeMap<u64, Vec<(NodeId, NodeId)>>,
    /// Death cuts: node → identities of the events it may still deliver
    /// (absent = alive). Identities, not full keys: membership must not
    /// depend on the replay's ordering salt (see [`OrderKey::identity`]).
    ///
    /// [`OrderKey::identity`]: crate::order::OrderKey::identity
    mutes: BTreeMap<NodeId, HashSet<crate::order::EventIdentity>>,
    link_est: Vec<BTreeMap<NodeId, u64>>,
    dist: Vec<Vec<u64>>,
    nodes: Vec<LsNode<P>>,
    logs: Vec<Vec<CommitRecord>>,
    group: u64,
    chain: u32,
    queue: Wave<P>,
    queue_pos: usize,
    next_wave: Wave<P>,
    holdover: BTreeMap<u64, Wave<P>>,
    step_times: Vec<(u64, f64)>,
    timing: LsTiming,
    done: bool,
    /// How staged waves execute: serial sweep (`ShardedWaves::new(1)`, the
    /// default) or partitioned across worker shards.
    engine: Box<dyn WaveEngine<P>>,
}

impl<P: ControlPlane> LockstepNet<P> {
    /// Builds a debugging network over `graph`, replaying `recording`, with
    /// fresh control planes from `spawn`.
    pub fn new(
        graph: &Graph,
        cfg: DefinedConfig,
        recording: Recording<P::Ext>,
        mut spawn: impl FnMut(NodeId) -> P,
    ) -> Self {
        let n = graph.node_count();
        assert_eq!(n, recording.n_nodes, "recording is for a different network");
        let mut link_est = vec![BTreeMap::new(); n];
        for e in graph.edges() {
            link_est[e.a.index()].insert(e.b, e.delay.0);
            link_est[e.b.index()].insert(e.a, e.delay.0);
        }
        let dist = crate::harness::delay_estimates(graph);
        let drops = recording.drops.iter().map(|d| (d.sender, d.idx)).collect();
        let mut ticks: BTreeMap<u64, Vec<(NodeId, NodeId)>> = BTreeMap::new();
        for t in &recording.ticks {
            ticks.entry(t.group).or_default().push((t.node, t.source));
        }
        let mutes = recording
            .mutes
            .iter()
            .map(|m| (m.node, m.allowed.iter().map(|k| k.identity()).collect()))
            .collect();
        let nodes = (0..n)
            .map(|i| LsNode { snap: NodeSnapshot::new(spawn(NodeId(i as u32))), send_count: 0 })
            .collect();
        LockstepNet {
            cfg,
            recording,
            drops,
            ticks,
            mutes,
            link_est,
            dist,
            nodes,
            logs: vec![Vec::new(); n],
            group: 0,
            chain: 0,
            queue: Vec::new(),
            queue_pos: 0,
            next_wave: Vec::new(),
            holdover: BTreeMap::new(),
            step_times: Vec::new(),
            timing: LsTiming::default(),
            done: false,
            engine: Box::new(ShardedWaves::new(1)),
        }
    }

    /// Overrides the response-time model.
    pub fn set_timing(&mut self, timing: LsTiming) {
        self.timing = timing;
    }

    /// Executes waves across `shards` worker shards (`0` = auto, the host's
    /// available parallelism). By the [`WaveEngine`] contract this changes
    /// only cost: committed logs, images, and transcripts are byte-identical
    /// for every shard count.
    pub fn set_shards(&mut self, shards: usize) {
        self.engine = Box::new(ShardedWaves::new(shards));
    }

    /// Builder-style [`LockstepNet::set_shards`].
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.set_shards(shards);
        self
    }

    /// The installed engine's worker-shard count.
    pub fn shards(&self) -> usize {
        self.engine.shards()
    }

    /// Installs a custom wave engine (e.g. an instrumented one in tests).
    pub fn set_engine(&mut self, engine: Box<dyn WaveEngine<P>>) {
        self.engine = engine;
    }

    /// The group currently being replayed.
    pub fn current_group(&self) -> u64 {
        self.group
    }

    /// Whether the replay has consumed every group.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Per-node delivered logs so far.
    pub fn logs(&self) -> &[Vec<CommitRecord>] {
        &self.logs
    }

    /// Per-sub-cycle response times (seconds) of the timed model.
    pub fn step_times(&self) -> Vec<f64> {
        self.step_times.iter().map(|&(_, t)| t).collect()
    }

    /// Step times of sub-cycles in groups after `warmup_groups` — the
    /// steady-state measurement (the synchronized cold-boot flood of group 1
    /// is a simulator artifact the paper's converged testbed never sees).
    pub fn steady_step_times(&self, warmup_groups: u64) -> Vec<f64> {
        self.step_times
            .iter()
            .filter(|&&(g, _)| g > warmup_groups)
            .map(|&(_, t)| t)
            .collect()
    }

    /// One node's control plane (state inspection).
    pub fn control_plane(&self, node: NodeId) -> &P {
        &self.nodes[node.index()].snap.cp
    }

    /// Mutable control-plane access — the debugger's "manipulate state" /
    /// patch-in-place hook (§2.1).
    pub fn control_plane_mut(&mut self, node: NodeId) -> &mut P {
        &mut self.nodes[node.index()].snap.cp
    }

    /// Delivers exactly one event, advancing phases and groups as needed.
    ///
    /// Returns `None` when the recording is exhausted.
    pub fn step_event(&mut self) -> Option<LsEvent> {
        loop {
            if let Some(ev) = self.deliver_next_staged() {
                return Some(ev);
            }
            if !self.advance_phase() {
                return None;
            }
        }
    }

    /// Delivers the next event of the *currently staged* queue, or `None`
    /// when the queue is exhausted (never advances phases or groups). The
    /// one place the death-cut filter lives: a crashed node delivers only
    /// the events of its recorded cut; everything else is silently
    /// absorbed, exactly as the dead production node absorbed nothing
    /// further. Shared by [`step_event`] and [`run_to_group_start`] so
    /// both walk the identical event sequence.
    ///
    /// [`step_event`]: LockstepNet::step_event
    /// [`run_to_group_start`]: LockstepNet::run_to_group_start
    fn deliver_next_staged(&mut self) -> Option<LsEvent> {
        let LockstepNet {
            cfg,
            drops,
            mutes,
            link_est,
            nodes,
            logs,
            group,
            chain,
            queue,
            queue_pos,
            next_wave,
            holdover,
            ..
        } = self;
        let ctx = DeliveryCtx {
            ordering: cfg.ordering,
            chain_bound: cfg.chain_bound,
            group: *group,
            chain: *chain,
            drops,
            mutes,
            link_est,
        };
        while *queue_pos < queue.len() {
            let p = &queue[*queue_pos];
            *queue_pos += 1;
            if !ctx.allows(p) {
                continue;
            }
            let idx = p.to.index();
            let mut emitted = Vec::new();
            let ev = ctx.deliver(&mut nodes[idx], &mut logs[idx], p, &mut emitted);
            obs::counter!("ls.delivered").add(1);
            obs::counter!("ls.emitted").add(emitted.len() as u64);
            route_emitted(*group, next_wave, holdover, emitted);
            return Some(ev);
        }
        None
    }

    /// Executes the *whole* remaining staged wave through the installed
    /// [`WaveEngine`] — the sharded fast path. Equivalent to draining
    /// [`deliver_next_staged`] (the engine contract), but the engine sees
    /// the wave at once and may partition it across workers. Returns false
    /// when nothing was staged (never advances phases or groups).
    ///
    /// [`deliver_next_staged`]: LockstepNet::deliver_next_staged
    fn drain_staged_wave(&mut self) -> bool {
        if self.queue_pos >= self.queue.len() {
            return false;
        }
        let LockstepNet {
            cfg,
            drops,
            mutes,
            link_est,
            nodes,
            logs,
            group,
            chain,
            queue,
            queue_pos,
            next_wave,
            holdover,
            engine,
            ..
        } = self;
        let ctx = DeliveryCtx {
            ordering: cfg.ordering,
            chain_bound: cfg.chain_bound,
            group: *group,
            chain: *chain,
            drops,
            mutes,
            link_est,
        };
        let out = {
            let _wave = obs::span!("ls.wave");
            engine.execute(&ctx, nodes, logs, &queue[*queue_pos..])
        };
        obs::counter!("ls.waves").add(1);
        obs::counter!("ls.delivered").add(out.delivered as u64);
        obs::counter!("ls.emitted").add(out.emitted.len() as u64);
        obs::hist!("ls.wave_events").record(out.delivered as u64);
        *queue_pos = queue.len();
        route_emitted(*group, next_wave, holdover, out.emitted);
        true
    }

    /// Runs the whole recording; returns the per-node logs.
    pub fn run_to_end(&mut self) -> &[Vec<CommitRecord>] {
        loop {
            if !self.drain_staged_wave() && !self.advance_phase() {
                break;
            }
        }
        self.logs()
    }

    /// Whether the replay sits exactly at a group start: the group's first
    /// wave is staged (or empty) but nothing of it has been delivered.
    pub fn at_group_start(&self) -> bool {
        self.chain == 0 && self.queue_pos == 0
    }

    /// Runs to the *exact* start of `group`: every event of earlier groups
    /// is delivered and none of `group`'s. Returns false when the recording
    /// is exhausted before reaching `group` — the state is then the
    /// complete replay, which is itself a well-defined prefix (all groups).
    ///
    /// This is the boundary the bisection probes and the checkpoint-seeded
    /// replay farm need: a probe of "groups `1..=g`" is
    /// `run_to_group_start(g + 1)`, and an image captured here restores to
    /// the identical boundary.
    pub fn run_to_group_start(&mut self, group: u64) -> bool {
        while !self.done && self.group < group {
            if !self.drain_staged_wave() && !self.advance_phase() {
                return false;
            }
        }
        !self.done
    }

    /// Finishes the current sub-cycle and records its modelled duration;
    /// then stages the next wave or the next group. Returns false when done.
    fn advance_phase(&mut self) -> bool {
        if self.done {
            return false;
        }
        if !self.queue.is_empty() {
            self.record_step_time();
        }
        if !self.next_wave.is_empty() {
            self.chain += 1;
            let wave = std::mem::take(&mut self.next_wave);
            self.stage_wave(wave);
            return true;
        }
        // Next group.
        self.group += 1;
        if self.group > self.recording.last_group {
            self.done = true;
            return false;
        }
        self.chain = 0;
        let mut wave: Vec<Pending<P::Msg, P::Ext>> = Vec::new();
        if self.group == 1 {
            for i in 0..self.nodes.len() {
                let node = NodeId(i as u32);
                wave.push(Pending {
                    to: node,
                    from: node,
                    ann: Annotation::external(node, 1, 0),
                    ev: LsPayload::Start,
                });
            }
        }
        for e in self.recording.externals_for_group(self.group) {
            wave.push(Pending {
                to: e.node,
                from: e.node,
                ann: Annotation::external(e.node, self.group, e.ext_seq),
                ev: LsPayload::External(e.payload),
            });
        }
        // Beacon ticks follow the recorded delivery schedule: a node that
        // missed a tick in production (partition) or saw it announced by a
        // failover source gets exactly the same tick here.
        for &(node, source) in self.ticks.get(&self.group).map(Vec::as_slice).unwrap_or(&[]) {
            wave.push(Pending {
                to: node,
                from: source,
                ann: Annotation::beacon(
                    source,
                    self.group,
                    self.dist[source.index()][node.index()],
                ),
                ev: LsPayload::BeaconTick,
            });
        }
        self.stage_wave(wave);
        // Chain-overflow messages assigned to this group join sub-cycle 1.
        if let Some(held) = self.holdover.remove(&self.group) {
            self.next_wave.extend(held);
        }
        true
    }

    /// Sorts `wave` by the production order key and stages it for delivery.
    /// The `(OrderKey, to)` sort key is *strictly* total over any one wave
    /// (lineage digests separate causally distinct events, `to` separates
    /// same-annotation beacon fan-out) — which is what erases both the
    /// emit-concatenation order of the previous wave's shards and the sort
    /// algorithm's stability, so sharded and serial staging coincide.
    fn stage_wave(&mut self, mut wave: Wave<P>) {
        let ordering = self.cfg.ordering;
        wave.sort_by_key(|a| (a.ann.key(ordering), a.to));
        debug_assert!(
            wave.windows(2).all(|w| (w[0].ann.key(ordering), w[0].to) < (w[1].ann.key(ordering), w[1].to)),
            "a staged wave's sort keys must be strictly increasing"
        );
        self.queue = wave;
        self.queue_pos = 0;
    }

    fn record_step_time(&mut self) {
        // Transmission: messages cross links concurrently → the slowest link
        // bounds the phase. Processing: the busiest node bounds the phase.
        // Coordination: two barrier rounds through the coordinator.
        let mut max_link = 0u64;
        let mut per_node: BTreeMap<NodeId, u64> = BTreeMap::new();
        for p in &self.queue {
            if p.from != p.to {
                let l = self.link_est[p.from.index()].get(&p.to).copied().unwrap_or(
                    self.dist[p.from.index()][p.to.index()],
                );
                max_link = max_link.max(l);
            }
            *per_node.entry(p.to).or_default() += 1;
        }
        let max_proc =
            per_node.values().max().copied().unwrap_or(0) * self.timing.per_delivery_ns;
        let max_coord = (0..self.nodes.len())
            .map(|i| self.dist[self.timing.coordinator.index()][i])
            .max()
            .unwrap_or(0);
        let barrier = 2 * (max_coord + self.timing.barrier_base_ns);
        let total_ns = barrier + max_link + max_proc;
        self.step_times.push((self.group, total_ns as f64 / 1e9));
    }

    /// Captures a full image of the replayer's mutable state — node
    /// snapshots, send counters, the staged delivery queues (including
    /// in-flight chain-overflow messages), and phase markers. Restoring
    /// the image and re-stepping reproduces the original execution byte
    /// for byte (Theorem 1 applied twice).
    ///
    /// The committed logs and step-time samples are append-only and fully
    /// determined by replay position, so the image records only their
    /// *lengths* — its size is O(network state), independent of how long
    /// the replay has run, which is what keeps a dense checkpoint cadence
    /// (and therefore flat rewind latency) affordable.
    pub fn capture_image(&self) -> LsImage<P> {
        LsImage {
            nodes: self.nodes.iter().map(|n| (n.snap.clone(), n.send_count)).collect(),
            log_lens: self.logs.iter().map(Vec::len).collect(),
            group: self.group,
            chain: self.chain,
            queue: self.queue.clone(),
            queue_pos: self.queue_pos,
            next_wave: self.next_wave.clone(),
            holdover: self.holdover.clone(),
            step_times_len: self.step_times.len(),
            done: self.done,
        }
    }

    /// Restores a previously captured image, rewinding the replayer to
    /// exactly the captured instant. Logs and step-time samples are
    /// truncated to their captured lengths — an image therefore rewinds
    /// only the replay it (or a byte-identical one) was captured from,
    /// which is precisely the reverse-execution use case.
    ///
    /// # Panics
    ///
    /// Panics if the image is for a different network size, or if the
    /// replay is *behind* the image (its logs are shorter than the
    /// captured lengths).
    pub fn restore_image(&mut self, img: LsImage<P>) {
        assert_eq!(img.nodes.len(), self.nodes.len(), "image is for a different network");
        self.nodes = img
            .nodes
            .into_iter()
            .map(|(snap, send_count)| LsNode { snap, send_count })
            .collect();
        for (log, &len) in self.logs.iter_mut().zip(&img.log_lens) {
            assert!(log.len() >= len, "image is ahead of this replay; cannot rewind to it");
            log.truncate(len);
        }
        self.group = img.group;
        self.chain = img.chain;
        self.queue = img.queue;
        self.queue_pos = img.queue_pos;
        self.next_wave = img.next_wave;
        self.holdover = img.holdover;
        assert!(self.step_times.len() >= img.step_times_len, "image is ahead of this replay");
        self.step_times.truncate(img.step_times_len);
        self.done = img.done;
    }

    /// Extends `history` with whatever this replay has committed beyond it.
    ///
    /// The committed logs and step-time samples of a lockstep replay are
    /// append-only and fully determined by position (Theorem 1), so every
    /// replay of one recording under one configuration walks the same
    /// canonical history; the longest prefix observed so far is therefore
    /// authoritative for every shorter position.
    pub fn merge_history(&self, history: &mut LsHistory) {
        assert_eq!(history.logs.len(), self.logs.len(), "history is for a different network");
        for (hist, log) in history.logs.iter_mut().zip(&self.logs) {
            if log.len() > hist.len() {
                hist.extend_from_slice(&log[hist.len()..]);
            }
        }
        if self.step_times.len() > history.step_times.len() {
            history
                .step_times
                .extend_from_slice(&self.step_times[history.step_times.len()..]);
        }
    }

    /// Restores `img`, reconstructing the committed logs and step-time
    /// samples from `history` instead of truncating this replay's own —
    /// which also works when the image lies *ahead* of the replay's current
    /// position, the case [`LockstepNet::restore_image`] rejects. This is
    /// the replay-farm path: a probe session jumps in both directions over
    /// one canonical history it has accumulated via
    /// [`LockstepNet::merge_history`].
    ///
    /// # Panics
    ///
    /// Panics if the image is for a different network size or if `history`
    /// is shorter than the image (the image must have been captured from a
    /// replay whose progress was merged into `history`).
    pub fn restore_image_seeded(&mut self, img: LsImage<P>, history: &LsHistory) {
        assert_eq!(img.nodes.len(), self.nodes.len(), "image is for a different network");
        assert_eq!(history.logs.len(), self.nodes.len(), "history is for a different network");
        self.nodes = img
            .nodes
            .into_iter()
            .map(|(snap, send_count)| LsNode { snap, send_count })
            .collect();
        for ((log, hist), &len) in self.logs.iter_mut().zip(&history.logs).zip(&img.log_lens) {
            assert!(hist.len() >= len, "history does not cover the image");
            log.clear();
            log.extend_from_slice(&hist[..len]);
        }
        assert!(
            history.step_times.len() >= img.step_times_len,
            "history does not cover the image"
        );
        self.step_times.clear();
        self.step_times.extend_from_slice(&history.step_times[..img.step_times_len]);
        self.group = img.group;
        self.chain = img.chain;
        self.queue = img.queue;
        self.queue_pos = img.queue_pos;
        self.next_wave = img.next_wave;
        self.holdover = img.holdover;
        self.done = img.done;
    }

}

/// Routes the messages a wave emitted: same-group sends join the next
/// sub-cycle, chain-overflow sends wait in holdover for their target group.
/// (The next wave is fully re-sorted before consumption, so the emit order
/// reaching this function — including cross-shard concatenation order —
/// never matters.)
fn route_emitted<M, X>(
    group: u64,
    next_wave: &mut Vec<Pending<M, X>>,
    holdover: &mut BTreeMap<u64, Vec<Pending<M, X>>>,
    emitted: Vec<Pending<M, X>>,
) {
    for p in emitted {
        let g = p.annotation().group;
        if g == group {
            next_wave.push(p);
        } else {
            holdover.entry(g).or_default().push(p);
        }
    }
}

/// The canonical append-only history of one recording's lockstep replay:
/// per-node committed logs plus step-time samples, accumulated across any
/// number of (partial) replays of the same recording via
/// [`LockstepNet::merge_history`] and consulted by
/// [`LockstepNet::restore_image_seeded`] to reconstruct the log state of an
/// image that lies ahead of the current replay position.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LsHistory {
    logs: Vec<Vec<CommitRecord>>,
    step_times: Vec<(u64, f64)>,
}

impl LsHistory {
    /// An empty history for a network of `n_nodes` nodes.
    pub fn new(n_nodes: usize) -> Self {
        LsHistory { logs: vec![Vec::new(); n_nodes], step_times: Vec::new() }
    }

    /// Committed events accumulated so far, summed over nodes.
    pub fn len(&self) -> usize {
        self.logs.iter().map(Vec::len).sum()
    }

    /// Whether nothing has been accumulated yet.
    pub fn is_empty(&self) -> bool {
        self.logs.iter().all(Vec::is_empty)
    }
}

/// A whole-network checkpoint of a [`LockstepNet`]: every node's composite
/// snapshot plus the replayer's own delivery state (append-only histories
/// are stored as lengths — see [`LockstepNet::capture_image`]).
///
/// Created by [`LockstepNet::capture_image`] and consumed by
/// [`LockstepNet::restore_image`]. When the message and external payload
/// types have [`Wire`] codecs the image is [`Snapshotable`], so it can be
/// stored in a [`checkpoint::Checkpointer`] or [`checkpoint::Timeline`]
/// under any strategy — with `MemIntercept`, retained images share every
/// unchanged 4 KiB page, which is what makes a dense reverse-execution
/// checkpoint cadence affordable.
pub struct LsImage<P: ControlPlane> {
    nodes: Vec<(NodeSnapshot<P>, u64)>,
    log_lens: Vec<usize>,
    group: u64,
    chain: u32,
    queue: Wave<P>,
    queue_pos: usize,
    next_wave: Wave<P>,
    holdover: BTreeMap<u64, Wave<P>>,
    step_times_len: usize,
    done: bool,
}

impl<P: ControlPlane> Clone for LsImage<P> {
    fn clone(&self) -> Self {
        LsImage {
            nodes: self.nodes.clone(),
            log_lens: self.log_lens.clone(),
            group: self.group,
            chain: self.chain,
            queue: self.queue.clone(),
            queue_pos: self.queue_pos,
            next_wave: self.next_wave.clone(),
            holdover: self.holdover.clone(),
            step_times_len: self.step_times_len,
            done: self.done,
        }
    }
}

fn encode_pending<M: Wire, X: Wire>(p: &Pending<M, X>, buf: &mut Vec<u8>) {
    put_u32(buf, p.to.0);
    put_u32(buf, p.from.0);
    p.ann.encode(buf);
    match &p.ev {
        LsPayload::Start => put_u8(buf, 0),
        LsPayload::External(x) => {
            put_u8(buf, 1);
            x.encode(buf);
        }
        LsPayload::BeaconTick => put_u8(buf, 2),
        LsPayload::Msg(m) => {
            put_u8(buf, 3);
            m.encode(buf);
        }
    }
}

fn decode_pending<M: Wire, X: Wire>(r: &mut Reader<'_>) -> Option<Pending<M, X>> {
    let to = NodeId(r.u32()?);
    let from = NodeId(r.u32()?);
    let ann = Annotation::decode(r)?;
    let ev = match r.u8()? {
        0 => LsPayload::Start,
        1 => LsPayload::External(X::decode(r)?),
        2 => LsPayload::BeaconTick,
        3 => LsPayload::Msg(M::decode(r)?),
        _ => return None,
    };
    Some(Pending { to, from, ann, ev })
}

fn encode_wave<M: Wire, X: Wire>(wave: &[Pending<M, X>], buf: &mut Vec<u8>) {
    put_u64(buf, wave.len() as u64);
    for p in wave {
        encode_pending(p, buf);
    }
}

fn decode_wave<M: Wire, X: Wire>(r: &mut Reader<'_>) -> Option<Vec<Pending<M, X>>> {
    let n = r.len()?;
    let mut wave = Vec::with_capacity(n);
    for _ in 0..n {
        wave.push(decode_pending(r)?);
    }
    Some(wave)
}

impl<P> Snapshotable for LsImage<P>
where
    P: ControlPlane,
    P::Msg: Wire,
    P::Ext: Wire,
{
    fn encode(&self, buf: &mut Vec<u8>) {
        let start = buf.len();
        put_u64(buf, self.nodes.len() as u64);
        crate::bufpool::with_buf(|scratch| {
            for (snap, send_count) in &self.nodes {
                // Length-prefixed: NodeSnapshot's own decoder expects to own
                // the remainder of its buffer.
                scratch.clear();
                snap.encode(scratch);
                put_u64(buf, scratch.len() as u64);
                buf.extend_from_slice(scratch);
                put_u64(buf, *send_count);
            }
        });
        for &len in &self.log_lens {
            put_u64(buf, len as u64);
        }
        put_u64(buf, self.group);
        put_u32(buf, self.chain);
        encode_wave(&self.queue, buf);
        put_u64(buf, self.queue_pos as u64);
        encode_wave(&self.next_wave, buf);
        put_u64(buf, self.holdover.len() as u64);
        for (group, wave) in &self.holdover {
            put_u64(buf, *group);
            encode_wave(wave, buf);
        }
        put_u64(buf, self.step_times_len as u64);
        put_u8(buf, self.done as u8);
        obs::counter!("wire.bytes_encoded").add((buf.len() - start) as u64);
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        obs::counter!("wire.bytes_decoded").add(bytes.len() as u64);
        let mut r = Reader::new(bytes);
        let n_nodes = r.len()?;
        let mut nodes = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let len = r.len()?;
            let snap = NodeSnapshot::<P>::decode(r.bytes(len)?)?;
            nodes.push((snap, r.u64()?));
        }
        let mut log_lens = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            log_lens.push(r.u64()? as usize);
        }
        let group = r.u64()?;
        let chain = r.u32()?;
        let queue = decode_wave(&mut r)?;
        // A position, not an element count — `Reader::len`'s remaining-bytes
        // sanity check does not apply.
        let queue_pos = r.u64()? as usize;
        if queue_pos > queue.len() {
            return None;
        }
        let next_wave = decode_wave(&mut r)?;
        let n_hold = r.len()?;
        let mut holdover = BTreeMap::new();
        for _ in 0..n_hold {
            let g = r.u64()?;
            holdover.insert(g, decode_wave(&mut r)?);
        }
        let step_times_len = r.u64()? as usize;
        let done = r.u8()? != 0;
        Some(LsImage {
            nodes,
            log_lens,
            group,
            chain,
            queue,
            queue_pos,
            next_wave,
            holdover,
            step_times_len,
            done,
        })
    }
}

/// Compares two committed logs (e.g. RB production vs LS replay), trimmed to
/// groups `<= upto_group`. Returns the first divergence as
/// `(node, position, left, right)` if any.
#[allow(clippy::type_complexity)]
pub fn first_divergence(
    a: &[Vec<CommitRecord>],
    b: &[Vec<CommitRecord>],
    upto_group: u64,
) -> Option<(usize, usize, Option<CommitRecord>, Option<CommitRecord>)> {
    for (node, (la, lb)) in a.iter().zip(b.iter()).enumerate() {
        let ta = crate::recorder::trim_log(la, upto_group);
        let tb = crate::recorder::trim_log(lb, upto_group);
        let len = ta.len().max(tb.len());
        for i in 0..len {
            let x = ta.get(i).copied();
            let y = tb.get(i).copied();
            if x != y {
                return Some((node, i, x, y));
            }
        }
    }
    None
}

/// Placeholder for unused id type re-export (kept for debugger displays).
pub type LsMsgId = MsgId;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DefinedConfig, OrderingMode};
    use crate::harness::RbNetwork;
    use netsim::{SimDuration, SimTime};
    use proptest::prelude::*;
    use routing::ospf::{OspfConfig, OspfProcess};
    use topology::canonical;

    /// Theorem 1 end-to-end: the LS replay of an RB recording reproduces the
    /// RB committed execution exactly.
    fn check_reproducibility(ordering: OrderingMode, jitter: f64, seed: u64) {
        let g = canonical::ring(5, SimDuration::from_millis(4));
        let cfg = DefinedConfig { ordering, ..DefinedConfig::default() };
        let f = OspfProcess::for_graph(&g, OspfConfig::stress(5));
        let spawn: Vec<OspfProcess> = (0..5).map(|i| f(netsim::NodeId(i))).collect();
        let spawn2 = spawn.clone();
        let mut net =
            RbNetwork::new(&g, cfg.clone(), seed, jitter, move |id| spawn[id.index()].clone());
        net.run_until(SimTime::from_secs(6));
        let margin = 2;
        let upto = net.completed_group(margin);
        let (rec, rb_logs) = net.into_recording();
        assert!(upto > 5, "run long enough to cover several groups");

        let mut ls = LockstepNet::new(&g, cfg, rec, move |id| spawn2[id.index()].clone());
        ls.run_to_end();
        let div = first_divergence(&rb_logs, ls.logs(), upto);
        assert!(div.is_none(), "LS must reproduce RB: {div:?}");
        // The comparison must be non-vacuous.
        let total: usize = rb_logs
            .iter()
            .map(|l| crate::recorder::trim_log(l, upto).len())
            .sum();
        assert!(total > 100, "compared {total} events");
    }

    #[test]
    fn theorem1_optimized_low_jitter() {
        check_reproducibility(OrderingMode::Optimized, 0.2, 7);
    }

    #[test]
    fn theorem1_optimized_heavy_jitter() {
        check_reproducibility(OrderingMode::Optimized, 0.9, 8);
    }

    #[test]
    fn theorem1_random_ordering() {
        check_reproducibility(OrderingMode::Random, 0.5, 9);
    }

    #[test]
    fn ls_step_times_recorded() {
        let g = canonical::ring(4, SimDuration::from_millis(4));
        let cfg = DefinedConfig::default();
        let f = OspfProcess::for_graph(&g, OspfConfig::stress(4));
        let spawn: Vec<OspfProcess> = (0..4).map(|i| f(netsim::NodeId(i))).collect();
        let spawn2 = spawn.clone();
        let mut net = RbNetwork::new(&g, cfg.clone(), 3, 0.2, move |id| spawn[id.index()].clone());
        net.run_until(SimTime::from_secs(3));
        let (rec, _) = net.into_recording();
        let mut ls = LockstepNet::new(&g, cfg, rec, move |id| spawn2[id.index()].clone());
        ls.run_to_end();
        assert!(!ls.step_times().is_empty());
        // Every step under a second, as Fig. 6c reports.
        assert!(ls.step_times().iter().all(|&t| t < 1.0));
    }

    fn small_ls() -> LockstepNet<OspfProcess> {
        let g = canonical::ring(4, SimDuration::from_millis(4));
        let cfg = DefinedConfig::default();
        let f = OspfProcess::for_graph(&g, OspfConfig::stress(4));
        let spawn: Vec<OspfProcess> = (0..4).map(|i| f(netsim::NodeId(i))).collect();
        let spawn2 = spawn.clone();
        let mut net = RbNetwork::new(&g, cfg.clone(), 9, 0.4, move |id| spawn[id.index()].clone());
        net.run_until(SimTime::from_secs(3));
        let (rec, _) = net.into_recording();
        LockstepNet::new(&g, cfg, rec, move |id| spawn2[id.index()].clone())
    }

    /// Restoring a mid-run image and re-stepping must reproduce the exact
    /// same suffix — the primitive reverse execution is built on.
    #[test]
    fn image_restore_reproduces_the_suffix() {
        let mut ls = small_ls();
        for _ in 0..25 {
            ls.step_event().expect("events available");
        }
        let img = ls.capture_image();
        let mark: Vec<usize> = ls.logs().iter().map(Vec::len).collect();
        let first: Vec<Vec<CommitRecord>> = {
            ls.run_to_end();
            ls.logs().to_vec()
        };
        ls.restore_image(img.clone());
        assert_eq!(
            ls.logs().iter().map(Vec::len).collect::<Vec<_>>(),
            mark,
            "restore rewinds the logs"
        );
        ls.run_to_end();
        assert_eq!(ls.logs(), &first[..], "re-executed suffix diverged");
        drop(img);
    }

    /// The image survives the byte codec (the page-diff checkpoint path)
    /// with full fidelity, mid-group — queues and holdover included.
    #[test]
    fn image_byte_codec_round_trips_mid_group() {
        let mut ls = small_ls();
        for _ in 0..37 {
            ls.step_event().expect("events available");
        }
        let img = ls.capture_image();
        let mut buf = Vec::new();
        img.encode(&mut buf);
        let back: LsImage<OspfProcess> = Snapshotable::decode(&buf).expect("decodes");
        assert_eq!(back.digest(), img.digest());
        // Continue from the decoded image: byte-identical tail.
        let direct = {
            let mut a = small_ls();
            for _ in 0..37 {
                a.step_event();
            }
            a.run_to_end();
            a.logs().to_vec()
        };
        ls.restore_image(back);
        ls.run_to_end();
        assert_eq!(ls.logs(), &direct[..]);
        // Corrupt input fails cleanly.
        assert!(<LsImage<OspfProcess> as Snapshotable>::decode(&buf[..buf.len() / 2]).is_none());
    }

    /// `run_to_group_start` stops exactly on group boundaries: everything
    /// of earlier groups delivered, nothing of the target group, matching a
    /// step-by-step replay filtered by event group.
    #[test]
    fn run_to_group_start_is_exact() {
        let mut ls = small_ls();
        let reference = {
            let mut r = small_ls();
            r.run_to_end();
            r.logs().to_vec()
        };
        for target in [2u64, 5, 9] {
            assert!(ls.run_to_group_start(target) || ls.is_done());
            assert!(ls.at_group_start());
            assert_eq!(ls.current_group(), target);
            for (node, log) in ls.logs().iter().enumerate() {
                assert!(
                    log.iter().all(|r| r.ann.group < target),
                    "node {node} delivered an event of group >= {target}"
                );
                let expect: Vec<_> = reference[node]
                    .iter()
                    .filter(|r| r.ann.group < target)
                    .copied()
                    .collect();
                assert_eq!(log, &expect, "node {node} prefix mismatch at group {target}");
            }
        }
    }

    /// A seeded restore reconstructs logs from accumulated history even
    /// when the image lies ahead of the replay — and the re-executed tail
    /// is byte-identical.
    #[test]
    fn seeded_restore_jumps_forward_over_history() {
        let mut ls = small_ls();
        let mut history = LsHistory::new(4);
        assert!(history.is_empty());
        for _ in 0..40 {
            ls.step_event().expect("events");
        }
        let ahead = ls.capture_image();
        let ahead_logs = ls.logs().to_vec();
        ls.merge_history(&mut history);
        assert_eq!(history.len(), 40);
        // Rewind to the start via a fresh replay, then jump *forward* onto
        // the captured image — plain `restore_image` would panic here.
        let mut fresh = small_ls();
        fresh.step_event();
        fresh.restore_image_seeded(ahead, &history);
        assert_eq!(fresh.logs(), &ahead_logs[..], "reconstructed logs diverged");
        let expect = {
            let mut r = small_ls();
            r.run_to_end();
            r.logs().to_vec()
        };
        fresh.run_to_end();
        assert_eq!(fresh.logs(), &expect[..], "re-executed tail diverged");
    }

    /// The tentpole invariant at unit scale: waves executed across real
    /// thread boundaries (4 shards of 1 node, inline threshold disabled)
    /// commit the identical logs, and an image captured under one shard
    /// count restores into a replay running another — images are
    /// shard-count-agnostic by construction.
    #[test]
    fn sharded_waves_match_serial_and_images_compose() {
        let serial_logs = {
            let mut s = small_ls();
            s.run_to_end();
            s.logs().to_vec()
        };
        for shards in [2usize, 4] {
            let mut net = small_ls();
            net.set_engine(Box::new(
                crate::shard::ShardedWaves::new(shards).with_min_wave_per_shard(0),
            ));
            assert_eq!(net.shards(), shards);
            net.run_to_end();
            assert_eq!(net.logs(), &serial_logs[..], "shards={shards} diverged from serial");
        }
        // Cross-shard-count checkpoint seeding: capture under shards=2,
        // restore into shards=4, finish — still the serial logs.
        let mut two = small_ls();
        two.set_engine(Box::new(crate::shard::ShardedWaves::new(2).with_min_wave_per_shard(0)));
        two.run_to_group_start(5);
        let img = two.capture_image();
        let mut history = LsHistory::new(4);
        two.run_to_end();
        two.merge_history(&mut history);
        let mut four = small_ls();
        four.set_engine(Box::new(crate::shard::ShardedWaves::new(4).with_min_wave_per_shard(0)));
        four.restore_image_seeded(img, &history);
        four.run_to_end();
        assert_eq!(four.logs(), &serial_logs[..], "cross-shard-count restore diverged");
    }

    /// Sharded phase advancement stops on the same exact group boundaries
    /// as single-event stepping.
    #[test]
    fn sharded_run_to_group_start_is_exact() {
        let reference = {
            let mut r = small_ls();
            r.run_to_end();
            r.logs().to_vec()
        };
        let mut ls = small_ls();
        ls.set_engine(Box::new(crate::shard::ShardedWaves::new(2).with_min_wave_per_shard(0)));
        assert!(ls.run_to_group_start(5) || ls.is_done());
        assert!(ls.at_group_start());
        assert_eq!(ls.current_group(), 5);
        for (node, log) in ls.logs().iter().enumerate() {
            let expect: Vec<_> =
                reference[node].iter().filter(|r| r.ann.group < 5).copied().collect();
            assert_eq!(log, &expect, "node {node} prefix mismatch");
        }
    }

    /// Merging partial replays into an [`LsHistory`] at step counts
    /// `positions`, each from a fresh replay.
    fn history_after(positions: &[usize]) -> LsHistory {
        let mut h = LsHistory::new(4);
        for &n in positions {
            let mut ls = small_ls();
            for _ in 0..n {
                ls.step_event().expect("events available");
            }
            ls.merge_history(&mut h);
        }
        h
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

        /// `merge_history` is order-independent: merging the same replay
        /// positions in any order yields the same canonical history — the
        /// precondition sharded checkpoint seeding leans on (a probe farm
        /// merges whichever shard-replayed prefix finishes first).
        #[test]
        fn merge_history_is_order_independent(
            perm in Just(vec![5usize, 12, 20, 28, 40]).prop_shuffle()
        ) {
            let canonical = history_after(&[5, 12, 20, 28, 40]);
            prop_assert_eq!(history_after(&perm), canonical);
        }
    }

    #[test]
    fn ls_stops_at_last_group() {
        let g = canonical::line(3, SimDuration::from_millis(2));
        let cfg = DefinedConfig::default();
        let f = OspfProcess::for_graph(&g, OspfConfig::stress(3));
        let spawn: Vec<OspfProcess> = (0..3).map(|i| f(netsim::NodeId(i))).collect();
        let spawn2 = spawn.clone();
        let mut net = RbNetwork::new(&g, cfg.clone(), 4, 0.1, move |id| spawn[id.index()].clone());
        net.run_until(SimTime::from_secs(3));
        let (rec, _) = net.into_recording();
        let last = rec.last_group;
        let mut ls = LockstepNet::new(&g, cfg, rec, move |id| spawn2[id.index()].clone());
        ls.run_to_end();
        assert!(ls.is_done());
        assert_eq!(ls.current_group(), last + 1);
        for log in ls.logs() {
            assert!(log.iter().all(|r| r.ann.group <= last + 1));
        }
    }
}
