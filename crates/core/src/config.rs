//! Run-wide DEFINED configuration.

use checkpoint::{CostModel, ForkTiming, Strategy};
use netsim::SimDuration;

/// Which pseudorandom ordering function nodes apply (paper §2.2, §5.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OrderingMode {
    /// OO — the delay-sensitive optimised ordering: sort by estimated
    /// arrival delay `d`, matching the common-case arrival order, which
    /// minimises rollbacks.
    Optimized,
    /// RO — a hash-permuted ordering (the "straightforward hashing and
    /// permutation" strawman); deterministic but uncorrelated with arrival
    /// order, so rollbacks are frequent.
    Random,
    /// A salted hash permutation. Each salt yields a *different*
    /// deterministic schedule; sweeping salts in DEFINED-LS explores
    /// alternative execution paths, as §4's discussion suggests for bugs the
    /// production ordering happens to mask.
    Permuted(u64),
}

/// When DEFINED-RB takes checkpoints, in deliveries per capture.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CapturePolicy {
    /// Take a checkpoint every `k` deliveries (1 = every delivery; larger
    /// values trade rollback depth for non-rollback overhead — the paper's
    /// §3 optimisation, swept by the ablation bench).
    Every(u32),
    /// Churn-adaptive: start at `min` and re-evaluate once per window of
    /// [`CapturePolicy::ADAPT_WINDOW`] deliveries — doubling the interval
    /// (up to `max`) after a window that rolled back, shortening it by one
    /// delivery (down to `min`) after a quiet one. The asymmetry keeps the
    /// interval wide under sustained churn even when individual windows
    /// happen to stay quiet. Each node adapts off its *own* delivered
    /// history and rollback count, both of which replay identically, so the
    /// schedule is deterministic per seed.
    Auto {
        /// Floor (and starting) interval, in deliveries.
        min: u32,
        /// Ceiling interval, in deliveries.
        max: u32,
    },
}

impl CapturePolicy {
    /// Deliveries per adaptation decision in [`CapturePolicy::Auto`].
    pub const ADAPT_WINDOW: u32 = 64;

    /// The default adaptive policy: every delivery when quiet, backing off
    /// to at most one capture per 64 deliveries under rollback churn.
    pub fn auto() -> Self {
        CapturePolicy::Auto { min: 1, max: 64 }
    }

    /// The interval a node starts with.
    pub fn initial_interval(&self) -> u32 {
        match *self {
            CapturePolicy::Every(k) => k.max(1),
            CapturePolicy::Auto { min, .. } => min.max(1),
        }
    }
}

impl Default for CapturePolicy {
    fn default() -> Self {
        CapturePolicy::Every(1)
    }
}

impl std::fmt::Display for CapturePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            CapturePolicy::Every(k) => write!(f, "every {k}"),
            CapturePolicy::Auto { min, max } => write!(f, "auto {min}..{max}"),
        }
    }
}

/// A `--ckpt-interval` value that is neither a positive integer nor `auto`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseCapturePolicyError(pub String);

impl std::fmt::Display for ParseCapturePolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad capture policy {:?}: expected a positive integer or \"auto\"", self.0)
    }
}

impl std::error::Error for ParseCapturePolicyError {}

impl std::str::FromStr for CapturePolicy {
    type Err = ParseCapturePolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let t = s.trim();
        if t.eq_ignore_ascii_case("auto") {
            return Ok(CapturePolicy::auto());
        }
        match t.parse::<u32>() {
            Ok(k) if k >= 1 => Ok(CapturePolicy::Every(k)),
            _ => Err(ParseCapturePolicyError(s.to_string())),
        }
    }
}

/// Configuration shared by every DEFINED-RB node and the LS replayer.
#[derive(Clone, Debug)]
pub struct DefinedConfig {
    /// Beacon broadcast interval; one beacon = one group = one virtual-time
    /// tick. The paper uses 250 ms.
    pub beacon_interval: SimDuration,
    /// Ordering function selector.
    pub ordering: OrderingMode,
    /// Maximum causal-chain length per timestep; messages beyond the bound
    /// are assigned to the next group (§2.2).
    pub chain_bound: u32,
    /// Checkpoint storage strategy.
    pub strategy: Strategy,
    /// When checkpoint cost lands on the critical path.
    pub fork_timing: ForkTiming,
    /// Simulated-time cost model for checkpoint/rollback overheads.
    pub cost: CostModel,
    /// Capture cadence: fixed interval or churn-adaptive.
    pub capture: CapturePolicy,
    /// Commit horizon: history entries older than this are committed and
    /// garbage-collected. `None` keeps the full history (needed when a
    /// recording will be extracted). The paper sizes this as twice the
    /// maximum propagation time, estimated as mean + 4σ (§2.2).
    pub commit_horizon: Option<SimDuration>,
    /// Whether simulated checkpoint overhead delays outgoing messages.
    pub charge_overhead: bool,
}

impl Default for DefinedConfig {
    fn default() -> Self {
        DefinedConfig {
            beacon_interval: SimDuration::from_millis(250),
            ordering: OrderingMode::Optimized,
            chain_bound: 24,
            strategy: Strategy::CloneState,
            fork_timing: ForkTiming::PreForkTouch,
            cost: CostModel::default(),
            capture: CapturePolicy::Every(1),
            commit_horizon: None,
            charge_overhead: true,
        }
    }
}

impl DefinedConfig {
    /// The paper's production configuration: fork-based checkpoints taken on
    /// packet arrival, with a commit horizon.
    pub fn production(horizon: SimDuration) -> Self {
        DefinedConfig {
            strategy: Strategy::Fork,
            fork_timing: ForkTiming::OnArrival,
            commit_horizon: Some(horizon),
            ..DefinedConfig::default()
        }
    }

    /// Recording-friendly configuration: full history retained so the
    /// partial recording and committed logs can be extracted.
    pub fn recording() -> Self {
        DefinedConfig::default()
    }

    /// Virtual-time ticks per second under this beacon interval.
    pub fn ticks_per_second(&self) -> f64 {
        1.0 / self.beacon_interval.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = DefinedConfig::default();
        assert_eq!(c.beacon_interval, SimDuration::from_millis(250));
        assert_eq!(c.ticks_per_second(), 4.0);
        assert_eq!(c.ordering, OrderingMode::Optimized);
        assert_eq!(c.capture, CapturePolicy::Every(1));
    }

    #[test]
    fn capture_policy_parses_and_rejects() {
        assert_eq!("4".parse::<CapturePolicy>(), Ok(CapturePolicy::Every(4)));
        assert_eq!("auto".parse::<CapturePolicy>(), Ok(CapturePolicy::auto()));
        assert_eq!("AUTO".parse::<CapturePolicy>(), Ok(CapturePolicy::auto()));
        assert!("0".parse::<CapturePolicy>().is_err());
        assert!("-3".parse::<CapturePolicy>().is_err());
        assert!("often".parse::<CapturePolicy>().is_err());
        assert_eq!(CapturePolicy::Every(8).to_string(), "every 8");
        assert_eq!(CapturePolicy::auto().to_string(), "auto 1..64");
        assert_eq!(CapturePolicy::auto().initial_interval(), 1);
    }

    #[test]
    fn production_config_uses_fork_on_arrival() {
        let c = DefinedConfig::production(SimDuration::from_secs(2));
        assert_eq!(c.strategy, Strategy::Fork);
        assert_eq!(c.fork_timing, ForkTiming::OnArrival);
        assert_eq!(c.commit_horizon, Some(SimDuration::from_secs(2)));
    }
}
