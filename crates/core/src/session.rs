//! A text-command debugger session — the troubleshooter-facing surface of
//! DEFINED-LS (§2.1's "debugging coordinator with the interactive stepping
//! functionality"), suitable for a REPL, a script, or a test.
//!
//! Commands (one per line; `#` starts a comment):
//!
//! ```text
//! step [n]          deliver the next n events (default 1)
//! stepg [n]         step n whole groups (default 1)
//! run               run until a breakpoint fires or the recording ends
//! rstep [n]         step n events backward (reverse-step; default 1)
//! rcont             run backward to the last earlier breakpoint/watch hit
//!                   (reverse-continue)
//! goto P            jump to absolute event position P, either direction
//! checkpoints       show the reverse-execution checkpoint timeline
//! break group G     break on the first event of group G
//! break node N      break on any delivery at node N
//! clear             remove all breakpoints
//! watch N           watch node N's state digest; `run` stops when it
//!                   changes, `rcont` when it last changed
//! unwatch           remove all watches
//! inspect N         print node N's control-plane state
//! log N [K]         print node N's last K committed records (default 5)
//! where             current group / delivered-event count
//! help              list commands
//! ```
//!
//! Replays are deterministic, so stepping forward again after `rstep` /
//! `goto` reproduces the original output byte for byte.

use crate::debugger::{Debugger, StepGranularity, TimeTravelError};
use crate::wire::Wire;
use checkpoint::{RetentionPolicy, Strategy};
use netsim::NodeId;
use routing::ControlPlane;
use std::fmt::Write as _;

/// Default checkpoint cadence for session-level time travel, in delivered
/// events: dense enough that any `rstep` re-executes at most a few dozen
/// events, sparse enough that page-diff images stay cheap (DESIGN.md §8).
pub const DEFAULT_CHECKPOINT_INTERVAL: u64 = 32;

/// Why a command was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionError {
    /// The verb is not a known command.
    UnknownCommand(String),
    /// The verb is known but an argument is missing or malformed.
    BadArguments(String),
    /// A node id is out of range for the debugging network.
    NoSuchNode(u32),
    /// A reverse-execution request could not be satisfied.
    TimeTravel(TimeTravelError),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::UnknownCommand(c) => write!(f, "unknown command: {c} (try `help`)"),
            SessionError::BadArguments(m) => write!(f, "bad arguments: {m}"),
            SessionError::NoSuchNode(n) => write!(f, "no such node: n{n}"),
            SessionError::TimeTravel(e) => write!(f, "time travel: {e}"),
        }
    }
}

impl From<TimeTravelError> for SessionError {
    fn from(e: TimeTravelError) -> Self {
        SessionError::TimeTravel(e)
    }
}

impl std::error::Error for SessionError {}

/// A command-driven debugging session over a [`Debugger`].
pub struct DebugSession<P: ControlPlane> {
    dbg: Debugger<P>,
    n_nodes: usize,
    /// Whether `run` should also stop on watch changes.
    watching: bool,
}

impl<P> DebugSession<P>
where
    P: ControlPlane,
    P::Msg: Wire,
    P::Ext: Wire,
{
    /// Wraps a debugger for a network of `n_nodes` nodes.
    ///
    /// Time travel is enabled by default (page-diff checkpoints every
    /// [`DEFAULT_CHECKPOINT_INTERVAL`] events), so every session — and
    /// every registry scenario driven through one — is debuggable
    /// backwards.
    pub fn new(mut dbg: Debugger<P>, n_nodes: usize) -> Self {
        if !dbg.time_travel_enabled() {
            dbg.enable_time_travel(
                DEFAULT_CHECKPOINT_INTERVAL,
                Strategy::MemIntercept,
                RetentionPolicy::default(),
            );
        }
        DebugSession { dbg, n_nodes, watching: false }
    }

    /// The wrapped debugger (for programmatic use alongside commands).
    pub fn debugger(&self) -> &Debugger<P> {
        &self.dbg
    }

    /// Mutable access to the wrapped debugger.
    pub fn debugger_mut(&mut self) -> &mut Debugger<P> {
        &mut self.dbg
    }

    fn parse_node(&self, tok: Option<&str>) -> Result<NodeId, SessionError> {
        let t = tok.ok_or_else(|| SessionError::BadArguments("expected a node id".into()))?;
        let raw = t.strip_prefix('n').unwrap_or(t);
        let id: u32 = raw
            .parse()
            .map_err(|_| SessionError::BadArguments(format!("`{t}` is not a node id")))?;
        if (id as usize) < self.n_nodes {
            Ok(NodeId(id))
        } else {
            Err(SessionError::NoSuchNode(id))
        }
    }

    /// Executes one command line, returning its printable output.
    pub fn exec(&mut self, line: &str) -> Result<String, SessionError> {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            return Ok(String::new());
        }
        let mut it = line.split_whitespace();
        let verb = it.next().expect("non-empty line");
        match verb {
            "step" => {
                let n: u64 = match it.next() {
                    None => 1,
                    Some(t) => t.parse().map_err(|_| {
                        SessionError::BadArguments(format!("`{t}` is not a count"))
                    })?,
                };
                let mut out = String::new();
                for _ in 0..n {
                    match self.dbg.step(StepGranularity::Event) {
                        None => {
                            let _ = writeln!(out, "(recording exhausted)");
                            break;
                        }
                        Some(r) => {
                            for ev in &r.events {
                                let _ = writeln!(
                                    out,
                                    "[g{} c{}] {} @ {:?} (digest {:016x})",
                                    ev.group,
                                    ev.chain,
                                    ev.record.ann.class,
                                    ev.node,
                                    ev.record.payload_digest,
                                );
                            }
                            if r.hit_breakpoint {
                                let _ = writeln!(out, "* breakpoint hit");
                                break;
                            }
                        }
                    }
                }
                Ok(out)
            }
            "stepg" => {
                let n: u64 = match it.next() {
                    None => 1,
                    Some(t) => t.parse().map_err(|_| {
                        SessionError::BadArguments(format!("`{t}` is not a count"))
                    })?,
                };
                let mut out = String::new();
                for _ in 0..n {
                    match self.dbg.step(StepGranularity::Group) {
                        None => {
                            let _ = writeln!(out, "(recording exhausted)");
                            break;
                        }
                        Some(r) => {
                            let _ = writeln!(
                                out,
                                "group -> {} ({} events{})",
                                r.group,
                                r.events.len(),
                                if r.hit_breakpoint { ", breakpoint hit" } else { "" },
                            );
                            if r.hit_breakpoint {
                                break;
                            }
                        }
                    }
                }
                Ok(out)
            }
            "run" => {
                if self.watching {
                    match self.dbg.run_until_watch_change() {
                        None => Ok("(recording exhausted)\n".into()),
                        Some((ev, changes)) => {
                            let mut out = String::new();
                            for (label, old, new) in changes {
                                let _ = writeln!(
                                    out,
                                    "* watch {label}: {old:016x} -> {new:016x}",
                                );
                            }
                            let _ = writeln!(
                                out,
                                "  at [g{} c{}] {} @ {:?}",
                                ev.group,
                                ev.chain,
                                ev.record.ann.class,
                                ev.node,
                            );
                            Ok(out)
                        }
                    }
                } else {
                    match self.dbg.run_until_break() {
                        None => Ok("(recording exhausted)\n".into()),
                        Some(ev) => Ok(format!(
                            "* breakpoint: [g{} c{}] {} @ {:?}\n",
                            ev.group,
                            ev.chain,
                            ev.record.ann.class,
                            ev.node,
                        )),
                    }
                }
            }
            "rstep" | "reverse-step" => {
                let n: u64 = match it.next() {
                    None => 1,
                    Some(t) => t.parse().map_err(|_| {
                        SessionError::BadArguments(format!("`{t}` is not a count"))
                    })?,
                };
                let pos = self.dbg.reverse_step(n)?;
                Ok(format!(
                    "<- position {pos} | group {} | replayed {} event(s)\n",
                    self.dbg.net().current_group(),
                    self.dbg.last_rewind_replayed(),
                ))
            }
            "goto" => {
                let target: u64 = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| SessionError::BadArguments("goto <event-position>".into()))?;
                let pos = self.dbg.goto(target)?;
                Ok(format!(
                    "-> position {pos} | group {}{}\n",
                    self.dbg.net().current_group(),
                    if pos < target { " (end of recording)" } else { "" },
                ))
            }
            "rcont" | "reverse-continue" => match self.dbg.reverse_continue()? {
                None => Ok(format!(
                    "(start of retained history, position {})\n",
                    self.dbg.delivered(),
                )),
                Some((ev, changes)) => {
                    let mut out = String::new();
                    for (label, old, new) in changes {
                        let _ = writeln!(out, "* watch {label}: {old:016x} -> {new:016x}");
                    }
                    let _ = writeln!(
                        out,
                        "* stopped after [g{} c{}] {} @ {:?} | position {}",
                        ev.group,
                        ev.chain,
                        ev.record.ann.class,
                        ev.node,
                        self.dbg.delivered(),
                    );
                    Ok(out)
                }
            },
            "checkpoints" => match self.dbg.timeline_stats() {
                None => Ok("time travel is not enabled\n".into()),
                Some(s) => Ok(format!(
                    "{} checkpoint(s) | interval {} | {} KiB physical of {} KiB virtual\n",
                    s.retained,
                    self.dbg.checkpoint_interval().unwrap_or(0),
                    s.physical_bytes / 1024,
                    s.virtual_bytes / 1024,
                )),
            },
            "break" => match it.next() {
                Some("group") => {
                    let g: u64 = it
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| SessionError::BadArguments("break group G".into()))?;
                    self.dbg.add_breakpoint(move |ev, _| ev.group >= g);
                    Ok(format!("breakpoint set: group {g}\n"))
                }
                Some("node") => {
                    let node = self.parse_node(it.next())?;
                    self.dbg.add_breakpoint(move |ev, _| ev.node == node);
                    Ok(format!("breakpoint set: node {node}\n"))
                }
                _ => Err(SessionError::BadArguments(
                    "break group <G> | break node <N>".into(),
                )),
            },
            "clear" => {
                self.dbg.clear_breakpoints();
                Ok("breakpoints cleared\n".into())
            }
            "watch" => {
                let node = self.parse_node(it.next())?;
                self.dbg.add_watch(format!("{node} state"), move |net| {
                    crate::order::debug_digest(net.control_plane(node))
                });
                // Watches report through `run`: stop on the first change.
                self.watching = true;
                Ok(format!("watching {node}'s state digest\n"))
            }
            "unwatch" => {
                self.dbg.clear_watches();
                self.watching = false;
                Ok("watches cleared\n".into())
            }
            "inspect" => {
                let node = self.parse_node(it.next())?;
                Ok(format!("{:#?}\n", self.dbg.inspect(node)))
            }
            "log" => {
                let node = self.parse_node(it.next())?;
                let k: usize = match it.next() {
                    None => 5,
                    Some(t) => t.parse().map_err(|_| {
                        SessionError::BadArguments(format!("`{t}` is not a count"))
                    })?,
                };
                let logs = self.dbg.net().logs();
                let log = &logs[node.index()];
                let mut out = String::new();
                let start = log.len().saturating_sub(k);
                for r in &log[start..] {
                    let _ = writeln!(
                        out,
                        "[g{} c{}] {} from {:?} (digest {:016x})",
                        r.ann.group,
                        r.ann.chain,
                        r.ann.class,
                        r.ann.sender,
                        r.payload_digest,
                    );
                }
                if out.is_empty() {
                    out.push_str("(no committed events yet)\n");
                }
                Ok(out)
            }
            "where" => Ok(format!(
                "group {} | {} events delivered | {}\n",
                self.dbg.net().current_group(),
                self.dbg.delivered(),
                if self.dbg.net().is_done() { "done" } else { "running" },
            )),
            "help" => Ok("commands: step [n] | stepg [n] | run | rstep [n] | rcont | \
                          goto P | checkpoints | break group G | break node N | clear | \
                          watch N | unwatch | inspect N | log N [K] | where | help\n"
                .into()),
            other => Err(SessionError::UnknownCommand(other.to_string())),
        }
    }

    /// Runs a multi-line script, echoing each command, and returns the full
    /// transcript. Errors are rendered inline and do not abort the script.
    pub fn run_script(&mut self, script: &str) -> String {
        let mut out = String::new();
        for line in script.lines() {
            let trimmed = line.split('#').next().unwrap_or("").trim();
            if trimmed.is_empty() {
                continue;
            }
            let _ = writeln!(out, "> {trimmed}");
            match self.exec(trimmed) {
                Ok(o) => out.push_str(&o),
                Err(e) => {
                    let _ = writeln!(out, "error: {e}");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DefinedConfig;
    use crate::harness::RbNetwork;
    use crate::ls::LockstepNet;
    use netsim::{SimDuration, SimTime};
    use routing::ospf::{OspfConfig, OspfProcess};
    use topology::canonical;

    fn session() -> DebugSession<OspfProcess> {
        let g = canonical::ring(4, SimDuration::from_millis(4));
        let cfg = DefinedConfig::default();
        let f = OspfProcess::for_graph(&g, OspfConfig::stress(4));
        let spawn: Vec<OspfProcess> = (0..4).map(|i| f(NodeId(i))).collect();
        let s2 = spawn.clone();
        let mut net = RbNetwork::new(&g, cfg.clone(), 6, 0.3, move |id| spawn[id.index()].clone());
        net.run_until(SimTime::from_secs(3));
        let (rec, _) = net.into_recording();
        let dbg = Debugger::new(LockstepNet::new(&g, cfg, rec, move |id| s2[id.index()].clone()));
        DebugSession::new(dbg, 4)
    }

    #[test]
    fn stepping_and_where() {
        let mut s = session();
        let out = s.exec("step 3").unwrap();
        assert_eq!(out.lines().count(), 3, "{out}");
        let w = s.exec("where").unwrap();
        assert!(w.contains("3 events delivered"), "{w}");
    }

    #[test]
    fn break_and_run() {
        let mut s = session();
        s.exec("break group 3").unwrap();
        let out = s.exec("run").unwrap();
        assert!(out.contains("breakpoint"), "{out}");
        assert!(s.debugger().net().current_group() >= 3);
    }

    #[test]
    fn node_breakpoints() {
        let mut s = session();
        s.exec("break node n2").unwrap();
        let out = s.exec("run").unwrap();
        assert!(out.contains("@ n2"), "{out}");
    }

    #[test]
    fn inspect_and_log() {
        let mut s = session();
        s.exec("stepg 2").unwrap();
        let st = s.exec("inspect 1").unwrap();
        assert!(st.contains("Ospf"), "{st}");
        let lg = s.exec("log 1 3").unwrap();
        assert!(lg.lines().count() <= 3, "{lg}");
        assert!(lg.contains("[g"), "{lg}");
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut s = session();
        assert!(matches!(s.exec("frobnicate"), Err(SessionError::UnknownCommand(_))));
        assert!(matches!(s.exec("inspect 99"), Err(SessionError::NoSuchNode(99))));
        assert!(matches!(s.exec("step zap"), Err(SessionError::BadArguments(_))));
        assert!(matches!(s.exec("break"), Err(SessionError::BadArguments(_))));
        // The session is still usable.
        assert!(s.exec("step").is_ok());
    }

    #[test]
    fn scripts_produce_transcripts() {
        let mut s = session();
        let t = s.run_script(
            "# a comment-only line\n\
             stepg 1\n\
             where\n\
             nonsense\n\
             step 2\n",
        );
        assert!(t.contains("> stepg 1"), "{t}");
        assert!(t.contains("error: unknown command"), "{t}");
        assert!(t.contains("> step 2"), "{t}");
    }

    #[test]
    fn clear_removes_breakpoints() {
        let mut s = session();
        s.exec("break group 2").unwrap();
        s.exec("clear").unwrap();
        let out = s.exec("run").unwrap();
        assert!(out.contains("exhausted"), "{out}");
    }

    /// Forward → reverse → forward: the re-executed `step` output is byte
    /// for byte the original output (Theorem 1 applied twice).
    #[test]
    fn reverse_then_forward_transcript_is_byte_identical() {
        let mut s = session();
        let first = s.exec("step 30").unwrap();
        let back = s.exec("rstep 30").unwrap();
        assert!(back.starts_with("<- position 0 | group"), "{back}");
        let again = s.exec("step 30").unwrap();
        assert_eq!(first, again, "forward -> reverse -> forward diverged");
        // And through an interior position too.
        s.exec("rstep 7").unwrap();
        let tail = s.exec("step 7").unwrap();
        let mut lines = first.lines().rev().take(7).collect::<Vec<_>>();
        lines.reverse();
        assert_eq!(tail.trim_end().lines().collect::<Vec<_>>(), lines);
    }

    #[test]
    fn goto_verb_navigates_both_directions() {
        let mut s = session();
        s.exec("step 40").unwrap();
        let out = s.exec("goto 10").unwrap();
        assert!(out.starts_with("-> position 10 | group"), "{out}");
        let out = s.exec("goto 35").unwrap();
        assert!(out.starts_with("-> position 35"), "{out}");
        let w = s.exec("where").unwrap();
        assert!(w.contains("35 events delivered"), "{w}");
        // A huge forward target lands at the end of the recording.
        let out = s.exec("goto 1000000000").unwrap();
        assert!(out.contains("(end of recording)"), "{out}");
    }

    #[test]
    fn rcont_stops_at_the_last_breakpoint_hit_behind() {
        let mut s = session();
        s.exec("break group 2").unwrap();
        s.exec("goto 200").unwrap();
        let out = s.exec("rcont").unwrap();
        assert!(out.contains("* stopped after [g"), "{out}");
        // Without breakpoints or watches, rcont lands at history start.
        s.exec("clear").unwrap();
        let out = s.exec("rcont").unwrap();
        assert!(out.contains("start of retained history, position 0"), "{out}");
    }

    #[test]
    fn checkpoints_verb_reports_the_timeline() {
        let mut s = session();
        s.exec("step 100").unwrap();
        let out = s.exec("checkpoints").unwrap();
        assert!(out.contains("checkpoint(s) | interval 32"), "{out}");
    }

    #[test]
    fn reverse_verbs_reject_bad_arguments() {
        let mut s = session();
        assert!(matches!(s.exec("rstep zap"), Err(SessionError::BadArguments(_))));
        assert!(matches!(s.exec("goto"), Err(SessionError::BadArguments(_))));
        assert!(matches!(s.exec("goto x"), Err(SessionError::BadArguments(_))));
        // Long aliases work.
        s.exec("step 5").unwrap();
        assert!(s.exec("reverse-step 2").unwrap().starts_with("<- position 3"));
        assert!(s.exec("reverse-continue").is_ok());
    }

    #[test]
    fn watch_command_stops_on_state_change() {
        let mut s = session();
        let out = s.exec("watch 2").unwrap();
        assert!(out.contains("watching n2"), "{out}");
        let run = s.exec("run").unwrap();
        assert!(run.contains("* watch n2 state"), "{run}");
        assert!(run.contains("at [g"), "{run}");
        // Unwatch reverts `run` to breakpoint semantics (none set → runs
        // to the end).
        s.exec("unwatch").unwrap();
        let run = s.exec("run").unwrap();
        assert!(run.contains("exhausted"), "{run}");
    }
}
