//! Overhead accounting for DEFINED-RB nodes.

/// Counters one RB shim maintains; the harness aggregates them per run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RbMetrics {
    /// Application messages transmitted (including re-sends after rollback).
    pub app_msgs_sent: u64,
    /// Rollback episodes performed.
    pub rollbacks: u64,
    /// History entries re-delivered across all rollbacks.
    pub rolled_entries: u64,
    /// Anti-message (unsend) control packets transmitted.
    pub unsend_msgs: u64,
    /// Message ids retracted via unsends.
    pub unsent_ids: u64,
    /// Beacon packets relayed during flooding.
    pub beacon_relays: u64,
    /// Deliveries taken on the speculative fast path.
    pub fast_path: u64,
    /// Simulated checkpoint/rollback overhead accumulated (ns).
    pub overhead_ns: u64,
    /// Largest history length observed.
    pub max_history: usize,
    /// Arrivals referencing already-committed entries (must stay zero when
    /// the commit horizon is sized correctly).
    pub window_violations: u64,
    /// Unsends that arrived before their target message (poisoned arrivals).
    pub poisoned: u64,
    /// Rolled-back sends kept by lazy cancellation (replay regenerated an
    /// identical message, so no anti-message or re-send was needed).
    pub lazy_hits: u64,
    /// Rollbacks resolved by jumping forward: the inserted straggler left
    /// the state byte-identical, so the suffix after it was spliced back
    /// without re-execution.
    pub jumps: u64,
    /// History entries whose re-execution those jumps skipped.
    pub jumped_entries: u64,
}

impl RbMetrics {
    /// Control-plane packet total attributable to DEFINED: anti-messages
    /// plus speculative re-sends are already inside `app_msgs_sent`; this
    /// returns the unsend traffic alone, which is what Fig. 6a's per-node
    /// overhead tail is made of.
    pub fn control_overhead(&self) -> u64 {
        self.unsend_msgs
    }

    /// Folds another node's counters into an aggregate.
    pub fn absorb(&mut self, other: &RbMetrics) {
        self.app_msgs_sent += other.app_msgs_sent;
        self.rollbacks += other.rollbacks;
        self.rolled_entries += other.rolled_entries;
        self.unsend_msgs += other.unsend_msgs;
        self.unsent_ids += other.unsent_ids;
        self.beacon_relays += other.beacon_relays;
        self.fast_path += other.fast_path;
        self.overhead_ns += other.overhead_ns;
        self.max_history = self.max_history.max(other.max_history);
        self.window_violations += other.window_violations;
        self.poisoned += other.poisoned;
        self.lazy_hits += other.lazy_hits;
        self.jumps += other.jumps;
        self.jumped_entries += other.jumped_entries;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_and_maxes() {
        let mut a = RbMetrics { rollbacks: 2, max_history: 5, ..Default::default() };
        let b = RbMetrics { rollbacks: 3, max_history: 9, unsend_msgs: 4, ..Default::default() };
        a.absorb(&b);
        assert_eq!(a.rollbacks, 5);
        assert_eq!(a.max_history, 9);
        assert_eq!(a.control_overhead(), 4);
    }
}
